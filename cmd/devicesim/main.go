// Command devicesim simulates a fleet of mobile devices against a running
// Hive: it registers the devices, polls their assigned tasks, executes the
// task scripts over synthetic mobility, and uploads the results. Results
// are buffered and flushed to the Hive's batch endpoint in groups of
// -batch uploads; when the Hive's ingest queue pushes back with 429 the
// flush retries with jittered backoff. By default each device executes a
// task once; -repeat re-executes assigned tasks on every poll, producing
// sustained multi-task ingest (useful for exercising the sharded store).
//
// With -metrics ADDR the simulator serves its own Prometheus text
// endpoint (fleet size, executed tasks, accepted/rejected uploads,
// backpressure retries) so a scrape sees both sides of an ingestion
// experiment.
//
// Usage (with a Hive running on :8080):
//
//	devicesim -hive http://127.0.0.1:8080 -devices 20 -days 1 -wait 30s -batch 8
//	          [-metrics :9090]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"apisense/internal/device"
	"apisense/internal/mobgen"
	"apisense/internal/obs"
	"apisense/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "devicesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("devicesim", flag.ContinueOnError)
	hiveURL := fs.String("hive", "http://127.0.0.1:8080", "hive base URL")
	n := fs.Int("devices", 20, "number of simulated devices")
	days := fs.Int("days", 1, "days of movement per device")
	seed := fs.Uint64("seed", 1, "mobility seed")
	wait := fs.Duration("wait", 30*time.Second, "how long to poll for tasks")
	poll := fs.Duration("poll", 2*time.Second, "task poll interval")
	batch := fs.Int("batch", 8, "uploads buffered per batch flush")
	repeat := fs.Bool("repeat", false, "re-execute assigned tasks every poll instead of once per device (sustained ingest load)")
	metricsAddr := fs.String("metrics", "", "serve Prometheus text metrics on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fleet-side counters, exported when -metrics is set. Atomics so the
	// scrape handler can read them while the drive loop writes; retries is
	// a snapshot of uploader.Retries taken on the drive goroutine, which
	// owns the uploader.
	var accepted, rejected, executedTotal, retries atomic.Int64

	ds, city, err := mobgen.Generate(mobgen.Config{Seed: *seed, Users: *n, Days: *days})
	if err != nil {
		return err
	}
	byUser := ds.ByUser()
	client := transport.NewClient(*hiveURL)
	ctx := context.Background()

	var devices []*device.Device
	for _, res := range city.Residents {
		d, err := device.New(device.Config{
			ID: res.User + "-phone", User: res.User, Movement: byUser[res.User][0],
		})
		if err != nil {
			return err
		}
		if err := client.Do(ctx, http.MethodPost, "/api/devices", d.Info(), nil); err != nil {
			return fmt.Errorf("register %s: %w", d.ID(), err)
		}
		devices = append(devices, d)
	}
	log.Printf("registered %d devices with %s", len(devices), *hiveURL)

	uploader := device.NewBatchUploader(client, device.UploaderConfig{
		BatchSize: *batch,
		Seed:      int64(*seed),
	})
	logFlush := func(resp *transport.UploadBatchResponse) {
		if resp != nil && len(resp.Results) > 0 {
			accepted.Add(int64(resp.Accepted))
			rejected.Add(int64(resp.Rejected))
			log.Printf("flushed batch: %d accepted, %d rejected (%d backpressure retries so far)",
				resp.Accepted, resp.Rejected, uploader.Retries)
		}
		retries.Store(int64(uploader.Retries))
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntime(reg)
		obs.RegisterBuildInfo(reg)
		reg.GaugeFunc("devicesim_devices",
			"Simulated devices registered with the Hive.",
			func() float64 { return float64(len(devices)) })
		reg.CounterFunc("devicesim_tasks_executed_total",
			"Task instances executed across the fleet.",
			func() float64 { return float64(executedTotal.Load()) })
		reg.CounterFunc("devicesim_uploads_accepted_total",
			"Uploads the Hive accepted from this fleet.",
			func() float64 { return float64(accepted.Load()) })
		reg.CounterFunc("devicesim_uploads_rejected_total",
			"Uploads the Hive rejected from this fleet.",
			func() float64 { return float64(rejected.Load()) })
		reg.CounterFunc("devicesim_backpressure_retries_total",
			"Batch flushes resubmitted after a 429 from the Hive.",
			func() float64 { return float64(retries.Load()) })
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg)
		srv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("metrics: serving GET /metrics on %s", *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		defer srv.Close()
	}
	done := make(map[string]bool) // deviceID/taskID pairs already executed (ignored with -repeat)
	deadline := time.Now().Add(*wait)
	for time.Now().Before(deadline) {
		executed := 0
		for _, d := range devices {
			var tasks []transport.TaskSpec
			if err := client.Do(ctx, http.MethodGet, "/api/devices/"+d.ID()+"/tasks", nil, &tasks); err != nil {
				log.Printf("poll %s: %v", d.ID(), err)
				continue
			}
			for _, spec := range tasks {
				key := d.ID() + "/" + spec.ID
				if !*repeat && done[key] {
					continue
				}
				done[key] = true
				res, err := d.RunTask(spec)
				if err != nil {
					log.Printf("device %s task %s: %v", d.ID(), spec.ID, err)
					continue
				}
				resp, err := uploader.Add(ctx, res.Upload)
				if err != nil {
					log.Printf("upload %s: %v", d.ID(), err)
					continue
				}
				logFlush(resp)
				executed++
				executedTotal.Add(1)
				log.Printf("device %s executed %s: %d records (%d filtered), battery %.1f%%",
					d.ID(), spec.ID, len(res.Upload.Records), res.Dropped, d.Battery().Level())
			}
		}
		if executed == 0 {
			time.Sleep(*poll)
		}
	}
	resp, err := uploader.Flush(ctx)
	if err != nil {
		log.Printf("final flush: %v", err)
	} else {
		logFlush(resp)
	}
	log.Printf("done: executed %d task instances", executedTotal.Load())
	return nil
}
