// Command mobgen generates a synthetic mobility dataset (the documented
// substitute for the paper's proprietary real-life GPS traces) and writes
// it as CSV.
//
// Usage:
//
//	mobgen -users 50 -days 14 -seed 1 -out traces.csv [-truth truth.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"apisense/internal/mobgen"
	"apisense/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobgen", flag.ContinueOnError)
	users := fs.Int("users", 50, "number of simulated users")
	days := fs.Int("days", 14, "number of simulated days")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "traces.csv", "output CSV path")
	truthPath := fs.String("truth", "", "optional ground-truth POI CSV path")
	dropout := fs.Float64("dropout", 0, "per-fix dropout probability")
	period := fs.Duration("period", 0, "sampling period (default 1m)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, city, err := mobgen.Generate(mobgen.Config{
		Seed: *seed, Users: *users, Days: *days,
		Dropout: *dropout, SamplePeriod: *period,
	})
	if err != nil {
		return err
	}
	if err := trace.SaveCSVFile(*out, ds); err != nil {
		return err
	}
	stats := ds.Summarize()
	fmt.Printf("wrote %s: %s\n", *out, stats)

	if *truthPath != "" {
		f, err := os.Create(*truthPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *truthPath, err)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write([]string{"user", "kind", "lat", "lon"}); err != nil {
			return err
		}
		for _, res := range city.Residents {
			rows := []struct {
				kind     string
				lat, lon float64
			}{
				{"home", res.Home.Lat, res.Home.Lon},
				{"work", res.Work.Lat, res.Work.Lon},
				{"leisure", res.Leisure.Lat, res.Leisure.Lon},
			}
			for _, r := range rows {
				if err := w.Write([]string{
					res.User, r.kind,
					strconv.FormatFloat(r.lat, 'f', -1, 64),
					strconv.FormatFloat(r.lon, 'f', -1, 64),
				}); err != nil {
					return err
				}
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: ground truth for %d users\n", *truthPath, len(city.Residents))
	}
	return nil
}
