// Command experiments regenerates every table of EXPERIMENTS.md (E1-E13):
// the paper's claims C1-C3, the platform behaviours of §2, and the
// monolithic-vs-sharded publication comparison.
//
// Usage:
//
//	experiments [-users 50] [-days 14] [-seed 1] [-only E1,E4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"apisense/internal/exp"
)

func main() {
	// SIGINT/SIGTERM cancel the run: the current experiment is abandoned
	// at its next cancellation point and no further tables are started.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	users := fs.Int("users", exp.DefaultUsers, "workload users")
	days := fs.Int("days", exp.DefaultDays, "workload days")
	seed := fs.Uint64("seed", 1, "workload seed")
	only := fs.String("only", "", "comma-separated experiment ids to run (default all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	fmt.Printf("workload: %d users x %d days, seed %d\n\n", *users, *days, *seed)
	start := time.Now()
	w, err := exp.NewWorkload(*seed, *users, *days)
	if err != nil {
		return err
	}
	fmt.Printf("generated %s in %s\n\n", w.Raw.Summarize(), time.Since(start).Round(time.Millisecond))

	runners := []struct {
		id  string
		run func() (*exp.Table, error)
	}{
		{"E1", func() (*exp.Table, error) { return exp.E1POIRecovery(w) }},
		{"E2", func() (*exp.Table, error) { return exp.E2SpeedSmoothing(w) }},
		{"E3", func() (*exp.Table, error) { return exp.E3Linkage(w) }},
		{"E4", func() (*exp.Table, error) { return exp.E4CrowdedPlaces(w) }},
		{"E5", func() (*exp.Table, error) { return exp.E5Traffic(w) }},
		{"E6", func() (*exp.Table, error) { return exp.E6Frontier(w) }},
		{"E7", func() (*exp.Table, error) { return exp.E7Selection(ctx, w) }},
		{"E8", func() (*exp.Table, error) { return exp.E8Platform(ctx, w, []int{10, 25, 50}) }},
		{"E9", func() (*exp.Table, error) { return exp.E9VirtualSensor(w) }},
		{"E10", func() (*exp.Table, error) { return exp.E10Incentives(*seed) }},
		{"E11", func() (*exp.Table, error) { return exp.E11Filters(w) }},
		{"E12", func() (*exp.Table, error) { return exp.E12SecAgg(w, 10, 32) }},
		{"E13", func() (*exp.Table, error) { return exp.E13Sharding(ctx, w) }},
	}
	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		tab, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  (%s in %s)\n\n", r.id, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
