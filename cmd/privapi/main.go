// Command privapi is the PRIVAPI command-line tool: it anonymises a
// mobility dataset with a fixed mechanism, or runs the full utility-driven
// strategy selection.
//
// Usage:
//
//	privapi protect -in traces.csv -out protected.csv -mechanism smoothing:eps=100
//	privapi publish -in traces.csv -out release.csv -objective crowded-places -floor 0.33
//	privapi publish -in traces.csv -out release.csv -shard-by window -shards 7
//	privapi publish -in traces.csv -out release.csv -shard-by cell:size=1500
//	privapi analyze -in traces.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"apisense/internal/core"
	"apisense/internal/evalcache"
	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the pipeline context: a long publication is
	// abandoned at the next trajectory/strategy boundary instead of
	// running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "privapi:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: privapi <protect|publish|analyze> [flags]")
	}
	switch args[0] {
	case "protect":
		return runProtect(ctx, args[1:])
	case "publish":
		return runPublish(ctx, args[1:])
	case "analyze":
		return runAnalyze(ctx, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want protect, publish or analyze)", args[0])
	}
}

func loadDataset(path string) (*trace.Dataset, geo.Point, error) {
	ds, err := trace.LoadCSVFile(path)
	if err != nil {
		return nil, geo.Point{}, err
	}
	origin := geo.Point{Lat: 45.7640, Lon: 4.8357}
	if box, ok := ds.BBox(); ok {
		origin = box.Center()
	}
	return ds, origin, nil
}

func runProtect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("privapi protect", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV dataset")
	out := fs.String("out", "protected.csv", "output CSV path")
	spec := fs.String("mechanism", "smoothing:eps=100", "mechanism spec (see lppm.FromSpec)")
	key := fs.String("pseudonym-key", "", "optional pseudonymisation key")
	parallelism := fs.Int("parallelism", 0, "worker goroutines (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	ds, _, err := loadDataset(*in)
	if err != nil {
		return err
	}
	m, err := lppm.FromSpec(*spec)
	if err != nil {
		return err
	}
	prot, err := lppm.ProtectDatasetContext(ctx, m, ds, *parallelism)
	if err != nil {
		return err
	}
	if *key != "" {
		p, err := trace.NewPseudonymizer([]byte(*key))
		if err != nil {
			return err
		}
		prot = p.Apply(prot)
	}
	if err := trace.SaveCSVFile(*out, prot); err != nil {
		return err
	}
	fmt.Printf("protected with %s: %s -> %s (%s)\n", m.Name(), *in, *out, prot.Summarize())
	return nil
}

func parseObjective(s string) (core.Objective, error) {
	switch s {
	case "crowded-places":
		return core.ObjectiveCrowdedPlaces, nil
	case "traffic":
		return core.ObjectiveTraffic, nil
	case "distortion":
		return core.ObjectiveDistortion, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want crowded-places, traffic or distortion)", s)
	}
}

// shardPolicy resolves the -shard-by/-shards flags into a core.ShardBy.
// by may be a bare policy name ("cell", "window", "user") or a full spec
// ("cell:size=1500"); with a bare name and shards > 0 the parameters are
// derived from the dataset so that roughly that many shards result.
func shardPolicy(ds *trace.Dataset, by string, shards int) (core.ShardBy, error) {
	if strings.Contains(by, ":") || shards <= 0 {
		return core.ShardPolicyFromSpec(by)
	}
	switch by {
	case "cell":
		box, ok := ds.BBox()
		if !ok {
			return nil, fmt.Errorf("cannot derive shard cell size from an empty dataset")
		}
		width := geo.Distance(geo.Point{Lat: box.MinLat, Lon: box.MinLon}, geo.Point{Lat: box.MinLat, Lon: box.MaxLon})
		height := geo.Distance(geo.Point{Lat: box.MinLat, Lon: box.MinLon}, geo.Point{Lat: box.MaxLat, Lon: box.MinLon})
		size := math.Sqrt(width * height / float64(shards))
		if size < 1 {
			size = 1
		}
		return core.NewShardByCell(size)
	case "window":
		start, end, ok := ds.TimeSpan()
		if !ok {
			return nil, fmt.Errorf("cannot derive shard window from an empty dataset")
		}
		window := end.Sub(start) / time.Duration(shards)
		if window < time.Hour {
			window = time.Hour
		}
		return core.NewShardByWindow(window)
	case "user":
		return core.NewShardByUser(shards)
	default:
		return nil, fmt.Errorf("unknown shard policy %q (want cell, window or user)", by)
	}
}

func runPublish(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("privapi publish", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV dataset")
	out := fs.String("out", "release.csv", "output CSV path")
	objectiveName := fs.String("objective", "crowded-places", "utility objective")
	floor := fs.Float64("floor", 0.33, "privacy floor (max POI exposure f1)")
	key := fs.String("pseudonym-key", "release-key", "pseudonymisation key")
	parallelism := fs.Int("parallelism", 0, "evaluation workers (0 = one per CPU)")
	shardBy := fs.String("shard-by", "", "shard policy: cell, window, user, or a spec like cell:size=1500 (empty = monolithic)")
	shards := fs.Int("shards", 0, "target shard count for a bare -shard-by policy (0 = policy defaults)")
	cacheMB := fs.Int("cache-mb", 0, "evaluation cache bound in MiB (0 = caching disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	ds, origin, err := loadDataset(*in)
	if err != nil {
		return err
	}
	objective, err := parseObjective(*objectiveName)
	if err != nil {
		return err
	}
	cache := newCache(*cacheMB)
	mw, err := core.New(core.Config{
		Objective:      objective,
		MaxPOIExposure: *floor,
		PseudonymKey:   []byte(*key),
		Parallelism:    *parallelism,
		Cache:          cache,
	}, origin)
	if err != nil {
		return err
	}
	defer printCacheStats(cache)

	if *shardBy != "" {
		if strings.HasPrefix(*shardBy, "window") {
			// CSV loading merges each user's records into one long
			// trajectory; window sharding keys on the first record, so
			// split back into calendar days first (the paper's trajectory
			// unit) or every trajectory lands in the first window.
			ds = ds.SplitDays(time.UTC)
		}
		policy, err := shardPolicy(ds, *shardBy, *shards)
		if err != nil {
			return err
		}
		release, sel, err := mw.PublishShardedContext(ctx, ds, policy)
		printShardedSelection(sel)
		if err != nil {
			return err
		}
		if err := trace.SaveCSVFile(*out, release); err != nil {
			return err
		}
		fmt.Printf("published %s -> %s across %d shards (%s)\n", *in, *out, len(sel.Shards), release.Summarize())
		return nil
	}

	release, sel, err := mw.PublishContext(ctx, ds)
	if err != nil {
		printSelection(sel)
		return err
	}
	printSelection(sel)
	if err := trace.SaveCSVFile(*out, release); err != nil {
		return err
	}
	fmt.Printf("published %s -> %s with %s (%s)\n", *in, *out, sel.Chosen, release.Summarize())
	return nil
}

func runAnalyze(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("privapi analyze", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV dataset")
	parallelism := fs.Int("parallelism", 0, "evaluation workers (0 = one per CPU)")
	cacheMB := fs.Int("cache-mb", 0, "evaluation cache bound in MiB (0 = caching disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	ds, origin, err := loadDataset(*in)
	if err != nil {
		return err
	}
	mw, err := core.New(core.Config{Parallelism: *parallelism, Cache: newCache(*cacheMB)}, origin)
	if err != nil {
		return err
	}
	evals, err := mw.EvaluateContext(ctx, ds)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %8s %8s %8s %9s %9s %8s\n",
		"strategy", "recall", "prec", "f1", "hotspots", "traffic", "floor")
	for _, ev := range evals {
		floor := "no"
		if ev.MeetsFloor {
			floor = "yes"
		}
		fmt.Printf("%-28s %7.1f%% %7.1f%% %8.3f %9.3f %9.3f %8s\n",
			ev.Strategy,
			ev.Privacy.Recall()*100, ev.Privacy.Precision()*100, ev.Privacy.F1(),
			ev.HotspotOverlap, ev.TrafficUtility, floor)
	}
	return nil
}

// newCache sizes the optional evaluation cache; a typed nil interface must
// not reach core.Config.Cache, so disabled caching returns a plain nil.
func newCache(mb int) evalcache.Cache {
	if mb <= 0 {
		return nil
	}
	return evalcache.NewLRU(int64(mb) << 20)
}

func printCacheStats(cache evalcache.Cache) {
	if cache == nil {
		return
	}
	st := cache.Stats()
	fmt.Printf("evaluation cache: entries=%d bytes=%d hits=%d misses=%d evictions=%d pruned=%d\n",
		st.Entries, st.Bytes, st.Hits, st.Misses, st.Evictions, st.Pruned)
}

func printSelection(sel *core.Selection) {
	if sel == nil {
		return
	}
	fmt.Printf("objective=%s floor=%.2f candidates=%d\n",
		sel.Objective, sel.Floor, len(sel.Evaluations))
	for _, ev := range sel.Evaluations {
		marker := " "
		if ev.Strategy == sel.Chosen {
			marker = "*"
		}
		fmt.Printf(" %s %-28s exposure=%.3f utility=%.3f released=%d\n",
			marker, ev.Strategy, ev.Privacy.F1(), ev.Utility, ev.Released)
	}
}

func printShardedSelection(sel *core.ShardedSelection) {
	if sel == nil {
		return
	}
	fmt.Printf("objective=%s floor=%.2f policy=%s shards=%d\n",
		sel.Objective, sel.Floor, sel.Policy, len(sel.Shards))
	for _, sh := range sel.Shards {
		chosen := sh.Chosen
		if chosen == "" {
			chosen = "(withheld: none meets floor)"
		}
		fmt.Printf("  %-32s traj=%-5d %-28s exposure=%.3f utility=%.3f\n",
			sh.Key, sh.Trajectories, chosen, sh.Exposure, sh.Utility)
	}
	fmt.Printf("  worst-shard exposure=%.3f (%s) weighted-utility=%.3f released=%d withheld=%d\n",
		sel.WorstExposure, sel.WorstShard, sel.Utility, sel.Released, sel.Withheld)
}
