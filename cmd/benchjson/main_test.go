package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: apisense
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEvaluateParallel/parallelism=1-8         	       2	 500000000 ns/op
BenchmarkEvaluateParallel/parallelism=8-8         	       2	 100000000 ns/op
BenchmarkPublishSharded/users=8/monolithic-8      	       2	 275051574 ns/op
BenchmarkPublishSharded/users=8/shards=4-8        	       2	 180964270 ns/op
PASS
ok  	apisense	9.453s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	first := results[0]
	if first.Name != "BenchmarkEvaluateParallel/parallelism=1-8" ||
		first.Iterations != 2 || first.NsPerOp != 5e8 {
		t.Errorf("first result = %+v", first)
	}
}

func TestRunRoundTripAndDelta(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_baseline.json")

	// First run: write the baseline.
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(sample), &out, &diag, "", baseline); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(doc.Benchmarks) != 4 || doc.CPUs <= 0 {
		t.Errorf("document = %+v", doc)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Second run: diff against the baseline (identical input -> +0.0%).
	out.Reset()
	diag.Reset()
	if err := run(strings.NewReader(sample), &out, &diag, baseline, ""); err != nil {
		t.Fatal(err)
	}
	report := diag.String()
	if !strings.Contains(report, "+0.0%") || !strings.Contains(report, "BenchmarkPublishSharded/users=8/shards=4-8") {
		t.Errorf("delta report missing expected rows:\n%s", report)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out, &diag, "", ""); err == nil {
		t.Error("empty input should fail")
	}
}
