package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: apisense
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEvaluateParallel/parallelism=1-8         	       2	 500000000 ns/op
BenchmarkEvaluateParallel/parallelism=8-8         	       2	 100000000 ns/op
BenchmarkPublishSharded/users=8/monolithic-8      	       2	 275051574 ns/op
BenchmarkPublishSharded/users=8/shards=4-8        	       2	 180964270 ns/op
PASS
ok  	apisense	9.453s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	first := results[0]
	if first.Name != "BenchmarkEvaluateParallel/parallelism=1-8" ||
		first.Iterations != 2 || first.NsPerOp != 5e8 {
		t.Errorf("first result = %+v", first)
	}
}

func TestRunRoundTripAndDelta(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_baseline.json")

	// First run: write the baseline.
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(sample), &out, &diag, "", baseline); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(doc.Benchmarks) != 4 || doc.CPUs <= 0 {
		t.Errorf("document = %+v", doc)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Second run: diff against the baseline (identical input -> +0.0%).
	out.Reset()
	diag.Reset()
	if err := run(strings.NewReader(sample), &out, &diag, baseline, ""); err != nil {
		t.Fatal(err)
	}
	report := diag.String()
	if !strings.Contains(report, "+0.0%") || !strings.Contains(report, "BenchmarkPublishSharded/users=8/shards=4-8") {
		t.Errorf("delta report missing expected rows:\n%s", report)
	}
}

func TestParseRejectsMalformedNumbers(t *testing.T) {
	// An iteration count too big for int, and an ns/op that is not a
	// number: both must fail loudly instead of producing a bogus baseline.
	cases := []string{
		"BenchmarkOverflow-8 \t 99999999999999999999 \t 100 ns/op\n",
		"BenchmarkBadNs-8 \t 2 \t 1.2.3 ns/op\n",
	}
	for _, c := range cases {
		if _, err := parse(strings.NewReader(c)); err == nil {
			t.Errorf("parse(%q) succeeded, want error", c)
		}
	}
}

func TestRunMissingBaseline(t *testing.T) {
	var out, diag bytes.Buffer
	err := run(strings.NewReader(sample), &out, &diag, filepath.Join(t.TempDir(), "absent.json"), "")
	if err == nil || !strings.Contains(err.Error(), "read baseline") {
		t.Errorf("missing baseline error = %v", err)
	}
}

func TestRunMalformedBaseline(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(baseline, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, diag bytes.Buffer
	err := run(strings.NewReader(sample), &out, &diag, baseline, "")
	if err == nil || !strings.Contains(err.Error(), "parse baseline") {
		t.Errorf("malformed baseline error = %v", err)
	}
}

func TestDeltaMarksNewBenchmarks(t *testing.T) {
	// A benchmark missing from the baseline — or present with a zero
	// ns/op that would divide by zero — shows as "new", not as a ratio.
	base := Document{Benchmarks: []Result{
		{Name: "BenchmarkOld-8", Iterations: 2, NsPerOp: 100},
		{Name: "BenchmarkZero-8", Iterations: 2, NsPerOp: 0},
	}}
	cur := Document{Benchmarks: []Result{
		{Name: "BenchmarkOld-8", Iterations: 2, NsPerOp: 150},
		{Name: "BenchmarkZero-8", Iterations: 2, NsPerOp: 50},
		{Name: "BenchmarkFresh-8", Iterations: 2, NsPerOp: 70},
	}}
	var buf bytes.Buffer
	delta(&buf, base, cur)
	report := buf.String()
	if !strings.Contains(report, "+50.0%") {
		t.Errorf("expected +50.0%% row for BenchmarkOld:\n%s", report)
	}
	if got := strings.Count(report, "new"); got != 2 {
		t.Errorf("expected 2 'new' rows (fresh + zero-baseline), got %d:\n%s", got, report)
	}
}

func TestRunUpdateOverwritesBaseline(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	if err := os.WriteFile(baseline, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(sample), &out, &diag, "", baseline); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("updated baseline is not JSON: %v", err)
	}
	if len(doc.Benchmarks) != 4 {
		t.Errorf("updated baseline has %d benchmarks, want 4", len(doc.Benchmarks))
	}
	if !strings.Contains(diag.String(), "wrote "+baseline) {
		t.Errorf("diag missing write notice: %s", diag.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out, &diag, "", ""); err == nil {
		t.Error("empty input should fail")
	}
}
