// Command benchjson converts `go test -bench` output into a stable JSON
// document for benchmark tracking. CI uploads the JSON as a workflow
// artifact on every run; the checked-in BENCH_baseline.json is refreshed
// locally (the 1-core CI runner cannot show parallel speedups) with:
//
//	go test -bench 'BenchmarkEvaluateParallel|BenchmarkPublishSharded|BenchmarkRepublishIncremental|BenchmarkIngestBatch|BenchmarkRecover|BenchmarkShardedIngest' \
//	    -benchtime=2x -run '^$' . | go run ./cmd/benchjson -update BENCH_baseline.json
//
// With -baseline it additionally prints a delta report against a previous
// JSON document to stderr. Deltas are informational and never fail the
// run: CI and developer machines differ too much for a hard threshold, so
// the artifact trail — not an exit code — is the regression signal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// Document is the tracked benchmark report.
type Document struct {
	Note       string   `json:"note"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   	 123	 456789 ns/op [...]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// parse extracts benchmark results from go test -bench output.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
		}
		out = append(out, Result{Name: m[1], Iterations: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: read input: %v", err)
	}
	return out, nil
}

// delta renders a benchstat-style comparison of cur against base to w.
func delta(w io.Writer, base, cur Document) {
	old := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, b := range cur.Benchmarks {
		prev, ok := old[b.Name]
		if !ok || prev.NsPerOp == 0 {
			fmt.Fprintf(w, "%-60s %14s %14.0f %8s\n", b.Name, "-", b.NsPerOp, "new")
			continue
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%%\n",
			b.Name, prev.NsPerOp, b.NsPerOp, (b.NsPerOp/prev.NsPerOp-1)*100)
	}
}

func run(in io.Reader, out, diag io.Writer, baselinePath, updatePath string) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	doc := Document{
		Note:       "tracked benchmarks; refresh with: go test -bench 'BenchmarkEvaluateParallel|BenchmarkPublishSharded|BenchmarkRepublishIncremental|BenchmarkIngestBatch|BenchmarkRecover|BenchmarkShardedIngest' -benchtime=2x -run '^$' . | go run ./cmd/benchjson -update BENCH_baseline.json",
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := out.Write(data); err != nil {
		return err
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("benchjson: read baseline: %v", err)
		}
		var base Document
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("benchjson: parse baseline %s: %v", baselinePath, err)
		}
		delta(diag, base, doc)
	}
	if updatePath != "" {
		if err := os.WriteFile(updatePath, data, 0o644); err != nil {
			return fmt.Errorf("benchjson: write %s: %v", updatePath, err)
		}
		fmt.Fprintf(diag, "wrote %s (%d benchmarks)\n", updatePath, len(results))
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", "", "JSON baseline to diff against (report goes to stderr)")
	update := flag.String("update", "", "path to (re)write as the new baseline")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, os.Stderr, *baseline, *update); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
