// Command honeycomb is the experimenter endpoint CLI: deploy a task script
// to the Hive, then collect the produced dataset and optionally publish a
// privacy-preserving release through PRIVAPI.
//
// Usage:
//
//	honeycomb deploy -hive http://127.0.0.1:8080 -script task.js -name my-exp
//	honeycomb collect -hive http://127.0.0.1:8080 -task task-0001 -out data.csv [-private]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"apisense/internal/core"
	"apisense/internal/honeycomb"
	"apisense/internal/trace"
	"apisense/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "honeycomb:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: honeycomb <deploy|collect> [flags]")
	}
	switch args[0] {
	case "deploy":
		return runDeploy(args[1:])
	case "collect":
		return runCollect(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want deploy or collect)", args[0])
	}
}

func runDeploy(args []string) error {
	fs := flag.NewFlagSet("honeycomb deploy", flag.ContinueOnError)
	hiveURL := fs.String("hive", "http://127.0.0.1:8080", "hive base URL")
	scriptPath := fs.String("script", "", "SenseScript task file")
	name := fs.String("name", "experiment", "task name")
	endpoint := fs.String("endpoint", "honeycomb-cli", "honeycomb endpoint name")
	period := fs.Int("period", 60, "sampling period in seconds")
	sensors := fs.String("sensors", "gps", "comma-separated required sensors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scriptPath == "" {
		return fmt.Errorf("-script is required")
	}
	src, err := os.ReadFile(*scriptPath)
	if err != nil {
		return fmt.Errorf("read script: %w", err)
	}
	hc, err := honeycomb.New(*endpoint, *hiveURL)
	if err != nil {
		return err
	}
	spec := transport.TaskSpec{
		Name:          *name,
		Script:        string(src),
		PeriodSeconds: *period,
		Sensors:       splitCSV(*sensors),
	}
	published, recruited, err := hc.Deploy(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %s as %s; recruited %d devices\n", *name, published.ID, len(recruited))
	return nil
}

func runCollect(args []string) error {
	fs := flag.NewFlagSet("honeycomb collect", flag.ContinueOnError)
	hiveURL := fs.String("hive", "http://127.0.0.1:8080", "hive base URL")
	taskID := fs.String("task", "", "task id to collect")
	out := fs.String("out", "collected.csv", "output CSV path")
	endpoint := fs.String("endpoint", "honeycomb-cli", "honeycomb endpoint name")
	private := fs.Bool("private", false, "publish through PRIVAPI instead of raw")
	floor := fs.Float64("floor", 0.33, "privacy floor when -private is set")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *taskID == "" {
		return fmt.Errorf("-task is required")
	}
	hc, err := honeycomb.New(*endpoint, *hiveURL)
	if err != nil {
		return err
	}
	ctx := context.Background()
	ups, err := hc.Collect(ctx, *taskID)
	if err != nil {
		return err
	}
	users, err := hc.DeviceUsers(ctx)
	if err != nil {
		return err
	}
	ds := hc.BuildDataset(*taskID, users)
	fmt.Printf("collected %d uploads: %s\n", len(ups), ds.Summarize())

	if *private {
		release, sel, err := hc.PublishPrivate(ds, core.Config{
			MaxPOIExposure: *floor,
			PseudonymKey:   []byte("honeycomb-release"),
		})
		if err != nil {
			return err
		}
		fmt.Printf("PRIVAPI selected %s\n", sel.Chosen)
		ds = release
	}
	if err := trace.SaveCSVFile(*out, ds); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
