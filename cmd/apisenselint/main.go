// Command apisenselint runs the project's own static-analysis suite
// (internal/analysis/...) over the module: invariants that ordinary
// linters cannot know — determinism of the report pipeline, the
// no-fsync-under-lock rule of the Hive, the context conventions of the
// facade, the coded-error taxonomy of the HTTP boundary, and seed
// injection in every simulation path.
//
// Usage:
//
//	go run ./cmd/apisenselint ./...
//
// Patterns are directories; a trailing /... recurses. With no pattern the
// whole module is checked. Exit status: 0 clean, 1 findings, 2 usage or
// load failure. Suppress a single finding with
// `//lint:allow <analyzer> <reason>` on (or above) the flagged line; see
// the README's "Static analysis" section for the analyzer catalogue.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"apisense/internal/analysis"
	"apisense/internal/analysis/ctxflow"
	"apisense/internal/analysis/detrange"
	"apisense/internal/analysis/detseed"
	"apisense/internal/analysis/doccomment"
	"apisense/internal/analysis/errcode"
	"apisense/internal/analysis/lockfsync"
)

// scoped pairs an analyzer with the import paths it patrols.
type scoped struct {
	analyzer *analysis.Analyzer
	// applies reports whether the analyzer runs on an import path; nil
	// means everywhere.
	applies func(importPath string) bool
}

// suite is the analyzer registry with its per-package scoping. Scoping
// lives here, not in the analyzers, so the fixtures under testdata can
// exercise each analyzer on any package name.
var suite = []scoped{
	// Concurrency invariants hold everywhere, binaries included.
	{lockfsync.Analyzer, nil},
	// Determinism of randomness holds everywhere: experiment binaries
	// take -seed flags for the same reason libraries take Config.Seed.
	{detseed.Analyzer, nil},
	// Byte-identical reports are a contract of the evaluation, metrics
	// and experiment-table paths — and of the evaluation cache, whose
	// hits must replay exactly what a cold run would compute.
	{detrange.Analyzer, under("apisense/internal/core", "apisense/internal/metrics",
		"apisense/internal/exp", "apisense/internal/attack", "apisense/internal/evalcache")},
	// Context discipline applies to library code; main packages and
	// examples legitimately root their own contexts.
	{ctxflow.Analyzer, func(path string) bool {
		return !strings.HasPrefix(path, "apisense/cmd/") && !strings.HasPrefix(path, "apisense/examples/")
	}},
	// The error taxonomy guards the HTTP/wire boundary, including the
	// ingest queue whose sentinels surface as 429/413/503 responses.
	// under() scoping is recursive, so internal/hive includes the
	// internal/hive/store engines and their store.* sentinel codes.
	{errcode.Analyzer, under("apisense/internal/hive", "apisense/internal/transport",
		"apisense/internal/ingest")},
	// The operator-facing packages are documentation surface: every
	// export is cited by docs/OPERATIONS.md or docs/ARCHITECTURE.md, so
	// an undocumented one is a runbook hole. Includes internal/hive/store
	// (the storage engines operators pick with -store). `make docs` runs
	// exactly this scope.
	{doccomment.Analyzer, under("apisense/internal/hive", "apisense/internal/ingest",
		"apisense/internal/core", "apisense/internal/obs", "apisense/internal/apierr",
		"apisense/internal/otrace")},
}

// under matches an import path equal to or below any of the given roots.
func under(roots ...string) func(string) bool {
	return func(path string) bool {
		for _, r := range roots {
			if path == r || strings.HasPrefix(path, r+"/") {
				return true
			}
		}
		return false
	}
}

func main() {
	flag.Usage = usage
	flag.Parse()
	code, err := lint(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: apisenselint [dir|dir/...]...\n\nAnalyzers:\n")
	for _, s := range suite {
		fmt.Fprintf(os.Stderr, "\n%s\n\t%s\n", s.analyzer.Name, s.analyzer.Doc)
	}
}

func lint(patterns []string) (int, error) {
	root, module, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	dirs, err := packageDirs(root, patterns)
	if err != nil {
		return 0, err
	}

	loader := analysis.NewLoader()
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return 0, err
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(dir, importPath)
		if err != nil {
			return 0, err
		}
		for _, s := range suite {
			if s.applies != nil && !s.applies(importPath) {
				continue
			}
			ds, err := analysis.Run(s.analyzer, pkg)
			if err != nil {
				return 0, err
			}
			diags = append(diags, ds...)
		}
	}

	diags = dedupe(diags)
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		rel, err := filepath.Rel(root, pos.Filename)
		if err != nil {
			rel = pos.Filename
		}
		fmt.Printf("%s:%d:%d: %s [%s]\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Printf("apisenselint: %d finding(s)\n", len(diags))
		return 1, nil
	}
	return 0, nil
}

// dedupe drops repeated diagnostics: the driver runs several analyzers
// over each package, and framework-level findings (e.g. a malformed
// //lint:allow) surface once per analyzer run.
func dedupe(diags []analysis.Diagnostic) []analysis.Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// moduleRoot finds the enclosing go.mod and returns its directory and
// module path.
func moduleRoot() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("apisenselint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("apisenselint: no go.mod found; run from inside the module")
		}
		dir = parent
	}
}

// packageDirs expands patterns into package directories. Directories
// named testdata (analysis fixtures) and hidden directories are skipped.
func packageDirs(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if hasGoFiles(dir) && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			recursive = true
			p = rest
			if p == "." || p == "" {
				p = root
			}
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != abs) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
