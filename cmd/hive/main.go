// Command hive runs the central APISENSE Hive service: device registry,
// task publication and dataset ingestion, exposed over HTTP/JSON.
//
// Usage:
//
//	hive [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"apisense/internal/hive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hive:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hive", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	journal := fs.String("journal", "", "journal file for durable state (empty = in-memory only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var h *hive.Hive
	if *journal != "" {
		recovered, j, err := hive.Recover(*journal)
		if err != nil {
			return err
		}
		defer j.Close()
		h = recovered
		log.Printf("recovered state from %s: %+v", *journal, h.Stats())
	} else {
		h = hive.New()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           hive.NewServer(h),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("hive listening on %s", *addr)
	return srv.ListenAndServe()
}
