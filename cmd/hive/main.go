// Command hive runs the central APISENSE Hive service: device registry,
// task publication and dataset ingestion, exposed over HTTP/JSON.
//
// Durability is pluggable (-store): the single-file journal replays full
// history at startup; the segmented engine rotates its log at -segment-mb
// and folds history into snapshots every -snapshot-every sealed segments,
// so restart cost stays bounded by the tail; the sharded engine commits
// uploads for different tasks on -store-shards independent fsync
// boundaries, so hot tasks never serialise on one descriptor.
//
// Ingestion is streamed through a bounded queue: uploads (single or
// batched via POST /api/uploads/batch) are admitted by a pool of drain
// workers and journaled with group commits — one fsync per drained batch
// per shard. A full queue answers 429 with a Retry-After hint instead of
// accepting unbounded work. SIGINT/SIGTERM shuts down gracefully: the
// HTTP server stops taking requests, the queue drains, and the store is
// synced and closed, so no acknowledged upload is lost.
//
// With -metrics the server exposes GET /metrics in Prometheus text
// format: queue depth and drain latency, store fsyncs (total and
// per-shard), segment count, snapshot age, replay cost, per-task upload
// counters, per-route HTTP request/latency/error-code series, Go runtime
// gauges and build info — the full catalogue is in docs/OPERATIONS.md.
//
// With -traces the server records end-to-end request traces (device
// flush → HTTP route → ingest enqueue → group commit → store append) in
// a bounded in-memory store, served at GET /debug/traces; -log-requests
// adds one structured JSON log line per request, trace-correlated via
// trace_id/span_id. Liveness and readiness live at GET /healthz and
// GET /readyz. -debug-addr exposes net/http/pprof on a separate,
// loopback-only listener that never shares the public mux.
//
// Usage:
//
//	hive [-addr :8080] [-journal hive.journal] [-store journal|segmented|sharded]
//	     [-segment-mb 4] [-snapshot-every 4] [-store-shards 8] [-sync-every 1]
//	     [-queue 256] [-batch 256] [-drain-workers 1] [-metrics]
//	     [-traces 512] [-log-requests info] [-debug-addr 127.0.0.1:6060]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apisense/internal/hive"
	"apisense/internal/hive/store"
	"apisense/internal/ingest"
	"apisense/internal/obs"
	"apisense/internal/otrace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hive:", err)
		os.Exit(1)
	}
}

// openStore builds the storage engine selected by -store. For the
// journal engine path is the log file; for segmented and sharded it is
// the store directory.
func openStore(engine, path string, segmentMB int, snapshotEvery, shards int) (store.Store, error) {
	switch engine {
	case store.EngineJournal:
		return store.OpenJournal(path)
	case store.EngineSegmented:
		return store.OpenSegmented(path, store.SegmentedConfig{
			SegmentBytes:  int64(segmentMB) << 20,
			SnapshotEvery: snapshotEvery,
		})
	case store.EngineSharded:
		return store.OpenSharded(path, store.ShardedConfig{Shards: shards})
	default:
		return nil, fmt.Errorf("unknown -store engine %q (want %s, %s or %s)",
			engine, store.EngineJournal, store.EngineSegmented, store.EngineSharded)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hive", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	journal := fs.String("journal", "", "store path for durable state: a file for -store=journal, a directory otherwise (empty = in-memory only)")
	engine := fs.String("store", store.EngineJournal, "storage engine: journal (single file, full replay), segmented (snapshot+tail, bounded restart) or sharded (per-task commit shards)")
	segmentMB := fs.Int("segment-mb", 4, "segmented store: rotate the tail after this many MiB (raise to fold less often on write-heavy fleets)")
	snapshotEvery := fs.Int("snapshot-every", 4, "segmented store: fold a snapshot after this many sealed segments")
	storeShards := fs.Int("store-shards", 8, "sharded store: number of independent per-task commit shards")
	syncEvery := fs.Int("sync-every", 1, "fsync each store file every N group commits (0 = never, leave it to the OS)")
	queueSize := fs.Int("queue", 256, "ingest queue capacity in batch slots (0 = synchronous ingestion, no backpressure)")
	maxBatch := fs.Int("batch", 256, "max uploads coalesced into one group commit")
	drainWorkers := fs.Int("drain-workers", 1, "ingest drain worker pool size (with -store=sharded, more workers let distinct task shards commit in parallel)")
	grace := fs.Duration("grace", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	metrics := fs.Bool("metrics", false, "expose Prometheus text metrics at GET /metrics")
	traces := fs.Int("traces", 512, "bound of the in-memory trace store served at GET /debug/traces (0 = tracing off)")
	logRequests := fs.String("log-requests", "", "emit one structured JSON log line per request at this minimum level (debug, info, warn or error; empty = off)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060; empty = off; never expose publicly)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		obs.RegisterRuntime(reg)
		obs.RegisterBuildInfo(reg)
	}

	var tracer *otrace.Tracer
	if *traces > 0 {
		tracer = otrace.New(otrace.Config{Store: otrace.NewSpanStore(*traces)})
	}

	var (
		h  *hive.Hive
		st store.Store
	)
	if *journal != "" {
		s, err := openStore(*engine, *journal, *segmentMB, *snapshotEvery, *storeShards)
		if err != nil {
			return err
		}
		h, err = hive.RecoverFrom(s)
		if err != nil {
			return err
		}
		st = s
		st.SetSyncEvery(*syncEvery)
		ss := s.Stats()
		log.Printf("recovered state from %s (%s engine): %+v; replayed %d records in %s",
			*journal, ss.Engine, h.Stats(), ss.ReplayRecords, ss.ReplayDuration)
	} else {
		h = hive.New()
	}

	var opts []hive.ServerOption
	var q *ingest.Queue
	if *queueSize > 0 {
		q = ingest.New(h, ingest.Config{
			Capacity: *queueSize,
			MaxBatch: *maxBatch,
			Workers:  *drainWorkers,
			Metrics:  ingest.NewMetrics(reg), // nil reg = disabled
			Tracer:   tracer,                 // nil = disabled
		})
		opts = append(opts, hive.WithIngestQueue(q))
		log.Printf("ingest queue: %d batch slots, %d drain workers, group commits of <= %d uploads",
			*queueSize, *drainWorkers, *maxBatch)
	}
	if reg != nil {
		// BindHive (inside NewServer) picks up the store series too,
		// since the store is already attached to h here.
		opts = append(opts, hive.WithMetrics(hive.NewMetrics(reg)))
		log.Printf("metrics: serving Prometheus text format at GET /metrics")
	}
	if tracer != nil {
		opts = append(opts, hive.WithTracer(tracer))
		log.Printf("tracing: %d most recent traces at GET /debug/traces", *traces)
	}
	if *logRequests != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logRequests)); err != nil {
			return fmt.Errorf("bad -log-requests level %q: %w", *logRequests, err)
		}
		logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
		opts = append(opts, hive.WithLogger(logger))
	}

	hs := hive.NewServer(h, opts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           hs,
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *debugAddr != "" {
		// pprof gets its own mux on its own listener: the profiling surface
		// must never ride on the public API address.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("pprof debug server on %s (keep it loopback-only)", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof debug server: %v", err)
			}
		}()
		defer dsrv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hive listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// The listener died on its own; still drain what was accepted.
		if perr := shutdownPipeline(q, st); perr != nil {
			log.Printf("shutdown after listener failure: %v", perr)
		}
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop taking requests (waiting out in-flight ones
	// up to the grace deadline), then drain the ingest queue and close the
	// store — acknowledged uploads are on disk before we exit. Releasing
	// the signal handler first restores default delivery, so a second
	// SIGINT/SIGTERM during a hung drain kills the process instead of
	// being swallowed.
	stop()
	hs.SetDraining(true) // flip /readyz before the listener stops accepting
	log.Printf("shutting down (grace %s; press again to force quit)...", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutdownErr := srv.Shutdown(shCtx)
	if errors.Is(shutdownErr, context.DeadlineExceeded) {
		log.Printf("grace deadline hit; closing remaining connections")
		shutdownErr = nil
		_ = srv.Close()
	}
	if err := shutdownPipeline(q, st); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shutdown complete: %+v", h.Stats())
	return shutdownErr
}

// shutdownPipeline drains the ingest queue (committing every batch already
// accepted into it) and then syncs and closes the store.
func shutdownPipeline(q *ingest.Queue, st store.Store) error {
	if q != nil {
		q.Close()
	}
	if st != nil {
		if err := st.Close(); err != nil {
			return err
		}
	}
	return nil
}
