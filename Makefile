# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally means a green
# pipeline short of the pinned external tools (staticcheck, govulncheck).

GO ?= go

# Benchmarks whose ns/op are tracked against BENCH_baseline.json.
TRACKED_BENCH := BenchmarkEvaluateParallel|BenchmarkPublishSharded|BenchmarkRepublishIncremental|BenchmarkIngestBatch|BenchmarkRecover|BenchmarkShardedIngest

.PHONY: all build lint docs test race check bench-refresh fmt

all: check

build:
	$(GO) build ./...

# lint = formatting, go vet, and the project's own analysis suite
# (cmd/apisenselint: lockfsync, detrange, ctxflow, errcode, detseed,
# doccomment). Includes the docs gate below, since apisenselint runs the
# doccomment analyzer over its scoped packages.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/apisenselint ./...

# docs fails when any exported symbol of the operator-facing packages
# (the surfaces docs/OPERATIONS.md and docs/ARCHITECTURE.md document)
# lacks a doc comment — the doccomment analyzer scoped to exactly those
# packages.
docs:
	$(GO) run ./cmd/apisenselint ./internal/hive ./internal/hive/store \
		./internal/ingest ./internal/core ./internal/obs ./internal/apierr \
		./internal/otrace

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build lint test

# bench-refresh reruns the tracked benchmarks and rewrites
# BENCH_baseline.json in place. Run on a quiet machine; commit the result
# together with the change that moved the numbers.
bench-refresh:
	$(GO) test -bench '$(TRACKED_BENCH)' -benchtime=2x -run '^$$' . \
		| $(GO) run ./cmd/benchjson -update BENCH_baseline.json

fmt:
	gofmt -w .
