package apisense

// Facade-level integration test: the complete Figure-1 story through the
// public API only — Hive over real HTTP, Honeycomb deployment, filtered
// devices executing a SenseScript task, collection, PRIVAPI release, and
// finally the attacker's view of that release.

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"apisense/internal/filter"
)

const integrationScript = `
var saved = 0;
sensor.gps.onLocationChanged(function(loc) {
  saved += 1;
  dataset.save({lat: loc.lat, lon: loc.lon, speed: loc.speed});
});
`

func TestPlatformIntegration(t *testing.T) {
	// 1. Synthetic contributors.
	raw, city, err := GenerateMobility(MobilityConfig{Seed: 61, Users: 8, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	byUser := raw.ByUser()

	// 2. Hive over HTTP.
	h := NewHive()
	srv := httptest.NewServer(NewHiveServer(h))
	defer srv.Close()

	// 3. Devices with home-zone filters register.
	var devices []*Device
	for _, res := range city.Residents {
		chain := NewFilterChain(&filter.ZoneExclusion{
			Centers: []Point{res.Home}, Radius: 300,
		})
		d, err := NewDevice(DeviceConfig{
			ID: res.User + "-phone", User: res.User,
			Movement: byUser[res.User][0], Filter: chain,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.RegisterDevice(d.Info()); err != nil {
			t.Fatal(err)
		}
		devices = append(devices, d)
	}

	// 4. Honeycomb deploys the task.
	hc, err := NewHoneycomb("integration-lab", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec, recruited, err := hc.Deploy(ctx, TaskSpec{
		Name: "integration", Script: integrationScript,
		PeriodSeconds: 120, Sensors: []string{"gps"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recruited) != len(devices) {
		t.Fatalf("recruited %d of %d devices", len(recruited), len(devices))
	}

	// 5. Devices pull, execute and upload.
	totalDropped := 0
	for _, d := range devices {
		tasks, err := h.TasksFor(d.ID())
		if err != nil {
			t.Fatal(err)
		}
		if len(tasks) != 1 {
			t.Fatalf("device %s sees %d tasks", d.ID(), len(tasks))
		}
		res, err := d.RunTask(tasks[0])
		if err != nil {
			t.Fatal(err)
		}
		totalDropped += res.Dropped
		if err := h.SubmitUpload(res.Upload); err != nil {
			t.Fatal(err)
		}
	}
	if totalDropped == 0 {
		t.Error("home-zone filters dropped nothing; filter chain not active?")
	}

	// 6. Collect and rebuild the mobility dataset.
	if _, err := hc.Collect(ctx, spec.ID); err != nil {
		t.Fatal(err)
	}
	users, err := hc.DeviceUsers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	collected := hc.BuildDataset(spec.ID, users)
	if collected.Len() != len(devices) {
		t.Fatalf("collected %d trajectories for %d devices", collected.Len(), len(devices))
	}
	// The filter already removed everything near homes.
	for _, trj := range collected.Trajectories {
		res, ok := city.Resident(trj.User)
		if !ok {
			t.Fatalf("unknown contributor %s", trj.User)
		}
		for _, rec := range trj.Records {
			if Distance(rec.Pos, res.Home) <= 300 {
				t.Fatalf("record inside %s's home zone leaked to the hive", trj.User)
			}
		}
	}

	// 7. PRIVAPI release on top.
	release, selection, err := hc.PublishPrivate(collected, PrivacyConfig{
		PseudonymKey: []byte("integration-release"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if selection.Chosen == "" {
		t.Fatal("no strategy selected")
	}
	for _, trj := range release.Trajectories {
		if strings.HasPrefix(trj.User, "user-") {
			t.Fatal("release leaks contributor ids")
		}
	}

	// 8. The attacker's view of the release: exposure must be bounded by
	// the default floor.
	wide, err := NewStayPoints(StayPointConfig{MaxDistance: 500})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := NewPOIRecovery(wide, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pseud, err := NewPseudonymizer([]byte("integration-release"))
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[string][]Point)
	for _, res := range city.Residents {
		truth[pseud.Pseudonym(res.User)] = res.TruePOIs()
	}
	exposure := atk.Run(truth, release)
	if exposure.F1() > 0.4 {
		t.Errorf("release exposure f1 = %.2f, above the floor regime: %v", exposure.F1(), exposure)
	}

	// 9. Hive bookkeeping is consistent.
	stats := h.Stats()
	if stats.Devices != len(devices) || stats.Tasks != 1 || stats.Uploads != len(devices) {
		t.Errorf("hive stats = %+v", stats)
	}
}
