// Crowdsensing: the full APISENSE pipeline of the paper's Figure 1, all in
// one process over real HTTP — a Hive server, a Honeycomb endpoint that
// deploys a SenseScript task, a fleet of simulated devices that execute it
// behind their privacy filters, and a PRIVAPI release at the end.
//
// Run with:
//
//	go run ./examples/crowdsensing
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apisense"
	"apisense/internal/filter"
)

// taskScript is the crowd-sensing task offloaded to the fleet: it records
// the device position together with the synthetic network signal quality —
// the network-coverage application the paper's introduction motivates.
const taskScript = `
var samples = 0;
sensor.gps.onLocationChanged(function(loc) {
  samples += 1;
  dataset.save({
    lat: loc.lat,
    lon: loc.lon,
    speed: loc.speed,
    signal: sensor.network.signal()
  });
});
schedule.every(3600, function() {
  log('collected ' + str(samples) + ' samples, battery ' + str(device.battery()));
});
`

func main() {
	// Ctrl-C cancels the pipeline: deployment, collection and the PRIVAPI
	// publication all honour the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	// 1. Start a real Hive HTTP server on a loopback port.
	hive := apisense.NewHive()
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := &http.Server{Handler: apisense.NewHiveServer(hive), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := server.Serve(listener); err != http.ErrServerClosed {
			log.Printf("hive server: %v", err)
		}
	}()
	defer server.Close()
	hiveURL := "http://" + listener.Addr().String()
	fmt.Println("hive listening on", hiveURL)

	// 2. Simulated contributors: one day of synthetic mobility each. Every
	// device runs a privacy filter: no sensing near home, daytime only.
	raw, city, err := apisense.GenerateMobility(apisense.MobilityConfig{
		Seed: 7, Users: 12, Days: 1,
	})
	if err != nil {
		return err
	}
	byUser := raw.ByUser()
	var devices []*apisense.Device
	for _, res := range city.Residents {
		chain := apisense.NewFilterChain(
			&filter.ZoneExclusion{Centers: []apisense.Point{res.Home}, Radius: 400},
			&filter.TimeWindow{StartHour: 7, EndHour: 22},
		)
		d, err := apisense.NewDevice(apisense.DeviceConfig{
			ID: res.User + "-phone", User: res.User,
			Movement: byUser[res.User][0], Filter: chain,
		})
		if err != nil {
			return err
		}
		devices = append(devices, d)
		if err := hive.RegisterDevice(d.Info()); err != nil {
			return err
		}
	}
	fmt.Printf("registered %d devices\n", len(devices))

	// 3. The Honeycomb deploys the task through the Hive.
	hc, err := apisense.NewHoneycomb("coverage-lab", hiveURL)
	if err != nil {
		return err
	}
	spec, recruited, err := hc.Deploy(ctx, apisense.TaskSpec{
		Name: "network-coverage", Script: taskScript,
		PeriodSeconds: 120, Sensors: []string{"gps", "network"},
	})
	if err != nil {
		return err
	}
	fmt.Printf("deployed %s; recruited %d devices\n", spec.ID, len(recruited))

	// 4. Devices pull their task and execute it; the fleet's uploads are
	// gathered and ingested as ONE batch — a single group commit on the
	// Hive instead of one submission round-trip per device.
	var fleetBatch []apisense.Upload
	for _, d := range devices {
		tasks, err := hive.TasksFor(d.ID())
		if err != nil {
			return err
		}
		for _, task := range tasks {
			res, err := d.RunTask(task)
			if err != nil {
				return err
			}
			fleetBatch = append(fleetBatch, res.Upload)
			fmt.Printf("  %-16s %4d records collected, %3d filtered out, battery %.1f%%\n",
				d.ID(), len(res.Upload.Records), res.Dropped, d.Battery().Level())
		}
	}
	for i, err := range hive.SubmitBatch(fleetBatch) {
		if err != nil {
			return fmt.Errorf("batch item %d (%s): %w", i, fleetBatch[i].DeviceID, err)
		}
	}
	fmt.Printf("ingested a batch of %d uploads\n", len(fleetBatch))

	// 5. The Honeycomb collects and converts the uploads.
	ups, err := hc.Collect(ctx, spec.ID)
	if err != nil {
		return err
	}
	users, err := hc.DeviceUsers(ctx)
	if err != nil {
		return err
	}
	collected := apisense.UploadsToDataset(ups, users)
	fmt.Println("collected:", collected.Summarize())

	// 6. PRIVAPI releases a privacy-preserving version on the concurrent
	// evaluation engine; Ctrl-C abandons the publication mid-portfolio.
	release, selection, err := hc.PublishPrivateContext(ctx, collected, apisense.PrivacyConfig{
		PseudonymKey: []byte("coverage-release"),
	})
	if err != nil {
		return err
	}
	fmt.Printf("PRIVAPI selected %s; release: %s\n", selection.Chosen, release.Summarize())
	return nil
}
