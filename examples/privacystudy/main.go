// Privacystudy: reproduce the paper's §3 comparison interactively — sweep
// protection mechanisms over one dataset and print the privacy/utility
// scorecard of each, showing why PRIVAPI refuses to hard-wire a single
// strategy.
//
// Run with:
//
//	go run ./examples/privacystudy
package main

import (
	"fmt"
	"log"

	"apisense"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	raw, city, err := apisense.GenerateMobility(apisense.MobilityConfig{
		Seed: 11, Users: 20, Days: 10,
	})
	if err != nil {
		return err
	}
	fmt.Println("dataset:", raw.Summarize())
	fmt.Println()

	truth := make(map[string][]apisense.Point)
	for _, r := range city.Residents {
		truth[r.User] = r.TruePOIs()
	}
	wide, err := apisense.NewStayPoints(apisense.StayPointConfig{MaxDistance: 500})
	if err != nil {
		return err
	}
	attack, err := apisense.NewPOIRecovery(wide, 0, 0)
	if err != nil {
		return err
	}
	box, _ := raw.BBox()
	grid, err := apisense.NewGrid(box.Pad(500), 250)
	if err != nil {
		return err
	}
	rawDensity := apisense.UserDensity(raw, grid)

	specs := []string{
		"identity",
		"geoind:eps=0.05",
		"geoind:eps=0.01",
		"geoind:eps=0.001",
		"cloaking:cell=800,lat=45.764,lon=4.8357",
		"downsample:k=20",
		"simplify:tol=100",
		"smoothing:eps=50",
		"smoothing:eps=100",
		"smoothing:eps=200",
	}
	fmt.Printf("%-30s %8s %8s %8s %10s %12s\n",
		"mechanism", "recall", "prec", "f1", "hotspots", "distortion")
	for _, spec := range specs {
		m, err := apisense.MechanismFromSpec(spec)
		if err != nil {
			return err
		}
		release, err := apisense.Protect(m, raw)
		if err != nil {
			return err
		}
		res := attack.Run(truth, release)
		overlap := apisense.TopKOverlap(rawDensity, apisense.UserDensity(release, grid), 20)
		distortion := apisense.SpatialDistortion(raw, release)
		fmt.Printf("%-30s %7.1f%% %7.1f%% %8.3f %10.3f %11.0fm\n",
			m.Name(), res.Recall()*100, res.Precision()*100, res.F1(),
			overlap, distortion.Mean)
	}
	fmt.Println()
	fmt.Println("reading guide: the paper's claim C1 is the geoind rows (recall >= 60%")
	fmt.Println("at practical budgets); claim C2/C3 are the smoothing rows (f1 collapses")
	fmt.Println("while hotspot overlap stays high). No row wins every column -- that is")
	fmt.Println("exactly why PRIVAPI selects per release.")
	return nil
}
