// Trafficcast: the "predicting traffic" utility claim (C3) as an
// application — train a per-cell-per-hour forecaster on a PRIVAPI release
// and compare its accuracy on a held-out raw day against a forecaster
// trained on the raw data itself.
//
// Run with:
//
//	go run ./examples/trafficcast
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apisense"
)

func main() {
	// Ctrl-C abandons the PRIVAPI publication mid-portfolio.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	raw, city, err := apisense.GenerateMobility(apisense.MobilityConfig{
		Seed: 23, Users: 25, Days: 10,
	})
	if err != nil {
		return err
	}
	box, _ := raw.BBox()
	grid, err := apisense.NewGrid(box.Pad(500), 250)
	if err != nil {
		return err
	}

	// Hold out the last simulated day as the forecasting target.
	_, end, _ := raw.TimeSpan()
	endEve := end.Add(-time.Nanosecond)
	cut := time.Date(endEve.Year(), endEve.Month(), endEve.Day(), 0, 0, 0, 0, time.UTC)
	rawTrain, rawTest := apisense.SplitAtDay(raw, cut)
	actual := apisense.CountTraffic(rawTest, grid)
	fmt.Printf("training window: %s; target day: %s\n\n",
		rawTrain.Summarize(), rawTest.Summarize())

	// Baseline: forecaster trained on raw history.
	baseline, err := apisense.NewForecaster(apisense.CountTraffic(rawTrain, grid))
	if err != nil {
		return err
	}
	baseErr := baseline.Evaluate(actual)
	fmt.Printf("%-24s %s\n", "trained on raw:", baseErr)

	// PRIVAPI release with the traffic objective.
	mw, err := apisense.NewPrivacyMiddleware(apisense.PrivacyConfig{
		Objective: apisense.ObjectiveTraffic,
	}, city.Center)
	if err != nil {
		return err
	}
	release, selection, err := mw.PublishContext(ctx, raw)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %s\n", "PRIVAPI selected:", selection.Chosen)

	protTrain, _ := apisense.SplitAtDay(release, cut)
	protected, err := apisense.NewForecaster(apisense.CountTraffic(protTrain, grid))
	if err != nil {
		return err
	}
	protErr := protected.Evaluate(actual)
	fmt.Printf("%-24s %s\n", "trained on release:", protErr)

	ratio := 0.0
	if baseErr.MAE > 0 {
		ratio = protErr.MAE / baseErr.MAE
	}
	fmt.Printf("\nforecast degradation from anonymisation: %.2fx (1.00x = lossless)\n", ratio)

	// Bonus: where is tomorrow's morning rush? Top cells at 9am.
	morning := apisense.Density{}
	for ch, perDay := range apisense.CountTraffic(rawTest, grid).Visits {
		if ch.Hour == 9 {
			for _, v := range perDay {
				morning[ch.Cell] += v
			}
		}
	}
	fmt.Println("\nbusiest 9am cells on the held-out day (from raw ground truth):")
	for _, cell := range apisense.TopKCells(morning, 5) {
		center := grid.CenterOf(cell)
		predicted := protected.Predict(apisense.CellHour{Cell: cell, Hour: 9})
		fmt.Printf("  %-8s around %-24s actual %.0f, release-forecast %.1f\n",
			cell, center, morning[cell], predicted)
	}
	return nil
}
