// Quickstart: generate a synthetic mobility dataset, look at the points of
// interest an analyst can extract from it, then publish it through PRIVAPI
// and verify the stops are gone while the hotspots survive.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"apisense"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A small synthetic city: 15 contributors tracked for a week.
	raw, city, err := apisense.GenerateMobility(apisense.MobilityConfig{
		Seed: 42, Users: 15, Days: 7,
	})
	if err != nil {
		return err
	}
	fmt.Println("raw dataset:", raw.Summarize())

	// 2. What an analyst sees in the raw data: stay-point extraction finds
	// everyone's home and workplace.
	extractor, err := apisense.NewStayPoints(apisense.StayPointConfig{})
	if err != nil {
		return err
	}
	attackRaw, err := apisense.NewPOIRecovery(extractor, 0, 0)
	if err != nil {
		return err
	}
	truth := make(map[string][]apisense.Point)
	for _, r := range city.Residents {
		truth[r.User] = r.TruePOIs()
	}
	before := attackRaw.Run(truth, raw)
	fmt.Printf("POIs recoverable from raw data:      %s\n", before)

	// 3. Publish through PRIVAPI: utility-driven strategy selection under
	// the default privacy floor.
	mw, err := apisense.NewPrivacyMiddleware(apisense.PrivacyConfig{
		Objective:    apisense.ObjectiveCrowdedPlaces,
		PseudonymKey: []byte("quickstart-release"),
	}, city.Center)
	if err != nil {
		return err
	}
	release, selection, err := mw.Publish(raw)
	if err != nil {
		return err
	}
	fmt.Printf("PRIVAPI selected strategy:           %s\n", selection.Chosen)
	fmt.Println("released dataset:", release.Summarize())

	// 4. Attack the release (the attacker sees pseudonyms, so the ground
	// truth is re-keyed the same way).
	pseud, err := apisense.NewPseudonymizer([]byte("quickstart-release"))
	if err != nil {
		return err
	}
	anonTruth := make(map[string][]apisense.Point, len(truth))
	for user, pois := range truth {
		anonTruth[pseud.Pseudonym(user)] = pois
	}
	wide, err := apisense.NewStayPoints(apisense.StayPointConfig{MaxDistance: 500})
	if err != nil {
		return err
	}
	attackRelease, err := apisense.NewPOIRecovery(wide, 0, 0)
	if err != nil {
		return err
	}
	after := attackRelease.Run(anonTruth, release)
	fmt.Printf("POIs recoverable from the release:   %s\n", after)

	// 5. Utility check: the crowded places survive.
	box, _ := raw.BBox()
	grid, err := apisense.NewGrid(box.Pad(500), 250)
	if err != nil {
		return err
	}
	overlap := apisense.TopKOverlap(
		apisense.UserDensity(raw, grid),
		apisense.UserDensity(release, grid), 15)
	fmt.Printf("top-15 crowded-cells overlap:        %.2f\n", overlap)
	fmt.Printf("\nsummary: exposure f1 %.2f -> %.2f while hotspot utility stays at %.2f\n",
		before.F1(), after.F1(), overlap)
	return nil
}
