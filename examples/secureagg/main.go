// Secureagg: the secure-aggregation extension — devices contribute their
// per-cell visit counts encrypted under the Honeycomb's Paillier key; the
// Hive aggregates ciphertexts without ever seeing an individual's counts;
// the Honeycomb decrypts only the city-wide heatmap.
//
// Run with:
//
//	go run ./examples/secureagg
package main

import (
	"fmt"
	"log"

	"apisense"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	raw, _, err := apisense.GenerateMobility(apisense.MobilityConfig{
		Seed: 17, Users: 10, Days: 1,
	})
	if err != nil {
		return err
	}
	box, _ := raw.BBox()
	grid, err := apisense.NewGrid(box.Pad(200), 500)
	if err != nil {
		return err
	}
	cells := grid.Rows() * grid.Cols()
	fmt.Printf("grid: %dx%d (%d cells)\n", grid.Rows(), grid.Cols(), cells)

	// Honeycomb side: generate the aggregation key pair. 512 bits keeps the
	// demo fast; use >= 2048 in production.
	key, err := apisense.GeneratePaillierKey(512)
	if err != nil {
		return err
	}
	session, err := apisense.NewHistogramSession(&key.PublicKey, cells)
	if err != nil {
		return err
	}

	// Device side: each contributor counts their own visits per cell and
	// sends only ciphertexts.
	plainTotal := make([]int64, cells) // kept only to verify exactness
	for _, trj := range raw.Trajectories {
		counts := make([]int64, cells)
		for _, rec := range trj.Records {
			cell := grid.CellOf(rec.Pos)
			counts[cell.Row*grid.Cols()+cell.Col]++
		}
		for i, v := range counts {
			plainTotal[i] += v
		}
		encrypted, err := apisense.EncryptContribution(&key.PublicKey, counts)
		if err != nil {
			return err
		}
		// Hive side: fold ciphertexts; individual counts stay hidden.
		if err := session.Add(encrypted); err != nil {
			return err
		}
	}
	fmt.Printf("aggregated %d encrypted contributions\n", session.Contributions())

	// Honeycomb side: decrypt the aggregate heatmap.
	heatmap, err := session.Decrypt(key)
	if err != nil {
		return err
	}
	exact := true
	for i := range heatmap {
		if heatmap[i] != plainTotal[i] {
			exact = false
		}
	}
	fmt.Printf("aggregate matches plaintext sums: %v\n\n", exact)

	density := apisense.Density{}
	for i, v := range heatmap {
		if v > 0 {
			density[apisense.Cell{Row: i / grid.Cols(), Col: i % grid.Cols()}] = float64(v)
		}
	}
	fmt.Println("busiest cells in the private heatmap:")
	for _, cell := range apisense.TopKCells(density, 5) {
		fmt.Printf("  %-8s around %-24s visits %.0f\n",
			cell, grid.CenterOf(cell), density[cell])
	}
	return nil
}
