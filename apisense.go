// Package apisense is the public facade of the APISENSE + PRIVAPI
// reproduction: a privacy-preserving crowd-sensing platform (Haderer et
// al., Middleware 2014).
//
// The platform has two halves:
//
//   - APISENSE — a crowd-sensing middleware: a central Hive service manages
//     the community of devices and publishes sensing tasks written in
//     SenseScript (a JavaScript subset); Honeycomb endpoints author tasks
//     and collect the produced datasets; simulated devices execute the
//     scripts behind a user-controlled privacy filter chain.
//   - PRIVAPI — a publication middleware that picks, per release, the
//     anonymisation strategy that maximises the declared utility objective
//     subject to a privacy floor, with the paper's speed-smoothing
//     mechanism as its flagship strategy.
//
// This package re-exports the stable surface of the internal packages so
// that applications (see examples/) program against a single import:
//
//	import "apisense"
//
//	ds, city, _ := apisense.GenerateMobility(apisense.MobilityConfig{
//		Seed: 1, Users: 20, Days: 7,
//	})
//	mw, _ := apisense.NewPrivacyMiddleware(apisense.PrivacyConfig{}, city.Center)
//	release, selection, _ := mw.Publish(ds)
//
// Everything underneath lives in internal/ packages; the per-subsystem
// documentation is on those packages (geo, trace, mobgen, poi, lppm,
// attack, metrics, core, script, filter, device, transport, hive,
// honeycomb, vsensor, incentive, secagg).
package apisense

import (
	"context"
	"time"

	"apisense/internal/apierr"
	"apisense/internal/attack"
	"apisense/internal/core"
	"apisense/internal/device"
	"apisense/internal/evalcache"
	"apisense/internal/filter"
	"apisense/internal/geo"
	"apisense/internal/hive"
	"apisense/internal/hive/store"
	"apisense/internal/honeycomb"
	"apisense/internal/incentive"
	"apisense/internal/ingest"
	"apisense/internal/lppm"
	"apisense/internal/metrics"
	"apisense/internal/mobgen"
	"apisense/internal/obs"
	"apisense/internal/otrace"
	"apisense/internal/poi"
	"apisense/internal/script"
	"apisense/internal/secagg"
	"apisense/internal/trace"
	"apisense/internal/transport"
	"apisense/internal/vsensor"
)

// ---- geodesy and mobility data ----

// Core spatial and mobility-data types.
type (
	// Point is a WGS84 coordinate pair.
	Point = geo.Point
	// BBox is a latitude/longitude bounding box.
	BBox = geo.BBox
	// Grid partitions a bounding box into square cells.
	Grid = geo.Grid
	// Cell identifies one grid cell.
	Cell = geo.Cell
	// Record is one timestamped location fix.
	Record = trace.Record
	// Trajectory is one user's time-ordered records.
	Trajectory = trace.Trajectory
	// Dataset is a collection of trajectories.
	Dataset = trace.Dataset
	// Pseudonymizer replaces user identifiers with stable pseudonyms.
	Pseudonymizer = trace.Pseudonymizer
)

// Distance returns the distance in metres between two points.
func Distance(a, b Point) float64 { return geo.Distance(a, b) }

// NewGrid builds a square-cell grid over a bounding box.
func NewGrid(box BBox, cellMeters float64) (*Grid, error) { return geo.NewGrid(box, cellMeters) }

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return trace.NewDataset() }

// NewPseudonymizer creates a keyed pseudonymizer.
func NewPseudonymizer(key []byte) (*Pseudonymizer, error) { return trace.NewPseudonymizer(key) }

// ReadCSV / WriteCSV / ReadJSON / WriteJSON are the dataset codecs.
var (
	ReadCSV   = trace.ReadCSV
	WriteCSV  = trace.WriteCSV
	ReadJSON  = trace.ReadJSON
	WriteJSON = trace.WriteJSON
)

// ---- synthetic mobility ----

// Mobility generation types.
type (
	// MobilityConfig parameterises the synthetic city generator.
	MobilityConfig = mobgen.Config
	// City is the generated environment plus per-user ground truth.
	City = mobgen.City
	// Resident is one simulated user's ground truth.
	Resident = mobgen.Resident
)

// GenerateMobility produces a synthetic mobility dataset plus its ground
// truth (see internal/mobgen for the behavioural model).
func GenerateMobility(cfg MobilityConfig) (*Dataset, *City, error) { return mobgen.Generate(cfg) }

// ---- points of interest and attacks ----

// POI extraction and attack types.
type (
	// POI is an extracted point of interest.
	POI = poi.POI
	// POIExtractor mines POIs from a trajectory.
	POIExtractor = poi.Extractor
	// StayPointConfig parameterises stay-point detection.
	StayPointConfig = poi.StayPointConfig
	// RecoveryResult reports a POI-recovery attack.
	RecoveryResult = attack.RecoveryResult
	// LinkResult reports a re-identification attack.
	LinkResult = attack.LinkResult
)

// NewStayPoints returns the classic stay-point POI extractor.
func NewStayPoints(cfg StayPointConfig) (POIExtractor, error) { return poi.NewStayPoints(cfg) }

// NewPOIRecovery builds the POI-retrieval attack.
func NewPOIRecovery(e POIExtractor, mergeRadius, matchRadius float64) (*attack.POIRecovery, error) {
	return attack.NewPOIRecovery(e, mergeRadius, matchRadius)
}

// NewLinker builds the POI-profile re-identification attack.
func NewLinker(e POIExtractor, mergeRadius float64) (*attack.Linker, error) {
	return attack.NewLinker(e, mergeRadius)
}

// ---- protection mechanisms ----

// Mechanism transforms a trajectory into its protected counterpart.
// Implementations must not mutate the input and must be safe for
// concurrent Protect calls: Protect and the PRIVAPI evaluation engine run
// mechanisms on multiple goroutines. All built-in mechanisms are immutable
// after construction; custom ones holding mutable state (e.g. a shared
// *math/rand.Rand) must derive per-call state instead.
type Mechanism = lppm.Mechanism

// Identity is the no-protection baseline mechanism.
type Identity = lppm.Identity

// NewSpeedSmoothing returns the paper's speed-smoothing mechanism
// (resampling step in metres, points trimmed per extremity; trim < 0
// selects the default).
func NewSpeedSmoothing(epsilonMeters float64, trim int) (Mechanism, error) {
	return lppm.NewSpeedSmoothing(epsilonMeters, trim)
}

// NewGeoInd returns planar-Laplace geo-indistinguishability (epsilon in
// 1/metres).
func NewGeoInd(epsilon float64, seed uint64) (Mechanism, error) {
	return lppm.NewGeoInd(epsilon, seed)
}

// NewCloaking returns grid-snapping spatial cloaking.
func NewCloaking(cellMeters float64, origin Point) (Mechanism, error) {
	return lppm.NewCloaking(cellMeters, origin)
}

// MechanismFromSpec parses a textual mechanism spec such as
// "smoothing:eps=100" or "geoind:eps=0.01" (see internal/lppm.FromSpec).
func MechanismFromSpec(spec string) (Mechanism, error) { return lppm.FromSpec(spec) }

// Protect applies a mechanism to a whole dataset, parallelising across
// trajectories (one worker per CPU).
func Protect(m Mechanism, d *Dataset) (*Dataset, error) { return lppm.ProtectDataset(m, d) }

// ProtectContext applies a mechanism to a whole dataset on up to
// parallelism worker goroutines (<= 0 selects one per CPU), honouring
// cancellation of ctx. The output is byte-identical for any parallelism.
func ProtectContext(ctx context.Context, m Mechanism, d *Dataset, parallelism int) (*Dataset, error) {
	return lppm.ProtectDatasetContext(ctx, m, d, parallelism)
}

// ---- PRIVAPI middleware ----

// PRIVAPI types.
type (
	// PrivacyConfig parameterises the PRIVAPI middleware (see
	// PrivacyConfig.Parallelism for the evaluation-engine worker pool).
	PrivacyConfig = core.Config
	// PrivacyMiddleware selects and applies the optimal strategy. Its
	// portfolio evaluation runs on a concurrent engine; use
	// PublishContext/EvaluateContext to make long publications
	// cancellable.
	PrivacyMiddleware = core.Middleware
	// Selection reports a Publish run.
	Selection = core.Selection
	// StrategyEvaluation is one strategy's scorecard.
	StrategyEvaluation = core.Evaluation
	// UtilityObjective declares the target data-mining task.
	UtilityObjective = core.Objective
)

// Utility objectives.
const (
	ObjectiveCrowdedPlaces = core.ObjectiveCrowdedPlaces
	ObjectiveTraffic       = core.ObjectiveTraffic
	ObjectiveDistortion    = core.ObjectiveDistortion
)

// ErrNoStrategy is returned when no strategy meets the privacy floor.
var ErrNoStrategy = core.ErrNoStrategy

// NewPrivacyMiddleware builds the PRIVAPI engine.
func NewPrivacyMiddleware(cfg PrivacyConfig, origin Point) (*PrivacyMiddleware, error) {
	return core.New(cfg, origin)
}

// ---- evaluation cache ----

// Evaluation-cache types. Set PrivacyConfig.Cache to memoize reference-POI
// extraction, attacker stay-point extraction and whole selection results
// across Publish runs; unchanged inputs are re-published without
// re-evaluation and warm reports stay byte-identical to cold ones (see
// internal/evalcache).
type (
	// EvalCache is the content-addressed evaluation cache interface.
	EvalCache = evalcache.Cache
	// EvalCacheStats are the cache gauges (entries, bytes, hits, misses,
	// evictions, pruned strategies).
	EvalCacheStats = evalcache.Stats
)

// NewEvalCache returns the in-memory LRU evaluation cache bounded to
// approximately maxBytes of retained entries (<= 0 selects the default,
// 256 MiB). Safe for concurrent use and for sharing between middlewares.
func NewEvalCache(maxBytes int64) EvalCache { return evalcache.NewLRU(maxBytes) }

// WithEvalCache surfaces an evaluation cache's gauges under the Hive
// server's /api/stats.
var WithEvalCache = hive.WithEvalCache

// ---- sharded publication ----

// Sharded-publication types. Very large datasets are partitioned by a
// ShardPolicy, each shard runs the strategy-selection engine independently
// (sharing the global PrivacyConfig.Parallelism budget), and the per-shard
// winners are merged into one release; see
// PrivacyMiddleware.PublishShardedContext.
type (
	// ShardPolicy assigns every trajectory of a dataset to a shard.
	ShardPolicy = core.ShardBy
	// Shard is one partition of a dataset.
	Shard = core.Shard
	// ShardedSelection reports a sharded Publish run: per-shard outcomes
	// plus worst-shard privacy and size-weighted utility aggregates.
	ShardedSelection = core.ShardedSelection
	// ShardOutcome is one shard's entry in a ShardedSelection.
	ShardOutcome = core.ShardOutcome
)

// ShardByCell partitions by region grid cell (cellMeters per side).
func ShardByCell(cellMeters float64) (ShardPolicy, error) { return core.NewShardByCell(cellMeters) }

// ShardByWindow partitions by fixed UTC time window.
func ShardByWindow(window time.Duration) (ShardPolicy, error) { return core.NewShardByWindow(window) }

// ShardByUser partitions by stable user hash into the given bucket count.
func ShardByUser(buckets int) (ShardPolicy, error) { return core.NewShardByUser(buckets) }

// ShardPolicyFromSpec parses a textual shard policy spec such as
// "cell:size=2000", "window:dur=24h" or "user:buckets=8".
func ShardPolicyFromSpec(spec string) (ShardPolicy, error) { return core.ShardPolicyFromSpec(spec) }

// PartitionDataset splits a dataset into shards according to a policy,
// in ascending shard-key order.
func PartitionDataset(d *Dataset, by ShardPolicy) ([]Shard, error) { return core.Partition(d, by) }

// ---- utility metrics ----

// Utility-metric helpers (see internal/metrics for the full API).
var (
	// UserDensity counts distinct users per grid cell.
	UserDensity = metrics.UserDensity
	// TopKOverlap compares raw and protected hotspots.
	TopKOverlap = metrics.TopKOverlap
	// SpatialDistortion measures time-aligned displacement.
	SpatialDistortion = metrics.SpatialDistortion
	// CountTraffic builds per-cell-hour visit counts.
	CountTraffic = metrics.CountTraffic
	// NewForecaster trains the historical-average traffic forecaster.
	NewForecaster = metrics.NewForecaster
	// SplitAtDay partitions a dataset at a cut instant.
	SplitAtDay = metrics.SplitAtDay
	// TopKCells returns the densest cells of a density map.
	TopKCells = metrics.TopK
	// FlowMatrix counts directed cell-to-cell transitions.
	FlowMatrix = metrics.FlowMatrix
	// FlowSimilarity compares two flow matrices (cosine).
	FlowSimilarity = metrics.FlowSimilarity
)

// Traffic-forecasting types.
type (
	// TrafficCounts holds per-cell-hour visit counts.
	TrafficCounts = metrics.TrafficCounts
	// Forecaster predicts per-cell-hour visits.
	Forecaster = metrics.Forecaster
	// CellHour identifies one grid cell during one hour of day.
	CellHour = metrics.CellHour
	// Density maps grid cells to activity.
	Density = metrics.Density
)

// ---- platform (APISENSE) ----

// Platform types.
type (
	// TaskSpec describes a crowd-sensing task (script + envelope).
	TaskSpec = transport.TaskSpec
	// Upload is a device's dataset batch.
	Upload = transport.Upload
	// UploadBatch is several uploads submitted in one request.
	UploadBatch = transport.UploadBatch
	// UploadBatchResponse carries per-item admission results.
	UploadBatchResponse = transport.UploadBatchResponse
	// DeviceInfo is a device registration record.
	DeviceInfo = transport.DeviceInfo
	// Hive is the central coordination service.
	Hive = hive.Hive
	// HiveServer is the Hive's HTTP API.
	HiveServer = hive.Server
	// IngestQueue is the bounded, group-committing ingestion queue.
	IngestQueue = ingest.Queue
	// IngestConfig sizes an IngestQueue.
	IngestConfig = ingest.Config
	// ServerOption configures a HiveServer (see WithIngestQueue).
	ServerOption = hive.ServerOption
	// BatchUploader buffers device uploads and flushes them in batches
	// with jittered retry on backpressure.
	BatchUploader = device.BatchUploader
	// UploaderConfig tunes a BatchUploader.
	UploaderConfig = device.UploaderConfig
	// Honeycomb is an experimenter endpoint.
	Honeycomb = honeycomb.Honeycomb
	// Device is a simulated mobile device.
	Device = device.Device
	// DeviceConfig assembles a simulated device.
	DeviceConfig = device.Config
	// Battery is the device battery model.
	Battery = device.Battery
	// FilterChain is the device-side privacy layer.
	FilterChain = filter.Chain
	// VirtualSensor orchestrates a device group.
	VirtualSensor = vsensor.VirtualSensor
)

// NewHive creates an empty Hive.
func NewHive() *Hive { return hive.New() }

// RecoverHive replays a journal file into a Hive and reopens it for
// appending, making the service restart-safe. It is shorthand for
// OpenJournalStore + RecoverHiveFrom.
var RecoverHive = hive.Recover

// Storage engine types. A HiveStore persists the Hive's event history;
// three engines trade recovery cost against layout complexity (see
// internal/hive/store).
type (
	// HiveStore is the pluggable storage engine behind a Hive.
	HiveStore = store.Store
	// HiveStoreStats is a point-in-time snapshot of store health
	// (segments, fsyncs, snapshot age, replay cost).
	HiveStoreStats = store.Stats
	// SegmentedStoreConfig tunes the snapshot+tail compacting engine.
	SegmentedStoreConfig = store.SegmentedConfig
	// ShardedStoreConfig tunes the per-task sharded engine.
	ShardedStoreConfig = store.ShardedConfig
)

// OpenJournalStore opens the single-file journal engine (full replay on
// recovery; the original format, kept for compatibility).
var OpenJournalStore = store.OpenJournal

// OpenSegmentedStore opens the segmented compacting engine: the log
// rotates at a size threshold and folds into snapshots, so recovery cost
// is bounded by the tail instead of total history.
var OpenSegmentedStore = store.OpenSegmented

// OpenShardedStore opens the sharded engine: uploads for different tasks
// commit on independent per-shard fsync boundaries.
var OpenShardedStore = store.OpenSharded

// RecoverHiveFrom replays any storage engine into a Hive and attaches
// the store for further appends.
var RecoverHiveFrom = hive.RecoverFrom

// NewHiveServer wraps a Hive with its HTTP API; pass WithIngestQueue to
// stream uploads through a bounded queue with backpressure.
func NewHiveServer(h *Hive, opts ...hive.ServerOption) *HiveServer { return hive.NewServer(h, opts...) }

// WithIngestQueue routes the server's upload endpoints through q.
var WithIngestQueue = hive.WithIngestQueue

// NewIngestQueue builds the bounded ingestion queue over a Hive (or any
// ingest.Sink) and starts its drain workers.
func NewIngestQueue(h *Hive, cfg IngestConfig) *IngestQueue { return ingest.New(h, cfg) }

// ErrQueueFull is the ingest queue's backpressure signal (HTTP 429).
var ErrQueueFull = ingest.ErrQueueFull

// NewHoneycomb creates an experimenter endpoint against a Hive URL.
func NewHoneycomb(name, hiveURL string) (*Honeycomb, error) { return honeycomb.New(name, hiveURL) }

// NewDevice builds a simulated device.
func NewDevice(cfg DeviceConfig) (*Device, error) { return device.New(cfg) }

// NewBattery returns a battery at the given charge percentage.
func NewBattery(level float64) *Battery { return device.NewBattery(level) }

// UploadsToDataset converts collected uploads into a mobility dataset.
var UploadsToDataset = honeycomb.UploadsToDataset

// NewFilterChain builds a device-side privacy chain.
func NewFilterChain(rules ...filter.Rule) *FilterChain { return filter.NewChain(rules...) }

// NewVirtualSensor groups devices behind one retrieval interface.
func NewVirtualSensor(name string, devices []*Device, s vsensor.Strategy) (*VirtualSensor, error) {
	return vsensor.New(name, devices, s)
}

// ---- scripting ----

// Script types.
type (
	// ScriptInterp executes SenseScript programs.
	ScriptInterp = script.Interp
	// ScriptValue is a SenseScript runtime value.
	ScriptValue = script.Value
)

// NewScriptInterp creates a sandboxed SenseScript interpreter.
func NewScriptInterp(opts ...script.Option) *ScriptInterp { return script.NewInterp(opts...) }

// ParseScript compiles SenseScript source.
var ParseScript = script.Parse

// ---- incentives ----

// Incentive types.
type (
	// IncentiveStrategy converts platform state into participation boosts.
	IncentiveStrategy = incentive.Strategy
	// Population is a seeded contributor population.
	Population = incentive.Population
)

// NewPopulation draws a deterministic contributor population.
func NewPopulation(n int, seed uint64) (*Population, error) { return incentive.NewPopulation(n, seed) }

// SimulateIncentive runs a campaign simulation.
var SimulateIncentive = incentive.Simulate

// ---- secure aggregation ----

// Secure-aggregation types.
type (
	// PaillierPrivateKey decrypts homomorphic aggregates.
	PaillierPrivateKey = secagg.PrivateKey
	// PaillierPublicKey encrypts device contributions.
	PaillierPublicKey = secagg.PublicKey
	// HistogramSession aggregates encrypted count vectors.
	HistogramSession = secagg.HistogramSession
)

// GeneratePaillierKey creates a Paillier key pair.
func GeneratePaillierKey(bits int) (*PaillierPrivateKey, error) { return secagg.GenerateKey(bits) }

// NewHistogramSession opens an encrypted-aggregation session.
func NewHistogramSession(pk *PaillierPublicKey, cells int) (*HistogramSession, error) {
	return secagg.NewHistogramSession(pk, cells)
}

// EncryptContribution encrypts a device's count vector.
var EncryptContribution = secagg.EncryptContribution

// ---- observability ----

// Observability types. Build one MetricsRegistry per process, register the
// subsystem instruments on it (NewHiveMetrics, NewEngineMetrics,
// IngestConfig.Metrics via NewIngestMetrics), and serve it — the registry
// is an http.Handler emitting Prometheus text format — or pass it to the
// Hive server with WithMetrics, which also mounts GET /metrics. Every hook
// is nil-safe: a zero Config publishes nothing and pays nothing. See
// docs/OPERATIONS.md for the series catalogue.
type (
	// MetricsRegistry is the dependency-free Prometheus-text-format
	// registry (see internal/obs).
	MetricsRegistry = obs.Registry
	// EngineMetrics instruments the publication engine's hot paths; set
	// it on PrivacyConfig.Metrics.
	EngineMetrics = core.EngineMetrics
	// HiveMetrics instruments the Hive HTTP surface and registry state;
	// pass it to the server with WithMetrics.
	HiveMetrics = hive.Metrics
	// IngestMetrics instruments the ingest queue's drain path; set it on
	// IngestConfig.Metrics.
	IngestMetrics = ingest.Metrics
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEngineMetrics registers the engine latency histograms on reg.
func NewEngineMetrics(reg *MetricsRegistry) *EngineMetrics { return core.NewEngineMetrics(reg) }

// NewHiveMetrics registers the Hive HTTP and state instruments on reg.
func NewHiveMetrics(reg *MetricsRegistry) *HiveMetrics { return hive.NewMetrics(reg) }

// NewIngestMetrics registers the ingest drain instruments on reg.
func NewIngestMetrics(reg *MetricsRegistry) *IngestMetrics { return ingest.NewMetrics(reg) }

// WithMetrics serves reg at the Hive server's GET /metrics and instruments
// every route with request, latency and error-code series.
var WithMetrics = hive.WithMetrics

// RegisterRuntimeMetrics adds the Go runtime gauges (goroutines, heap,
// GC pause total, GOMAXPROCS) to reg. Call at most once per registry.
var RegisterRuntimeMetrics = obs.RegisterRuntime

// RegisterBuildInfo adds the constant apisense_build_info gauge to reg.
var RegisterBuildInfo = obs.RegisterBuildInfo

// ---- tracing ----

// Tracing types. Build one Tracer per process (NewTracer), hand it to the
// subsystems that accept one — UploaderConfig.Tracer, IngestConfig.Tracer,
// PrivacyConfig.Tracer, the Hive server via WithTracer — and read the
// collected traces back from its SpanStore or over GET /debug/traces.
// Every hook is nil-safe and deterministic: reports and releases are
// byte-identical with tracing on or off (see internal/otrace).
type (
	// Tracer records spans into a bounded in-memory store.
	Tracer = otrace.Tracer
	// TracerConfig tunes a Tracer (clock, ID source, span store).
	TracerConfig = otrace.Config
	// Span is one finished operation of a trace.
	Span = otrace.Span
	// SpanStore is the bounded per-trace span buffer behind a Tracer.
	SpanStore = otrace.SpanStore
	// SpanContext is the propagated trace identity (W3C traceparent).
	SpanContext = otrace.SpanContext
)

// NewTracer builds a tracer; the zero config uses the wall clock,
// crypto/rand IDs and a store bounded at otrace.DefaultMaxTraces.
func NewTracer(cfg TracerConfig) *Tracer { return otrace.New(cfg) }

// NewSpanStore builds a bounded span store for TracerConfig.Store.
var NewSpanStore = otrace.NewSpanStore

// WithTracer records a server span per Hive route and serves the trace
// store at GET /debug/traces.
var WithTracer = hive.WithTracer

// WithLogger emits one trace-correlated structured log record per Hive
// request and error response.
var WithLogger = hive.WithLogger

// NewTraceLogHandler wraps any slog.Handler so records logged with a
// traced context carry trace_id/span_id attributes.
var NewTraceLogHandler = otrace.NewLogHandler

// ---- coded errors ----

// Every sentinel the platform returns across an API boundary carries a
// stable machine-readable code ("hive.unknown_task", "ingest.queue_full",
// ...) and an HTTP category (see internal/apierr and the error-code
// catalogue in docs/OPERATIONS.md). The Hive server answers errors as
// {"error": message, "code": code}; the transport client rehydrates the
// code so errors.Is works across the wire against the same sentinels.
var (
	// ErrorCode extracts the stable code of a coded error ("" if uncoded).
	ErrorCode = apierr.Code
	// ErrorHTTPStatus maps a coded error's category to its HTTP status
	// (500 for uncoded errors).
	ErrorHTTPStatus = apierr.HTTPStatus
	// RemoteError rehydrates a wire code into an error matchable with
	// errors.Is against the package sentinels.
	RemoteError = apierr.Remote
)
