package apisense

import (
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: generate, publish privately, attack, measure.
func TestFacadeEndToEnd(t *testing.T) {
	ds, city, err := GenerateMobility(MobilityConfig{Seed: 5, Users: 8, Days: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 8*4 {
		t.Fatalf("dataset has %d trajectories", ds.Len())
	}

	mw, err := NewPrivacyMiddleware(PrivacyConfig{PseudonymKey: []byte("release")}, city.Center)
	if err != nil {
		t.Fatal(err)
	}
	release, sel, err := mw.Publish(ds)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Chosen == "" || release.Len() == 0 {
		t.Fatalf("selection = %+v, release = %d", sel.Chosen, release.Len())
	}

	// Attack the release through the facade.
	extractor, err := NewStayPoints(StayPointConfig{MaxDistance: 500})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewPOIRecovery(extractor, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]([]Point){}
	pseud, err := NewPseudonymizer([]byte("release"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range city.Residents {
		truth[pseud.Pseudonym(r.User)] = r.TruePOIs()
	}
	res := rec.Run(truth, release)
	if res.F1() > 0.5 {
		t.Errorf("published release leaks POIs: %v", res)
	}

	// Utility through the facade.
	box, ok := ds.BBox()
	if !ok {
		t.Fatal("no bbox")
	}
	grid, err := NewGrid(box.Pad(500), 250)
	if err != nil {
		t.Fatal(err)
	}
	overlap := TopKOverlap(UserDensity(ds, grid), UserDensity(release, grid), 10)
	if overlap < 0.4 {
		t.Errorf("hotspot overlap = %.2f, want useful release", overlap)
	}
}

// TestFacadeShardedPublish drives the sharded publication pipeline through
// the public facade, the way a scaled deployment would.
func TestFacadeShardedPublish(t *testing.T) {
	ds, city, err := GenerateMobility(MobilityConfig{Seed: 6, Users: 8, Days: 4})
	if err != nil {
		t.Fatal(err)
	}
	mw, err := NewPrivacyMiddleware(PrivacyConfig{PseudonymKey: []byte("release")}, city.Center)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := ShardPolicyFromSpec("user:buckets=4")
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionDataset(ds, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) < 2 {
		t.Fatalf("%d shards, want >= 2", len(shards))
	}
	release, sel, err := mw.PublishSharded(ds, policy)
	if err != nil {
		t.Fatal(err)
	}
	if release.Len() == 0 || sel.Released != release.Len() {
		t.Fatalf("release %d trajectories, report %d", release.Len(), sel.Released)
	}
	if sel.WorstExposure > sel.Floor {
		t.Errorf("worst shard exposure %.3f above floor %.3f", sel.WorstExposure, sel.Floor)
	}
}

func TestFacadeMechanisms(t *testing.T) {
	m, err := MechanismFromSpec("smoothing:eps=100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(m.Name(), "smoothing") {
		t.Errorf("name = %q", m.Name())
	}
	ds, _, err := GenerateMobility(MobilityConfig{Seed: 2, Users: 2, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Protect(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("empty protected dataset")
	}
	if _, err := NewSpeedSmoothing(-1, 0); err == nil {
		t.Error("invalid epsilon should fail")
	}
	if _, err := NewGeoInd(0.01, 1); err != nil {
		t.Error(err)
	}
	if _, err := NewCloaking(400, Point{Lat: 45, Lon: 4}); err != nil {
		t.Error(err)
	}
}

func TestFacadeScript(t *testing.T) {
	in := NewScriptInterp()
	if err := in.RunSource("var x = 1 + 2;"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScript("var broken = ;"); err == nil {
		t.Error("bad script should fail to parse")
	}
}

func TestFacadeSecAgg(t *testing.T) {
	sk, err := GeneratePaillierKey(512)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewHistogramSession(&sk.PublicKey, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncryptContribution(&sk.PublicKey, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Add(enc); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Decrypt(sk)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("aggregate = %v", got)
	}
}
