package apisense

// Benchmark harness: one testing.B benchmark per experiment of DESIGN.md §4
// (the paper's claims C1-C3 and the platform behaviours of §2), plus
// micro-benchmarks of the hot paths (mechanisms, POI extraction, script
// interpretation, Paillier). Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks use a reduced workload (12 users x 9 days) so a full
// sweep stays in the minutes range; cmd/experiments runs the full-size
// tables.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"apisense/internal/device"
	"apisense/internal/exp"
	"apisense/internal/hive"
	"apisense/internal/hive/store"
	"apisense/internal/ingest"
	"apisense/internal/lppm"
	"apisense/internal/mobgen"
	"apisense/internal/poi"
	"apisense/internal/script"
	"apisense/internal/secagg"
	"apisense/internal/trace"
	"apisense/internal/transport"
)

var (
	benchOnce sync.Once
	benchW    *exp.Workload
)

func benchWorkload(b *testing.B) *exp.Workload {
	b.Helper()
	benchOnce.Do(func() {
		w, err := exp.NewWorkload(101, 12, 9)
		if err != nil {
			b.Fatal(err)
		}
		benchW = w
	})
	return benchW
}

func runTable(b *testing.B, run func(*exp.Workload) (*exp.Table, error)) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1POIRecovery regenerates Table E1 (claim C1: POI recovery under
// geo-indistinguishability).
func BenchmarkE1POIRecovery(b *testing.B) { runTable(b, exp.E1POIRecovery) }

// BenchmarkE2SpeedSmoothing regenerates Table E2 (claim C2: smoothing hides
// stops).
func BenchmarkE2SpeedSmoothing(b *testing.B) { runTable(b, exp.E2SpeedSmoothing) }

// BenchmarkE3Linkage regenerates Table E3 (POI-profile re-identification).
func BenchmarkE3Linkage(b *testing.B) { runTable(b, exp.E3Linkage) }

// BenchmarkE4CrowdedPlaces regenerates Table E4 (claim C3: crowded places).
func BenchmarkE4CrowdedPlaces(b *testing.B) { runTable(b, exp.E4CrowdedPlaces) }

// BenchmarkE5Traffic regenerates Table E5 (claim C3: traffic forecasting).
func BenchmarkE5Traffic(b *testing.B) { runTable(b, exp.E5Traffic) }

// BenchmarkE6Frontier regenerates Table E6 (privacy-utility frontier).
func BenchmarkE6Frontier(b *testing.B) { runTable(b, exp.E6Frontier) }

// BenchmarkE7Selection regenerates Table E7 (PRIVAPI optimal selection).
func BenchmarkE7Selection(b *testing.B) {
	runTable(b, func(w *exp.Workload) (*exp.Table, error) {
		return exp.E7Selection(context.Background(), w)
	})
}

// BenchmarkE8Platform regenerates Table E8 (platform pipeline over HTTP).
func BenchmarkE8Platform(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.E8Platform(context.Background(), w, []int{5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9VirtualSensor regenerates Table E9 (retrieval strategies).
func BenchmarkE9VirtualSensor(b *testing.B) { runTable(b, exp.E9VirtualSensor) }

// BenchmarkE10Incentives regenerates Table E10 (incentive strategies).
func BenchmarkE10Incentives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E10Incentives(7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Filters regenerates Table E11 (device privacy layer).
func BenchmarkE11Filters(b *testing.B) { runTable(b, exp.E11Filters) }

// BenchmarkE12SecAgg regenerates Table E12 (secure aggregation).
func BenchmarkE12SecAgg(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.E12SecAgg(w, 5, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateParallel measures the PRIVAPI evaluation engine on the
// full default portfolio at parallelism 1 (the sequential baseline) and at
// one worker per CPU; the ratio of the two is the engine's speedup on the
// publication hot path.
func BenchmarkEvaluateParallel(b *testing.B) {
	w := benchWorkload(b)
	points := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		points = append(points, n)
	}
	for _, p := range points {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			mw, err := NewPrivacyMiddleware(PrivacyConfig{Parallelism: p}, w.City.Center)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mw.EvaluateContext(context.Background(), w.Raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublishSharded measures the sharded publication pipeline against
// the monolithic engine across dataset sizes. Every shard reuses the same
// bounded worker pool (the global Parallelism budget is divided between
// shards in flight), and the per-shard analysis state is much smaller than
// the monolithic one, so sharded latency grows sub-linearly with dataset
// size while monolithic latency does not. CI runs this at -benchtime=1x as
// a smoke test; track the ratios locally with cmd/benchjson.
func BenchmarkPublishSharded(b *testing.B) {
	const days = 6
	for _, users := range []int{8, 16, 32} {
		ds, city, err := mobgen.Generate(mobgen.Config{Seed: 101, Users: users, Days: days})
		if err != nil {
			b.Fatal(err)
		}
		mw, err := NewPrivacyMiddleware(PrivacyConfig{}, city.Center)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("users=%d/monolithic", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := mw.PublishContext(context.Background(), ds); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, shards := range []int{4} {
			policy, err := ShardByWindow(days * 24 / time.Duration(shards) * time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("users=%d/shards=%d", users, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := mw.PublishShardedContext(context.Background(), ds, policy); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// shiftUsers returns a deep copy of ds in which the first k distinct users
// (in sorted user order) have every record's latitude shifted by ~55 m —
// a deterministic "k users re-uploaded changed data" mutation.
func shiftUsers(b *testing.B, ds *trace.Dataset, k int) *trace.Dataset {
	b.Helper()
	users := make([]string, 0, 16)
	seen := make(map[string]bool)
	for _, tr := range ds.Trajectories {
		if !seen[tr.User] {
			seen[tr.User] = true
			users = append(users, tr.User)
		}
	}
	sort.Strings(users)
	if k > len(users) {
		b.Fatalf("cannot mutate %d of %d users", k, len(users))
	}
	changed := make(map[string]bool, k)
	for _, u := range users[:k] {
		changed[u] = true
	}
	out := ds.Clone()
	for _, tr := range out.Trajectories {
		if changed[tr.User] {
			for i := range tr.Records {
				tr.Records[i].Pos.Lat += 0.0005
			}
		}
	}
	return out
}

// BenchmarkRepublishIncremental measures incremental re-publication through
// the evaluation cache: a user-sharded dataset is published once to warm
// the cache, then k of its 12 users change their data and the dataset is
// published again — only the shards whose content changed re-run the
// selection engine. The timed section is the second publish only (the warm
// pass runs under StopTimer with a fresh cache every iteration, so warm
// sub-benchmarks never self-hit across iterations). "cold" publishes the
// same 10%-changed dataset with caching disabled; cold ns/op over
// changed=10pct ns/op is the incremental speedup CI tracks.
func BenchmarkRepublishIncremental(b *testing.B) {
	w := benchWorkload(b)
	policy, err := ShardByUser(24) // ~1 user per shard at 12 users
	if err != nil {
		b.Fatal(err)
	}
	publish := func(b *testing.B, mw *PrivacyMiddleware, ds *Dataset) {
		b.Helper()
		if _, _, err := mw.PublishShardedContext(context.Background(), ds, policy); err != nil {
			b.Fatal(err)
		}
	}
	cases := []struct {
		name  string
		k     int  // users changed since the warm publish
		cache bool // false = cold baseline on the same changed dataset
	}{
		{"cold", 1, false},
		{"changed=0pct", 0, true},
		{"changed=10pct", 1, true},
		{"changed=50pct", 6, true},
	}
	for _, tc := range cases {
		mutated := shiftUsers(b, w.Raw, tc.k)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := PrivacyConfig{PseudonymKey: []byte("bench")}
				if tc.cache {
					cfg.Cache = NewEvalCache(0)
				}
				mw, err := NewPrivacyMiddleware(cfg, w.City.Center)
				if err != nil {
					b.Fatal(err)
				}
				if tc.cache {
					publish(b, mw, w.Raw) // warm the fresh cache
				}
				b.StartTimer()
				publish(b, mw, mutated)
			}
		})
	}
}

// BenchmarkIngestBatch measures upload ingestion throughput over HTTP into
// a journaled Hive: the per-request path (one POST /api/uploads and one
// fsync per upload) against the streaming path (one POST /api/uploads/batch
// of 100 uploads through the bounded ingest queue, one group-commit fsync
// for the whole batch). Every iteration ingests the same 100 uploads, so
// ns/op is directly comparable; the batch path amortises both the HTTP
// round-trips and the journal syncs and lands well above the 3x mark.
func BenchmarkIngestBatch(b *testing.B) {
	const batchSize = 100
	upload := transport.Upload{Records: []transport.UploadRecord{
		{Sensor: "gps", TimeMillis: 1418031000000, Data: map[string]any{"lat": 45.76, "lon": 4.83}},
	}}

	setup := func(b *testing.B, withQueue bool) (*transport.Client, transport.Upload, func()) {
		b.Helper()
		h, j, err := hive.Recover(filepath.Join(b.TempDir(), "hive.journal"))
		if err != nil {
			b.Fatal(err)
		}
		h.SetMaxUploadsPerTask(0) // the bench accumulates b.N*100 uploads
		if err := h.RegisterDevice(transport.DeviceInfo{ID: "d1", User: "bench", Sensors: []string{"gps"}}); err != nil {
			b.Fatal(err)
		}
		spec, _, err := h.PublishTask(transport.TaskSpec{
			Name: "ingest-bench", Author: "bench", Script: "var x = 1;",
			PeriodSeconds: 60, Sensors: []string{"gps"},
		})
		if err != nil {
			b.Fatal(err)
		}
		var opts []hive.ServerOption
		var q *ingest.Queue
		if withQueue {
			q = ingest.New(h, ingest.Config{Capacity: 64, MaxBatch: 2 * batchSize})
			opts = append(opts, hive.WithIngestQueue(q))
		}
		srv := httptest.NewServer(hive.NewServer(h, opts...))
		up := upload
		up.TaskID, up.DeviceID = spec.ID, "d1"
		cleanup := func() {
			srv.Close()
			if q != nil {
				q.Close()
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
		}
		return transport.NewClient(srv.URL), up, cleanup
	}

	b.Run("per-request", func(b *testing.B) {
		cl, up, cleanup := setup(b, false)
		defer cleanup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < batchSize; k++ {
				if err := cl.Do(context.Background(), http.MethodPost, "/api/uploads", up, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportUploadThroughput(b, batchSize)
	})

	b.Run(fmt.Sprintf("batch=%d", batchSize), func(b *testing.B) {
		cl, up, cleanup := setup(b, true)
		defer cleanup()
		batch := transport.UploadBatch{Uploads: make([]transport.Upload, batchSize)}
		for k := range batch.Uploads {
			batch.Uploads[k] = up
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var resp transport.UploadBatchResponse
			if err := cl.Do(context.Background(), http.MethodPost, "/api/uploads/batch", batch, &resp); err != nil {
				b.Fatal(err)
			}
			if resp.Accepted != batchSize {
				b.Fatalf("accepted %d/%d", resp.Accepted, batchSize)
			}
		}
		b.StopTimer()
		reportUploadThroughput(b, batchSize)
	})
}

// reportUploadThroughput converts ns/op (one op = batchSize uploads) into
// an uploads/s metric so the two ingestion paths read directly.
func reportUploadThroughput(b *testing.B, batchSize int) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "uploads/s")
	}
}

// seedHeartbeatHistory drives a heartbeat-heavy history through a Hive on
// s: a small fleet re-registers over and over, so live state stays tiny
// while the persisted event history grows large — the workload where
// snapshot+tail recovery pays off. Seeding is not the measured section,
// so periodic fsync is disabled (Close still syncs).
func seedHeartbeatHistory(b *testing.B, s store.Store, beats int) {
	b.Helper()
	h, err := hive.RecoverFrom(s)
	if err != nil {
		b.Fatal(err)
	}
	s.SetSyncEvery(0)
	const fleet = 10
	heartbeat := func(i int) {
		if err := h.RegisterDevice(transport.DeviceInfo{
			ID: fmt.Sprintf("d%d", i%fleet), User: "bench", Sensors: []string{"gps"},
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < fleet; i++ {
		heartbeat(i)
	}
	if _, _, err := h.PublishTask(transport.TaskSpec{
		Name: "recover-bench", Author: "bench", Script: "var x = 1;",
		PeriodSeconds: 60, Sensors: []string{"gps"},
	}); err != nil {
		b.Fatal(err)
	}
	for k := 0; k < beats; k++ {
		heartbeat(k)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecover measures restart cost on a heartbeat-heavy history
// whose live state is far smaller than its event log. The journal engine
// replays every record ever written, so its recovery grows with total
// history; the segmented engine restores the latest snapshot and replays
// only the tail, so its recovery stays bounded by the rotation threshold.
// The tracked ratio is journal ns/op over segmented ns/op (>= 5x here:
// the seeded history is >= 10x the segmented tail).
func BenchmarkRecover(b *testing.B) {
	const beats = 12000
	engines := []struct {
		name string
		open func(dir string) (store.Store, error)
	}{
		{"journal", func(dir string) (store.Store, error) {
			return store.OpenJournal(filepath.Join(dir, "hive.journal"))
		}},
		{"segmented", func(dir string) (store.Store, error) {
			return store.OpenSegmented(filepath.Join(dir, "seg"), store.SegmentedConfig{
				SegmentBytes: 32 << 10, SnapshotEvery: 2,
			})
		}},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			dir := b.TempDir()
			s, err := eng.open(dir)
			if err != nil {
				b.Fatal(err)
			}
			seedHeartbeatHistory(b, s, beats)
			var replayed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := eng.open(dir)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := hive.RecoverFrom(s); err != nil {
					b.Fatal(err)
				}
				replayed = s.Stats().ReplayRecords
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(replayed), "records/op")
		})
	}
}

// BenchmarkShardedIngest measures group-commit throughput under a
// two-hot-task workload: two goroutines each push b.N batches for their
// own task, every batch a durable group commit. On the single-file
// journal both tasks serialise on one fsync boundary; on the sharded
// engine the task IDs hash to different shards, so their commits overlap
// and per-op latency drops. One op = one batch from each hot task.
func BenchmarkShardedIngest(b *testing.B) {
	const perBatch = 8
	engines := []struct {
		name string
		open func(dir string) (store.Store, error)
	}{
		{"journal", func(dir string) (store.Store, error) {
			return store.OpenJournal(filepath.Join(dir, "hive.journal"))
		}},
		{"sharded", func(dir string) (store.Store, error) {
			return store.OpenSharded(filepath.Join(dir, "shard"), store.ShardedConfig{Shards: 8})
		}},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			s, err := eng.open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			h, err := hive.RecoverFrom(s)
			if err != nil {
				b.Fatal(err)
			}
			h.SetMaxUploadsPerTask(0) // the bench accumulates 2*b.N batches
			if err := h.RegisterDevice(transport.DeviceInfo{ID: "d0", User: "bench", Sensors: []string{"gps"}}); err != nil {
				b.Fatal(err)
			}
			publish := func(name string) string {
				spec, _, err := h.PublishTask(transport.TaskSpec{
					Name: name, Author: "bench", Script: "var x = 1;",
					PeriodSeconds: 60, Sensors: []string{"gps"},
				})
				if err != nil {
					b.Fatal(err)
				}
				return spec.ID
			}
			hotA, hotB := publish("hot-0"), publish("hot-1")
			// On the sharded engine the two hot tasks must land on distinct
			// commit shards for the comparison to mean anything.
			for i := 2; s.Shards() > 1 && s.ShardFor(hotB) == s.ShardFor(hotA); i++ {
				if i > 64 {
					b.Fatal("no second task landed on a distinct shard")
				}
				hotB = publish(fmt.Sprintf("hot-%d", i))
			}

			var wg sync.WaitGroup
			b.ResetTimer()
			for _, taskID := range []string{hotA, hotB} {
				wg.Add(1)
				go func(taskID string) {
					defer wg.Done()
					batch := make([]transport.Upload, perBatch)
					for k := range batch {
						batch[k] = transport.Upload{
							TaskID: taskID, DeviceID: "d0",
							Records: []transport.UploadRecord{{Sensor: "gps", TimeMillis: int64(k)}},
						}
					}
					for i := 0; i < b.N; i++ {
						for _, err := range h.SubmitBatch(batch) {
							if err != nil {
								b.Error(err)
								return
							}
						}
					}
				}(taskID)
			}
			wg.Wait()
			b.StopTimer()
			if st := s.Stats(); st.Syncs > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(b.N), "fsyncs/op")
			}
		})
	}
}

// ---- micro-benchmarks (ablations and hot paths) ----

func benchTrajectory(b *testing.B) *trace.Trajectory {
	b.Helper()
	w := benchWorkload(b)
	return w.Raw.Trajectories[0]
}

// BenchmarkMechanismSmoothing measures the paper's algorithm on one day of
// data (DESIGN.md §5 ablation: this is the publication hot path).
func BenchmarkMechanismSmoothing(b *testing.B) {
	tr := benchTrajectory(b)
	m, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Protect(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMechanismGeoInd measures planar-Laplace noise per trajectory.
func BenchmarkMechanismGeoInd(b *testing.B) {
	tr := benchTrajectory(b)
	m, err := lppm.NewGeoInd(0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Protect(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPOIExtractionStayPoints measures the attacker-side extractor.
func BenchmarkPOIExtractionStayPoints(b *testing.B) {
	tr := benchTrajectory(b)
	sp, err := poi.NewStayPoints(poi.StayPointConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Extract(tr)
	}
}

// BenchmarkPOIExtractionDJCluster measures the density-based extractor
// (DESIGN.md §5 ablation: stay-points vs DJ-cluster attacker).
func BenchmarkPOIExtractionDJCluster(b *testing.B) {
	tr := benchTrajectory(b)
	dj, err := poi.NewDJCluster(poi.DJClusterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dj.Extract(tr)
	}
}

// BenchmarkScriptInterpreter measures SenseScript execution of a typical
// sensing handler over 1000 events.
func BenchmarkScriptInterpreter(b *testing.B) {
	src := `
var count = 0;
var sum = 0;
function handle(loc) {
  count += 1;
  if (loc.speed < 2) { sum += loc.speed; }
  return count;
}
`
	prog, err := script.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := script.NewInterp()
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
		handler, _ := in.Lookup("handle")
		loc := script.ObjectValue(script.NewObject().
			Set("speed", script.Number(1.5)).
			Set("lat", script.Number(45.76)))
		for j := 0; j < 1000; j++ {
			if _, err := in.CallFunction(handler, []script.Value{loc}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPaillierEncrypt measures one encrypted contribution cell.
func BenchmarkPaillierEncrypt(b *testing.B) {
	sk, err := secagg.GenerateKey(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.EncryptInt64(int64(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmoothingEpsilonAblation sweeps the resampling step (DESIGN.md
// §5: grain vs cost).
func BenchmarkSmoothingEpsilonAblation(b *testing.B) {
	tr := benchTrajectory(b)
	for _, eps := range []float64{50, 100, 200, 400} {
		m, err := lppm.NewSpeedSmoothing(eps, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Protect(tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrajectoryResample measures the trace substrate's interpolation.
func BenchmarkTrajectoryResample(b *testing.B) {
	tr := benchTrajectory(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Resample(30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceRunTask measures a full task execution on one device: one
// simulated day at 60 s sampling through the SenseScript runtime and the
// privacy chain — the per-device cost of a deployment.
func BenchmarkDeviceRunTask(b *testing.B) {
	w := benchWorkload(b)
	move := w.Raw.Trajectories[0]
	taskSpec := transport.TaskSpec{
		ID: "bench", Name: "bench", PeriodSeconds: 60, Sensors: []string{"gps"},
		Script: `
sensor.gps.onLocationChanged(function(loc) {
  if (loc.speed < 30) {
    dataset.save({lat: loc.lat, lon: loc.lon, speed: loc.speed});
  }
});
`,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := device.New(device.Config{ID: "bench-dev", User: move.User, Movement: move})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.RunTask(taskSpec); err != nil {
			b.Fatal(err)
		}
	}
}
