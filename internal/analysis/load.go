package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Dir   string
	Path  string // import path ("" for fixtures loaded by analysistest)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. One Loader shares a
// FileSet and a source importer across Load calls, so dependency packages
// are type-checked once per process, not once per target package.
//
// The importer resolves import paths through go/build, which in module
// mode shells out to the go command — Load must therefore run with a
// working directory inside the module whose packages it loads.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses every non-test .go file of dir and type-checks the result
// as importPath. Test files are excluded deliberately: the suite guards
// library and binary invariants, and tests are allowed to use
// context.Background, fixed global state, and other shortcuts.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-check %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	return &Package{Dir: dir, Path: importPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
