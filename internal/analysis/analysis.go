// Package analysis is a self-contained, standard-library-only analogue of
// golang.org/x/tools/go/analysis, sized for this repository's own linters
// (see cmd/apisenselint). The container this project builds in has no
// module proxy access, so instead of vendoring x/tools the package mirrors
// the parts of its API the suite needs: an Analyzer value with a Run
// function over a type-checked Pass, Diagnostics with positions, and a
// driver-side suppression facility.
//
// Suppression: a finding may be silenced with a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the flagged line or on the line directly
// above it. The reason is mandatory — an allow without a justification is
// itself reported — so every suppression documents why the invariant does
// not apply at that site.
//
// Analyzer-specific source directives (e.g. lockfsync's //lint:allowsync
// and //lint:lockorder) share the //lint: namespace and are parsed with
// Directives.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces (shown by `apisenselint -help`).
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf. Returning an error aborts the whole lint run —
	// reserve it for internal failures, not findings.
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run executes one analyzer over one loaded package and returns its
// findings with //lint:allow suppressions already applied. Suppressed
// findings are dropped; malformed allow comments (missing reason) are
// returned as findings of the pseudo-analyzer "lintdirective".
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
	}
	return applyAllows(a.Name, pkg, pass.diags), nil
}

// allow is one parsed //lint:allow comment.
type allow struct {
	analyzer string
	reason   string
}

// applyAllows filters diags through the package's //lint:allow comments.
func applyAllows(name string, pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> allows on that line.
	allows := make(map[string]map[int][]allow)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, d := range Directives(f, pkg.Fset) {
			if d.Name != "allow" {
				continue
			}
			fields := strings.Fields(d.Args)
			pos := pkg.Fset.Position(d.Pos)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Pos:      d.Pos,
					Message:  "malformed //lint:allow: need `//lint:allow <analyzer> <reason>` — a suppression must say why",
					Analyzer: "lintdirective",
				})
				continue
			}
			byLine := allows[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]allow)
				allows[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], allow{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
			})
		}
	}

	out := malformed
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if allowed(allows[pos.Filename], pos.Line, name) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// allowed reports whether an allow for analyzer sits on line or line-1.
func allowed(byLine map[int][]allow, line int, analyzer string) bool {
	for _, l := range []int{line, line - 1} {
		for _, a := range byLine[l] {
			if a.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// Directive is one parsed //lint:<name> <args> comment.
type Directive struct {
	Pos  token.Pos
	Name string // e.g. "allow", "allowsync", "lockorder"
	Args string // remainder of the comment, trimmed
}

// Directives extracts every //lint: directive of a file, in source order.
func Directives(f *ast.File, fset *token.FileSet) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			name, args, _ := strings.Cut(text, " ")
			out = append(out, Directive{Pos: c.Pos(), Name: name, Args: strings.TrimSpace(args)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
