package detseed_test

import (
	"testing"

	"apisense/internal/analysis/analysistest"
	"apisense/internal/analysis/detseed"
)

func TestDetseed(t *testing.T) {
	analysistest.Run(t, "testdata", detseed.Analyzer, "detseed")
}
