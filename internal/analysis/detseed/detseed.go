// Package detseed guards the engine's reproducibility contract: every
// random draw in simulation, mobility-generation and attack paths must
// come from an injectable, explicitly seeded source. The process-global
// math/rand source (unseedable per run in v2, commonly wall-clock seeded
// in v1) makes experiment tables and privacy evaluations unrepeatable.
package detseed

import (
	"go/ast"
	"strings"

	"apisense/internal/analysis"
)

// Analyzer flags global or wall-clock-seeded math/rand usage.
var Analyzer = &analysis.Analyzer{
	Name: "detseed",
	Doc: "No global math/rand and no wall-clock seeds: draw from an injected " +
		"*rand.Rand built from an explicit seed (rand.New(rand.NewPCG(seed, ...))), " +
		"so every simulation and attack run is reproducible bit-for-bit. " +
		"crypto/rand is exempt — cryptographic randomness is meant to differ per run.",
	Run: run,
}

// randPkgs are the import paths whose package-level state is the global,
// non-injectable source.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
			if !ok || !randPkgs[pkg] {
				return true
			}
			if strings.HasPrefix(name, "New") {
				// Constructors are the sanctioned path — unless the seed
				// expression smuggles in the wall clock. One report per
				// constructor chain: don't descend into nested ones.
				for _, arg := range call.Args {
					if tp := clockCall(pass, arg); tp != "" {
						pass.Reportf(call.Pos(),
							"wall-clock seed (%s) makes this source irreproducible; thread an explicit seed through the config", tp)
						return false
					}
				}
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global source; inject a seeded *rand.Rand instead", pkg, name)
			return true
		})
	}
	return nil
}

// clockCall reports the first wall-clock call inside expr ("time.Now",
// "(time.Time).UnixNano", ...), or "" if there is none.
func clockCall(pass *analysis.Pass, expr ast.Expr) string {
	var found string
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call); ok && pkg == "time" && (name == "Now" || name == "Since") {
			found = "time." + name
			return false
		}
		if full := analysis.MethodFullName(pass.TypesInfo, call); strings.HasPrefix(full, "(time.Time).") {
			found = full
			return false
		}
		return true
	})
	return found
}
