// Package detseed is the fixture for the detseed analyzer: randomness
// must come from injectable, explicitly seeded sources.
package detseed

import (
	crand "crypto/rand"
	mrand "math/rand"
	"math/rand/v2"
	"time"
)

func globalDraw() int {
	return rand.IntN(10) // want "process-global source"
}

func globalV1() int {
	return mrand.Int() // want "process-global source"
}

func wallClockSeed() *mrand.Rand {
	return mrand.New(mrand.NewSource(time.Now().UnixNano())) // want "wall-clock seed"
}

func wallClockPCG() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().Unix()), 1)) // want "wall-clock seed"
}

func injected(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}

func injectedV2(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xabcdef))
}

func cryptographic(buf []byte) (int, error) {
	return crand.Read(buf) // crypto/rand differs per run on purpose
}

func suppressed() float64 {
	//lint:allow detseed jitter only, never feeds a report
	return rand.Float64()
}

func derived(r *rand.Rand) int {
	return r.IntN(3) // method on an injected *rand.Rand: fine
}
