// Package doccomment is the fixture for the doccomment analyzer: every
// exported symbol needs a doc comment.
package doccomment

// Documented is a documented exported function: fine.
func Documented() {}

func Bare() {} // want "exported function Bare has no doc comment"

func unexported() {} // fine: not API surface

// Widget is a documented exported type.
type Widget struct{}

// Spin is a documented method.
func (w *Widget) Spin() {}

func (w *Widget) Stop() {} // want "exported method Stop has no doc comment"

func (w *Widget) reset() {} // fine: unexported method

type gadget struct{}

// Run is exported, but gadget is not API surface, so no doc is demanded.
func (g gadget) Run() {}

type Gizmo struct{} // want "exported type Gizmo has no doc comment"

// Exported consts in a documented group are covered by the group doc.
const (
	ModeOff = iota
	ModeOn
)

const (
	LevelLow  = 1 // want "exported const LevelLow has no doc comment"
	LevelHigh = 2 // want "exported const LevelHigh has no doc comment"
)

// DefaultName documents a single var.
var DefaultName = "fixture"

var MaxRetries = 3 // want "exported var MaxRetries has no doc comment"

var internalState int // fine: unexported

// Suppression works like everywhere else in the suite.
var Legacy = 0 //lint:allow doccomment grandfathered export, documented in the migration issue

var _ = unexported
var _ = internalState
var _ = gadget{}
