package doccomment_test

import (
	"testing"

	"apisense/internal/analysis/analysistest"
	"apisense/internal/analysis/doccomment"
)

func TestDoccomment(t *testing.T) {
	analysistest.Run(t, "testdata", doccomment.Analyzer, "doccomment")
}
