// Package doccomment enforces the documentation contract of the
// operator-facing packages: every exported symbol — function, method on
// an exported type, type, and package-level var or const — must carry a
// doc comment. The scoped packages (hive, ingest, core, obs, apierr) are
// the surfaces docs/OPERATIONS.md and docs/ARCHITECTURE.md are written
// against; an undocumented export there is a hole in the runbook.
//
// A const or var group documents all of its members when the group
// declaration itself has a doc comment; individual specs inside a
// documented group need none of their own.
package doccomment

import (
	"go/ast"
	"go/token"

	"apisense/internal/analysis"
)

// Analyzer flags exported symbols that lack a doc comment.
var Analyzer = &analysis.Analyzer{
	Name: "doccomment",
	Doc: "Exported symbols in operator-facing packages need doc comments: the " +
		"Makefile docs target and CI lint fail on any exported func, method, " +
		"type, var or const without one. Grouped var/const declarations may be " +
		"documented once at the group level.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// exportedTypes collects the package's exported named types first, so
	// methods are only demanded docs when their receiver is itself part of
	// the documented API surface.
	exportedTypes := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d, exportedTypes)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil
}

// checkFunc demands a doc comment on exported functions and on exported
// methods of exported receiver types.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, exportedTypes map[string]bool) {
	if !fd.Name.IsExported() || fd.Doc.Text() != "" {
		return
	}
	kind := "function"
	if fd.Recv != nil {
		recv := receiverTypeName(fd.Recv)
		if !exportedTypes[recv] {
			return // method on an unexported type: not API surface
		}
		kind = "method"
	}
	pass.Reportf(fd.Name.Pos(),
		"exported %s %s has no doc comment; document it (the docs target fails without one)", kind, fd.Name.Name)
}

// checkGen demands doc comments on exported types and on exported
// package-level vars and consts, honouring group-level docs.
func checkGen(pass *analysis.Pass, gd *ast.GenDecl) {
	groupDoc := gd.Doc.Text() != ""
	switch gd.Tok {
	case token.TYPE:
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			// An undocumented single-type declaration can carry the doc on
			// the group; either place satisfies godoc. Trailing same-line
			// comments do not count — gofmt convention puts docs above.
			if ts.Doc.Text() == "" && !groupDoc {
				pass.Reportf(ts.Name.Pos(),
					"exported type %s has no doc comment; document it (the docs target fails without one)", ts.Name.Name)
			}
		}
	case token.VAR, token.CONST:
		if groupDoc {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if vs.Doc.Text() != "" {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(),
						"exported %s %s has no doc comment; document it (the docs target fails without one)", gd.Tok, name.Name)
				}
			}
		}
	}
}

// receiverTypeName unwraps a method receiver down to its base type name,
// through pointers and type parameters.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
