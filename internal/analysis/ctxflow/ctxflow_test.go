package ctxflow_test

import (
	"testing"

	"apisense/internal/analysis/analysistest"
	"apisense/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflow")
}
