// Package ctxflow is the fixture for the ctxflow analyzer: no synthetic
// contexts in library code, and exported blocking APIs offer
// cancellation.
package ctxflow

import (
	"context"
	"sync"
	"time"
)

func background() context.Context {
	return context.Background() // want "must not call context.Background"
}

func todo() context.Context {
	return context.TODO() // want "must not call context.TODO"
}

func legacyRoot() context.Context {
	//lint:allow ctxflow back-compat wrapper, callers migrate to DoContext
	return context.Background()
}

// Wait blocks on the WaitGroup with no cancellation path and no sibling.
func Wait(wg *sync.WaitGroup) { // want "exported API Wait blocks \\(WaitGroup.Wait\\)"
	wg.Wait()
}

// Sleep is allowed: SleepContext below is its cancellable sibling.
func Sleep(d time.Duration) {
	time.Sleep(d)
}

// SleepContext is the sibling that makes Sleep acceptable.
func SleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pool is a blocking hand-off queue.
type Pool struct{ ch chan int }

// Get accepts a context: fine.
func (p *Pool) Get(ctx context.Context) (int, error) {
	select {
	case v := <-p.ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Put blocks on the channel send with no way out.
func (p *Pool) Put(v int) { // want "exported API Put blocks \\(channel send\\)"
	p.ch <- v
}

// Size does not block at all.
func (p *Pool) Size() int {
	return len(p.ch)
}

// Spawn only blocks inside the goroutine closure, not in the API call.
func (p *Pool) Spawn(v int) {
	go func() { p.ch <- v }()
}

// drain is unexported: the blocking-API rule is about the public
// surface.
func (p *Pool) drain() {
	for range p.ch { // blocking receive, but not exported
	}
}
