// Package ctxflow enforces the facade's cancellation convention: library
// code never synthesises its own context, and exported APIs that can
// block give the caller a way to cancel — either a context.Context
// parameter or an exported *Context sibling (the PublishContext /
// EvaluateContext pattern of apisense.go and internal/core).
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"apisense/internal/analysis"
)

// Analyzer flags context.Background/TODO in library code and exported
// blocking APIs with no cancellation path.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "Library code must not call context.Background or context.TODO — accept " +
		"the caller's context. Exported APIs that block (channel ops, select, " +
		"WaitGroup.Wait, time.Sleep, net/http round-trips) must take a " +
		"context.Context or ship an exported <Name>Context sibling. Deliberate " +
		"back-compat wrappers carry a //lint:allow ctxflow <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	siblings := contextSiblings(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call); ok && pkg == "context" && (name == "Background" || name == "TODO") {
					pass.Reportf(call.Pos(),
						"library code must not call context.%s; accept the caller's context (annotate deliberate back-compat wrappers with //lint:allow ctxflow)", name)
				}
				return true
			})
			checkBlockingAPI(pass, fd, siblings)
		}
	}
	return nil
}

// contextSiblings indexes the package's exported *Context functions and
// methods as "Recv.Name" (functions use an empty Recv).
func contextSiblings(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !strings.HasSuffix(fd.Name.Name, "Context") {
				continue
			}
			out[recvTypeName(fd)+"."+fd.Name.Name] = true
		}
	}
	return out
}

// recvTypeName returns the bare receiver type name of a method ("" for
// plain functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkBlockingAPI flags an exported, context-less function whose body
// directly blocks, unless an exported <Name>Context sibling exists.
func checkBlockingAPI(pass *analysis.Pass, fd *ast.FuncDecl, siblings map[string]bool) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || strings.HasSuffix(name, "Context") {
		return
	}
	if hasContextParam(pass, fd) {
		return
	}
	if siblings[recvTypeName(fd)+"."+name+"Context"] {
		return
	}
	if op := blockingOp(pass, fd.Body); op != "" {
		pass.Reportf(fd.Name.Pos(),
			"exported API %s blocks (%s) but offers no cancellation; accept a context.Context or add an exported %sContext sibling", name, op, name)
	}
}

// hasContextParam reports whether any parameter is a context.Context.
func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// blockingOp returns a description of the first directly blocking
// operation in body, or "" if there is none. Mutex operations are not
// counted: critical sections are expected to be short and are lockfsync's
// concern, not cancellation's.
func blockingOp(pass *analysis.Pass, body *ast.BlockStmt) string {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's body runs when the closure does, typically on
			// another goroutine; it does not block this API directly.
			return false
		case *ast.SendStmt:
			found = "channel send"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = "channel receive"
			}
		case *ast.SelectStmt:
			found = "select"
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = "range over channel"
				}
			}
		case *ast.CallExpr:
			if pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, n); ok {
				if pkg == "time" && name == "Sleep" {
					found = "time.Sleep"
				}
				if pkg == "net/http" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head") {
					found = "net/http." + name
				}
			}
			switch analysis.MethodFullName(pass.TypesInfo, n) {
			case "(*sync.WaitGroup).Wait":
				found = "WaitGroup.Wait"
			case "(*net/http.Client).Do", "(*net/http.Client).Get", "(*net/http.Client).Post", "(*net/http.Client).Head":
				found = "http.Client round-trip"
			}
		}
		return found == ""
	})
	return found
}
