package detrange_test

import (
	"testing"

	"apisense/internal/analysis/analysistest"
	"apisense/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer, "detrange")
}
