// Cache-shaped fixtures: an evaluation cache keeps its entries in a map,
// and anything reported about it (aggregate gauges, entry listings) must
// not depend on Go's randomised map iteration order. These mirror the
// shapes detrange patrols in internal/evalcache and the cache paths of
// internal/core.
package detrange

import (
	"fmt"
	"sort"
)

// cacheEntry is one memoized evaluation result.
type cacheEntry struct {
	cost    float64
	hits    int
	utility float64
}

// statsUnsorted folds per-entry float costs in map order: the total's
// last bits differ between runs, so two /api/stats responses over the
// same cache contents could disagree.
func statsUnsorted(entries map[string]cacheEntry) float64 {
	var bytes float64
	for _, e := range entries {
		bytes += e.cost // want "float accumulation in map iteration order"
	}
	return bytes
}

// dumpUnsorted leaks entry keys out of the cache in map order; a report
// built from the returned slice is not byte-identical between runs.
func dumpUnsorted(entries map[string]cacheEntry) []string {
	var keys []string
	for k := range entries { // want "keys collects map-range values"
		keys = append(keys, k)
	}
	return keys
}

// logUnsorted prints cache contents in map order.
func logUnsorted(entries map[string]cacheEntry) {
	for k, e := range entries {
		fmt.Printf("%s: hits=%d\n", k, e.hits) // want "printing inside a range over a map"
	}
}

// statsSorted is the sanctioned shape: fold over sorted keys, so the
// gauge is the same float on every run.
func statsSorted(entries map[string]cacheEntry) float64 {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var bytes float64
	for _, k := range keys {
		bytes += entries[k].cost
	}
	return bytes
}

// dumpSorted sorts before the slice escapes: deterministic listing.
func dumpSorted(entries map[string]cacheEntry) []string {
	var keys []string
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// countHits is commutative integer work over the cache: allowed, and
// exactly how hit/miss counters may be aggregated.
func countHits(entries map[string]cacheEntry) int {
	n := 0
	for _, e := range entries {
		n += e.hits
	}
	return n
}

// bestUtility shows why even a "max" fold needs sorted keys when ties
// exist: the winner under ties depends on visit order. The fixture keeps
// the accumulation deterministic by folding over sorted keys.
func bestUtility(entries map[string]cacheEntry) (string, float64) {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bestKey, best := "", -1.0
	for _, k := range keys {
		if entries[k].utility > best {
			bestKey, best = k, entries[k].utility
		}
	}
	return bestKey, best
}
