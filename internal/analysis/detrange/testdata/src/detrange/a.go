// Package detrange is the fixture for the detrange analyzer: nothing
// order-sensitive may happen in map iteration order.
package detrange

import (
	"fmt"
	"sort"
)

// sumUnsorted accumulates floats in map order: the sum's last bits
// depend on visit order.
func sumUnsorted(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation in map iteration order"
	}
	return sum
}

// sumSpelledOut is the same bug without the compound operator.
func sumSpelledOut(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation in map iteration order"
	}
	return total
}

// sumSorted is the sanctioned idiom: collect, sort, fold.
func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// escape lets map-ordered values leak out of the function.
func escape(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "out collects map-range values"
		out = append(out, v)
	}
	return out
}

// sortedEscape is fine: the slice is sorted before anyone sees it.
func sortedEscape(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// show prints in map order.
func show(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "printing inside a range over a map"
	}
}

// normalise updates each entry in place, keyed by the loop variable:
// every iteration touches a distinct element, so order is irrelevant.
func normalise(m map[string]float64, total float64) {
	for k := range m {
		m[k] /= total
	}
}

// count is commutative integer work: allowed.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// build is map-to-map: allowed.
func build(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// tolerance documents why order does not matter at this site.
func tolerance(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:allow detrange debug-only estimate, never lands in a report
		sum += v
	}
	return sum
}
