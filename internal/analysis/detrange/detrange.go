// Package detrange guards the byte-identical-report contract of the
// evaluation engine: in the report and selection paths, nothing
// order-sensitive may happen in Go's randomised map iteration order.
// Float accumulation is the classic failure (addition is commutative but
// not associative, so the sum's last bits depend on visit order); values
// collected into a slice and printed or compared unsorted are the other.
// The sanctioned idiom is the one internal/metrics.sumByDay uses: collect
// the keys, sort them, then fold in sorted order.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"apisense/internal/analysis"
)

// Analyzer flags order-sensitive work inside range-over-map loops.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "No order-sensitive work in map iteration order: float accumulation, " +
		"printing, and slices that escape unsorted out of a range-over-map all " +
		"make reports differ between runs. Collect keys, sort, then fold " +
		"(see internal/metrics.sumByDay).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		}
	}
	return nil
}

// checkMapRange inspects one range-over-map body.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested ranges are visited by the outer walk; their own map
			// check (if any) happens there. Order sensitivity inside them
			// still matters for the outer map loop, so keep descending.
			return true
		case *ast.AssignStmt:
			checkAssign(pass, fd, rs, n)
		case *ast.CallExpr:
			if pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, n); ok && pkg == "fmt" &&
				(name == "Print" || name == "Println" || name == "Printf" ||
					name == "Fprint" || name == "Fprintln" || name == "Fprintf") {
				pass.Reportf(n.Pos(),
					"printing inside a range over a map emits map iteration order; collect and sort first")
			}
		}
		return true
	})
}

// checkAssign flags float accumulation and unsorted slice escapes.
func checkAssign(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if isFloat(pass, lhs) && analysis.DeclaredOutside(pass.TypesInfo, lhs, rs, rs) &&
			!keyedByRangeVar(pass, rs, lhs) {
			pass.Reportf(as.Pos(),
				"float accumulation in map iteration order is non-associative and therefore non-deterministic; sum over sorted keys")
		}
	case token.ASSIGN:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			checkAppendEscape(pass, fd, rs, as.Lhs[i], rhs)
			checkSelfAccum(pass, rs, as, as.Lhs[i], rhs)
		}
	}
}

// checkSelfAccum catches the spelled-out `x = x + v` float accumulation.
func checkSelfAccum(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, lhs ast.Expr, rhs ast.Expr) {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) || !isFloat(pass, lhs) {
		return
	}
	target := types.ExprString(lhs)
	if types.ExprString(bin.X) == target && analysis.DeclaredOutside(pass.TypesInfo, lhs, rs, rs) &&
		!keyedByRangeVar(pass, rs, lhs) {
		pass.Reportf(as.Pos(),
			"float accumulation in map iteration order is non-associative and therefore non-deterministic; sum over sorted keys")
	}
}

// checkAppendEscape flags `s = append(s, ...)` onto a slice that outlives
// the loop and is never sorted afterwards in the same function.
func checkAppendEscape(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, lhs ast.Expr, rhs ast.Expr) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
		return
	}
	target := types.ExprString(lhs)
	if types.ExprString(call.Args[0]) != target {
		return
	}
	if !analysis.DeclaredOutside(pass.TypesInfo, lhs, rs, rs) {
		return
	}
	if sortedLater(pass, fd, rs, target) {
		return
	}
	pass.Reportf(rs.Pos(),
		"%s collects map-range values but is never sorted in %s; the slice escapes in map iteration order", target, fd.Name.Name)
}

// sortedLater reports whether target is passed to a sort/slices call
// after the loop, anywhere in the enclosing function.
func sortedLater(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < rs.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, _, ok := analysis.PkgFunc(pass.TypesInfo, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			// Contains, not equality: sort.Sort(byWeight(flows)) still
			// sorts flows.
			if strings.Contains(types.ExprString(arg), target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// keyedByRangeVar reports whether lhs is an index expression whose index
// uses the loop's key variable. `m[k] /= total` inside `for k := range m`
// touches a distinct element each iteration, so the update commutes with
// the visit order and is deterministic.
func keyedByRangeVar(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.TypesInfo.ObjectOf(keyID)
	if keyObj == nil {
		return false
	}
	used := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == keyObj {
			used = true
			return false
		}
		return true
	})
	return used
}

// isFloat reports whether expr has floating-point (or complex) type.
// Assignment LHS identifiers are not always in the Types map, so fall
// back to the identifier's object.
func isFloat(pass *analysis.Pass, expr ast.Expr) bool {
	var t types.Type
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		t = tv.Type
	} else {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
				t = obj.Type()
			}
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.ObjectOf(e.Sel); obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}
