package analysis

import (
	"go/ast"
	"go/types"
)

// PkgFunc resolves a call to a package-level function accessed through an
// import, returning the imported package's path and the function name.
// Calls through locals, methods, and dot-imports return ok = false.
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// MethodFullName returns the types.Func.FullName of the method a call
// invokes (e.g. "(*os.File).Sync"), or "" when the callee is not a
// resolved method or function selector.
func MethodFullName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// DeclaredOutside reports whether the object expr refers to was declared
// outside the [from, to] node interval — e.g. an accumulator that outlives
// a loop. Selector targets (struct fields) count as outside.
func DeclaredOutside(info *types.Info, expr ast.Expr, from, to ast.Node) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < from.Pos() || obj.Pos() > to.End()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
