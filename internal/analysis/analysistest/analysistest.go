// Package analysistest runs an analyzer over fixture packages and checks
// its findings against // want comments, mirroring the x/tools package of
// the same name.
//
// A fixture line that should be flagged carries a trailing comment
//
//	badCall() // want "regexp matching the diagnostic"
//
// Several "..." patterns on one comment expect several findings on that
// line. Lines without a want comment must produce no finding. Fixtures
// live under testdata/src/<pkg>/ and may import the standard library
// only, so they type-check without touching the module's own packages.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"apisense/internal/analysis"
)

// wantPattern extracts the quoted regexps of a // want comment.
var wantPattern = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> and checks a's findings against the
// fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	loader := analysis.NewLoader()
	loaded, err := loader.Load(dir, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	wants := collectWants(t, loaded)
	diags, err := analysis.Run(a, loaded)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := loaded.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected finding: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", filepath.Base(w.file), w.line, w.rx)
		}
	}
}

// collectWants parses every // want comment of the fixture package.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantPattern.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", filepath.Base(pos.Filename), pos.Line, c.Text)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", filepath.Base(pos.Filename), pos.Line, q, err)
					}
					rx, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filepath.Base(pos.Filename), pos.Line, s, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out
}

// cutWant strips the comment marker and "want" keyword.
func cutWant(comment string) (string, bool) {
	const marker = "// want "
	if len(comment) > len(marker) && comment[:len(marker)] == marker {
		return comment[len(marker):], true
	}
	return "", false
}

// claim marks the first unmatched want on (file, line) whose pattern
// matches msg; it reports whether one was found.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.rx.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
