// Package lockfsync enforces the Hive's central latency invariant: no
// goroutine may hold a mutex across a disk sync. A held lock turns every
// fsync (single-digit milliseconds on a good SSD, tens on cloud disks)
// into a stall for every reader contending on that lock — exactly the bug
// class PR 5's review caught by hand in internal/hive, where fleet task
// polls queued up behind journal syncs.
//
// The analyzer tracks, within each function, which mutexes are held at
// each statement (flow-aware for if/else, loops and switches) and reports
// any call that can reach (*os.File).Sync — directly or through a chain
// of same-package calls — while a non-exempt mutex is held.
//
// Two source directives refine the check:
//
//	//lint:allowsync <reason>
//
// on the line above (or on) a mutex declaration marks that mutex as a
// designated commit lock, allowed to be held across fsync by design (the
// Hive's ingestMu, the Journal's own file mutex).
//
//	//lint:lockorder a < b
//
// declares an acquisition order: a must be taken before b, so acquiring a
// while b is held is reported. This promotes internal/hive's
// "ingestMu before mu" comment into a checked annotation.
package lockfsync

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"apisense/internal/analysis"
)

// Analyzer flags fsyncs under locks and lock-order inversions.
var Analyzer = &analysis.Analyzer{
	Name: "lockfsync",
	Doc: "No mutex may be held across a call reaching (*os.File).Sync unless its " +
		"declaration carries //lint:allowsync; declared //lint:lockorder pairs " +
		"must be acquired in order. Keeps disk syncs off every lock readers " +
		"contend on.",
	Run: run,
}

// lockMethods maps the sync.Mutex/RWMutex method set to acquire/release.
var lockMethods = map[string]bool{ // true = acquire
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    false,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  false,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": false,
}

// heldMutex is one mutex currently held, keyed in the held map by the
// printed receiver expression (e.g. "h.mu").
type heldMutex struct {
	name string       // bare field/var name, for lock-order matching
	obj  types.Object // declaration object, for allowsync exemption
	pos  token.Pos    // acquisition site
}

type checker struct {
	pass    *analysis.Pass
	exempt  map[types.Object]bool
	order   map[[2]string]bool // {before, after} declared pairs
	decls   map[types.Object]*ast.FuncDecl
	reaches map[types.Object]int // 0 unknown, 1 visiting, 2 yes, 3 no
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		exempt:  make(map[types.Object]bool),
		order:   make(map[[2]string]bool),
		decls:   make(map[types.Object]*ast.FuncDecl),
		reaches: make(map[types.Object]int),
	}
	c.collectDirectives()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.walkStmts(fd.Body.List, map[string]heldMutex{})
			}
		}
	}
	return nil
}

// collectDirectives parses //lint:allowsync and //lint:lockorder.
func (c *checker) collectDirectives() {
	for _, f := range c.pass.Files {
		mutexDeclsByLine := c.mutexDeclLines(f)
		for _, d := range analysis.Directives(f, c.pass.Fset) {
			switch d.Name {
			case "allowsync":
				if d.Args == "" {
					c.pass.Reportf(d.Pos, "//lint:allowsync needs a reason: say why this mutex may be held across fsync")
					continue
				}
				line := c.pass.Fset.Position(d.Pos).Line
				objs := append(mutexDeclsByLine[line], mutexDeclsByLine[line+1]...)
				if len(objs) == 0 {
					c.pass.Reportf(d.Pos, "//lint:allowsync matches no mutex declaration on this or the next line")
					continue
				}
				for _, obj := range objs {
					c.exempt[obj] = true
				}
			case "lockorder":
				fields := strings.Fields(d.Args)
				if len(fields) != 3 || fields[1] != "<" {
					c.pass.Reportf(d.Pos, "malformed //lint:lockorder: need `//lint:lockorder first < second`")
					continue
				}
				c.order[[2]string{fields[0], fields[2]}] = true
			}
		}
	}
}

// mutexDeclLines indexes every sync.Mutex/RWMutex field or variable
// declaration of a file by source line.
func (c *checker) mutexDeclLines(f *ast.File) map[int][]types.Object {
	out := make(map[int][]types.Object)
	add := func(id *ast.Ident) {
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil || !isMutexType(obj.Type()) {
			return
		}
		line := c.pass.Fset.Position(id.Pos()).Line
		out[line] = append(out[line], obj)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			for _, name := range n.Names {
				add(name)
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				add(name)
			}
		}
		return true
	})
	return out
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// --- statement walk with held-lock tracking ---------------------------

func (c *checker) walkStmts(stmts []ast.Stmt, held map[string]heldMutex) {
	for _, s := range stmts {
		c.walkStmt(s, held)
	}
}

func (c *checker) walkStmt(s ast.Stmt, held map[string]heldMutex) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		c.walkIf(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		body := copyHeld(held)
		c.walkStmts(s.Body.List, body)
	case *ast.RangeStmt:
		c.scanExpr(s.X, held)
		body := copyHeld(held)
		c.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		c.walkCaseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.walkCaseBodies(s.Body, held)
	case *ast.SelectStmt:
		c.walkCaseBodies(s.Body, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held to function end, which
		// the linear walk models by simply not removing it. Other
		// deferred calls run after every statement below, with an
		// unknowable lock state — skip them.
	case *ast.GoStmt:
		// Runs on another goroutine; it does not execute under this
		// goroutine's locks.
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // executes later, not here
			case ast.Stmt:
				if n != s {
					c.walkStmt(n, held)
					return false
				}
			case ast.Expr:
				c.scanExpr(n, held)
				return false
			}
			return true
		})
	}
}

// walkCaseBodies analyses each case/comm clause with its own copy of the
// held set; no branch's changes propagate (under-approximation).
func (c *checker) walkCaseBodies(body *ast.BlockStmt, held map[string]heldMutex) {
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanExpr(e, held)
			}
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		branch := copyHeld(held)
		c.walkStmts(stmts, branch)
	}
}

// walkIf merges lock state across the branches: a branch that terminates
// (returns/panics) contributes nothing to the state after the if; when
// both fall through, a mutex counts as held only if both still hold it.
func (c *checker) walkIf(s *ast.IfStmt, held map[string]heldMutex) {
	if s.Init != nil {
		c.walkStmt(s.Init, held)
	}
	c.scanExpr(s.Cond, held)

	body := copyHeld(held)
	c.walkStmts(s.Body.List, body)
	bodyTerm := terminates(s.Body.List)

	els := copyHeld(held)
	elseTerm := false
	if s.Else != nil {
		c.walkStmt(s.Else, els)
		elseTerm = stmtTerminates(s.Else)
	}

	switch {
	case bodyTerm && elseTerm:
		// Anything after the if is unreachable; leave held as-is.
	case bodyTerm:
		replaceHeld(held, els)
	case elseTerm:
		replaceHeld(held, body)
	default:
		replaceHeld(held, intersectHeld(body, els))
	}
}

// scanExpr visits every call in an expression, updating the held set for
// Lock/Unlock and reporting sync-reaching calls made under a lock.
func (c *checker) scanExpr(e ast.Expr, held map[string]heldMutex) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.handleCall(n, held)
		}
		return true
	})
}

// handleCall classifies one call: mutex acquire/release, sync-reaching
// call, or neither.
func (c *checker) handleCall(call *ast.CallExpr, held map[string]heldMutex) {
	full := analysis.MethodFullName(c.pass.TypesInfo, call)
	if acquire, isLock := lockMethods[full]; isLock {
		sel := call.Fun.(*ast.SelectorExpr)
		key := types.ExprString(sel.X)
		if acquire {
			m := heldMutex{name: baseName(sel.X), obj: c.mutexObj(sel.X), pos: call.Pos()}
			c.checkLockOrder(call, m, held)
			held[key] = m
		} else {
			delete(held, key)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	if !c.callReachesSync(call) {
		return
	}
	for key, m := range held {
		if c.exempt[m.obj] {
			continue
		}
		c.pass.Reportf(call.Pos(),
			"%s is held across a call to %s, which reaches (*os.File).Sync; release it before the disk sync or annotate the mutex with //lint:allowsync <reason>",
			key, callName(call))
	}
}

// checkLockOrder reports an inversion of a declared //lint:lockorder pair.
func (c *checker) checkLockOrder(call *ast.CallExpr, acquiring heldMutex, held map[string]heldMutex) {
	for _, h := range held {
		if c.order[[2]string{acquiring.name, h.name}] {
			c.pass.Reportf(call.Pos(),
				"lock order violation: %s must be acquired before %s (declared //lint:lockorder %s < %s), but %s is already held",
				acquiring.name, h.name, acquiring.name, h.name, h.name)
		}
	}
}

// mutexObj resolves the declaration object of a mutex expression.
func (c *checker) mutexObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return c.pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}

// baseName is the final name component of a mutex expression.
func baseName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return types.ExprString(e)
}

// callName renders the callee for diagnostics.
func callName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// --- sync reachability ------------------------------------------------

// callReachesSync reports whether a call is (*os.File).Sync itself or
// resolves to a same-package function whose body transitively reaches one.
// Unresolvable callees (interfaces, function values, other packages) are
// conservatively assumed not to sync.
func (c *checker) callReachesSync(call *ast.CallExpr) bool {
	if analysis.MethodFullName(c.pass.TypesInfo, call) == "(*os.File).Sync" {
		return true
	}
	obj := calleeObj(c.pass.TypesInfo, call)
	if obj == nil {
		return false
	}
	return c.funcReachesSync(obj)
}

// calleeObj resolves the called function/method object, if any.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}

// funcReachesSync memoises "does this package function's body reach an
// fsync" over the package-local call graph.
func (c *checker) funcReachesSync(obj types.Object) bool {
	switch c.reaches[obj] {
	case 2:
		return true
	case 3:
		return false
	case 1: // recursion: assume no on the back edge
		return false
	}
	fd, ok := c.decls[obj]
	if !ok {
		c.reaches[obj] = 3
		return false
	}
	c.reaches[obj] = 1
	result := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if result {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.callReachesSync(call) {
			result = true
			return false
		}
		return true
	})
	if result {
		c.reaches[obj] = 2
	} else {
		c.reaches[obj] = 3
	}
	return result
}

// --- held-set plumbing ------------------------------------------------

func copyHeld(held map[string]heldMutex) map[string]heldMutex {
	out := make(map[string]heldMutex, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func replaceHeld(dst, src map[string]heldMutex) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersectHeld(a, b map[string]heldMutex) map[string]heldMutex {
	out := make(map[string]heldMutex)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// terminates reports whether a statement list always transfers control
// out (return, branch, panic, os.Exit).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Body.List) && stmtTerminates(s.Else)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Exit" {
				return true
			}
		}
	}
	return false
}
