// Package lockfsync is the fixture for the lockfsync analyzer: no mutex
// held across a disk sync, declared lock orders respected.
package lockfsync

import (
	"os"
	"sync"
)

//lint:lockorder commitMu < mu

type store struct {
	mu sync.RWMutex

	//lint:allowsync designated commit lock, serialises fsyncs by design
	commitMu sync.Mutex

	f *os.File
}

// flushUnderLock holds mu across the fsync: every reader stalls on the
// disk.
func (s *store) flushUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want "s.mu is held across a call to s.f.Sync"
}

// flushAfterUnlock releases before syncing: clean.
func (s *store) flushAfterUnlock() error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.f.Sync()
}

// sync is a same-package helper reaching (*os.File).Sync.
func (s *store) sync() error { return s.f.Sync() }

// indirect reaches the fsync through the helper: still flagged.
func (s *store) indirect() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sync() // want "s.mu is held across a call to s.sync"
}

// commit holds the annotated commit lock across the sync: allowed.
func (s *store) commit() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.f.Sync()
}

// inverted acquires commitMu while mu is held, against the declared
// order.
func (s *store) inverted() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitMu.Lock() // want "lock order violation: commitMu must be acquired before mu"
	s.commitMu.Unlock()
}

// ordered takes commitMu first and keeps the sync outside mu: clean.
func (s *store) ordered() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
	return s.f.Sync()
}

// branchUnlock unlocks on the early-return path only; the fallthrough
// path still holds mu at the sync.
func (s *store) branchUnlock(skip bool) error {
	s.mu.Lock()
	if skip {
		s.mu.Unlock()
		return nil
	}
	err := s.f.Sync() // want "s.mu is held across a call to s.f.Sync"
	s.mu.Unlock()
	return err
}

// bothBranchesUnlock releases on every path before the sync: clean.
func (s *store) bothBranchesUnlock(fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	return s.f.Sync()
}

// suppressed documents a deliberate one-off exception inline.
func (s *store) suppressed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockfsync startup-only path, no concurrent readers yet
	return s.f.Sync()
}
