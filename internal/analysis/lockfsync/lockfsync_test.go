package lockfsync_test

import (
	"testing"

	"apisense/internal/analysis/analysistest"
	"apisense/internal/analysis/lockfsync"
)

func TestLockFsync(t *testing.T) {
	analysistest.Run(t, "testdata", lockfsync.Analyzer, "lockfsync")
}
