// Package errcode is the fixture for the errcode analyzer: boundary
// errors must wrap a coded sentinel with %w, and the sentinels themselves
// must come from apierr.New, not errors.New.
package errcode

import (
	"errors"
	"fmt"
)

// ErrBad is a package-level sentinel, but built with errors.New it has no
// wire code or HTTP category.
var ErrBad = errors.New("errcode: bad input") // want "package-level sentinel built with errors.New carries no code"

// Sentinel groups are scanned too.
var (
	ErrGone = errors.New("errcode: gone") // want "use apierr.New"
)

// errLegacy documents the escape hatch for sentinels that never cross the
// wire.
var (
	//lint:allow errcode process-internal sentinel, never serialised
	errLegacy = errors.New("errcode: legacy")
)

// errCoded stands in for an apierr.New sentinel: arbitrary non-errors.New
// constructors are the taxonomy, not violations. (Fixtures import only
// the standard library, so the real constructor is simulated.)
var errCoded = codedNew("errcode.coded", "errcode: coded")

type codedErr struct{ code, msg string }

func (e *codedErr) Error() string { return e.msg }

func codedNew(code, msg string) error { return &codedErr{code, msg} }

func uncoded() error {
	return fmt.Errorf("something broke") // want "without %w crosses the API boundary uncoded"
}

func uncodedWithArgs(id string) error {
	return fmt.Errorf("lookup %q failed", id) // want "without %w"
}

func inline() error {
	return errors.New("nope") // want "inline errors.New creates an uncoded error"
}

func coded(id string) error {
	return fmt.Errorf("%w: %s", ErrBad, id)
}

func wrapped(err error) error {
	return fmt.Errorf("decode request: %w", err)
}

func suppressed() error {
	//lint:allow errcode diagnostic stays in-process, never crosses the API
	return fmt.Errorf("internal detail")
}

func dynamicFormat(format string) error {
	return fmt.Errorf(format, ErrGone) //nolint // dynamic: analyzer stays quiet
}

var _ = errCoded
var _ = errLegacy
