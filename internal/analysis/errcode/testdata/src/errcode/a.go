// Package errcode is the fixture for the errcode analyzer: boundary
// errors must wrap a coded sentinel with %w.
package errcode

import (
	"errors"
	"fmt"
)

// ErrBad is a package-level sentinel: the sanctioned place for
// errors.New.
var ErrBad = errors.New("errcode: bad input")

// Sentinel groups are fine too.
var (
	ErrGone = errors.New("errcode: gone")
)

func uncoded() error {
	return fmt.Errorf("something broke") // want "without %w crosses the API boundary uncoded"
}

func uncodedWithArgs(id string) error {
	return fmt.Errorf("lookup %q failed", id) // want "without %w"
}

func inline() error {
	return errors.New("nope") // want "inline errors.New creates an uncoded error"
}

func coded(id string) error {
	return fmt.Errorf("%w: %s", ErrBad, id)
}

func wrapped(err error) error {
	return fmt.Errorf("decode request: %w", err)
}

func suppressed() error {
	//lint:allow errcode diagnostic stays in-process, never crosses the API
	return fmt.Errorf("internal detail")
}

func dynamicFormat(format string) error {
	return fmt.Errorf(format, ErrGone) //nolint // dynamic: analyzer stays quiet
}
