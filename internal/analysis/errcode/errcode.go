// Package errcode enforces the error taxonomy at API boundaries: code in
// scoped packages (the Hive HTTP layer, the transport wire types and the
// ingest queue) must return errors that wrap a coded sentinel with %w,
// never naked strings — and the sentinels themselves must be built with
// apierr.New, so each carries a stable wire code and an HTTP category.
// The HTTP layer maps categories to status codes via apierr.HTTPStatus
// (see internal/hive.Server.writeError); an unwrapped fmt.Errorf, an
// inline errors.New, or an uncoded errors.New sentinel is invisible to
// that mapping and surfaces as an uncategorised 500.
package errcode

import (
	"go/ast"
	"go/token"
	"strings"

	"apisense/internal/analysis"
)

// Analyzer flags uncoded errors at transport boundaries.
var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc: "Boundary packages must return coded errors: every fmt.Errorf needs a %w " +
		"verb wrapping a package sentinel, errors.New is banned outright — " +
		"package-level sentinels are built with apierr.New so they carry a " +
		"stable code and HTTP category. This keeps the status mapping " +
		"(apierr.HTTPStatus over the taxonomy) exhaustive.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			// Package-level var blocks are where sentinels live — but a
			// sentinel defined with errors.New has no code or category, so
			// the HTTP layer would map it to an uncategorised 500. Demand
			// apierr.New there.
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				ast.Inspect(gd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call); ok &&
						pkg == "errors" && name == "New" {
						pass.Reportf(call.Pos(),
							"package-level sentinel built with errors.New carries no code; use apierr.New so it maps to a stable wire code and HTTP status")
					}
					return true
				})
				continue
			}
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
				if !ok {
					return true
				}
				switch {
				case pkg == "errors" && name == "New":
					pass.Reportf(call.Pos(),
						"inline errors.New creates an uncoded error; define a package-level sentinel and wrap it with %%w")
				case pkg == "fmt" && name == "Errorf" && len(call.Args) > 0:
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok {
						return true // dynamic format: cannot prove, stay quiet
					}
					if !strings.Contains(lit.Value, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w crosses the API boundary uncoded; wrap a sentinel so errors.Is can map it to a status")
					}
				}
				return true
			})
		}
	}
	return nil
}
