// Package errcode enforces the error taxonomy at API boundaries: code in
// scoped packages (the Hive HTTP layer and the transport wire types) must
// return errors that wrap a coded sentinel with %w, never naked strings.
// The HTTP layer maps sentinels to status codes with errors.Is (see
// internal/hive.writeError); an unwrapped fmt.Errorf or inline errors.New
// is invisible to that mapping and surfaces as an uncategorised 500/400.
package errcode

import (
	"go/ast"
	"strings"

	"apisense/internal/analysis"
)

// Analyzer flags uncoded errors at transport boundaries.
var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc: "Boundary packages must return coded errors: every fmt.Errorf needs a %w " +
		"verb wrapping a package sentinel, and errors.New may only define " +
		"package-level sentinels. This keeps the HTTP status mapping (errors.Is " +
		"over the hive/transport taxonomy) exhaustive.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			// Package-level var blocks are where sentinels live; calls
			// inside them are the taxonomy, not violations.
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
				if !ok {
					return true
				}
				switch {
				case pkg == "errors" && name == "New":
					pass.Reportf(call.Pos(),
						"inline errors.New creates an uncoded error; define a package-level sentinel and wrap it with %%w")
				case pkg == "fmt" && name == "Errorf" && len(call.Args) > 0:
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok {
						return true // dynamic format: cannot prove, stay quiet
					}
					if !strings.Contains(lit.Value, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w crosses the API boundary uncoded; wrap a sentinel so errors.Is can map it to a status")
					}
				}
				return true
			})
		}
	}
	return nil
}
