package errcode_test

import (
	"testing"

	"apisense/internal/analysis/analysistest"
	"apisense/internal/analysis/errcode"
)

func TestErrcode(t *testing.T) {
	analysistest.Run(t, "testdata", errcode.Analyzer, "errcode")
}
