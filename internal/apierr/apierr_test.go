package apierr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Test sentinels, declared once: New panics on duplicates, so tests share
// these instead of re-declaring per test case.
var (
	errTestNotFound = New("apierrtest.not_found", NotFound, "apierrtest: thing not found")
	errTestLimit    = New("apierrtest.limit", ResourceExhausted, "apierrtest: limit reached")
)

func TestNewValidatesCodes(t *testing.T) {
	bad := []string{
		"", "nodot", ".leading", "trailing.", "Upper.case", "pkg.Name",
		"pkg..name", "pkg.na me", "1pkg.name", "pkg.1name", "_pkg.name",
		"pkg.name_", "pkg.na-me", "a.b.c",
	}
	for _, code := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%q) did not panic", code)
				}
			}()
			New(code, Internal, "bad")
		}()
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate New did not panic")
		}
	}()
	New("apierrtest.not_found", Internal, "dup")
}

func TestErrorsIsMatchesByCode(t *testing.T) {
	wrapped := fmt.Errorf("context: %w", errTestNotFound)
	if !errors.Is(wrapped, errTestNotFound) {
		t.Error("errors.Is fails through fmt.Errorf wrapping")
	}
	if errors.Is(wrapped, errTestLimit) {
		t.Error("errors.Is matches a different code")
	}
	// A reconstructed remote error matches the local sentinel: the
	// cross-process contract behind transport.ErrStatus.
	if !errors.Is(Remote("apierrtest.not_found"), errTestNotFound) {
		t.Error("Remote(code) does not match the registered sentinel")
	}
	if !errors.Is(Remote("other.code"), Remote("other.code")) {
		t.Error("two unregistered remotes with equal codes do not match")
	}
}

func TestErrorsAs(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", errTestLimit.With("bound", "5"))
	var coded *Error
	if !errors.As(wrapped, &coded) {
		t.Fatal("errors.As cannot extract *Error")
	}
	if coded.Code() != "apierrtest.limit" || coded.Meta()["bound"] != "5" {
		t.Errorf("extracted code=%q meta=%v", coded.Code(), coded.Meta())
	}
}

func TestCodeWalksChains(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want string
	}{
		{"nil", nil, ""},
		{"uncoded", errors.New("plain"), ""},
		{"direct", errTestNotFound, "apierrtest.not_found"},
		{"single wrap", fmt.Errorf("ctx: %w", errTestNotFound), "apierrtest.not_found"},
		{"double wrap", fmt.Errorf("a: %w", fmt.Errorf("b: %w", errTestLimit)), "apierrtest.limit"},
		{"multi-unwrap first coded", fmt.Errorf("%w: %w", errTestNotFound, errors.New("io")), "apierrtest.not_found"},
		{"multi-unwrap second coded", fmt.Errorf("%w: %w", errors.New("io"), errTestLimit), "apierrtest.limit"},
		{"joined", errors.Join(errors.New("x"), errTestNotFound), "apierrtest.not_found"},
	}
	for _, tc := range tests {
		if got := Code(tc.err); got != tc.want {
			t.Errorf("%s: Code = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestHTTPStatusPerCategory(t *testing.T) {
	tests := []struct {
		cat  Category
		want int
	}{
		{Validation, 400}, {NotFound, 404}, {Forbidden, 403}, {Conflict, 409},
		{ResourceExhausted, 429}, {TooLarge, 413}, {Unavailable, 503},
		{Internal, 500}, {Category("made_up"), 500},
	}
	for _, tc := range tests {
		if got := tc.cat.HTTPStatus(); got != tc.want {
			t.Errorf("%s.HTTPStatus = %d, want %d", tc.cat, got, tc.want)
		}
	}
	if got := HTTPStatus(fmt.Errorf("ctx: %w", errTestLimit)); got != 429 {
		t.Errorf("HTTPStatus(wrapped limit) = %d, want 429", got)
	}
	if got := HTTPStatus(errors.New("uncoded")); got != 500 {
		t.Errorf("HTTPStatus(uncoded) = %d, want 500", got)
	}
	if got := HTTPStatus(nil); got != 500 {
		t.Errorf("HTTPStatus(nil) = %d, want 500", got)
	}
}

func TestWithAndWrapAreClones(t *testing.T) {
	derived := errTestNotFound.With("kind", "task").Wrap(errors.New("lookup miss"))
	if errTestNotFound.Meta() != nil {
		t.Errorf("With mutated the sentinel: meta %v", errTestNotFound.Meta())
	}
	if errTestNotFound.Unwrap() != nil {
		t.Error("Wrap mutated the sentinel cause")
	}
	if !errors.Is(derived, errTestNotFound) {
		t.Error("derived error lost its code identity")
	}
	msg := derived.Error()
	for _, want := range []string{"apierrtest: thing not found", "kind=task", "lookup miss"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestErrorMessageMetadataSorted(t *testing.T) {
	e := errTestLimit.With("zeta", "1").With("alpha", "2")
	msg := e.Error()
	if !strings.Contains(msg, "(alpha=2, zeta=1)") {
		t.Errorf("metadata not sorted: %q", msg)
	}
}

func TestRemoteUnknownCode(t *testing.T) {
	e := Remote("nowhere.known")
	if e.Code() != "nowhere.known" || e.Category() != Internal {
		t.Errorf("Remote synthesised code=%q cat=%q", e.Code(), e.Category())
	}
}
