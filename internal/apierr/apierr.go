// Package apierr is the platform's coded error taxonomy. Every error that
// crosses an API boundary — the Hive HTTP layer, the transport wire types,
// the ingest queue, the publication engine — wraps a sentinel built with
// New, which carries:
//
//   - a stable string code of the form "package.name" (e.g.
//     "hive.unknown_task"), returned in HTTP error bodies and used as the
//     only error identifier in metrics and logs;
//   - a Category that determines the HTTP status the Hive maps the error
//     to and groups codes by operator remediation;
//   - optional telemetry-safe metadata (see (*Error).With): keys and
//     values that are safe to export to metrics, traces and aggregated
//     logs — device and user identifiers MUST NOT appear here, only in
//     the human-readable message returned to the caller that owns them.
//
// Sentinels remain ordinary errors: wrap them with fmt.Errorf("%w: ...",
// Sentinel) to add call-site context, match them with errors.Is, and
// extract the coded value with errors.As. Two *Error values compare equal
// under errors.Is when their codes match, so a client that reconstructs an
// error from a wire code (see Remote and transport.ErrStatus) can branch
// on the same sentinels the server used.
//
// The shape follows the categorized/telemetry-safe error design of
// birdnet-go and the validated "package.code" registry of ranger (both in
// SNIPPETS.md), scaled down to the standard library.
//
// Concurrency: sentinels are immutable after New; With and Wrap return
// clones. Every function and method in this package is safe for
// unsynchronised concurrent use.
package apierr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Category groups error codes by the remediation they call for. The Hive
// HTTP layer derives the response status from the category (see
// HTTPStatus), so adding a code never requires touching the status
// mapping.
type Category string

// The categories of the taxonomy, with the HTTP status each maps to.
const (
	// Validation marks structurally invalid input; the caller must fix
	// the request. HTTP 400.
	Validation Category = "validation"
	// NotFound marks a reference to an entity the platform does not
	// know. HTTP 404.
	NotFound Category = "not_found"
	// Forbidden marks an operation the caller is not entitled to. HTTP
	// 403.
	Forbidden Category = "forbidden"
	// Conflict marks a request that is valid but cannot be satisfied in
	// the current state (no qualifying devices, no strategy meets the
	// floor). HTTP 409.
	Conflict Category = "conflict"
	// ResourceExhausted marks backpressure and quota limits; the caller
	// should retry later or shed load. HTTP 429.
	ResourceExhausted Category = "resource_exhausted"
	// TooLarge marks a payload that can never be admitted at its size;
	// retrying without splitting it is pointless. HTTP 413.
	TooLarge Category = "too_large"
	// Unavailable marks a service that is shutting down or not serving;
	// retry against another instance or later. HTTP 503.
	Unavailable Category = "unavailable"
	// Internal marks platform-side failures (storage, journal, bugs);
	// the caller cannot fix them. HTTP 500.
	Internal Category = "internal"
)

// HTTPStatus returns the HTTP status code the category maps to. Unknown
// categories map to 500.
func (c Category) HTTPStatus() int {
	switch c {
	case Validation:
		return 400
	case NotFound:
		return 404
	case Forbidden:
		return 403
	case Conflict:
		return 409
	case ResourceExhausted:
		return 429
	case TooLarge:
		return 413
	case Unavailable:
		return 503
	default:
		return 500
	}
}

// Error is one coded error. Construct sentinels with New at package level
// and derive per-call-site values with With/Wrap (or plain fmt.Errorf
// wrapping); the zero value is not meaningful.
type Error struct {
	code     string
	category Category
	msg      string
	meta     map[string]string
	cause    error
}

// registry maps every code declared with New to its sentinel so Remote
// can recover the category of a code that arrived over the wire.
var (
	registryMu sync.RWMutex
	registry   = map[string]*Error{}
)

// New declares a coded sentinel. code must be "package.name" — lower-case
// identifiers joined by a single dot — and unique across the process; msg
// is the stable human-readable message ("hive: unknown task"). New panics
// on a malformed or duplicate code: sentinels are package-level vars, so
// the panic fires at init, not in request paths.
func New(code string, category Category, msg string) *Error {
	if !validCode(code) {
		panic(fmt.Sprintf("apierr: malformed code %q: want \"package.name\" in lower_snake identifiers", code))
	}
	e := &Error{code: code, category: category, msg: msg}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[code]; dup {
		panic(fmt.Sprintf("apierr: code %q declared twice", code))
	}
	registry[code] = e
	return e
}

// validCode reports whether code has the "package.name" shape.
func validCode(code string) bool {
	pkg, name, ok := strings.Cut(code, ".")
	return ok && validIdent(pkg) && validIdent(name)
}

// validIdent reports whether s is a non-empty lower_snake identifier.
func validIdent(s string) bool {
	if s == "" || s[0] == '_' || s[len(s)-1] == '_' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Remote reconstructs the error behind a code that arrived over the wire
// (an HTTP error body's "code" field). When the code was declared in this
// process the registered sentinel is returned, category included;
// otherwise a bare Error carrying only the code (category Internal) is
// synthesised. Either way errors.Is(Remote(code), Sentinel) holds exactly
// when the codes match.
func Remote(code string) *Error {
	registryMu.RLock()
	e, ok := registry[code]
	registryMu.RUnlock()
	if ok {
		return e
	}
	return &Error{code: code, category: Internal, msg: "remote error " + code}
}

// Error implements error: the message, then the sorted telemetry-safe
// metadata, then the wrapped cause.
func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString(e.msg)
	if len(e.meta) > 0 {
		keys := make([]string, 0, len(e.meta))
		for k := range e.meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" (")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k)
			b.WriteString("=")
			b.WriteString(e.meta[k])
		}
		b.WriteString(")")
	}
	if e.cause != nil {
		b.WriteString(": ")
		b.WriteString(e.cause.Error())
	}
	return b.String()
}

// Unwrap exposes the wrapped cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.cause }

// Is matches any *Error with the same code, making errors.Is hold across
// process boundaries: a sentinel reconstructed from a wire code (Remote)
// matches the sentinel the server wrapped.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.code == e.code
}

// Code returns the stable "package.name" code.
func (e *Error) Code() string { return e.code }

// Category returns the error's category.
func (e *Error) Category() Category { return e.category }

// Message returns the stable message without metadata or cause.
func (e *Error) Message() string { return e.msg }

// Meta returns a copy of the telemetry-safe metadata (nil when empty).
func (e *Error) Meta() map[string]string {
	if len(e.meta) == 0 {
		return nil
	}
	out := make(map[string]string, len(e.meta))
	for k, v := range e.meta {
		out[k] = v
	}
	return out
}

// With clones the error and adds one telemetry-safe metadata pair. Values
// MUST be safe to export to metrics and aggregated logs: task IDs, counts
// and limits are; device and user identifiers are NOT — put those in a
// fmt.Errorf wrapper, which only the requesting client sees.
func (e *Error) With(key, value string) *Error {
	c := e.clone()
	c.meta[key] = value
	return c
}

// Wrap clones the error with cause attached, preserving cause in the
// errors.Is/As chain. Equivalent to fmt.Errorf("%w: %w", e, cause) but
// keeps the result a coded *Error so further With calls compose.
func (e *Error) Wrap(cause error) *Error {
	c := e.clone()
	c.cause = cause
	return c
}

// clone copies the error with a private metadata map.
func (e *Error) clone() *Error {
	c := &Error{code: e.code, category: e.category, msg: e.msg, cause: e.cause}
	c.meta = make(map[string]string, len(e.meta)+1)
	for k, v := range e.meta {
		c.meta[k] = v
	}
	return c
}

// Code extracts the stable code of the first *Error in err's chain, or ""
// when the chain is uncoded.
func Code(err error) string {
	if e := find(err); e != nil {
		return e.code
	}
	return ""
}

// CategoryOf extracts the category of the first *Error in err's chain, or
// Internal when the chain is uncoded.
func CategoryOf(err error) Category {
	if e := find(err); e != nil {
		return e.category
	}
	return Internal
}

// HTTPStatus maps err to the HTTP status of its category. Uncoded errors
// map to 500: an error that reaches the HTTP boundary without a code is a
// platform bug by definition (and cmd/apisenselint's errcode analyzer
// keeps the boundary packages coded).
func HTTPStatus(err error) int {
	return CategoryOf(err).HTTPStatus()
}

// find walks err's chain for the first *Error, mirroring errors.As
// without the reflection.
func find(err error) *Error {
	for err != nil {
		if e, ok := err.(*Error); ok {
			return e
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			err = x.Unwrap()
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				if e := find(sub); e != nil {
					return e
				}
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}
