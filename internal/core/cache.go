package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"apisense/internal/evalcache"
	"apisense/internal/geo"
	"apisense/internal/poi"
	"apisense/internal/trace"
)

// Evaluation caching (see the package documentation of internal/evalcache
// for the full design). This file holds the engine side of the wiring:
// cache-key derivation, the caching attacker extractor, the selection
// cache used by Publish/PublishSharded, and the adaptive-pruning records.
//
// Every key embeds a configuration fingerprint, so middlewares with
// different objectives, floors, grids or portfolios sharing one cache can
// never serve each other's entries; invalidation on config change is
// therefore automatic (a new fingerprint simply addresses fresh keys and
// the old entries age out of the LRU). Keys are content-addressed — equal
// key implies equal value — which is what keeps warm reports byte-
// identical to cold ones.

// keySep separates key segments. Shard keys and strategy names never
// contain it, so concatenated segments cannot collide.
const keySep = "\x1f"

// monolithicPruneKey scopes pruning records of un-sharded Publish runs.
// Shard policies always prefix their keys ("cell/", "window/", "user/"),
// so it cannot collide with a real shard.
const monolithicPruneKey = "dataset"

// fingerprints are the precomputed cache-key components of a Middleware.
// Three scopes keep sharing maximal: reference-POI entries depend only on
// the POI configuration, attacker extractions only on the attacker
// configuration, and selection results on everything evaluation-relevant.
// Parallelism and PseudonymKey are deliberately absent: reports are
// byte-identical for any Parallelism, and pseudonymisation is applied
// after the cached (pre-pseudonymisation) stage.
type fingerprints struct {
	selection string // full evaluation config + portfolio
	refPOI    string // reference-POI extraction config
	attack    string // attacker extraction config
}

// fingerprint hashes a canonical rendering of the evaluation-relevant
// configuration into a short hex string.
func (m *Middleware) fingerprint() fingerprints {
	c := m.cfg
	refPOI := hashFields("refpoi", c.POIConfig.MaxDistance, int64(c.POIConfig.MinDuration))
	atk := hashFields("attack", c.AttackRadius, int64(c.POIConfig.MinDuration))
	fields := []any{
		"selection", int(c.Objective), c.MaxPOIExposure, c.CellSize, c.TopK,
		c.POIConfig.MaxDistance, int64(c.POIConfig.MinDuration), c.AttackRadius,
	}
	for _, s := range m.strategies {
		fields = append(fields, s.Name())
	}
	return fingerprints{selection: hashFields(fields...), refPOI: refPOI, attack: atk}
}

// hashFields renders each field with %v separated by keySep and returns
// the first 16 hex digits of the SHA-256 digest.
func hashFields(fields ...any) string {
	h := sha256.New()
	for _, f := range fields {
		fmt.Fprintf(h, "%v%s", f, keySep)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func selectionKey(fp string, ds [trace.HashSize]byte) string {
	return "sel" + keySep + fp + keySep + hex.EncodeToString(ds[:])
}

func refPOIKey(fp string, user [trace.HashSize]byte) string {
	return "poi" + keySep + fp + keySep + hex.EncodeToString(user[:])
}

func attackKey(fp string, tr [trace.HashSize]byte) string {
	return "atk" + keySep + fp + keySep + hex.EncodeToString(tr[:])
}

func pruneRecordKey(fp, pruneKey, strategy string) string {
	return "prune" + keySep + fp + keySep + pruneKey + keySep + strategy
}

// ---- cost estimates ----

// Approximate per-element retained sizes, used as evalcache costs. They
// only need to be proportionate — the cache bound is an order-of-magnitude
// memory control, not an accountant.
const (
	recordCost     = 56  // trace.Record: Time (24) + Pos (16) + Accuracy (8) + padding
	trajectoryCost = 64  // slice headers + User header + pointer overhead
	poiCost        = 88  // poi.POI: Center (16) + Enter/Leave (48) + Fixes (8) + padding
	pointCost      = 16  // geo.Point
	evaluationCost = 160 // core.Evaluation scalars + name
	keyCost        = 96  // map key + LRU bookkeeping per entry
)

func datasetCost(d *trace.Dataset) int64 {
	if d == nil {
		return 0
	}
	cost := int64(d.Len()) * trajectoryCost
	for _, t := range d.Trajectories {
		cost += int64(len(t.User)) + int64(len(t.Records))*recordCost
	}
	return cost
}

func evalsCost(evals []Evaluation) int64 {
	cost := int64(len(evals)) * evaluationCost
	for _, ev := range evals {
		cost += int64(len(ev.Strategy) + len(ev.PrunedReason))
	}
	return cost
}

// ---- caching attacker extractor ----

// cachingExtractor memoises attacker stay-point extraction per protected
// trajectory. Mechanisms are deterministic (randomness derives from the
// trajectory identity), so an unchanged raw trajectory yields a byte-
// identical protected trajectory and the simulated attack can reuse the
// prior extraction. Cached slices are immutable by contract: poi.ExtractAll
// copies the values it aggregates and poi.Merge never mutates its input.
type cachingExtractor struct {
	inner poi.Extractor
	cache evalcache.Cache
	fp    string
}

func (c cachingExtractor) Extract(t *trace.Trajectory) []poi.POI {
	key := attackKey(c.fp, t.ContentHash())
	if v, ok := c.cache.Get(key); ok {
		return v.([]poi.POI)
	}
	pois := c.inner.Extract(t)
	c.cache.Put(key, pois, int64(len(pois))*poiCost+keyCost)
	return pois
}

// ---- per-user reference-POI memoization ----

// referencePOIs is ReferencePOIs with per-user memoization: users whose
// trajectory set is unchanged since a prior publication reuse their
// extracted reference POIs. Without a cache it falls through to the
// uncached path. The result is identical to ReferencePOIs: a user appears
// iff extraction found at least one POI (empty extractions are memoised
// too, as an empty marker).
func (m *Middleware) referencePOIs(raw *trace.Dataset) (map[string][]geo.Point, error) {
	if m.cache == nil {
		return m.ReferencePOIs(raw)
	}
	out := make(map[string][]geo.Point)
	for user, trs := range raw.ByUser() {
		hashes := make([][trace.HashSize]byte, len(trs))
		for i, t := range trs {
			hashes[i] = t.ContentHash()
		}
		key := refPOIKey(m.fp.refPOI, trace.CombineHashes(hashes...))
		if v, ok := m.cache.Get(key); ok {
			if pts := v.([]geo.Point); len(pts) > 0 {
				out[user] = append([]geo.Point(nil), pts...)
			}
			continue
		}
		var pois []poi.POI
		for _, t := range trs {
			pois = append(pois, m.refExtractor.Extract(t)...)
		}
		var pts []geo.Point
		if len(pois) > 0 {
			places := poi.Merge(pois, refPOIMergeRadius)
			pts = make([]geo.Point, len(places))
			for i, p := range places {
				pts[i] = p.Center
			}
			out[user] = pts
		}
		m.cache.Put(key, append([]geo.Point(nil), pts...), int64(len(pts))*pointCost+keyCost)
	}
	return out, nil
}

// ---- selection cache ----

// cachedSelection is one whole selection result: the full scorecard, the
// winner's portfolio index and the winner's protected dataset before
// pseudonymisation. Stored under the selection fingerprint plus the
// dataset (or shard) content hash, so PublishShardedContext skips
// evaluation of unchanged shards entirely and monolithic re-publication
// of an unchanged dataset is a single lookup.
type cachedSelection struct {
	evals  []Evaluation
	winIdx int            // -1 when no strategy met the floor
	prot   *trace.Dataset // nil when winIdx < 0
}

// loadSelection returns a private copy of the cached selection for the
// dataset, if present. Copies are handed out (and stored, see
// storeSelection) so neither the caller nor the cache can mutate the
// other's view.
func (m *Middleware) loadSelection(raw *trace.Dataset) (cachedSelection, bool) {
	if m.cache == nil {
		return cachedSelection{}, false
	}
	v, ok := m.cache.Get(selectionKey(m.fp.selection, raw.ContentHash()))
	if !ok {
		return cachedSelection{}, false
	}
	cs := v.(*cachedSelection)
	out := cachedSelection{
		evals:  append([]Evaluation(nil), cs.evals...),
		winIdx: cs.winIdx,
	}
	if cs.prot != nil {
		out.prot = cs.prot.Clone()
	}
	return out, true
}

// storeSelection caches a selection result for the dataset, copying the
// mutable parts so later engine or caller activity cannot poison the
// entry.
func (m *Middleware) storeSelection(raw *trace.Dataset, evals []Evaluation, winIdx int, prot *trace.Dataset) {
	if m.cache == nil {
		return
	}
	cs := &cachedSelection{
		evals:  append([]Evaluation(nil), evals...),
		winIdx: winIdx,
	}
	if winIdx >= 0 && prot != nil {
		cs.prot = prot.Clone()
	}
	cost := evalsCost(cs.evals) + datasetCost(cs.prot) + keyCost
	m.cache.Put(selectionKey(m.fp.selection, raw.ContentHash()), cs, cost)
}

// ---- adaptive portfolio pruning ----

// pruneRecord remembers the cheap proxies at which a strategy last failed
// the privacy floor on a shard: the number of trajectories it released
// and the grid coverage of its release. Both proxies grow with the amount
// of location evidence the strategy exposes, so a strategy that failed at
// (r, c) is assumed to fail again whenever it now releases at least as
// many trajectories with at least as much coverage — the full POI-recovery
// attack is skipped and the evaluation is marked Pruned instead.
//
// Hash is the content hash of the shard the record was taken on. Pruning
// only ever applies when the current shard content differs: re-evaluating
// unchanged data must reproduce the cold scorecard byte for byte even when
// its selection entry has been evicted (or is still being computed by a
// concurrent publish), so identical content always runs the full attack.
type pruneRecord struct {
	Released int
	Coverage float64
	Hash     [trace.HashSize]byte
}

// loadPruneRecord returns the disqualification record for a strategy on a
// shard, if pruning applies (cache present and a non-empty prune scope).
func (m *Middleware) loadPruneRecord(pruneKey, strategy string) (pruneRecord, bool) {
	if m.cache == nil || pruneKey == "" {
		return pruneRecord{}, false
	}
	v, ok := m.cache.Get(pruneRecordKey(m.fp.selection, pruneKey, strategy))
	if !ok {
		return pruneRecord{}, false
	}
	return v.(pruneRecord), true
}

// storePruneRecord records a full (non-pruned) evaluation that failed the
// floor, so later runs on the same shard can skip the attack when the
// proxies say the data only grew.
func (m *Middleware) storePruneRecord(pruneKey, strategy string, rec pruneRecord) {
	if m.cache == nil || pruneKey == "" {
		return
	}
	m.cache.Put(pruneRecordKey(m.fp.selection, pruneKey, strategy), rec, 80+keyCost)
}

// refPOIMergeRadius is the per-user place-merge radius of ReferencePOIs,
// shared with the cached path.
const refPOIMergeRadius = 250
