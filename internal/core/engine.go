package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/metrics"
	"apisense/internal/otrace"
	"apisense/internal/par"
	"apisense/internal/trace"
)

// evalContext is the per-run shared state of the evaluation engine: the
// middleware's global knowledge, computed once per Publish/Evaluate run and
// then read concurrently by every strategy worker. All fields are immutable
// after newEvalContext returns. The attacker extractor and recovery attack
// live on the Middleware itself (they depend only on configuration, see
// New), so a run only derives the dataset-dependent state here.
type evalContext struct {
	raw        *trace.Dataset
	truth      map[string][]geo.Point
	grid       *geo.Grid
	rawDensity metrics.Density
	// rawHash is the content hash of raw, set only when a cache is
	// configured; pruning uses it to guarantee unchanged content is never
	// pruned (see pruneRecord).
	rawHash [trace.HashSize]byte
	// traffic is the raw-side traffic-forecasting baseline; nil when the
	// dataset spans fewer than two days (traffic utility is then 0).
	traffic *trafficBaseline
}

// trafficBaseline is the strategy-independent half of the traffic-utility
// metric: the train/test cut, the held-out actual counts and the error of
// the forecaster trained on raw data.
type trafficBaseline struct {
	lastDay time.Time
	actual  *metrics.TrafficCounts
	baseMAE float64
}

// newEvalContext derives the shared analysis state from the raw dataset.
func (m *Middleware) newEvalContext(ctx context.Context, raw *trace.Dataset) (*evalContext, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	truth, err := m.referencePOIs(raw)
	if err != nil {
		return nil, err
	}
	box, ok := raw.BBox()
	if !ok {
		return nil, fmt.Errorf("core: raw dataset is empty")
	}
	grid, err := geo.NewGrid(box.Pad(500), m.cfg.CellSize)
	if err != nil {
		return nil, fmt.Errorf("core: analysis grid: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ec := &evalContext{
		raw:        raw,
		truth:      truth,
		grid:       grid,
		rawDensity: metrics.UserDensity(raw, grid),
	}
	if m.cache != nil {
		ec.rawHash = raw.ContentHash()
	}
	ec.traffic = newTrafficBaseline(raw, grid)
	return ec, nil
}

// newTrafficBaseline computes the raw-side traffic baseline, or nil when
// the dataset cannot support the train/test split (single-day span, empty
// halves, or an untrainable forecaster).
func newTrafficBaseline(raw *trace.Dataset, grid *geo.Grid) *trafficBaseline {
	start, end, ok := raw.TimeSpan()
	if !ok {
		return nil
	}
	endEve := end.Add(-time.Nanosecond) // an end exactly at midnight belongs to the previous day
	lastDay := time.Date(endEve.Year(), endEve.Month(), endEve.Day(), 0, 0, 0, 0, time.UTC)
	if !lastDay.After(start) {
		return nil // single-day dataset
	}
	rawTrain, rawTest := metrics.SplitAtDay(raw, lastDay)
	if rawTrain.Len() == 0 || rawTest.Len() == 0 {
		return nil
	}
	actual := metrics.CountTraffic(rawTest, grid)
	baseF, err := metrics.NewForecaster(metrics.CountTraffic(rawTrain, grid))
	if err != nil {
		return nil
	}
	return &trafficBaseline{
		lastDay: lastDay,
		actual:  actual,
		baseMAE: baseF.Evaluate(actual).MAE,
	}
}

// trafficUtility trains a forecaster on the protected data before the
// baseline's train/test cut and compares its error on the held-out raw day.
// Returns 0 when the baseline is unavailable.
func (ec *evalContext) trafficUtility(prot *trace.Dataset) float64 {
	if ec.traffic == nil {
		return 0
	}
	protTrain, _ := metrics.SplitAtDay(prot, ec.traffic.lastDay)
	if protTrain.Len() == 0 {
		return 0
	}
	protF, err := metrics.NewForecaster(metrics.CountTraffic(protTrain, ec.grid))
	if err != nil {
		return 0
	}
	protMAE := protF.Evaluate(ec.traffic.actual).MAE
	if protMAE == 0 {
		return 1
	}
	u := ec.traffic.baseMAE / protMAE
	if u > 1 {
		u = 1
	}
	return u
}

// winner tracks the best floor-meeting outcome seen so far, retaining only
// that outcome's protected dataset: Publish releases the winner without
// running its mechanism a second time, while the losers' datasets are
// dropped as soon as a better candidate arrives, bounding peak memory at
// one retained copy plus the in-flight copy each strategy worker holds
// while evaluating. The replacement rule —
// strictly higher utility, or equal utility at a lower portfolio index —
// selects the same strategy as an in-order scan regardless of the order in
// which concurrent workers deliver outcomes.
type winner struct {
	mu   sync.Mutex
	idx  int // portfolio index, -1 when no strategy meets the floor
	util float64
	prot *trace.Dataset
}

func (w *winner) offer(i int, ev Evaluation, prot *trace.Dataset) {
	if !ev.MeetsFloor {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.idx < 0 || ev.Utility > w.util || (ev.Utility == w.util && i < w.idx) {
		w.idx, w.util, w.prot = i, ev.Utility, prot
	}
}

// evaluateStrategy scores one strategy against the shared context,
// protecting the dataset on up to parallelism trajectory workers.
//
// A non-empty pruneKey enables adaptive portfolio pruning: the cheap
// proxies (released-trajectory count and grid coverage, both computed
// before the attack) are compared against the record of this strategy's
// last floor failure on the same shard. Both proxies grow with the amount
// of location evidence the release exposes, so when the data only grew the
// strategy is disqualified again without running the POI-recovery attack.
// Pruned evaluations carry only the proxies and can never win; a full
// evaluation that fails the floor refreshes the record.
func (m *Middleware) evaluateStrategy(ctx context.Context, ec *evalContext, s lppm.Mechanism, parallelism int, pruneKey string) (ev Evaluation, prot *trace.Dataset, err error) {
	t0 := m.cfg.Metrics.start()
	defer m.cfg.Metrics.observeStrategy(t0)
	ctx, sp := m.cfg.Tracer.Start(ctx, "core.strategy", otrace.String("strategy", s.Name()))
	defer func() { endSpan(sp, err) }()
	prot, err = lppm.ProtectDatasetContext(ctx, s, ec.raw, parallelism)
	if err != nil {
		return Evaluation{}, nil, fmt.Errorf("core: strategy %s: %w", s.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return Evaluation{}, nil, err
	}
	ev = Evaluation{
		Strategy: s.Name(),
		Released: prot.Len(),
		Coverage: metrics.Coverage(ec.raw, prot, ec.grid),
	}
	if rec, ok := m.loadPruneRecord(pruneKey, ev.Strategy); ok && rec.Hash != ec.rawHash &&
		rec.Released <= ev.Released && rec.Coverage <= ev.Coverage {
		ev.Pruned = true
		ev.PrunedReason = fmt.Sprintf(
			"failed privacy floor at released=%d coverage=%.4f; now released=%d coverage=%.4f",
			rec.Released, rec.Coverage, ev.Released, ev.Coverage)
		m.cache.AddPruned(1)
		sp.SetAttr(otrace.Bool("pruned", true))
		return ev, nil, nil
	}
	// The attack is the expensive half of an evaluation; its own span makes
	// the prune/cache savings visible on the timeline.
	_, asp := m.cfg.Tracer.Start(ctx, "core.attack")
	ev.Privacy = m.recovery.Run(ec.truth, prot)
	asp.End()
	ev.MeetsFloor = ev.Privacy.F1() <= m.cfg.MaxPOIExposure
	ev.HotspotOverlap = metrics.TopKOverlap(ec.rawDensity, metrics.UserDensity(prot, ec.grid), m.cfg.TopK)
	ev.TrafficUtility = ec.trafficUtility(prot)
	ev.Distortion = metrics.SpatialDistortion(ec.raw, prot)
	switch m.cfg.Objective {
	case ObjectiveTraffic:
		ev.Utility = ev.TrafficUtility
	case ObjectiveDistortion:
		ev.Utility = 1 / (1 + ev.Distortion.Mean/250)
	default:
		ev.Utility = ev.HotspotOverlap
	}
	if !ev.MeetsFloor {
		m.storePruneRecord(pruneKey, ev.Strategy, pruneRecord{
			Released: ev.Released, Coverage: ev.Coverage, Hash: ec.rawHash,
		})
	}
	return ev, prot, nil
}

// evaluateAll fans the portfolio out over the worker pool and fans the
// scorecards back in, preserving portfolio order. The budget (a worker
// count; sharded publication hands each shard a slice of the global
// Config.Parallelism) is split between strategy workers and per-strategy
// trajectory workers: with P workers and S strategies, min(P, S) strategies
// run concurrently and each protects trajectories on P/min(P,S) workers
// (budget 1 stays fully sequential; a single-strategy portfolio gives the
// whole budget to trajectory workers).
//
// When track is non-nil every outcome is offered to it, retaining the best
// floor-meeting protected dataset for Publish; a nil track (Evaluate)
// keeps no protected data at all. pruneKey scopes adaptive pruning (see
// evaluateStrategy); empty disables it, which Evaluate relies on to stay a
// pure scorecard.
func (m *Middleware) evaluateAll(ctx context.Context, raw *trace.Dataset, track *winner, budget int, pruneKey string) ([]Evaluation, error) {
	ec, err := m.newEvalContext(ctx, raw)
	if err != nil {
		return nil, err
	}
	if budget < 1 {
		budget = 1
	}
	n := len(m.strategies)
	workers := budget
	if workers > n {
		workers = n
	}
	inner := budget / workers // workers >= 1: New requires a non-empty portfolio
	evals := make([]Evaluation, n)
	err = par.For(ctx, n, workers, func(ctx context.Context, i int) error {
		ev, prot, err := m.evaluateStrategy(ctx, ec, m.strategies[i], inner, pruneKey)
		if err != nil {
			return err
		}
		if track != nil {
			track.offer(i, ev, prot)
		}
		evals[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return evals, nil
}

// EvaluateContext scores every candidate strategy against the raw dataset
// on the concurrent evaluation engine. The report is byte-identical for any
// Config.Parallelism; evaluations appear in portfolio order. The run is
// abandoned promptly when ctx is cancelled.
func (m *Middleware) EvaluateContext(ctx context.Context, raw *trace.Dataset) (evals []Evaluation, err error) {
	t0 := m.cfg.Metrics.start()
	defer m.cfg.Metrics.observeEvaluate(t0)
	ctx, sp := m.cfg.Tracer.Start(ctx, "core.evaluate")
	defer func() { endSpan(sp, err) }()
	// No selection caching and no pruning: Evaluate is a pure scorecard and
	// must always report the full attack for every strategy. It still
	// benefits from the reference-POI and attacker-extraction memoization.
	return m.evaluateAll(ctx, raw, nil, m.cfg.Parallelism, "")
}

// Evaluate scores every candidate strategy against the raw dataset. It is
// EvaluateContext with a background context.
func (m *Middleware) Evaluate(raw *trace.Dataset) ([]Evaluation, error) {
	//lint:allow ctxflow convenience wrapper, EvaluateContext is the cancellable form
	return m.EvaluateContext(context.Background(), raw)
}

// selectStrategies is the cached selection step shared by PublishContext
// and publishShard: evaluate the portfolio with winner tracking, or serve
// the whole result (scorecard, winner index, pre-pseudonymisation protected
// dataset) from the evaluation cache when the dataset content and the
// configuration fingerprint match a prior run. Cache hits bypass pruning
// entirely, so unchanged data always reports the full cold scorecard.
func (m *Middleware) selectStrategies(ctx context.Context, raw *trace.Dataset, pruneKey string, budget int) (evals []Evaluation, winIdx int, prot *trace.Dataset, err error) {
	if err := ctx.Err(); err != nil {
		return nil, -1, nil, err
	}
	ctx, sp := m.cfg.Tracer.Start(ctx, "core.select")
	defer func() { endSpan(sp, err) }()
	if cs, ok := m.loadSelection(raw); ok {
		sp.SetAttr(otrace.Bool("cache_hit", true))
		return cs.evals, cs.winIdx, cs.prot, nil
	}
	if m.cache != nil {
		sp.SetAttr(otrace.Bool("cache_hit", false))
	}
	track := &winner{idx: -1}
	evals, err = m.evaluateAll(ctx, raw, track, budget, pruneKey)
	if err != nil {
		return nil, -1, nil, err
	}
	m.storeSelection(raw, evals, track.idx, track.prot)
	return evals, track.idx, track.prot, nil
}

// PublishContext evaluates the portfolio, selects the best strategy meeting
// the privacy floor, and returns the protected (and, when a pseudonym key
// is configured, pseudonymised) dataset together with the full selection
// report. The winner's dataset is the one produced during evaluation — the
// mechanism is not run a second time. When no strategy meets the floor, it
// returns ErrNoStrategy and a selection whose Chosen field is empty. The
// run is abandoned promptly when ctx is cancelled.
func (m *Middleware) PublishContext(ctx context.Context, raw *trace.Dataset) (_ *trace.Dataset, _ *Selection, err error) {
	t0 := m.cfg.Metrics.start()
	defer m.cfg.Metrics.observePublish(t0)
	ctx, sp := m.cfg.Tracer.Start(ctx, "core.publish")
	defer func() { endSpan(sp, err) }()
	evals, winIdx, prot, err := m.selectStrategies(ctx, raw, monolithicPruneKey, m.cfg.Parallelism)
	if err != nil {
		return nil, nil, err
	}
	sel := &Selection{
		Objective:   m.cfg.Objective,
		Floor:       m.cfg.MaxPOIExposure,
		Evaluations: evals,
	}
	if winIdx < 0 {
		return nil, sel, ErrNoStrategy
	}
	sel.Chosen = evals[winIdx].Strategy

	if len(m.cfg.PseudonymKey) > 0 {
		p, err := trace.NewPseudonymizer(m.cfg.PseudonymKey)
		if err != nil {
			return nil, sel, fmt.Errorf("core: pseudonymizer: %w", err)
		}
		prot = p.Apply(prot)
	}
	return prot, sel, nil
}

// Publish is PublishContext with a background context.
func (m *Middleware) Publish(raw *trace.Dataset) (*trace.Dataset, *Selection, error) {
	//lint:allow ctxflow convenience wrapper, PublishContext is the cancellable form
	return m.PublishContext(context.Background(), raw)
}
