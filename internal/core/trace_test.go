package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"apisense/internal/otrace"
)

// TestTracingDoesNotAffectDeterminism: attaching a Tracer must not change a
// single byte of the report or the release, at any parallelism. The
// baseline is the untraced parallelism-1 run; every other combination —
// traced or not, parallelism 1, 4 or 8 — must reproduce it exactly.
func TestTracingDoesNotAffectDeterminism(t *testing.T) {
	ds := fixture(t)
	policy := mustPolicy(t)(NewShardByUser(4))
	var refSel *ShardedSelection
	var refRelease []byte
	var refJSON []byte
	for _, parallelism := range []int{1, 4, 8} {
		for _, traced := range []bool{false, true} {
			cfg := Config{Parallelism: parallelism, PseudonymKey: []byte("trace-det")}
			if traced {
				cfg.Tracer = otrace.New(otrace.Config{Store: otrace.NewSpanStore(64)})
			}
			m, err := New(cfg, lyon)
			if err != nil {
				t.Fatal(err)
			}
			release, sel, err := m.PublishShardedContext(context.Background(), ds, policy)
			if err != nil {
				t.Fatalf("parallelism %d traced %v: %v", parallelism, traced, err)
			}
			selJSON, err := json.Marshal(sel)
			if err != nil {
				t.Fatal(err)
			}
			relJSON, err := json.Marshal(release.Trajectories)
			if err != nil {
				t.Fatal(err)
			}
			if refSel == nil {
				refSel, refRelease, refJSON = sel, relJSON, selJSON
				continue
			}
			if string(refJSON) != string(selJSON) {
				t.Errorf("parallelism %d traced %v: report bytes differ from untraced baseline", parallelism, traced)
			}
			if !reflect.DeepEqual(refSel, sel) {
				t.Errorf("parallelism %d traced %v: report structure differs", parallelism, traced)
			}
			if string(refRelease) != string(relJSON) {
				t.Errorf("parallelism %d traced %v: released dataset bytes differ", parallelism, traced)
			}
			if traced && cfg.Tracer.Store().Len() == 0 {
				t.Error("traced run recorded no spans: tracer was not exercised")
			}
		}
	}
}

// children returns node's direct children with the given name.
func children(n *otrace.SpanNode, name string) []*otrace.SpanNode {
	var out []*otrace.SpanNode
	for _, c := range n.Children {
		if c.Span.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// attr returns the value of the named attribute, or "" when absent.
func attr(n *otrace.SpanNode, key string) string {
	for _, a := range n.Span.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestPublishShardedTraceTree: one PublishSharded run produces exactly one
// trace whose assembled tree mirrors the pipeline — partition, one shard
// span per shard (each holding the cached selection with one strategy span
// per portfolio member and the attack nested inside), and the final merge.
func TestPublishShardedTraceTree(t *testing.T) {
	ds := fixture(t)
	store := otrace.NewSpanStore(8)
	tracer := otrace.New(otrace.Config{Store: store})
	m, err := New(Config{Parallelism: 4, PseudonymKey: []byte("tree"), Tracer: tracer}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	policy := mustPolicy(t)(NewShardByUser(3))
	_, sel, err := m.PublishShardedContext(context.Background(), ds, policy)
	if err != nil {
		t.Fatal(err)
	}

	sums := store.Summaries()
	if len(sums) != 1 {
		t.Fatalf("%d traces retained, want exactly 1", len(sums))
	}
	if sums[0].Root != "core.publish_sharded" {
		t.Fatalf("trace root = %q, want core.publish_sharded", sums[0].Root)
	}
	spans, ok := store.Spans(sums[0].TraceID)
	if !ok {
		t.Fatal("trace vanished from store")
	}
	roots := otrace.Assemble(spans)
	if len(roots) != 1 {
		t.Fatalf("%d roots after assembly, want 1", len(roots))
	}
	root := roots[0]
	if got := attr(root, "policy"); got != policy.Name() {
		t.Errorf("policy attr = %q, want %q", got, policy.Name())
	}

	parts := children(root, "core.partition")
	if len(parts) != 1 {
		t.Fatalf("%d core.partition spans, want 1", len(parts))
	}
	shardNodes := children(root, "core.shard")
	if got := attr(parts[0], "shards"); got == "" || len(shardNodes) != len(sel.Shards) {
		t.Fatalf("partition shards attr %q with %d core.shard spans, want %d",
			got, len(shardNodes), len(sel.Shards))
	}
	merges := children(root, "core.merge")
	if len(merges) != 1 {
		t.Fatalf("%d core.merge spans, want 1", len(merges))
	}
	if attr(merges[0], "released") == "" || attr(merges[0], "withheld") == "" {
		t.Error("core.merge span lacks released/withheld attrs")
	}

	keys := map[string]bool{}
	for _, sh := range shardNodes {
		keys[attr(sh, "key")] = true
		sels := children(sh, "core.select")
		if len(sels) != 1 {
			t.Fatalf("shard %q has %d core.select spans, want 1", attr(sh, "key"), len(sels))
		}
		strategies := children(sels[0], "core.strategy")
		if len(strategies) != len(m.Strategies()) {
			t.Errorf("shard %q evaluated %d strategies, want %d",
				attr(sh, "key"), len(strategies), len(m.Strategies()))
		}
		for _, st := range strategies {
			// A cold run has no prune records: every strategy runs exactly
			// one attack.
			if attacks := children(st, "core.attack"); len(attacks) != 1 {
				t.Errorf("strategy %q has %d core.attack spans, want 1",
					attr(st, "strategy"), len(attacks))
			}
		}
	}
	for _, sh := range sel.Shards {
		if !keys[sh.Key] {
			t.Errorf("no core.shard span for shard %q", sh.Key)
		}
	}
}
