package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"apisense/internal/lppm"
	"apisense/internal/trace"
)

func mustPolicy(t *testing.T) func(ShardBy, error) ShardBy {
	t.Helper()
	return func(p ShardBy, err error) ShardBy {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

func testPolicies(t *testing.T) map[string]ShardBy {
	t.Helper()
	must := mustPolicy(t)
	return map[string]ShardBy{
		"window": must(NewShardByWindow(48 * time.Hour)),
		"cell":   must(NewShardByCell(3000)),
		"user":   must(NewShardByUser(4)),
	}
}

func TestShardPolicyValidation(t *testing.T) {
	if _, err := NewShardByCell(0); err == nil {
		t.Error("zero cell size should fail")
	}
	if _, err := NewShardByWindow(-time.Hour); err == nil {
		t.Error("negative window should fail")
	}
	if _, err := NewShardByUser(0); err == nil {
		t.Error("zero buckets should fail")
	}
}

func TestShardPolicyFromSpec(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"cell", "cell(size=2000m)"},
		{"cell:size=500", "cell(size=500m)"},
		{"window", "window(24h0m0s)"},
		{"window:dur=6h", "window(6h0m0s)"},
		{"user", "user(buckets=8)"},
		{"user:buckets=3", "user(buckets=3)"},
	}
	for _, c := range cases {
		p, err := ShardPolicyFromSpec(c.spec)
		if err != nil {
			t.Fatalf("spec %q: %v", c.spec, err)
		}
		if p.Name() != c.name {
			t.Errorf("spec %q -> %q, want %q", c.spec, p.Name(), c.name)
		}
	}
	for _, bad := range []string{"hexagon", "cell:size=x", "window:dur=soon", "user:buckets=-1", "cell:size"} {
		if _, err := ShardPolicyFromSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// TestPartitionCoversDataset: every trajectory lands in exactly one shard,
// keys are sorted, and data is shared, not copied.
func TestPartitionCoversDataset(t *testing.T) {
	ds := fixture(t)
	for name, policy := range testPolicies(t) {
		shards, err := Partition(ds, policy)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(shards) < 2 {
			t.Errorf("%s: only %d shards; fixture should split", name, len(shards))
		}
		total := 0
		for i, sh := range shards {
			total += sh.Data.Len()
			if i > 0 && shards[i-1].Key >= sh.Key {
				t.Errorf("%s: keys not strictly ascending: %q >= %q", name, shards[i-1].Key, sh.Key)
			}
		}
		if total != ds.Len() {
			t.Errorf("%s: %d trajectories across shards, want %d", name, total, ds.Len())
		}
	}
}

// TestPartitionUserKeepsUsersTogether: the user policy never splits one
// user's history across shards.
func TestPartitionUserKeepsUsersTogether(t *testing.T) {
	ds := fixture(t)
	shards, err := Partition(ds, mustPolicy(t)(NewShardByUser(3)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, sh := range shards {
		for _, tr := range sh.Data.Trajectories {
			if prev, ok := seen[tr.User]; ok && prev != sh.Key {
				t.Fatalf("user %s split across shards %s and %s", tr.User, prev, sh.Key)
			}
			seen[tr.User] = sh.Key
		}
	}
}

// TestPartitionDropsEmptyTrajectories: trajectories without records are
// dropped by record-keyed policies instead of crashing them.
func TestPartitionDropsEmptyTrajectories(t *testing.T) {
	ds := fixture(t).Clone()
	ds.Add(&trace.Trajectory{User: "ghost"})
	for _, name := range []string{"window", "cell"} {
		shards, err := Partition(ds, testPolicies(t)[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, sh := range shards {
			total += sh.Data.Len()
		}
		if total != ds.Len()-1 {
			t.Errorf("%s: %d trajectories sharded, want %d (ghost dropped)", name, total, ds.Len()-1)
		}
	}
}

// TestPublishShardedDeterminism: the report and the release must be
// byte-identical for any Parallelism and for every policy — the sharded
// mirror of the PR 2 engine determinism guarantee.
func TestPublishShardedDeterminism(t *testing.T) {
	ds := fixture(t)
	for name, policy := range testPolicies(t) {
		var refSel *ShardedSelection
		var refRelease *trace.Dataset
		var refJSON []byte
		for _, parallelism := range []int{1, 3, 8} {
			m, err := New(Config{Parallelism: parallelism, PseudonymKey: []byte("shard-det")}, lyon)
			if err != nil {
				t.Fatal(err)
			}
			release, sel, err := m.PublishShardedContext(context.Background(), ds, policy)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", name, parallelism, err)
			}
			selJSON, err := json.Marshal(sel)
			if err != nil {
				t.Fatal(err)
			}
			if refSel == nil {
				refSel, refRelease, refJSON = sel, release, selJSON
				continue
			}
			if !reflect.DeepEqual(refSel, sel) {
				t.Errorf("%s: report differs between parallelism 1 and %d", name, parallelism)
			}
			if string(refJSON) != string(selJSON) {
				t.Errorf("%s: serialized report not byte-identical at parallelism %d", name, parallelism)
			}
			if !reflect.DeepEqual(refRelease, release) {
				t.Errorf("%s: released dataset differs at parallelism %d", name, parallelism)
			}
		}
	}
}

// TestPublishShardedSingleShardMatchesMonolithic: with every trajectory in
// one shard the sharded pipeline must reproduce the monolithic publication
// exactly (same winner, same evaluations, same released bytes).
func TestPublishShardedSingleShardMatchesMonolithic(t *testing.T) {
	ds := fixture(t)
	cfg := Config{Parallelism: 4, PseudonymKey: []byte("mono")}
	m, err := New(cfg, lyon)
	if err != nil {
		t.Fatal(err)
	}
	monoRelease, monoSel, err := m.PublishContext(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	oneShard := mustPolicy(t)(NewShardByUser(1))
	shRelease, shSel, err := m.PublishShardedContext(context.Background(), ds, oneShard)
	if err != nil {
		t.Fatal(err)
	}
	if len(shSel.Shards) != 1 {
		t.Fatalf("%d shards, want 1", len(shSel.Shards))
	}
	if shSel.Shards[0].Chosen != monoSel.Chosen {
		t.Errorf("single shard chose %s, monolithic chose %s", shSel.Shards[0].Chosen, monoSel.Chosen)
	}
	if !reflect.DeepEqual(shSel.Shards[0].Evaluations, monoSel.Evaluations) {
		t.Error("single-shard evaluations differ from monolithic")
	}
	if !reflect.DeepEqual(shRelease, monoRelease) {
		t.Error("single-shard release differs from monolithic release")
	}
	if shSel.WorstShard != shSel.Shards[0].Key {
		t.Errorf("worst shard %q, want %q", shSel.WorstShard, shSel.Shards[0].Key)
	}
}

// TestPublishShardedAggregates: worst-shard privacy and size-weighted
// utility must follow from the per-shard outcomes, and the privacy floor
// must hold in every released shard.
func TestPublishShardedAggregates(t *testing.T) {
	ds := fixture(t)
	m, err := New(Config{Parallelism: 4}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	policy := mustPolicy(t)(NewShardByWindow(48 * time.Hour))
	release, sel, err := m.PublishShardedContext(context.Background(), ds, policy)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Policy != policy.Name() {
		t.Errorf("policy = %q, want %q", sel.Policy, policy.Name())
	}
	var worst float64
	var worstKey string
	var wUtil, wSum float64
	released := 0
	for _, sh := range sel.Shards {
		if sh.Chosen == "" {
			continue
		}
		if sh.Exposure > sel.Floor {
			t.Errorf("shard %s released with exposure %.3f above floor %.3f", sh.Key, sh.Exposure, sel.Floor)
		}
		if sh.Exposure > worst || worstKey == "" {
			worst, worstKey = sh.Exposure, sh.Key
		}
		wUtil += float64(sh.Records) * sh.Utility
		wSum += float64(sh.Records)
		released += sh.Released
	}
	if sel.WorstExposure != worst || sel.WorstShard != worstKey {
		t.Errorf("worst = (%.3f, %s), want (%.3f, %s)", sel.WorstExposure, sel.WorstShard, worst, worstKey)
	}
	if wSum > 0 {
		if want := wUtil / wSum; sel.Utility != want {
			t.Errorf("utility = %v, want record-weighted %v", sel.Utility, want)
		}
	}
	if sel.Released != released || release.Len() != released {
		t.Errorf("released = %d (report) / %d (dataset), want %d", sel.Released, release.Len(), released)
	}
}

// TestPublishShardedWithholdsFailingShards: when no strategy meets the
// floor anywhere, every shard is withheld and the error is ErrNoStrategy.
func TestPublishShardedWithholdsFailingShards(t *testing.T) {
	ds := fixture(t)
	m, err := New(Config{
		Strategies:     []lppm.Mechanism{lppm.Identity{}},
		MaxPOIExposure: 0.1,
		Parallelism:    4,
	}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	release, sel, err := m.PublishShardedContext(context.Background(), ds, mustPolicy(t)(NewShardByUser(3)))
	if !errors.Is(err, ErrNoStrategy) {
		t.Fatalf("err = %v, want ErrNoStrategy", err)
	}
	if release != nil {
		t.Error("withheld publication returned a dataset")
	}
	if sel == nil || sel.Released != 0 {
		t.Fatal("report should be returned with Released == 0")
	}
	if sel.Withheld != ds.Len() {
		t.Errorf("withheld %d trajectories, want %d", sel.Withheld, ds.Len())
	}
	for _, sh := range sel.Shards {
		if sh.Chosen != "" {
			t.Errorf("shard %s chose %q, want none", sh.Key, sh.Chosen)
		}
	}
}

// TestPublishShardedPseudonymisesOnce: pseudonyms must be consistent across
// shards — one user keeps one pseudonym in the merged release.
func TestPublishShardedPseudonymisesOnce(t *testing.T) {
	ds := fixture(t)
	m, err := New(Config{Parallelism: 2, PseudonymKey: []byte("cross-shard")}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	release, _, err := m.PublishShardedContext(context.Background(), ds, mustPolicy(t)(NewShardByWindow(24*time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(release.Users()), len(ds.Users()); got > want {
		t.Errorf("release has %d pseudonyms for %d users: inconsistent across shards", got, want)
	}
	for _, tr := range release.Trajectories {
		if strings.HasPrefix(tr.User, "user-") {
			t.Fatalf("release leaks raw user id %q", tr.User)
		}
	}
}

// TestPublishShardedCancellation: a cancelled context aborts the sharded
// run promptly.
func TestPublishShardedCancellation(t *testing.T) {
	ds := fixture(t)
	m, err := New(Config{Parallelism: 4}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := m.PublishShardedContext(ctx, ds, mustPolicy(t)(NewShardByUser(2))); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestPublishShardedValidation: nil policy and empty dataset are rejected.
func TestPublishShardedValidation(t *testing.T) {
	m, err := New(Config{}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PublishSharded(fixture(t), nil); err == nil {
		t.Error("nil policy should fail")
	}
	if _, _, err := m.PublishSharded(trace.NewDataset(), mustPolicy(t)(NewShardByCell(1000))); err == nil {
		t.Error("empty dataset should fail")
	}
}
