package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"apisense/internal/geo"
	"apisense/internal/otrace"
	"apisense/internal/par"
	"apisense/internal/trace"
)

// ShardBy is a pluggable partitioning policy: it assigns every trajectory
// of a dataset to a named shard. Policies must be deterministic — the same
// dataset must always produce the same assignment — because the sharded
// publication report is required to be byte-identical across runs.
//
// Shards are evaluated independently by the publication engine, so a policy
// should group trajectories that form a coherent release unit (a region
// grid-cell, a time window, a stable user bucket).
type ShardBy interface {
	// Name identifies the policy in reports (e.g. "cell(size=2000)").
	Name() string
	// Assign returns one shard key per trajectory of raw, in trajectory
	// order. An empty key drops the trajectory from the sharded release
	// (used for trajectories a policy cannot place, e.g. empty ones).
	Assign(raw *trace.Dataset) ([]string, error)
}

// shardByCell partitions by region: each trajectory goes to the grid cell
// containing its first record.
type shardByCell struct {
	cellMeters float64
}

// NewShardByCell returns the region policy: a square grid of cellMeters is
// laid over the dataset's bounding box and each trajectory is assigned to
// the cell of its first record. cellMeters must be positive.
func NewShardByCell(cellMeters float64) (ShardBy, error) {
	if cellMeters <= 0 {
		return nil, fmt.Errorf("core: shard cell size must be positive, got %v", cellMeters)
	}
	return shardByCell{cellMeters: cellMeters}, nil
}

func (s shardByCell) Name() string { return fmt.Sprintf("cell(size=%.0fm)", s.cellMeters) }

func (s shardByCell) Assign(raw *trace.Dataset) ([]string, error) {
	box, ok := raw.BBox()
	if !ok {
		return nil, fmt.Errorf("core: cannot shard an empty dataset by cell")
	}
	grid, err := geo.NewGrid(box, s.cellMeters)
	if err != nil {
		return nil, fmt.Errorf("core: shard grid: %w", err)
	}
	keys := make([]string, raw.Len())
	for i, t := range raw.Trajectories {
		if len(t.Records) == 0 {
			continue // empty key: dropped
		}
		c := grid.CellOf(t.Records[0].Pos)
		keys[i] = fmt.Sprintf("cell/r%04dc%04d", c.Row, c.Col)
	}
	return keys, nil
}

// shardByWindow partitions by time: each trajectory goes to the window
// containing its first record.
type shardByWindow struct {
	window time.Duration
}

// NewShardByWindow returns the time-window policy: trajectories are
// assigned to fixed UTC windows of the given duration (their first record
// decides the window; a trajectory is "typically one day of data", §3 of
// the paper, so it rarely straddles a boundary). Callers holding one long
// trajectory per user (e.g. after a CSV round-trip) should split it first —
// Dataset.SplitDays — or every trajectory lands in the first window.
// window must be positive.
func NewShardByWindow(window time.Duration) (ShardBy, error) {
	if window <= 0 {
		return nil, fmt.Errorf("core: shard window must be positive, got %v", window)
	}
	return shardByWindow{window: window}, nil
}

func (s shardByWindow) Name() string { return fmt.Sprintf("window(%s)", s.window) }

func (s shardByWindow) Assign(raw *trace.Dataset) ([]string, error) {
	keys := make([]string, raw.Len())
	for i, t := range raw.Trajectories {
		if len(t.Records) == 0 {
			continue
		}
		start := t.Records[0].Time.UTC().Truncate(s.window)
		keys[i] = "window/" + start.Format(time.RFC3339)
	}
	return keys, nil
}

// shardByUser partitions by stable user hash, giving evenly-sized shards
// regardless of spatial or temporal skew.
type shardByUser struct {
	buckets int
}

// NewShardByUser returns the user-hash policy: each user's trajectories are
// assigned to one of buckets shards by FNV-1a hash of the user identifier,
// so a user's whole history stays in one shard. buckets must be positive.
func NewShardByUser(buckets int) (ShardBy, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("core: shard buckets must be positive, got %d", buckets)
	}
	return shardByUser{buckets: buckets}, nil
}

func (s shardByUser) Name() string { return fmt.Sprintf("user(buckets=%d)", s.buckets) }

func (s shardByUser) Assign(raw *trace.Dataset) ([]string, error) {
	keys := make([]string, raw.Len())
	for i, t := range raw.Trajectories {
		h := fnv.New32a()
		h.Write([]byte(t.User))
		keys[i] = fmt.Sprintf("user/bucket-%03d", h.Sum32()%uint32(s.buckets))
	}
	return keys, nil
}

// ShardPolicyFromSpec parses a textual shard policy, mirroring
// lppm.FromSpec:
//
//	cell:size=2000       region grid cells of 2000 m (default 2000)
//	window:dur=24h       UTC time windows of 24h (default 24h)
//	user:buckets=8       stable user-hash buckets (default 8)
func ShardPolicyFromSpec(spec string) (ShardBy, error) {
	name, args, _ := strings.Cut(spec, ":")
	params := map[string]string{}
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("core: shard spec %q: bad parameter %q", spec, kv)
			}
			params[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	switch name {
	case "cell":
		size := 2000.0
		if v, ok := params["size"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("core: shard spec %q: bad size %q", spec, v)
			}
			size = f
		}
		return NewShardByCell(size)
	case "window":
		dur := 24 * time.Hour
		if v, ok := params["dur"]; ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("core: shard spec %q: bad dur %q: %v", spec, v, err)
			}
			dur = d
		}
		return NewShardByWindow(dur)
	case "user":
		buckets := 8
		if v, ok := params["buckets"]; ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("core: shard spec %q: bad buckets %q", spec, v)
			}
			buckets = n
		}
		return NewShardByUser(buckets)
	default:
		return nil, fmt.Errorf("core: unknown shard policy %q (want cell, window or user)", name)
	}
}

// Shard is one partition of a dataset: the shard key and the trajectories
// assigned to it, in input order.
type Shard struct {
	Key  string
	Data *trace.Dataset
}

// Partition splits raw into shards according to by. Shards are returned in
// ascending key order regardless of trajectory order, and every trajectory
// with a non-empty key appears in exactly one shard. Trajectory data is
// shared with raw, not copied.
func Partition(raw *trace.Dataset, by ShardBy) ([]Shard, error) {
	keys, err := by.Assign(raw)
	if err != nil {
		return nil, err
	}
	if len(keys) != raw.Len() {
		return nil, fmt.Errorf("core: policy %s assigned %d keys for %d trajectories", by.Name(), len(keys), raw.Len())
	}
	byKey := make(map[string]*Shard)
	var order []string
	for i, key := range keys {
		if key == "" {
			continue
		}
		sh, ok := byKey[key]
		if !ok {
			sh = &Shard{Key: key, Data: trace.NewDataset()}
			byKey[key] = sh
			order = append(order, key)
		}
		sh.Data.Add(raw.Trajectories[i])
	}
	sort.Strings(order)
	out := make([]Shard, len(order))
	for i, key := range order {
		out[i] = *byKey[key]
	}
	return out, nil
}

// ShardOutcome is one shard's entry in a sharded publication report.
type ShardOutcome struct {
	// Key is the shard key assigned by the policy.
	Key string
	// Trajectories and Records count the shard's raw input.
	Trajectories int
	Records      int
	// Chosen is the winning strategy for this shard; empty when no
	// strategy met the floor, in which case the shard is withheld from the
	// merged release.
	Chosen string
	// Exposure is the chosen strategy's POI-exposure F1 (0 when withheld).
	Exposure float64
	// Utility is the chosen strategy's objective utility (0 when
	// withheld).
	Utility float64
	// Released is the number of trajectories the shard contributes to the
	// merged release.
	Released int
	// Evaluations holds the shard's full scorecard, in portfolio order.
	Evaluations []Evaluation
}

// ShardedSelection is the merged report of a sharded publication. The
// merge rules follow the conservative composition of per-shard guarantees:
// privacy is the worst shard (an attacker attacks the weakest partition),
// utility is the size-weighted mean over released shards (a consumer's
// aggregate query spans shards in proportion to their data).
type ShardedSelection struct {
	// Objective and Floor echo the configuration.
	Objective Objective
	Floor     float64
	// Policy is the partitioning policy name.
	Policy string
	// Shards holds the per-shard outcomes in ascending key order.
	Shards []ShardOutcome
	// WorstExposure is the maximum chosen-strategy exposure across
	// released shards, and WorstShard the key it occurred in. The merged
	// release's privacy guarantee is the worst shard's.
	WorstExposure float64
	WorstShard    string
	// Utility, HotspotOverlap and TrafficUtility are record-weighted means
	// over released shards.
	Utility        float64
	HotspotOverlap float64
	TrafficUtility float64
	// Released counts trajectories in the merged release; Withheld counts
	// raw trajectories of shards that met no strategy.
	Released int
	Withheld int
}

// shardResult is one shard's raw engine output before merging.
type shardResult struct {
	evals  []Evaluation
	winIdx int // -1 when no strategy met the floor
	prot   *trace.Dataset
}

// publishShard runs the selection engine on one shard with the given
// worker budget, returning the scorecard and the winner's protected data.
// Selection is cached per shard-content hash (see selectStrategies), so an
// incremental re-publication only evaluates the shards whose data changed;
// the shard key scopes the pruning records.
func (m *Middleware) publishShard(ctx context.Context, sh Shard, budget int) (_ shardResult, err error) {
	t0 := m.cfg.Metrics.start()
	defer m.cfg.Metrics.observeShard(t0)
	// Shard keys are policy-derived (grid cells, time windows, hash
	// buckets), never user identifiers, so they are telemetry-safe.
	ctx, sp := m.cfg.Tracer.Start(ctx, "core.shard", otrace.String("key", sh.Key))
	defer func() { endSpan(sp, err) }()
	evals, winIdx, prot, err := m.selectStrategies(ctx, sh.Data, sh.Key, budget)
	if err != nil {
		return shardResult{}, fmt.Errorf("core: shard %s: %w", sh.Key, err)
	}
	return shardResult{evals: evals, winIdx: winIdx, prot: prot}, nil
}

// PublishShardedContext partitions raw with by, runs the strategy-selection
// engine on every shard, and merges the per-shard winners into one released
// dataset plus an aggregate report. Each shard independently selects the
// strategy that maximises the configured objective subject to the privacy
// floor, so different regions or time windows may be protected by different
// mechanisms.
//
// The Config.Parallelism budget is shared globally across shards: with P
// workers and K shards, min(P, K) shards are evaluated concurrently and
// each divides its share of the budget between strategy and trajectory
// workers, so sharding never oversubscribes the pool.
//
// Shards where no strategy meets the floor are withheld from the release
// (their raw data is not published in any form) and reported with an empty
// Chosen. When every shard is withheld the error is ErrNoStrategy. The
// merged release concatenates shards in ascending key order (within-shard
// trajectory order is preserved) and is pseudonymised once, after merging,
// so pseudonyms are consistent across shards. The report and release are
// byte-identical for any Config.Parallelism. The run is abandoned promptly
// when ctx is cancelled.
func (m *Middleware) PublishShardedContext(ctx context.Context, raw *trace.Dataset, by ShardBy) (_ *trace.Dataset, _ *ShardedSelection, err error) {
	t0 := m.cfg.Metrics.start()
	defer m.cfg.Metrics.observePublish(t0)
	if by == nil {
		return nil, nil, fmt.Errorf("core: a shard policy is required (use PublishContext for monolithic releases)")
	}
	ctx, sp := m.cfg.Tracer.Start(ctx, "core.publish_sharded", otrace.String("policy", by.Name()))
	defer func() { endSpan(sp, err) }()
	_, psp := m.cfg.Tracer.Start(ctx, "core.partition")
	shards, perr := Partition(raw, by)
	if perr != nil {
		endSpan(psp, perr)
		return nil, nil, perr
	}
	psp.SetAttr(otrace.Int("shards", len(shards)))
	psp.End()
	if len(shards) == 0 {
		return nil, nil, fmt.Errorf("core: policy %s produced no shards", by.Name())
	}

	// Split the global budget: outer shards in flight, inner workers each.
	outer := m.cfg.Parallelism
	if outer > len(shards) {
		outer = len(shards)
	}
	inner := m.cfg.Parallelism / outer

	results := make([]shardResult, len(shards))
	err = par.For(ctx, len(shards), outer, func(ctx context.Context, i int) error {
		res, err := m.publishShard(ctx, shards[i], inner)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	_, msp := m.cfg.Tracer.Start(ctx, "core.merge")
	sel := &ShardedSelection{
		Objective: m.cfg.Objective,
		Floor:     m.cfg.MaxPOIExposure,
		Policy:    by.Name(),
		Shards:    make([]ShardOutcome, len(shards)),
	}
	release := trace.NewDataset()
	var wUtil, wOverlap, wTraffic, wSum float64
	for i, sh := range shards {
		res := results[i]
		out := ShardOutcome{
			Key:          sh.Key,
			Trajectories: sh.Data.Len(),
			Records:      sh.Data.NumRecords(),
			Evaluations:  res.evals,
		}
		if res.winIdx >= 0 {
			win := res.evals[res.winIdx]
			out.Chosen = win.Strategy
			out.Exposure = win.Privacy.F1()
			out.Utility = win.Utility
			out.Released = res.prot.Len()
			for _, tr := range res.prot.Trajectories {
				release.Add(tr)
			}
			if out.Exposure > sel.WorstExposure || sel.WorstShard == "" {
				sel.WorstExposure, sel.WorstShard = out.Exposure, sh.Key
			}
			w := float64(out.Records)
			wUtil += w * win.Utility
			wOverlap += w * win.HotspotOverlap
			wTraffic += w * win.TrafficUtility
			wSum += w
			sel.Released += out.Released
		} else {
			sel.Withheld += sh.Data.Len()
		}
		sel.Shards[i] = out
	}
	if wSum > 0 {
		sel.Utility = wUtil / wSum
		sel.HotspotOverlap = wOverlap / wSum
		sel.TrafficUtility = wTraffic / wSum
	}
	msp.SetAttr(otrace.Int("released", sel.Released), otrace.Int("withheld", sel.Withheld))
	msp.End()
	if sel.Released == 0 {
		return nil, sel, ErrNoStrategy
	}

	if len(m.cfg.PseudonymKey) > 0 {
		p, err := trace.NewPseudonymizer(m.cfg.PseudonymKey)
		if err != nil {
			return nil, sel, fmt.Errorf("core: pseudonymizer: %w", err)
		}
		release = p.Apply(release)
	}
	return release, sel, nil
}

// PublishSharded is PublishShardedContext with a background context.
func (m *Middleware) PublishSharded(raw *trace.Dataset, by ShardBy) (*trace.Dataset, *ShardedSelection, error) {
	//lint:allow ctxflow convenience wrapper, PublishShardedContext is the cancellable form
	return m.PublishShardedContext(context.Background(), raw, by)
}
