package core

import (
	"apisense/internal/apierr"
	"apisense/internal/otrace"
)

// endSpan closes a publication-engine span, stamping the outcome first:
// the stable apierr code when err carries one, the raw error text
// otherwise (engine errors are static format strings — dataset content
// never leaks into span attributes). Nil-safe on sp, so call sites stay
// unconditional whether tracing is configured or not.
func endSpan(sp *otrace.ActiveSpan, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		code := apierr.Code(err)
		if code == "" {
			code = err.Error()
		}
		sp.SetErr(code)
	}
	sp.End()
}
