package core

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"apisense/internal/evalcache"
	"apisense/internal/lppm"
	"apisense/internal/mobgen"
	"apisense/internal/trace"
)

// marshal serialises any report or dataset for byte-level comparison.
func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func newCached(t *testing.T, cache evalcache.Cache, parallelism int) *Middleware {
	t.Helper()
	m, err := New(Config{Parallelism: parallelism, PseudonymKey: []byte("warm"), Cache: cache}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPublishColdWarmByteIdentical: for unchanged data the cached engine
// must reproduce the uncached selection report and release byte for byte,
// at any parallelism, whether the result is computed or served warm.
func TestPublishColdWarmByteIdentical(t *testing.T) {
	ds := fixture(t)
	mCold, err := New(Config{Parallelism: 1, PseudonymKey: []byte("warm")}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	coldRel, coldSel, err := mCold.PublishContext(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, wantRel := marshal(t, coldSel), marshal(t, coldRel)

	cache := evalcache.NewLRU(0)
	newCached(t, cache, 3).mustPublish(t, ds) // warm the shared cache once
	for _, parallelism := range []int{1, 3, 8} {
		rel, sel, err := newCached(t, cache, parallelism).PublishContext(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		if got := marshal(t, sel); got != wantSel {
			t.Errorf("parallelism %d: warm selection differs from cold:\ncold: %s\nwarm: %s", parallelism, wantSel, got)
		}
		if got := marshal(t, rel); got != wantRel {
			t.Errorf("parallelism %d: warm release differs from cold", parallelism)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("warm publishes produced no cache hits: %+v", st)
	}
}

func (m *Middleware) mustPublish(t *testing.T, ds *trace.Dataset) {
	t.Helper()
	if _, _, err := m.PublishContext(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
}

// TestPublishShardedColdWarmByteIdentical: same contract for the sharded
// pipeline — warm shard-level hits must reproduce the cold merged report
// and release exactly.
func TestPublishShardedColdWarmByteIdentical(t *testing.T) {
	ds := fixture(t)
	by, err := NewShardByUser(4)
	if err != nil {
		t.Fatal(err)
	}
	mCold, err := New(Config{Parallelism: 1, PseudonymKey: []byte("warm")}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	coldRel, coldSel, err := mCold.PublishShardedContext(context.Background(), ds, by)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, wantRel := marshal(t, coldSel), marshal(t, coldRel)

	cache := evalcache.NewLRU(0)
	if _, _, err := newCached(t, cache, 3).PublishShardedContext(context.Background(), ds, by); err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 3, 8} {
		rel, sel, err := newCached(t, cache, parallelism).PublishShardedContext(context.Background(), ds, by)
		if err != nil {
			t.Fatal(err)
		}
		if got := marshal(t, sel); got != wantSel {
			t.Errorf("parallelism %d: warm sharded selection differs from cold", parallelism)
		}
		if got := marshal(t, rel); got != wantRel {
			t.Errorf("parallelism %d: warm sharded release differs from cold", parallelism)
		}
	}
}

// TestWarmPublishSkipsProtection: an unchanged dataset must be served
// entirely from the selection cache — the mechanisms never run again.
func TestWarmPublishSkipsProtection(t *testing.T) {
	ds := fixture(t)
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	counter := &countingMechanism{inner: sm}
	m, err := New(Config{
		Strategies:  []lppm.Mechanism{counter},
		Parallelism: 2,
		Cache:       evalcache.NewLRU(0),
	}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	m.mustPublish(t, ds)
	cold := counter.calls.Load()
	m.mustPublish(t, ds)
	if got := counter.calls.Load(); got != cold {
		t.Errorf("warm publish protected %d extra trajectories, want 0", got-cold)
	}
}

// TestConfigChangeInvalidates: a middleware with a different evaluation
// configuration sharing the same cache must not be served the other's
// entries.
func TestConfigChangeInvalidates(t *testing.T) {
	ds := fixture(t)
	cache := evalcache.NewLRU(0)
	build := func(topK int) (*Middleware, *countingMechanism) {
		sm, err := lppm.NewSpeedSmoothing(100, 2)
		if err != nil {
			t.Fatal(err)
		}
		counter := &countingMechanism{inner: sm}
		m, err := New(Config{
			Strategies:  []lppm.Mechanism{counter},
			TopK:        topK,
			Parallelism: 2,
			Cache:       cache,
		}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		return m, counter
	}
	m1, _ := build(20)
	m1.mustPublish(t, ds)
	m2, c2 := build(10)
	m2.mustPublish(t, ds)
	if c2.calls.Load() == 0 {
		t.Error("changed config was served the old config's cached selection")
	}
}

// TestAdaptivePruning: after a full evaluation disqualified a strategy on
// a shard, re-publishing with grown data must skip its attack and report
// the pruning; the pruned strategy can never win, and unchanged data keeps
// reporting the full cold scorecard (served from the selection cache
// before pruning is consulted).
func TestAdaptivePruning(t *testing.T) {
	ds := fixture(t)
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	cache := evalcache.NewLRU(0)
	m, err := New(Config{
		// Identity releases everything and always fails a floor below 1.
		Strategies:  []lppm.Mechanism{lppm.Identity{}, sm},
		Parallelism: 2,
		Cache:       cache,
	}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	_, coldSel, err := m.PublishContext(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range coldSel.Evaluations {
		if ev.Pruned {
			t.Fatalf("cold run pruned %s", ev.Strategy)
		}
	}

	// Grow the dataset: every proxy of the failed identity release is now
	// at or above its recorded disqualification values.
	grown := ds.Clone()
	extra := ds.Trajectories[0].Clone()
	extra.User = "extra-user"
	grown.Add(extra)
	_, warmSel, err := m.PublishContext(context.Background(), grown)
	if err != nil {
		t.Fatal(err)
	}
	var id Evaluation
	for _, ev := range warmSel.Evaluations {
		if ev.Strategy == (lppm.Identity{}).Name() {
			id = ev
		}
	}
	if !id.Pruned {
		t.Fatalf("identity was not pruned on grown data: %+v", id)
	}
	if id.MeetsFloor || warmSel.Chosen == id.Strategy {
		t.Error("a pruned strategy must not meet the floor or be chosen")
	}
	if !strings.Contains(id.PrunedReason, "failed privacy floor") {
		t.Errorf("PrunedReason = %q, want the disqualification record", id.PrunedReason)
	}
	if id.Released != grown.Len() {
		t.Errorf("pruned evaluation released = %d, want proxy %d", id.Released, grown.Len())
	}
	if st := cache.Stats(); st.Pruned == 0 {
		t.Errorf("cache stats did not count the pruned strategy: %+v", st)
	}

	// Unchanged data still reports the full scorecard, not the pruned one.
	_, againSel, err := m.PublishContext(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshal(t, againSel), marshal(t, coldSel); got != want {
		t.Error("re-publishing the unchanged dataset no longer matches the cold report")
	}
}

// TestEvaluateNeverPrunes: Evaluate is a pure scorecard — even with a
// cache full of disqualification records it must run the full attack for
// every strategy and match the uncached result exactly.
func TestEvaluateNeverPrunes(t *testing.T) {
	ds := fixture(t)
	cache := evalcache.NewLRU(0)
	mk := func(c evalcache.Cache) *Middleware {
		m, err := New(Config{
			Strategies:     []lppm.Mechanism{lppm.Identity{}},
			MaxPOIExposure: 0.1,
			Parallelism:    2,
			Cache:          c,
		}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := mk(cache)
	if _, _, err := m.PublishContext(context.Background(), ds); err != ErrNoStrategy {
		t.Fatalf("err = %v, want ErrNoStrategy", err)
	}
	grown := ds.Clone()
	extra := ds.Trajectories[0].Clone()
	extra.User = "extra-user"
	grown.Add(extra)
	warm, err := m.EvaluateContext(context.Background(), grown)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := mk(nil).EvaluateContext(context.Background(), grown)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, bare) {
		t.Errorf("cached Evaluate differs from uncached:\ncached: %+v\nbare:   %+v", warm, bare)
	}
	if warm[0].Pruned {
		t.Error("Evaluate must never prune")
	}
}

// TestReferencePOIsCachedMatchesUncached: the memoized reference-POI path
// must reproduce ReferencePOIs exactly, including which users appear,
// whether served cold or warm.
func TestReferencePOIsCachedMatchesUncached(t *testing.T) {
	ds := fixture(t)
	m := newCached(t, evalcache.NewLRU(0), 1)
	want, err := m.ReferencePOIs(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range []string{"cold", "warm"} {
		got, err := m.referencePOIs(ds)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s referencePOIs differs from ReferencePOIs", pass)
		}
	}
}

// TestConcurrentPublishSharedCache hammers one cache from concurrent
// publish calls over distinct middlewares and both pipelines (one dataset
// published monolithically, another sharded); run under -race (CI does).
// A small byte bound forces concurrent evictions. Every result must match
// its pipeline's uncached reference report — the same-content pruning
// guard is what makes this hold even when prune records land before a
// selection entry does.
func TestConcurrentPublishSharedCache(t *testing.T) {
	dsA := fixture(t)
	dsB, _, err := mobgen.Generate(mobgen.Config{Seed: 22, Users: 4, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	by, err := NewShardByUser(2)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(Config{Parallelism: 1}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	_, selA, err := cold.PublishContext(context.Background(), dsA)
	if err != nil {
		t.Fatal(err)
	}
	_, selB, err := cold.PublishShardedContext(context.Background(), dsB, by)
	if err != nil {
		t.Fatal(err)
	}
	wantA, wantB := marshal(t, selA), marshal(t, selB)

	cache := evalcache.NewLRU(1 << 20) // small bound: force evictions too
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				m, err := New(Config{Parallelism: 2, Cache: cache}, lyon)
				if err != nil {
					errs <- err
					return
				}
				var report any
				want := wantA
				if (g+i)%2 == 0 {
					_, sel, err := m.PublishContext(context.Background(), dsA)
					if err != nil {
						errs <- err
						return
					}
					report = sel
				} else {
					_, sel, err := m.PublishShardedContext(context.Background(), dsB, by)
					if err != nil {
						errs <- err
						return
					}
					report, want = sel, wantB
				}
				b, err := json.Marshal(report)
				if err != nil {
					errs <- err
					return
				}
				got := string(b)
				if got != want {
					errs <- fmt.Errorf("goroutine %d iter %d: concurrent selection diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
