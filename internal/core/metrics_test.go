package core

import (
	"context"
	"encoding/json"
	"testing"

	"apisense/internal/obs"
)

// TestMetricsDoNotAffectDeterminism: with EngineMetrics enabled, reports
// stay byte-identical across parallelism levels and identical to the
// unmetered run — observations never influence results.
func TestMetricsDoNotAffectDeterminism(t *testing.T) {
	ds := fixture(t)
	run := func(parallelism int, em *EngineMetrics) string {
		m, err := New(Config{
			Parallelism: parallelism, PseudonymKey: []byte("det"), Metrics: em,
		}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		_, sel, err := m.PublishContext(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(sel)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	bare := run(1, nil)
	for _, parallelism := range []int{1, 4, 8} {
		reg := obs.NewRegistry()
		if got := run(parallelism, NewEngineMetrics(reg)); got != bare {
			t.Errorf("metered report at parallelism %d differs from unmetered baseline:\n%s\nvs\n%s",
				parallelism, got, bare)
		}
	}
}

// TestEngineMetricsObserve: one Publish run lands observations on the
// publish and per-strategy histograms.
func TestEngineMetricsObserve(t *testing.T) {
	ds := fixture(t)
	reg := obs.NewRegistry()
	em := NewEngineMetrics(reg)
	m, err := New(Config{PseudonymKey: []byte("det"), Metrics: em}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PublishContext(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if got := em.publishSeconds.Count(); got != 1 {
		t.Errorf("publish observations = %d, want 1", got)
	}
	if got := em.strategySeconds.Count(); got == 0 {
		t.Error("no per-strategy observations recorded")
	}
	if got := em.evaluateSeconds.Count(); got != 0 {
		t.Errorf("evaluate observations = %d, want 0 (Publish path only)", got)
	}
}

// TestNilEngineMetricsIsFree: the nil hook neither observes nor panics.
func TestNilEngineMetricsIsFree(t *testing.T) {
	var em *EngineMetrics
	t0 := em.start()
	if !t0.IsZero() {
		t.Error("nil start read the clock")
	}
	em.observePublish(t0)
	em.observeEvaluate(t0)
	em.observeShard(t0)
	em.observeStrategy(t0)
	if NewEngineMetrics(nil) != nil {
		t.Error("NewEngineMetrics(nil) should be nil")
	}
}
