package core

import (
	"testing"

	"apisense/internal/lppm"
)

// TestAttackRadiusSensitivity: the simulated attacker's stay-point radius
// is a threat-model parameter; a naive 200 m attacker under-estimates the
// exposure of noise mechanisms, which is exactly why the default is the
// noise-adaptive 500 m (DESIGN.md §5).
func TestAttackRadiusSensitivity(t *testing.T) {
	ds := fixture(t)
	gi, err := lppm.NewGeoInd(0.01, 1) // 200 m mean noise
	if err != nil {
		t.Fatal(err)
	}
	exposure := func(radius float64) float64 {
		m, err := New(Config{
			Strategies:   []lppm.Mechanism{gi},
			AttackRadius: radius,
		}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		evals, err := m.Evaluate(ds)
		if err != nil {
			t.Fatal(err)
		}
		return evals[0].Privacy.Recall()
	}
	narrow := exposure(200)
	wide := exposure(500)
	if wide <= narrow {
		t.Errorf("adaptive attacker (recall %.2f) should beat naive one (%.2f) against noise",
			wide, narrow)
	}
	if wide < 0.6 {
		t.Errorf("adaptive attacker recall = %.2f, want >= 0.6 (claim C1 regime)", wide)
	}
}

// TestPublishIsDeterministic: same dataset, same config, same release.
func TestPublishIsDeterministic(t *testing.T) {
	ds := fixture(t)
	run := func() (string, int) {
		m, err := New(Config{PseudonymKey: []byte("det")}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		release, sel, err := m.Publish(ds)
		if err != nil {
			t.Fatal(err)
		}
		return sel.Chosen, release.NumRecords()
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("publish not deterministic: (%s, %d) vs (%s, %d)", c1, n1, c2, n2)
	}
}

// TestEvaluationReleasedCounts: suppression shows up in Released.
func TestEvaluationReleasedCounts(t *testing.T) {
	ds := fixture(t)
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Strategies: []lppm.Mechanism{sm, lppm.Identity{}}}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evals {
		if ev.Released <= 0 || ev.Released > ds.Len() {
			t.Errorf("%s released %d of %d", ev.Strategy, ev.Released, ds.Len())
		}
	}
}
