package core

import (
	"errors"
	"strings"
	"testing"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/mobgen"
	"apisense/internal/trace"
)

var lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}

var fixtureDS *trace.Dataset

func fixture(t *testing.T) *trace.Dataset {
	t.Helper()
	if fixtureDS == nil {
		ds, _, err := mobgen.Generate(mobgen.Config{Seed: 21, Users: 10, Days: 5})
		if err != nil {
			t.Fatal(err)
		}
		fixtureDS = ds
	}
	return fixtureDS
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MaxPOIExposure: 2}, lyon); err == nil {
		t.Error("MaxPOIExposure > 1 should fail")
	}
	if _, err := New(Config{MaxPOIExposure: -0.5}, lyon); err == nil {
		t.Error("negative MaxPOIExposure should fail")
	}
	if _, err := New(Config{Strategies: []lppm.Mechanism{}}, lyon); err == nil {
		t.Error("empty explicit portfolio should fail")
	}
	m, err := New(Config{}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Strategies()) < 5 {
		t.Errorf("default portfolio has %d strategies", len(m.Strategies()))
	}
}

func TestObjectiveString(t *testing.T) {
	if ObjectiveCrowdedPlaces.String() != "crowded-places" ||
		ObjectiveTraffic.String() != "traffic" ||
		ObjectiveDistortion.String() != "distortion" {
		t.Error("objective names wrong")
	}
	if !strings.Contains(Objective(99).String(), "99") {
		t.Error("unknown objective should embed its value")
	}
}

func TestReferencePOIs(t *testing.T) {
	m, err := New(Config{}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := m.ReferencePOIs(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10 {
		t.Errorf("reference POIs for %d users, want 10", len(refs))
	}
	for user, pois := range refs {
		if len(pois) < 2 {
			t.Errorf("user %s has only %d reference POIs", user, len(pois))
		}
	}
}

func TestEvaluatePortfolio(t *testing.T) {
	m, err := New(Config{}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := m.Evaluate(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != len(m.Strategies()) {
		t.Fatalf("%d evaluations for %d strategies", len(evals), len(m.Strategies()))
	}
	byName := map[string]Evaluation{}
	for _, ev := range evals {
		byName[ev.Strategy] = ev
		if ev.Utility < 0 || ev.Utility > 1 {
			t.Errorf("%s: utility %v out of range", ev.Strategy, ev.Utility)
		}
	}
	// Smoothing must meet the default floor and keep hotspot utility high;
	// mild geo-ind must violate the floor (claim C1).
	sm := byName["smoothing(eps=100,trim=2)"]
	if !sm.MeetsFloor {
		t.Errorf("smoothing should meet the floor, f1=%.2f", sm.Privacy.F1())
	}
	if sm.HotspotOverlap < 0.5 {
		t.Errorf("smoothing hotspot overlap = %.2f, want >= 0.5", sm.HotspotOverlap)
	}
	gi := byName["geoind(eps=0.01)"]
	if gi.MeetsFloor {
		t.Errorf("mild geo-ind should violate the floor, f1=%.2f", gi.Privacy.F1())
	}
}

func TestPublishPicksSmoothingForCrowdedPlaces(t *testing.T) {
	m, err := New(Config{PseudonymKey: []byte("k1")}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	release, sel, err := m.Publish(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sel.Chosen, "smoothing") {
		t.Errorf("chosen = %s, want a smoothing strategy", sel.Chosen)
	}
	if release.Len() == 0 {
		t.Fatal("empty release")
	}
	// Pseudonymised: no raw user ids.
	for _, tr := range release.Trajectories {
		if strings.HasPrefix(tr.User, "user-") {
			t.Fatalf("release leaks raw user id %q", tr.User)
		}
	}
}

func TestPublishObjectiveChangesChoice(t *testing.T) {
	// With a relaxed floor and the distortion objective, a low-noise
	// mechanism should win over smoothing at coarse grains.
	ds := fixture(t)
	giStrong, err := lppm.NewGeoInd(0.002, 1) // mean 1 km noise
	if err != nil {
		t.Fatal(err)
	}
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Strategies:     []lppm.Mechanism{giStrong, sm},
		Objective:      ObjectiveCrowdedPlaces,
		MaxPOIExposure: 0.5,
	}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	_, sel, err := m.Publish(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sel.Chosen, "smoothing") {
		t.Errorf("crowded-places objective chose %s, want smoothing", sel.Chosen)
	}
}

func TestPublishNoStrategyMeetsFloor(t *testing.T) {
	// Identity alone can never meet a floor below 1.
	m, err := New(Config{
		Strategies:     []lppm.Mechanism{lppm.Identity{}},
		MaxPOIExposure: 0.1,
	}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	_, sel, err := m.Publish(fixture(t))
	if !errors.Is(err, ErrNoStrategy) {
		t.Fatalf("err = %v, want ErrNoStrategy", err)
	}
	if sel == nil || sel.Chosen != "" {
		t.Error("selection should be returned with empty Chosen")
	}
}

func TestPublishEmptyDataset(t *testing.T) {
	m, err := New(Config{}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Publish(trace.NewDataset()); err == nil {
		t.Error("publishing an empty dataset should fail")
	}
}

func TestTrafficObjective(t *testing.T) {
	m, err := New(Config{Objective: ObjectiveTraffic}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := m.Evaluate(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	anyPositive := false
	for _, ev := range evals {
		if ev.TrafficUtility > 0 {
			anyPositive = true
		}
		if ev.Utility != ev.TrafficUtility {
			t.Errorf("%s: objective utility %v != traffic utility %v",
				ev.Strategy, ev.Utility, ev.TrafficUtility)
		}
	}
	if !anyPositive {
		t.Error("no strategy has positive traffic utility")
	}
}
