package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"apisense/internal/lppm"
	"apisense/internal/trace"
)

// TestEvaluateParallelismDeterminism: the engine's report must be
// byte-identical whether the portfolio runs sequentially or on a pool.
func TestEvaluateParallelismDeterminism(t *testing.T) {
	ds := fixture(t)
	run := func(parallelism int) *Selection {
		m, err := New(Config{Parallelism: parallelism, PseudonymKey: []byte("det")}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		_, sel, err := m.PublishContext(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("selection differs between Parallelism 1 and 8:\nseq: %+v\npar: %+v", seq, par)
	}
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(seqJSON) != string(parJSON) {
		t.Errorf("serialized selections not byte-identical:\nseq: %s\npar: %s", seqJSON, parJSON)
	}
}

// TestEvaluateContextMatchesEvaluate: the wrapper and the context entry
// point agree.
func TestEvaluateContextMatchesEvaluate(t *testing.T) {
	ds := fixture(t)
	m, err := New(Config{Parallelism: 4}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EvaluateContext(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Evaluate and EvaluateContext disagree")
	}
}

// TestPublishContextCancelled: a cancelled context aborts the publication
// promptly with context.Canceled instead of running the portfolio.
func TestPublishContextCancelled(t *testing.T) {
	ds := fixture(t)
	for _, parallelism := range []int{1, 4} {
		m, err := New(Config{Parallelism: parallelism}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		_, _, err = m.PublishContext(ctx, ds)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("parallelism %d: cancelled publish took %s, want prompt return", parallelism, elapsed)
		}
	}
}

// TestEvaluateContextDeadline: cancellation mid-run (not just pre-run) also
// surfaces the context error.
func TestEvaluateContextDeadline(t *testing.T) {
	ds := fixture(t)
	m, err := New(Config{Parallelism: 2}, lyon)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	if _, err := m.EvaluateContext(ctx, ds); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// countingMechanism wraps a mechanism and counts Protect calls; used to
// prove Publish releases the evaluated dataset instead of protecting twice.
type countingMechanism struct {
	inner lppm.Mechanism
	calls atomic.Int64
}

func (c *countingMechanism) Name() string { return c.inner.Name() }

func (c *countingMechanism) Protect(tr *trace.Trajectory) (*trace.Trajectory, error) {
	c.calls.Add(1)
	return c.inner.Protect(tr)
}

// TestPublishReusesEvaluatedWinner: the winner's mechanism must run exactly
// once per trajectory across the whole Publish (no second ProtectDataset).
func TestPublishReusesEvaluatedWinner(t *testing.T) {
	ds := fixture(t)
	for _, parallelism := range []int{1, 4} {
		sm, err := lppm.NewSpeedSmoothing(100, 2)
		if err != nil {
			t.Fatal(err)
		}
		counter := &countingMechanism{inner: sm}
		m, err := New(Config{
			Strategies:  []lppm.Mechanism{counter},
			Parallelism: parallelism,
		}, lyon)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Publish(ds); err != nil {
			t.Fatal(err)
		}
		if got, want := counter.calls.Load(), int64(ds.Len()); got != want {
			t.Errorf("parallelism %d: winner protected %d trajectories, want %d (one pass)",
				parallelism, got, want)
		}
	}
}
