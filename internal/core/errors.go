package core

import "errors"

// ErrNoStrategy is returned by Publish when no candidate strategy satisfies
// the configured privacy floor; the caller should either relax the floor,
// extend the portfolio, or refuse to publish.
var ErrNoStrategy = errors.New("core: no strategy meets the privacy floor")
