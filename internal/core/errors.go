package core

import "apisense/internal/apierr"

// ErrNoStrategy is returned by Publish when no candidate strategy satisfies
// the configured privacy floor; the caller should either relax the floor,
// extend the portfolio, or refuse to publish. Coded "core.no_strategy"
// (category conflict): surfaced to HTTP callers by embedders with status
// 409.
var ErrNoStrategy = apierr.New("core.no_strategy", apierr.Conflict, "core: no strategy meets the privacy floor")
