package core

import (
	"time"

	"apisense/internal/obs"
)

// EngineMetrics instruments the evaluation engine's hot paths with
// latency histograms: whole publish and evaluate runs, per-shard
// publication, and per-strategy evaluation. Build one with
// NewEngineMetrics and set it on Config.Metrics; the nil hook — the zero
// Config — disables every observation at zero cost (no clock reads, no
// allocation), and observations never influence results, so reports stay
// byte-identical at any parallelism with metrics on or off.
//
// Concurrency: immutable after NewEngineMetrics; the observe hooks are
// called concurrently by strategy and shard workers and delegate to obs
// atomics.
type EngineMetrics struct {
	publishSeconds  *obs.Histogram
	evaluateSeconds *obs.Histogram
	shardSeconds    *obs.Histogram
	strategySeconds *obs.Histogram
}

// NewEngineMetrics registers the engine instrument families on reg and
// returns the hook for Config.Metrics. Nil-safe: a nil registry yields a
// nil *EngineMetrics.
func NewEngineMetrics(reg *obs.Registry) *EngineMetrics {
	if reg == nil {
		return nil
	}
	return &EngineMetrics{
		publishSeconds: reg.Histogram("apisense_core_publish_seconds",
			"End-to-end latency of one Publish run: evaluation of the whole portfolio, selection and pseudonymisation.",
			obs.LatencyBuckets),
		evaluateSeconds: reg.Histogram("apisense_core_evaluate_seconds",
			"End-to-end latency of one Evaluate run (pure scorecard, no release).",
			obs.LatencyBuckets),
		shardSeconds: reg.Histogram("apisense_core_shard_publish_seconds",
			"Latency of one shard's strategy selection inside PublishSharded.",
			obs.LatencyBuckets),
		strategySeconds: reg.Histogram("apisense_core_strategy_eval_seconds",
			"Latency of one strategy's evaluation: protection, attack simulation and utility scoring.",
			obs.LatencyBuckets),
	}
}

// start samples the wall clock for the observe hooks; no clock read (zero
// time) on a nil receiver, keeping the disabled path free.
func (em *EngineMetrics) start() time.Time {
	if em == nil {
		return time.Time{}
	}
	return time.Now()
}

// observePublish records one Publish run started at t0. Nil-safe.
func (em *EngineMetrics) observePublish(t0 time.Time) {
	if em == nil {
		return
	}
	em.publishSeconds.Observe(time.Since(t0).Seconds())
}

// observeEvaluate records one Evaluate run started at t0. Nil-safe.
func (em *EngineMetrics) observeEvaluate(t0 time.Time) {
	if em == nil {
		return
	}
	em.evaluateSeconds.Observe(time.Since(t0).Seconds())
}

// observeShard records one shard selection started at t0. Nil-safe.
func (em *EngineMetrics) observeShard(t0 time.Time) {
	if em == nil {
		return
	}
	em.shardSeconds.Observe(time.Since(t0).Seconds())
}

// observeStrategy records one strategy evaluation started at t0. Nil-safe.
func (em *EngineMetrics) observeStrategy(t0 time.Time) {
	if em == nil {
		return
	}
	em.strategySeconds.Observe(time.Since(t0).Seconds())
}
