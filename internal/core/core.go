// Package core implements the PRIVAPI middleware (§3 of the paper): a
// server-side publication pipeline that "leverages the global knowledge of
// the whole system to apply an optimal anonymization strategy and produce a
// privacy-preserving mobility dataset".
//
// The middleware is utility-driven: "there is not one unique anonymization
// strategy that always performs well but many from which we can choose the
// one that fits the best to the usage that will be done with the anonymized
// dataset". Concretely, Publish:
//
//  1. derives the reference points of interest of every contributor from
//     the raw dataset (the middleware, unlike an outside attacker, sees the
//     whole dataset — that is its "global knowledge");
//  2. evaluates every candidate strategy by simulating the POI-recovery
//     attack on the protected output and scoring the utility objective the
//     dataset consumer declared (crowded places, traffic forecasting, or
//     raw spatial fidelity);
//  3. keeps the strategies whose residual POI recall is below the privacy
//     floor configured by the users/platform owner, picks the one with the
//     best utility, and releases the pseudonymised protected dataset.
//
// # Evaluation engine
//
// Publication is the platform's hottest path, so it runs on a concurrent
// evaluation engine (see engine.go):
//
//   - the per-run shared state — reference POIs, attacker extractor,
//     analysis grid, raw density and the raw-side traffic baseline — is
//     computed once per run into an evalContext instead of once per
//     strategy;
//   - the strategy portfolio is fanned out over a bounded worker pool of
//     Config.Parallelism goroutines (default one per CPU), each strategy
//     additionally parallelising its dataset protection across
//     trajectories; results are fanned back in preserving portfolio order,
//     and every mechanism derives randomness from the trajectory identity,
//     so reports are byte-identical for any parallelism;
//   - Publish releases the winner's evaluated output instead of
//     protecting the dataset a second time; only the best floor-meeting
//     protected dataset seen so far is retained (losers are dropped as
//     outcomes arrive, and Evaluate keeps none), so peak memory is one
//     retained copy plus one in-flight copy per strategy worker rather
//     than the whole portfolio at once;
//   - PublishContext and EvaluateContext accept a context.Context and
//     abandon the run promptly when it is cancelled; Publish and Evaluate
//     are background-context wrappers kept for convenience.
//
// # Sharded publication
//
// Very large datasets are published in shards (see shard.go): a ShardBy
// policy partitions the dataset by region grid-cell, time window or user
// bucket; PublishShardedContext runs the selection engine on every shard —
// sharing the global Parallelism budget — and merges the per-shard winners
// into one release. Privacy composes conservatively (the release's
// guarantee is the worst shard's) while utility is the record-weighted
// mean; shards where no strategy meets the floor are withheld instead of
// failing the whole release. Reports and releases stay byte-identical for
// any Parallelism.
package core

import (
	"fmt"
	"runtime"

	"apisense/internal/attack"
	"apisense/internal/evalcache"
	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/metrics"
	"apisense/internal/otrace"
	"apisense/internal/poi"
	"apisense/internal/trace"
)

// Objective declares the data-mining task the published dataset must stay
// useful for.
type Objective int

// The supported utility objectives.
const (
	// ObjectiveCrowdedPlaces optimises the overlap of top-k crowded cells
	// ("finding out crowded places", claim C3).
	ObjectiveCrowdedPlaces Objective = iota + 1
	// ObjectiveTraffic optimises per-cell-hour traffic forecasting
	// ("predicting traffic", claim C3).
	ObjectiveTraffic
	// ObjectiveDistortion optimises raw spatial fidelity (time-aligned
	// distortion), for consumers that need point-accurate data.
	ObjectiveDistortion
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveCrowdedPlaces:
		return "crowded-places"
	case ObjectiveTraffic:
		return "traffic"
	case ObjectiveDistortion:
		return "distortion"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Config parameterises the middleware.
type Config struct {
	// Strategies are the candidate mechanisms. Leave nil for the default
	// portfolio (identity is never included: the floor applies to it too).
	// The evaluation engine calls Protect concurrently, so custom
	// mechanisms must be safe for concurrent use (see lppm.Mechanism);
	// all built-in mechanisms are.
	Strategies []lppm.Mechanism
	// Objective is the declared utility target (default crowded places).
	Objective Objective
	// MaxPOIExposure is the privacy floor: the maximum tolerated F-score
	// of the simulated POI-retrieval attack on the protected output. The
	// F-score combines how many true stops the attacker finds (recall)
	// with their ability to tell them apart from decoys (precision);
	// strategies scoring above it are rejected (default 0.33).
	MaxPOIExposure float64
	// CellSize is the analysis grid cell in metres (default 250).
	CellSize float64
	// TopK is the number of hotspots compared (default 20).
	TopK int
	// POIConfig controls reference POI extraction from the raw dataset.
	POIConfig poi.StayPointConfig
	// AttackRadius is the stay-point radius the simulated attacker uses
	// on protected data (default 500 m, the noise-adaptive setting).
	AttackRadius float64
	// PseudonymKey keys the release pseudonymizer. Leave nil to keep
	// original user identifiers (useful in evaluations).
	PseudonymKey []byte
	// Parallelism bounds the worker pool the evaluation engine uses to
	// score the strategy portfolio and to protect trajectories. 0 (or
	// negative) selects runtime.GOMAXPROCS(0); 1 forces a fully
	// sequential run. Results are byte-identical for any value.
	Parallelism int
	// Cache is the optional evaluation cache (see internal/evalcache):
	// per-user reference-POI memoization, per-trajectory attacker
	// extraction memoization, whole-selection caching keyed by dataset/
	// shard content hash, and adaptive portfolio pruning. nil disables
	// caching. A cache may be shared by several middlewares and used from
	// concurrent Publish calls; entries are scoped by a configuration
	// fingerprint, so a config change never serves stale results. For
	// unchanged inputs, warm reports and releases are byte-identical to
	// cold ones.
	Cache evalcache.Cache
	// Metrics, when non-nil, threads latency histograms through the hot
	// paths (Publish/PublishSharded/Evaluate runs, per-shard selection,
	// per-strategy evaluation — see NewEngineMetrics). nil — the zero
	// value — disables instrumentation with no clock reads and no
	// allocation. Observations never change results: reports stay
	// byte-identical at any parallelism whether metrics are on or off.
	Metrics *EngineMetrics
	// Tracer, when non-nil, records a span tree per publication run:
	// partitioning, per-shard selection, per-strategy evaluation with the
	// POI-recovery attack, cache and pruning short-circuits, and the
	// final merge (see internal/otrace). nil — the zero value — disables
	// tracing with no clock reads. Like Metrics, tracing never changes
	// results: reports and releases stay byte-identical at any
	// parallelism whether tracing is on or off.
	Tracer *otrace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Objective == 0 {
		c.Objective = ObjectiveCrowdedPlaces
	}
	if c.MaxPOIExposure == 0 {
		c.MaxPOIExposure = 0.33
	}
	if c.CellSize == 0 {
		c.CellSize = 250
	}
	if c.TopK == 0 {
		c.TopK = 20
	}
	if c.AttackRadius == 0 {
		c.AttackRadius = 500
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// DefaultStrategies returns the portfolio evaluated when Config.Strategies
// is nil: the paper's speed smoothing at three grains, geo-indistinguisha-
// bility at two budgets, cloaking and downsampling.
func DefaultStrategies(origin geo.Point) ([]lppm.Mechanism, error) {
	var out []lppm.Mechanism
	for _, eps := range []float64{50, 100, 200} {
		m, err := lppm.NewSpeedSmoothing(eps, 2)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	for _, eps := range []float64{0.01, 0.002} {
		m, err := lppm.NewGeoInd(eps, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	cl, err := lppm.NewCloaking(800, origin)
	if err != nil {
		return nil, err
	}
	out = append(out, cl)
	dsm, err := lppm.NewDownsample(20)
	if err != nil {
		return nil, err
	}
	return append(out, dsm), nil
}

// Evaluation is the per-strategy scorecard.
type Evaluation struct {
	// Strategy is the mechanism name.
	Strategy string
	// Privacy is the simulated POI-recovery attack result.
	Privacy attack.RecoveryResult
	// MeetsFloor reports whether Privacy.F1() <= MaxPOIExposure.
	MeetsFloor bool
	// HotspotOverlap is the top-k crowded-cells F1 against raw.
	HotspotOverlap float64
	// TrafficUtility is baselineMAE/protectedMAE clamped to [0,1]
	// (1 = forecasts as well as raw data); 0 when not evaluable.
	TrafficUtility float64
	// Distortion is the time-aligned spatial distortion.
	Distortion metrics.DistortionStats
	// Coverage is the fraction of raw cells still visited.
	Coverage float64
	// Utility is the objective-specific scalar in [0,1].
	Utility float64
	// Released is the number of trajectories the strategy releases
	// (suppression shrinks it).
	Released int
	// Pruned reports that adaptive portfolio pruning skipped this
	// strategy's full POI-recovery attack: a prior run on the same shard
	// disqualified it at proxy values (released-trajectory count, grid
	// coverage) at or below this run's. Pruned strategies carry only the
	// cheap proxies (Released, Coverage), are treated as not meeting the
	// floor, and can never be selected. Pruning requires Config.Cache and
	// only ever applies to changed data — unchanged data is served from
	// the selection cache before pruning is consulted.
	Pruned bool
	// PrunedReason records why the strategy was pruned (deterministic,
	// derived from the prior disqualification and this run's proxies).
	PrunedReason string
}

// Selection is the outcome of a Publish run.
type Selection struct {
	// Objective echoes the configured objective.
	Objective Objective
	// Floor echoes the configured privacy floor.
	Floor float64
	// Chosen is the winning strategy name; empty when no strategy met
	// the floor.
	Chosen string
	// Evaluations holds the scorecard of every candidate, in portfolio
	// order.
	Evaluations []Evaluation
}

// Middleware is the PRIVAPI publication engine.
type Middleware struct {
	cfg        Config
	strategies []lppm.Mechanism
	// refExtractor and recovery are the config-derived analysis tools,
	// built once here rather than once per publish/shard: they depend
	// only on the middleware configuration, never on the dataset.
	refExtractor poi.Extractor
	recovery     *attack.POIRecovery
	// cache and fp drive the evaluation cache (nil cache = disabled);
	// see cache.go.
	cache evalcache.Cache
	fp    fingerprints
}

// New creates a middleware instance. If cfg.Strategies is nil the default
// portfolio anchored at origin is used.
func New(cfg Config, origin geo.Point) (*Middleware, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxPOIExposure < 0 || cfg.MaxPOIExposure > 1 {
		return nil, fmt.Errorf("core: MaxPOIExposure must be in [0,1], got %v", cfg.MaxPOIExposure)
	}
	strategies := cfg.Strategies
	if strategies == nil {
		var err error
		strategies, err = DefaultStrategies(origin)
		if err != nil {
			return nil, fmt.Errorf("core: default strategies: %w", err)
		}
	}
	if len(strategies) == 0 {
		return nil, fmt.Errorf("core: at least one strategy is required")
	}
	m := &Middleware{cfg: cfg, strategies: strategies, cache: cfg.Cache}
	m.fp = m.fingerprint()
	refExtractor, err := poi.NewStayPoints(cfg.POIConfig)
	if err != nil {
		return nil, fmt.Errorf("core: reference extractor: %w", err)
	}
	m.refExtractor = refExtractor
	attacker, err := poi.NewStayPoints(poi.StayPointConfig{
		MaxDistance: cfg.AttackRadius,
		MinDuration: cfg.POIConfig.MinDuration,
	})
	if err != nil {
		return nil, fmt.Errorf("core: attacker extractor: %w", err)
	}
	var attackExtractor poi.Extractor = attacker
	if m.cache != nil {
		attackExtractor = cachingExtractor{inner: attacker, cache: m.cache, fp: m.fp.attack}
	}
	m.recovery, err = attack.NewPOIRecovery(attackExtractor, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("core: recovery attack: %w", err)
	}
	return m, nil
}

// Strategies returns the names of the candidate strategies.
func (m *Middleware) Strategies() []string {
	out := make([]string, len(m.strategies))
	for i, s := range m.strategies {
		out[i] = s.Name()
	}
	return out
}

// ReferencePOIs extracts the per-user reference POIs from the raw dataset —
// the middleware's global knowledge of what must be hidden.
func (m *Middleware) ReferencePOIs(raw *trace.Dataset) (map[string][]geo.Point, error) {
	perUser := poi.ExtractAll(m.refExtractor, raw)
	out := make(map[string][]geo.Point, len(perUser))
	for user, pois := range perUser {
		places := poi.Merge(pois, refPOIMergeRadius)
		pts := make([]geo.Point, len(places))
		for i, p := range places {
			pts[i] = p.Center
		}
		out[user] = pts
	}
	return out, nil
}
