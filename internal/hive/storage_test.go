package hive

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"apisense/internal/hive/store"
	"apisense/internal/transport"
)

// upload builds a deterministic upload for task/device with a payload
// distinguishing seq.
func upload(taskID, deviceID string, seq int) transport.Upload {
	return transport.Upload{
		TaskID: taskID, DeviceID: deviceID,
		Records: []transport.UploadRecord{{
			Sensor: "gps", TimeMillis: int64(seq),
			Data: map[string]any{"seq": float64(seq)},
		}},
	}
}

// canonicalWorkload drives a fixed mutation sequence — registrations,
// publications, uploads, re-registration, unregistration — through h.
// Deterministic, so every engine persists the same logical history.
func canonicalWorkload(t *testing.T, h *Hive) []transport.TaskSpec {
	t.Helper()
	for i := 0; i < 5; i++ {
		must(t, h.RegisterDevice(deviceInfo(fmt.Sprintf("d%d", i), fmt.Sprintf("user%d", i), 45.7, 4.8)))
	}
	var specs []transport.TaskSpec
	for i := 0; i < 3; i++ {
		spec, _, err := h.PublishTask(taskSpec(fmt.Sprintf("work-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	for round := 0; round < 4; round++ {
		for ti, spec := range specs {
			batch := make([]transport.Upload, 0, 3)
			for d := 0; d < 3; d++ {
				batch = append(batch, upload(spec.ID, fmt.Sprintf("d%d", d), round*100+ti*10+d))
			}
			for _, err := range h.SubmitBatch(batch) {
				must(t, err)
			}
		}
	}
	// A heartbeat re-registration (overwrites) and a departure.
	must(t, h.RegisterDevice(deviceInfo("d1", "user1", 45.8, 4.9)))
	must(t, h.UnregisterDevice("d4"))
	return specs
}

// stateImage recovers a hive from s and returns its canonical state
// encoding (sorted maps, sorted assignment sets — byte-comparable).
func stateImage(t *testing.T, s store.Store) []byte {
	t.Helper()
	h, err := RecoverFrom(s)
	if err != nil {
		t.Fatal(err)
	}
	img, err := h.encodeState()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return img
}

// TestEnginesReplayIdenticalState: the same workload persisted through
// each engine — including segmented folds mid-run — recovers to
// byte-identical Hive state.
func TestEnginesReplayIdenticalState(t *testing.T) {
	dir := t.TempDir()
	open := map[string]func() (store.Store, error){
		store.EngineJournal: func() (store.Store, error) {
			return store.OpenJournal(filepath.Join(dir, "hive.journal"))
		},
		store.EngineSegmented: func() (store.Store, error) {
			// Tiny segments so the workload rotates and folds several times.
			return store.OpenSegmented(filepath.Join(dir, "seg"), store.SegmentedConfig{SegmentBytes: 512, SnapshotEvery: 2})
		},
		store.EngineSharded: func() (store.Store, error) {
			return store.OpenSharded(filepath.Join(dir, "shard"), store.ShardedConfig{Shards: 4})
		},
	}

	images := make(map[string][]byte)
	for name, mk := range open {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		h, err := RecoverFrom(s)
		if err != nil {
			t.Fatal(err)
		}
		canonicalWorkload(t, h)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		s2, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		images[name] = stateImage(t, s2)
	}

	ref := images[store.EngineJournal]
	if len(ref) == 0 {
		t.Fatal("empty reference state image")
	}
	for name, img := range images {
		if !bytes.Equal(img, ref) {
			t.Errorf("engine %s state image differs from journal engine (%d vs %d bytes)", name, len(img), len(ref))
		}
	}

	// The segmented engine must actually have folded during the workload.
	seg, err := open[store.EngineSegmented]()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverFrom(seg); err != nil {
		t.Fatal(err)
	}
	if st := seg.Stats(); st.ReplayRecords == 0 && st.Snapshots == 0 {
		t.Log("note: segmented engine replayed nothing and never folded") // folds happened in the first life; stats are per-life
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveredSegmentedHiveUnderConcurrentIngest (run with -race):
// recover a Hive from a multi-segment store, land concurrent SubmitBatch
// traffic on the new tail from one goroutine per task (plus concurrent
// readers), and assert the final replayed state is byte-identical to the
// single-file engine fed the same history.
func TestRecoveredSegmentedHiveUnderConcurrentIngest(t *testing.T) {
	segDir := filepath.Join(t.TempDir(), "seg")
	openSeg := func() (store.Store, error) {
		// Small segments, no folds: recovery must walk multiple segments.
		return store.OpenSegmented(segDir, store.SegmentedConfig{SegmentBytes: 256, SnapshotEvery: 1 << 20})
	}

	// First life: seed history across several segments.
	s, err := openSeg()
	if err != nil {
		t.Fatal(err)
	}
	h, err := RecoverFrom(s)
	if err != nil {
		t.Fatal(err)
	}
	specs := canonicalWorkload(t, h)
	if segs := s.Stats().Segments; segs < 2 {
		t.Fatalf("first life produced %d segments, want a multi-segment store", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: recover, then hammer the new tail concurrently.
	s, err = openSeg()
	if err != nil {
		t.Fatal(err)
	}
	h, err = RecoverFrom(s)
	if err != nil {
		t.Fatal(err)
	}
	const rounds, perBatch = 8, 4
	var wg sync.WaitGroup
	for ti, spec := range specs {
		wg.Add(1)
		go func(ti int, taskID string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := make([]transport.Upload, 0, perBatch)
				for d := 0; d < perBatch; d++ {
					batch = append(batch, upload(taskID, fmt.Sprintf("d%d", d%3), 1000+ti*1000+r*10+d))
				}
				for _, err := range h.SubmitBatch(batch) {
					if err != nil {
						t.Error(err)
					}
				}
			}
		}(ti, spec.ID)
	}
	// Concurrent readers race the commits (the -race payoff).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = h.Stats()
			_, _ = h.StoreStats()
			_ = h.Devices()
		}
	}()
	wg.Wait()
	<-done
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: the identical history through the single-file engine,
	// sequential, preserving each task's upload order.
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), "ref.journal"))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := RecoverFrom(j)
	if err != nil {
		t.Fatal(err)
	}
	refSpecs := canonicalWorkload(t, hr)
	for ti, spec := range refSpecs {
		for r := 0; r < rounds; r++ {
			batch := make([]transport.Upload, 0, perBatch)
			for d := 0; d < perBatch; d++ {
				batch = append(batch, upload(spec.ID, fmt.Sprintf("d%d", d%3), 1000+ti*1000+r*10+d))
			}
			for _, err := range hr.SubmitBatch(batch) {
				must(t, err)
			}
		}
	}
	refImg, err := hr.encodeState()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: replay everything (old segments + concurrent tail).
	s, err = openSeg()
	if err != nil {
		t.Fatal(err)
	}
	gotImg := stateImage(t, s)
	if !bytes.Equal(gotImg, refImg) {
		t.Errorf("segmented state after concurrent ingest differs from single-file reference (%d vs %d bytes)", len(gotImg), len(refImg))
	}
}

// TestShardedHiveIndependentCommitBoundaries: two hot tasks whose IDs
// hash to different shards commit through SubmitBatch on independent
// fsync boundaries — each shard's counter advances by its own task's
// batches only.
func TestShardedHiveIndependentCommitBoundaries(t *testing.T) {
	s, err := store.OpenSharded(filepath.Join(t.TempDir(), "shard"), store.ShardedConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := RecoverFrom(s)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	must(t, h.RegisterDevice(deviceInfo("d0", "alice", 45.7, 4.8)))

	// Publish tasks until two land on distinct shards.
	first, _, err := h.PublishTask(taskSpec("hot-0"))
	if err != nil {
		t.Fatal(err)
	}
	hotA, shardA := first.ID, s.ShardFor(first.ID)
	hotB, shardB := "", 0
	for i := 1; hotB == ""; i++ {
		if i > 64 {
			t.Fatal("no second task landed on a distinct shard")
		}
		spec, _, err := h.PublishTask(taskSpec(fmt.Sprintf("hot-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if si := s.ShardFor(spec.ID); si != shardA {
			hotB, shardB = spec.ID, si
		}
	}

	before := s.Stats()
	const batchesA, batchesB = 5, 3
	for r := 0; r < batchesA; r++ {
		for _, err := range h.SubmitBatch([]transport.Upload{upload(hotA, "d0", r)}) {
			must(t, err)
		}
	}
	for r := 0; r < batchesB; r++ {
		for _, err := range h.SubmitBatch([]transport.Upload{upload(hotB, "d0", r)}) {
			must(t, err)
		}
	}
	after := s.Stats()

	if got := after.ShardSyncs[shardA] - before.ShardSyncs[shardA]; got != batchesA {
		t.Errorf("shard %d (task %s) advanced %d syncs, want %d", shardA, hotA, got, batchesA)
	}
	if got := after.ShardSyncs[shardB] - before.ShardSyncs[shardB]; got != batchesB {
		t.Errorf("shard %d (task %s) advanced %d syncs, want %d", shardB, hotB, got, batchesB)
	}
	for i := range after.ShardSyncs {
		if i != shardA && i != shardB && after.ShardSyncs[i] != before.ShardSyncs[i] {
			t.Errorf("untouched shard %d advanced from %d to %d", i, before.ShardSyncs[i], after.ShardSyncs[i])
		}
	}
}
