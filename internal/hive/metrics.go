package hive

import (
	"strconv"
	"time"

	"apisense/internal/evalcache"
	"apisense/internal/obs"
)

// Metrics instruments the Hive HTTP surface and registry state for the
// /metrics endpoint. Build one with NewMetrics, hand it to NewServer via
// WithMetrics, and the server wires everything else: registry gauges,
// journal fsync counter, evaluation-cache series and per-route HTTP
// request/latency/error-code counters.
//
// Telemetry safety: label values are route patterns, task IDs, status
// codes and error codes — never device or user identifiers.
//
// Concurrency: immutable after NewMetrics; all hooks delegate to obs
// atomics and are safe for concurrent use. Every method is a no-op on a
// nil receiver, so unmetered servers pay nothing.
type Metrics struct {
	reg *obs.Registry

	// taskUploads counts admitted uploads per task ID:
	// apisense_hive_task_uploads_total{task}.
	taskUploads *obs.CounterVec

	// httpRequests, httpSeconds and httpErrors are the HTTP-surface
	// instruments, labelled by registered route pattern (never raw URL
	// paths, which are unbounded) and, for errors, by apierr code.
	httpRequests *obs.CounterVec
	httpSeconds  *obs.HistogramVec
	httpErrors   *obs.CounterVec
}

// NewMetrics registers the Hive instrument families on reg and returns
// the handle for WithMetrics. Nil-safe: a nil registry yields a nil
// *Metrics, which disables all instrumentation.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg: reg,
		taskUploads: reg.CounterVec("apisense_hive_task_uploads_total",
			"Uploads admitted into the Hive store, by task ID.",
			"task"),
		httpRequests: reg.CounterVec("apisense_http_requests_total",
			"HTTP requests served, by registered route pattern and status code.",
			"route", "code"),
		httpSeconds: reg.HistogramVec("apisense_http_request_seconds",
			"HTTP request handling latency, by registered route pattern.",
			obs.LatencyBuckets, "route"),
		httpErrors: reg.CounterVec("apisense_http_errors_total",
			"Error responses written by the Hive API, by apierr code.",
			"code"),
	}
}

// Registry returns the underlying obs registry (the /metrics handler).
// Nil on a nil receiver.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// BindHive registers the Hive state gauges (devices, tasks, uploads) and
// — when h carries a storage engine — the store series (fsync counters,
// segment count, snapshot age/duration, replay cost, per-shard fsyncs),
// then attaches m to h so SubmitBatch counts per-task admissions. Call
// once per Hive; NewServer does this for WithMetrics servers. Nil-safe
// on both receiver and h.
func (m *Metrics) BindHive(h *Hive) {
	if m == nil || h == nil {
		return
	}
	h.metrics.Store(m)
	m.reg.GaugeFunc("apisense_hive_devices",
		"Devices currently registered with the Hive.",
		func() float64 { return float64(h.Stats().Devices) })
	m.reg.GaugeFunc("apisense_hive_tasks",
		"Tasks currently published on the Hive.",
		func() float64 { return float64(h.Stats().Tasks) })
	m.reg.GaugeFunc("apisense_hive_uploads",
		"Uploads retained in the Hive store across all tasks.",
		func() float64 { return float64(h.Stats().Uploads) })
	s := h.Store()
	if s == nil {
		return
	}
	stats := func() StoreStats { return s.Stats() }
	m.reg.CounterFunc("apisense_journal_fsyncs_total",
		"Durability barriers (fsync) issued by the storage engine, all files.",
		func() float64 { return float64(stats().Syncs) })
	m.reg.GaugeFunc("apisense_store_segments",
		"Live log files of the storage engine (tail region + meta files).",
		func() float64 { return float64(stats().Segments) })
	m.reg.GaugeFunc("apisense_store_log_bytes",
		"Bytes in the live log files — what the next restart replays.",
		func() float64 { return float64(stats().LogBytes) })
	m.reg.CounterFunc("apisense_store_snapshots_total",
		"Snapshot folds completed by the storage engine.",
		func() float64 { return float64(stats().Snapshots) })
	m.reg.CounterFunc("apisense_store_snapshot_failures_total",
		"Snapshot folds that failed (log retained; retried at the next due point).",
		func() float64 { return float64(stats().SnapshotFailures) })
	m.reg.GaugeFunc("apisense_store_snapshot_age_seconds",
		"Seconds since the last completed snapshot fold; -1 when none has run.",
		func() float64 {
			at := stats().LastSnapshotAt
			if at.IsZero() {
				return -1
			}
			return time.Since(at).Seconds()
		})
	m.reg.GaugeFunc("apisense_store_last_snapshot_seconds",
		"Duration of the last completed snapshot fold.",
		func() float64 { return stats().LastSnapshotDuration.Seconds() })
	m.reg.GaugeFunc("apisense_store_replay_seconds",
		"Duration of the log replay at the last recovery.",
		func() float64 { return stats().ReplayDuration.Seconds() })
	m.reg.GaugeFunc("apisense_store_replay_records",
		"Records streamed by the last recovery.",
		func() float64 { return float64(stats().ReplayRecords) })
	shardSyncs := m.reg.CounterFuncVec("apisense_store_shard_fsyncs_total",
		"Durability barriers (fsync) per data-plane commit shard.",
		"shard")
	for i := 0; i < s.Shards(); i++ {
		shard := i
		shardSyncs.Bind(func() float64 {
			ss := stats().ShardSyncs
			if shard >= len(ss) {
				return 0
			}
			return float64(ss[shard])
		}, strconv.Itoa(shard))
	}
}

// BindEvalCache registers the evaluation-cache series: entry/byte gauges
// and hit/miss/eviction/pruned counters, all read from c.Stats() at
// scrape time. Nil-safe on both receiver and c.
func (m *Metrics) BindEvalCache(c evalcache.Cache) {
	if m == nil || c == nil {
		return
	}
	m.reg.GaugeFunc("apisense_evalcache_entries",
		"Live entries in the evaluation cache.",
		func() float64 { return float64(c.Stats().Entries) })
	m.reg.GaugeFunc("apisense_evalcache_bytes",
		"Approximate bytes retained by the evaluation cache.",
		func() float64 { return float64(c.Stats().Bytes) })
	m.reg.CounterFunc("apisense_evalcache_hits_total",
		"Evaluation-cache lookups answered from the cache.",
		func() float64 { return float64(c.Stats().Hits) })
	m.reg.CounterFunc("apisense_evalcache_misses_total",
		"Evaluation-cache lookups that fell through to a live evaluation.",
		func() float64 { return float64(c.Stats().Misses) })
	m.reg.CounterFunc("apisense_evalcache_evictions_total",
		"Evaluation-cache entries evicted to stay under the byte bound.",
		func() float64 { return float64(c.Stats().Evictions) })
	m.reg.CounterFunc("apisense_evalcache_pruned_total",
		"Strategy evaluations skipped by adaptive portfolio pruning.",
		func() float64 { return float64(c.Stats().Pruned) })
}

// observeRequest records one served request: the route/status counter and
// the route latency histogram. Nil-safe.
func (m *Metrics) observeRequest(route string, status int, t0 time.Time) {
	if m == nil {
		return
	}
	m.httpRequests.With(route, strconv.Itoa(status)).Inc()
	m.httpSeconds.With(route).Observe(time.Since(t0).Seconds())
}

// recordErrorCode counts one error response by apierr code. Nil-safe.
func (m *Metrics) recordErrorCode(code string) {
	if m == nil || code == "" {
		return
	}
	m.httpErrors.With(code).Inc()
}
