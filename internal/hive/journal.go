package hive

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"apisense/internal/transport"
)

// Journal is an append-only JSONL log of Hive state mutations. Attached to
// a Hive it records every successful registration, unregistration, task
// publication and upload; Recover replays a journal file into a fresh Hive,
// making the cmd/hive service restart-safe without a database.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// event is one journal entry. Exactly one payload field is set, selected by
// Kind.
type event struct {
	Kind      string                `json:"kind"`
	Device    *transport.DeviceInfo `json:"device,omitempty"`
	DeviceID  string                `json:"deviceId,omitempty"`
	Task      *transport.TaskSpec   `json:"task,omitempty"`
	Recruited []string              `json:"recruited,omitempty"`
	Upload    *transport.Upload     `json:"upload,omitempty"`
}

// Event kinds.
const (
	evRegister   = "register"
	evUnregister = "unregister"
	evPublish    = "publish"
	evUpload     = "upload"
)

// OpenJournal opens (creating if needed) a journal file for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hive: open journal %s: %w", path, err)
	}
	return &Journal{f: f, enc: json.NewEncoder(f)}, nil
}

// append writes one event.
func (j *Journal) append(e event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(e); err != nil {
		return fmt.Errorf("hive: journal append: %w", err)
	}
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("hive: close journal: %w", err)
	}
	return nil
}

// AttachJournal makes the Hive record every subsequent successful mutation.
// Attach before serving traffic; existing state is not re-journalled.
func (h *Hive) AttachJournal(j *Journal) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.journal = j
}

// logEvent writes e to the attached journal, if any. Called with h.mu held.
func (h *Hive) logEvent(e event) error {
	if h.journal == nil {
		return nil
	}
	return h.journal.append(e)
}

// Recover replays the journal at path into a fresh Hive and reopens the
// journal for appending, attaching it to the returned Hive. A missing file
// yields an empty Hive with a fresh journal.
func Recover(path string) (*Hive, *Journal, error) {
	h := New()
	f, err := os.Open(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Nothing to replay.
	case err != nil:
		return nil, nil, fmt.Errorf("hive: open journal %s: %w", path, err)
	default:
		if err := h.replay(f); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Close(); err != nil {
			return nil, nil, fmt.Errorf("hive: close journal %s: %w", path, err)
		}
	}
	j, err := OpenJournal(path)
	if err != nil {
		return nil, nil, err
	}
	h.AttachJournal(j)
	return h, j, nil
}

// replay applies journal events from r.
func (h *Hive) replay(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("hive: journal line %d: %w", line, err)
		}
		if err := h.apply(e); err != nil {
			return fmt.Errorf("hive: journal line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("hive: read journal: %w", err)
	}
	return nil
}

// apply restores one event's effect without re-journalling it. Publication
// events restore the stored recruitment verbatim instead of re-running
// recruitment, so that replay is deterministic regardless of current state.
func (h *Hive) apply(e event) error {
	switch e.Kind {
	case evRegister:
		if e.Device == nil {
			return fmt.Errorf("register event lacks device")
		}
		h.devices[e.Device.ID] = *e.Device
		return nil
	case evUnregister:
		delete(h.devices, e.DeviceID)
		for _, set := range h.assignments {
			delete(set, e.DeviceID)
		}
		return nil
	case evPublish:
		if e.Task == nil || e.Task.ID == "" {
			return fmt.Errorf("publish event lacks task")
		}
		h.tasks[e.Task.ID] = *e.Task
		set := make(map[string]bool, len(e.Recruited))
		for _, id := range e.Recruited {
			set[id] = true
		}
		h.assignments[e.Task.ID] = set
		// Keep the ID counter ahead of every restored task.
		var n int
		if _, err := fmt.Sscanf(e.Task.ID, "task-%d", &n); err == nil && n > h.nextTaskID {
			h.nextTaskID = n
		}
		return nil
	case evUpload:
		if e.Upload == nil {
			return fmt.Errorf("upload event lacks payload")
		}
		h.uploads[e.Upload.TaskID] = append(h.uploads[e.Upload.TaskID], *e.Upload)
		return nil
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
}
