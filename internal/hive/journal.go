package hive

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"apisense/internal/apierr"
	"apisense/internal/transport"
)

// ErrJournalIO marks a journal disk failure (open, append, fsync or
// close). The HTTP layer maps it to 500: acknowledged durability could
// not be provided, and the affected uploads were rolled back (see
// Hive.SubmitBatch). Operators should treat it as a disk-health page.
var ErrJournalIO = apierr.New("hive.journal_io", apierr.Internal, "hive: journal I/O")

// Journal is an append-only JSONL log of Hive state mutations. Attached to
// a Hive it records every successful registration, unregistration, task
// publication and upload; Recover replays a journal file into a fresh Hive,
// making the cmd/hive service restart-safe without a database.
//
// Durability is group-committed: every append call — whether it carries one
// event or a whole drained ingest batch — is one commit boundary, and the
// file is fsynced once every SyncEvery boundaries (default every boundary).
// Batching uploads therefore amortises the fsync over the batch instead of
// paying it per upload.
type Journal struct {
	//lint:allowsync journal commit lock, serialises append+fsync by design
	mu        sync.Mutex
	f         *os.File
	enc       *json.Encoder
	syncEvery int    // commit boundaries between fsyncs; <= 0 disables fsync
	pending   int    // boundaries since the last fsync
	syncs     uint64 // fsyncs performed, for stats and tests
}

// event is one journal entry. Exactly one payload field is set, selected by
// Kind.
type event struct {
	Kind      string                `json:"kind"`
	Device    *transport.DeviceInfo `json:"device,omitempty"`
	DeviceID  string                `json:"deviceId,omitempty"`
	Task      *transport.TaskSpec   `json:"task,omitempty"`
	Recruited []string              `json:"recruited,omitempty"`
	Upload    *transport.Upload     `json:"upload,omitempty"`
}

// Event kinds.
const (
	evRegister   = "register"
	evUnregister = "unregister"
	evPublish    = "publish"
	evUpload     = "upload"
)

// OpenJournal opens (creating if needed) a journal file for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: open %s: %w", ErrJournalIO, path, err)
	}
	return &Journal{f: f, enc: json.NewEncoder(f), syncEvery: 1}, nil
}

// SetSyncEvery tunes the group-commit durability knob: the file is fsynced
// once every n commit boundaries (append calls). n = 1 — the default —
// syncs every boundary; larger n trades a bounded window of recent commits
// for throughput; n <= 0 disables fsync entirely, leaving flushes to the
// OS (Close still syncs).
func (j *Journal) SetSyncEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncEvery = n
}

// Syncs reports how many fsyncs the journal has performed — the
// group-commit effectiveness gauge: uploads ingested per sync is the
// amortisation factor.
func (j *Journal) Syncs() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncs
}

// appendBatch writes a group of events as one commit boundary: all events
// are encoded, then the boundary is fsynced (subject to SyncEvery). This is
// the group-commit path of the ingest queue — one sync per drained batch
// instead of one per upload.
func (j *Journal) appendBatch(events []event) error {
	if err := j.appendEvents(events); err != nil {
		return err
	}
	return j.commit()
}

// appendEvents encodes events WITHOUT advancing the commit boundary — the
// encode half of a group commit. The Hive's registry mutators call it while
// holding h.mu (so journal order matches mutation order) and fsync via
// commit after releasing the lock, keeping readers off the disk-sync path.
func (j *Journal) appendEvents(events []event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range events {
		if err := j.enc.Encode(events[i]); err != nil {
			return fmt.Errorf("%w: append: %w", ErrJournalIO, err)
		}
	}
	return nil
}

// commit advances the group-commit boundary (fsync per SyncEvery).
func (j *Journal) commit() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commitLocked()
}

// commitLocked advances the group-commit boundary, syncing per SyncEvery.
// Callers hold j.mu.
func (j *Journal) commitLocked() error {
	if j.syncEvery <= 0 {
		return nil
	}
	j.pending++
	if j.pending < j.syncEvery {
		return nil
	}
	j.pending = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("%w: sync: %w", ErrJournalIO, err)
	}
	j.syncs++
	return nil
}

// Close syncs outstanding commits and releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("%w: close sync: %w", ErrJournalIO, err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("%w: close: %w", ErrJournalIO, err)
	}
	return nil
}

// AttachJournal makes the Hive record every subsequent successful mutation.
// Attach before serving traffic; existing state is not re-journalled.
func (h *Hive) AttachJournal(j *Journal) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.journal = j
}

// logEvent encodes e to the attached journal, if any, WITHOUT syncing.
// Called with h.mu held so journal order matches mutation order; the
// caller must fsync via commitJournal after releasing h.mu, keeping the
// disk sync off the lock every reader contends on.
func (h *Hive) logEvent(e event) (*Journal, error) {
	if h.journal == nil {
		return nil, nil
	}
	return h.journal, h.journal.appendEvents([]event{e})
}

// commitJournal advances the commit boundary of a journal returned by
// logEvent (nil-safe). Called without h.mu held.
func commitJournal(j *Journal) error {
	if j == nil {
		return nil
	}
	return j.commit()
}

// Recover replays the journal at path into a fresh Hive and reopens the
// journal for appending, attaching it to the returned Hive. A missing file
// yields an empty Hive with a fresh journal.
func Recover(path string) (*Hive, *Journal, error) {
	h := New()
	f, err := os.Open(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Nothing to replay.
	case err != nil:
		return nil, nil, fmt.Errorf("%w: open %s: %w", ErrJournalIO, path, err)
	default:
		if err := h.replay(f); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Close(); err != nil {
			return nil, nil, fmt.Errorf("%w: close %s: %w", ErrJournalIO, path, err)
		}
	}
	j, err := OpenJournal(path)
	if err != nil {
		return nil, nil, err
	}
	h.AttachJournal(j)
	return h, j, nil
}

// replay applies journal events from r.
func (h *Hive) replay(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("%w: line %d: %w", ErrCorruptJournal, line, err)
		}
		if err := h.apply(e); err != nil {
			return fmt.Errorf("hive: journal line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%w: read: %w", ErrJournalIO, err)
	}
	return nil
}

// ErrCorruptJournal marks a journal event that cannot be replayed:
// Recover wraps it around the offending line so callers can distinguish
// corruption from I/O failures with errors.Is. HTTP 500 (recovery never
// runs inside a request, but the code keeps logs greppable).
var ErrCorruptJournal = apierr.New("hive.corrupt_journal", apierr.Internal, "hive: corrupt journal event")

// apply restores one event's effect without re-journalling it. Publication
// events restore the stored recruitment verbatim instead of re-running
// recruitment, so that replay is deterministic regardless of current state.
func (h *Hive) apply(e event) error {
	switch e.Kind {
	case evRegister:
		if e.Device == nil {
			return fmt.Errorf("%w: register event lacks device", ErrCorruptJournal)
		}
		h.devices[e.Device.ID] = *e.Device
		return nil
	case evUnregister:
		delete(h.devices, e.DeviceID)
		for _, set := range h.assignments {
			delete(set, e.DeviceID)
		}
		return nil
	case evPublish:
		if e.Task == nil || e.Task.ID == "" {
			return fmt.Errorf("%w: publish event lacks task", ErrCorruptJournal)
		}
		h.tasks[e.Task.ID] = *e.Task
		set := make(map[string]bool, len(e.Recruited))
		for _, id := range e.Recruited {
			set[id] = true
		}
		h.assignments[e.Task.ID] = set
		// Keep the ID counter ahead of every restored task.
		var n int
		if _, err := fmt.Sscanf(e.Task.ID, "task-%d", &n); err == nil && n > h.nextTaskID {
			h.nextTaskID = n
		}
		return nil
	case evUpload:
		if e.Upload == nil {
			return fmt.Errorf("%w: upload event lacks payload", ErrCorruptJournal)
		}
		h.uploads[e.Upload.TaskID] = append(h.uploads[e.Upload.TaskID], *e.Upload)
		return nil
	default:
		return fmt.Errorf("%w: unknown event kind %q", ErrCorruptJournal, e.Kind)
	}
}
