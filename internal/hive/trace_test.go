package hive

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"apisense/internal/device"
	"apisense/internal/hive/store"
	"apisense/internal/ingest"
	"apisense/internal/obs"
	"apisense/internal/otrace"
	"apisense/internal/transport"
)

// TestEndToEndUploadTrace drives one BatchUploader flush — including a 429
// backpressure retry hop — through the HTTP server, the ingest queue, the
// group commit and the store append, and asserts that every hop lands in a
// single trace with the expected parent/child/link structure.
func TestEndToEndUploadTrace(t *testing.T) {
	st, err := store.OpenJournal(filepath.Join(t.TempDir(), "hive.journal"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := RecoverFrom(st)
	if err != nil {
		t.Fatal(err)
	}
	tracer := otrace.New(otrace.Config{Store: otrace.NewSpanStore(64)})
	q := ingest.New(h, ingest.Config{Capacity: 8, MaxBatch: 64, Workers: 1, Tracer: tracer})
	hs := NewServer(h, WithIngestQueue(q), WithTracer(tracer))

	// The middleware rejects the FIRST batch POST with 429 before it
	// reaches the server, recording each attempt's traceparent header —
	// the retry must resubmit under the same trace identity.
	var (
		mu       sync.Mutex
		parents  []string
		rejected bool
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/api/uploads/batch" {
			mu.Lock()
			parents = append(parents, r.Header.Get("traceparent"))
			first := !rejected
			rejected = true
			mu.Unlock()
			if first {
				w.Header().Set("Retry-After", "0")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprintln(w, `{"error":"queue full","code":"ingest.queue_full"}`)
				return
			}
		}
		hs.ServeHTTP(w, r)
	}))
	defer ts.Close()

	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("trace-task"))
	if err != nil {
		t.Fatal(err)
	}

	up := device.NewBatchUploader(transport.NewClient(ts.URL), device.UploaderConfig{
		BatchSize: 1, BaseDelay: time.Millisecond, Seed: 7, Tracer: tracer,
	})
	resp, err := up.Add(context.Background(), transport.Upload{
		TaskID: spec.ID, DeviceID: "d1",
		Records: []transport.UploadRecord{{Sensor: "gps"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil || resp.Accepted != 1 {
		t.Fatalf("flush response = %+v, want 1 accepted", resp)
	}
	if up.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 backpressure retry", up.Retries)
	}
	q.Close() // drain workers exit, so the commit-side spans are recorded
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if len(parents) != 2 || parents[0] == "" || parents[0] != parents[1] {
		t.Fatalf("traceparent must be identical across the 429 retry, got %q", parents)
	}
	sc, ok := otrace.ParseTraceparent(parents[0])
	if !ok {
		t.Fatalf("uploader sent a malformed traceparent %q", parents[0])
	}

	spans, ok := tracer.Store().Spans(sc.TraceID)
	if !ok {
		t.Fatalf("no spans collected for trace %s", sc.TraceID)
	}
	byName := map[string]otrace.Span{}
	for _, sp := range spans {
		if sp.TraceID != sc.TraceID {
			t.Fatalf("span %s has trace %s, want %s", sp.Name, sp.TraceID, sc.TraceID)
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{
		"device.flush", "http.POST /api/uploads/batch",
		"ingest.enqueue", "ingest.group_commit", "store.append",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace is missing span %q (have %v)", want, spanNames(spans))
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	flush := byName["device.flush"]
	if !flush.Parent.IsZero() {
		t.Errorf("device.flush must be the trace root, has parent %s", flush.Parent)
	}
	if !hasAttr(flush, "retries", "1") {
		t.Errorf("device.flush should record retries=1, attrs: %+v", flush.Attrs)
	}
	httpSpan := byName["http.POST /api/uploads/batch"]
	if httpSpan.Parent != flush.SpanID {
		t.Errorf("server span parent = %s, want the client flush span %s", httpSpan.Parent, flush.SpanID)
	}
	enq := byName["ingest.enqueue"]
	if enq.Parent != httpSpan.SpanID {
		t.Errorf("enqueue parent = %s, want the server span %s", enq.Parent, httpSpan.SpanID)
	}
	gc := byName["ingest.group_commit"]
	if gc.Parent != enq.SpanID {
		t.Errorf("group commit parent = %s, want the enqueue span %s", gc.Parent, enq.SpanID)
	}
	linked := false
	for _, l := range gc.Links {
		if l.SpanID == enq.SpanID {
			linked = true
		}
	}
	if !linked {
		t.Errorf("group commit must link the coalesced enqueue span, links: %+v", gc.Links)
	}
	app := byName["store.append"]
	if app.Parent != gc.SpanID {
		t.Errorf("store append parent = %s, want the group commit span %s", app.Parent, gc.SpanID)
	}
}

func spanNames(spans []otrace.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

func hasAttr(sp otrace.Span, k, v string) bool {
	for _, a := range sp.Attrs {
		if a.Key == k && a.Value == v {
			return true
		}
	}
	return false
}

// TestDebugTraceEndpoints exercises GET /debug/traces and
// GET /debug/traces/{id}, including the malformed and unknown-ID error
// paths.
func TestDebugTraceEndpoints(t *testing.T) {
	h := New()
	tracer := otrace.New(otrace.Config{Store: otrace.NewSpanStore(16)})
	hs := NewServer(h, WithTracer(tracer))
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		hs.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/api/stats"); rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}

	rec := get("/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("list traces: %d", rec.Code)
	}
	var sums []otrace.TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sums); err != nil {
		t.Fatalf("decode summaries %q: %v", rec.Body.String(), err)
	}
	// The /debug/traces request itself may already be collected; the
	// /api/stats trace must be among the summaries.
	var statsTrace *otrace.TraceSummary
	for i := range sums {
		if sums[i].Root == "http.GET /api/stats" {
			statsTrace = &sums[i]
		}
	}
	if statsTrace == nil {
		t.Fatalf("no summary with root http.GET /api/stats in %+v", sums)
	}

	rec = get("/debug/traces/" + statsTrace.TraceID.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("get trace: %d body %s", rec.Code, rec.Body.String())
	}
	var tr TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "http.GET /api/stats" {
		t.Fatalf("trace tree = %+v, want one http.GET /api/stats root", tr.Spans)
	}
	if !hasAttr(tr.Spans[0].Span, "status", "200") {
		t.Fatalf("server span should record status=200, attrs: %+v", tr.Spans[0].Attrs)
	}

	rec = get("/debug/traces/not-a-trace-id")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed id: %d, want 400", rec.Code)
	}
	rec = get("/debug/traces/abababababababababababababababab")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", rec.Code)
	}
	var er struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "hive.unknown_trace" {
		t.Fatalf("unknown-trace body %q, want code hive.unknown_trace", rec.Body.String())
	}
}

// TestHealthAndReadiness covers the liveness and readiness probes across
// the draining and queue-closed gates.
func TestHealthAndReadiness(t *testing.T) {
	h := New()
	q := ingest.New(h, ingest.Config{Capacity: 4})
	hs := NewServer(h, WithIngestQueue(q))
	probe := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		hs.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var body struct {
			Status string `json:"status"`
		}
		_ = json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body.Status
	}

	if code, status := probe("/healthz"); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz = %d %q", code, status)
	}
	if code, status := probe("/readyz"); code != http.StatusOK || status != "ready" {
		t.Fatalf("readyz = %d %q, want ready", code, status)
	}
	hs.SetDraining(true)
	if code, status := probe("/readyz"); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("draining readyz = %d %q", code, status)
	}
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must stay 200 while draining, got %d", code)
	}
	hs.SetDraining(false)
	if code, _ := probe("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after undrain = %d", code)
	}
	q.Close()
	if code, status := probe("/readyz"); code != http.StatusServiceUnavailable || status != "queue-closed" {
		t.Fatalf("closed-queue readyz = %d %q", code, status)
	}
}

// TestConcurrentScrapesDuringIngest hammers the batch endpoint from several
// goroutines while scraping /metrics concurrently (run under -race), then
// checks that two quiesced scrapes are byte-identical — family and series
// ordering must be deterministic no matter what the writers were doing.
func TestConcurrentScrapesDuringIngest(t *testing.T) {
	h := New()
	reg := obs.NewRegistry()
	hs := NewServer(h, WithMetrics(NewMetrics(reg)))
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("scrape-task"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(transport.UploadBatch{Uploads: []transport.Upload{{
		TaskID: spec.ID, DeviceID: "d1", Records: []transport.UploadRecord{{Sensor: "gps"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodPost, "/api/uploads/batch", bytes.NewReader(body))
				hs.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("batch submit: %d", rec.Code)
					return
				}
			}
		}()
	}
	scrape := func() string {
		rec := httptest.NewRecorder()
		hs.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("scrape: %d", rec.Code)
		}
		return rec.Body.String()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				scrape()
			}
		}()
	}
	wg.Wait()

	// The scrape instruments itself (the GET /metrics counters advance on
	// every request), so values cannot be byte-compared — the exposition
	// STRUCTURE can: the same families and series, in the same order.
	normalize := func(s string) string {
		var b strings.Builder
		for _, line := range strings.Split(s, "\n") {
			if i := strings.LastIndexByte(line, ' '); i >= 0 && !strings.HasPrefix(line, "#") {
				line = line[:i]
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
		return b.String()
	}
	first, second := scrape(), scrape()
	if normalize(first) != normalize(second) {
		t.Fatalf("quiesced scrapes order series differently:\n--- first\n%s\n--- second\n%s", first, second)
	}
}
