package hive

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"apisense/internal/apierr"
	"apisense/internal/evalcache"
	"apisense/internal/ingest"
	"apisense/internal/obs"
	"apisense/internal/transport"
)

// TestMetricsEndpoint drives a fully wired server — journal, ingest
// queue, eval cache, metrics — and checks that GET /metrics serves the
// documented series in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	h, j, err := Recover(filepath.Join(t.TempDir(), "hive.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	reg := obs.NewRegistry()
	q := ingest.New(h, ingest.Config{
		Capacity: 8, MaxBatch: 8, Workers: 1,
		Metrics: ingest.NewMetrics(reg),
	})
	defer q.Close()
	cache := evalcache.NewLRU(0)

	srv := httptest.NewServer(NewServer(h,
		WithIngestQueue(q),
		WithEvalCache(cache),
		WithMetrics(NewMetrics(reg)),
	))
	defer srv.Close()

	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("observed"))
	if err != nil {
		t.Fatal(err)
	}

	batch, _ := json.Marshal(transport.UploadBatch{Uploads: []transport.Upload{
		{TaskID: spec.ID, DeviceID: "d1"},
		{TaskID: spec.ID, DeviceID: "d1"},
	}})
	status, body, _ := postJSON(t, srv.URL, "/api/uploads/batch", string(batch))
	if status != http.StatusOK {
		t.Fatalf("batch submit: status %d, body %s", status, body)
	}
	// The queue drains asynchronously; wait for the commit to land.
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Uploads != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("uploads never drained: stats %+v", h.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// One coded failure, so the error-code counter has a series.
	resp, err := http.Get(srv.URL + "/api/tasks/task-9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown task: status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)

	wantSeries := []string{
		// Hive state gauges and the per-task upload counter.
		"apisense_hive_devices 1",
		"apisense_hive_tasks 1",
		"apisense_hive_uploads 2",
		`apisense_hive_task_uploads_total{task="` + spec.ID + `"} 2`,
		// Journal durability: register + publish + one group commit each
		// fsynced; exact count is an implementation detail, presence and
		// type are the contract.
		"# TYPE apisense_journal_fsyncs_total counter",
		// Ingest queue instruments: the batch of two drained in one group
		// commit.
		"apisense_ingest_pending_uploads 0",
		"apisense_ingest_uploads_accepted_total 2",
		"apisense_ingest_group_commits_total 1",
		`apisense_ingest_drain_seconds_bucket{le="+Inf"} 1`,
		"apisense_ingest_drain_seconds_count 1",
		`apisense_ingest_group_size_uploads_sum 2`,
		// HTTP surface: per-route request counters and latency histograms,
		// per-code error counter.
		`apisense_http_requests_total{route="POST /api/uploads/batch",code="200"} 1`,
		`apisense_http_requests_total{route="GET /api/tasks/{id}",code="404"} 1`,
		`apisense_http_request_seconds_bucket{route="POST /api/uploads/batch",le="+Inf"} 1`,
		`apisense_http_errors_total{code="hive.unknown_task"} 1`,
		// Eval cache series exist (idle cache: zeros).
		"apisense_evalcache_entries 0",
		"apisense_evalcache_hits_total 0",
		"apisense_evalcache_misses_total 0",
	}
	for _, w := range wantSeries {
		if !strings.Contains(out, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}

	// Exposition-format sanity: every family has HELP and TYPE, every
	// non-comment line is `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") < 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}
	for _, fam := range []string{"apisense_hive_devices", "apisense_ingest_drain_seconds",
		"apisense_http_requests_total", "apisense_journal_fsyncs_total"} {
		if !strings.Contains(out, "# HELP "+fam+" ") {
			t.Errorf("family %s has no HELP", fam)
		}
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("family %s has no TYPE", fam)
		}
	}
}

// TestWriteErrorStatusMapping is the table over the whole error taxonomy:
// every sentinel's HTTP status and wire code, wrapped or not, plus the
// uncoded fallback.
func TestWriteErrorStatusMapping(t *testing.T) {
	s := NewServer(New())
	tests := []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
	}{
		{"unknown device", ErrUnknownDevice, 404, "hive.unknown_device"},
		{"unknown task", ErrUnknownTask, 404, "hive.unknown_task"},
		{"not assigned", ErrNotAssigned, 403, "hive.not_assigned"},
		{"no qualifying devices", ErrNoQualifyingDevices, 409, "hive.no_qualifying_devices"},
		{"upload limit", ErrUploadLimit, 429, "hive.upload_limit"},
		{"invalid device", ErrInvalidDevice, 400, "hive.invalid_device"},
		{"invalid spec", transport.ErrInvalidSpec, 400, "transport.invalid_spec"},
		{"batch too large", ingest.ErrBatchTooLarge, 413, "ingest.batch_too_large"},
		{"queue closed", ingest.ErrClosed, 503, "ingest.closed"},
		{"queue full", ingest.ErrQueueFull, 429, "ingest.queue_full"},
		{"journal io", ErrJournalIO, 500, "hive.journal_io"},
		{"corrupt journal", ErrCorruptJournal, 500, "hive.corrupt_journal"},
		{"bad request", errBadRequest, 400, "hive.bad_request"},
		{"empty batch", errEmptyBatch, 400, "hive.empty_batch"},
		{"wrapped keeps mapping", fmt.Errorf("ctx: %w", ErrUploadLimit), 429, "hive.upload_limit"},
		{"doubly wrapped", fmt.Errorf("a: %w", fmt.Errorf("b: %w", ErrUnknownDevice)), 404, "hive.unknown_device"},
		{"uncoded is a 500", errors.New("mystery"), 500, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.writeError(rec, httptest.NewRequest(http.MethodGet, "/test", nil), tc.err)
			if rec.Code != tc.wantStatus {
				t.Errorf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
			var body struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("body %q: %v", rec.Body.String(), err)
			}
			if body.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", body.Code, tc.wantCode)
			}
			if body.Error == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestUploadResultCodes is the table over the per-item wire codes of
// batch responses.
func TestUploadResultCodes(t *testing.T) {
	tests := []struct {
		err  error
		want string
	}{
		{nil, transport.UploadOK},
		{ErrUnknownTask, transport.UploadUnknownTask},
		{fmt.Errorf("ctx: %w", ErrUnknownTask), transport.UploadUnknownTask},
		{ErrUnknownDevice, transport.UploadUnknownDevice},
		{ErrNotAssigned, transport.UploadNotAssigned},
		{ErrUploadLimit, transport.UploadLimit},
		{errors.New("disk on fire"), transport.UploadFailed},
	}
	for _, tc := range tests {
		if got := uploadResultCode(tc.err); got != tc.want {
			t.Errorf("uploadResultCode(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestClientBranchesOnCodedErrors: the cross-process contract — a client
// talking to a real server over HTTP can errors.Is against the hive
// sentinels, because the wire code round-trips through ErrStatus.
func TestClientBranchesOnCodedErrors(t *testing.T) {
	h := New()
	srv := httptest.NewServer(NewServer(h))
	defer srv.Close()
	client := transport.NewClient(srv.URL)

	err := client.Do(context.Background(), http.MethodGet, "/api/tasks/task-404", nil, nil)
	if err == nil {
		t.Fatal("expected an error for an unknown task")
	}
	if !errors.Is(err, ErrUnknownTask) {
		t.Errorf("errors.Is(err, ErrUnknownTask) = false for %v", err)
	}
	if errors.Is(err, ErrUnknownDevice) {
		t.Errorf("errors.Is matched the wrong sentinel for %v", err)
	}
	var st *transport.ErrStatus
	if !errors.As(err, &st) {
		t.Fatalf("no ErrStatus in chain of %v", err)
	}
	if st.ErrCode != "hive.unknown_task" {
		t.Errorf("ErrCode = %q, want hive.unknown_task", st.ErrCode)
	}
	if apierr.Code(err) != "hive.unknown_task" {
		t.Errorf("apierr.Code(err) = %q", apierr.Code(err))
	}
}

// TestMetricsDisabledServerUnchanged: without WithMetrics there is no
// /metrics route and error handling is unaffected.
func TestMetricsDisabledServerUnchanged(t *testing.T) {
	srv := httptest.NewServer(NewServer(New()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /metrics on unmetered server: status %d, want 404", resp.StatusCode)
	}
}
