package hive

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apisense/internal/evalcache"
	"apisense/internal/ingest"
	"apisense/internal/transport"
)

// postJSON posts raw bytes and returns status, body and headers.
func postJSON(t *testing.T, url, path string, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data), resp.Header
}

// capped builds a hive with one device, one published task and an upload
// cap of 1, with the first slot already consumed.
func capped(t *testing.T) (*Hive, transport.TaskSpec) {
	t.Helper()
	h := New()
	h.SetMaxUploadsPerTask(1)
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("capped"))
	if err != nil {
		t.Fatal(err)
	}
	must(t, h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "d1"}))
	return h, spec
}

// TestServerErrorPaths is the table over the upload routes' failure modes:
// status codes, bodies, and per-item result codes of partial batches.
func TestServerErrorPaths(t *testing.T) {
	h, spec := capped(t)
	srv := httptest.NewServer(NewServer(h))
	defer srv.Close()

	okUpload := `{"taskId":"` + spec.ID + `","deviceId":"d1","records":[]}`

	tests := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{
			name: "malformed JSON single", path: "/api/uploads",
			body: `{not json`, wantStatus: http.StatusBadRequest, wantInBody: "decode request",
		},
		{
			name: "malformed JSON batch", path: "/api/uploads/batch",
			body: `{"uploads":[{]}`, wantStatus: http.StatusBadRequest, wantInBody: "decode request",
		},
		{
			name: "empty batch", path: "/api/uploads/batch",
			body: `{"uploads":[]}`, wantStatus: http.StatusBadRequest, wantInBody: "empty upload batch",
		},
		{
			name: "unknown task single", path: "/api/uploads",
			body: `{"taskId":"task-9999","deviceId":"d1"}`, wantStatus: http.StatusNotFound, wantInBody: "unknown task",
		},
		{
			name: "upload limit single", path: "/api/uploads",
			body: okUpload, wantStatus: http.StatusTooManyRequests, wantInBody: "upload limit",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := postJSON(t, srv.URL, tc.path, tc.body)
			if status != tc.wantStatus {
				t.Errorf("status = %d, want %d (body %s)", status, tc.wantStatus, body)
			}
			if !strings.Contains(body, tc.wantInBody) {
				t.Errorf("body = %q, want it to contain %q", body, tc.wantInBody)
			}
		})
	}
}

// TestServerBatchPartialAcceptance: a mixed batch is admitted per item and
// the response body reports one coded result per upload.
func TestServerBatchPartialAcceptance(t *testing.T) {
	h := New()
	h.SetMaxUploadsPerTask(2) // one slot left after the first batch item
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("partial"))
	if err != nil {
		t.Fatal(err)
	}
	must(t, h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "d1"}))
	srv := httptest.NewServer(NewServer(h))
	defer srv.Close()

	batch := transport.UploadBatch{Uploads: []transport.Upload{
		{TaskID: spec.ID, DeviceID: "d1"},     // fits in the last slot
		{TaskID: "task-9999", DeviceID: "d1"}, // unknown task
		{TaskID: spec.ID, DeviceID: "ghost"},  // unknown device
		{TaskID: spec.ID, DeviceID: "d1"},     // over the cap
	}}
	raw, _ := json.Marshal(batch)
	status, body, _ := postJSON(t, srv.URL, "/api/uploads/batch", string(raw))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", status, body)
	}
	var resp transport.UploadBatchResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Rejected != 3 {
		t.Errorf("accepted/rejected = %d/%d, want 1/3", resp.Accepted, resp.Rejected)
	}
	wantCodes := []string{
		transport.UploadOK, transport.UploadUnknownTask,
		transport.UploadUnknownDevice, transport.UploadLimit,
	}
	for i, want := range wantCodes {
		if resp.Results[i].Index != i || resp.Results[i].Code != want {
			t.Errorf("result[%d] = %+v, want code %s", i, resp.Results[i], want)
		}
	}
	if resp.Results[0].Error != "" || resp.Results[1].Error == "" {
		t.Errorf("error strings: accepted should be empty, rejected populated: %+v", resp.Results[:2])
	}
}

// blockingSink parks batch commits until released, to saturate the queue
// from a test deterministically. parked counts drain workers waiting at
// the gate.
type blockingSink struct {
	h      *Hive
	gate   chan struct{}
	once   sync.Once
	parked atomic.Int32
}

func (s *blockingSink) SubmitBatch(ups []transport.Upload) []error {
	s.parked.Add(1)
	<-s.gate
	s.parked.Add(-1)
	return s.h.SubmitBatch(ups)
}

func (s *blockingSink) release() { s.once.Do(func() { close(s.gate) }) }

// TestServerQueueFull: a saturated ingest queue answers 429 with a
// Retry-After hint on both upload routes, and /api/stats surfaces the
// queue gauges.
func TestServerQueueFull(t *testing.T) {
	h := New()
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("squeezed"))
	if err != nil {
		t.Fatal(err)
	}
	sink := &blockingSink{h: h, gate: make(chan struct{})}
	q := ingest.New(sink, ingest.Config{Capacity: 1, Workers: 1, RetryAfter: 2 * time.Second})
	// LIFO: on unwind the gate opens before Close waits on the worker.
	defer q.Close()
	defer sink.release()
	srv := httptest.NewServer(NewServer(h, WithIngestQueue(q)))
	defer srv.Close()

	upJSON := `{"taskId":"` + spec.ID + `","deviceId":"d1","records":[]}`
	post := func() { // fire-and-forget: these block until the sink gate opens
		resp, err := http.Post(srv.URL+"/api/uploads", "application/json", strings.NewReader(upJSON))
		if err == nil {
			resp.Body.Close()
		}
	}
	// Park the drain worker inside the sink, then occupy the single slot:
	// only then is the next submission guaranteed to be turned away.
	go post()
	waitServerFor(t, func() bool { return sink.parked.Load() == 1 })
	go post()
	waitServerFor(t, func() bool { return q.Stats().PendingBatches == 1 })

	for _, tc := range []struct{ name, path, body string }{
		{"single", "/api/uploads", upJSON},
		{"batch", "/api/uploads/batch", `{"uploads":[` + upJSON + `]}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body, hdr := postJSON(t, srv.URL, tc.path, tc.body)
			if status != http.StatusTooManyRequests {
				t.Errorf("status = %d, want 429 (body %s)", status, body)
			}
			if hdr.Get("Retry-After") != "2" {
				t.Errorf("Retry-After = %q, want \"2\"", hdr.Get("Retry-After"))
			}
			if !strings.Contains(body, "queue full") {
				t.Errorf("body = %q, want queue-full error", body)
			}
		})
	}

	// Drain and check the gauges on /stats.
	sink.release()
	waitServerFor(t, func() bool { return q.Stats().PendingUploads == 0 })
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingest == nil {
		t.Fatal("stats.Ingest missing with a queue wired in")
	}
	if stats.Ingest.Accepted != 2 || stats.Ingest.Dropped != 2 || stats.Ingest.Capacity != 1 {
		t.Errorf("ingest gauges = %+v", stats.Ingest)
	}
	if stats.Uploads != 2 {
		t.Errorf("uploads = %d, want 2", stats.Uploads)
	}
}

// TestServerQueueClosed: submissions during shutdown drain answer 503.
func TestServerQueueClosed(t *testing.T) {
	h := New()
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("closing"))
	if err != nil {
		t.Fatal(err)
	}
	q := ingest.New(h, ingest.Config{})
	q.Close()
	srv := httptest.NewServer(NewServer(h, WithIngestQueue(q)))
	defer srv.Close()

	status, body, _ := postJSON(t, srv.URL, "/api/uploads",
		`{"taskId":"`+spec.ID+`","deviceId":"d1"}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503 (body %s)", status, body)
	}
}

// TestServerBatchThroughQueue: the happy path over HTTP with a live queue —
// per-item results come back after the group commit.
func TestServerBatchThroughQueue(t *testing.T) {
	h := New()
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("live"))
	if err != nil {
		t.Fatal(err)
	}
	q := ingest.New(h, ingest.Config{Capacity: 4, Workers: 2})
	defer q.Close()
	srv := httptest.NewServer(NewServer(h, WithIngestQueue(q)))
	defer srv.Close()

	cl := transport.NewClient(srv.URL)
	batch := transport.UploadBatch{Uploads: []transport.Upload{
		{TaskID: spec.ID, DeviceID: "d1", Records: []transport.UploadRecord{{Sensor: "gps"}}},
		{TaskID: "task-9999", DeviceID: "d1"},
	}}
	var resp transport.UploadBatchResponse
	if err := cl.Do(context.Background(), http.MethodPost, "/api/uploads/batch", batch, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Rejected != 1 || resp.Results[1].Code != transport.UploadUnknownTask {
		t.Errorf("resp = %+v", resp)
	}
	ups, err := h.Uploads(spec.ID)
	if err != nil || len(ups) != 1 {
		t.Fatalf("uploads = %v, %v", ups, err)
	}
}

// waitServerFor polls cond for up to 5 seconds.
func waitServerFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestServerEvalCacheStats: with WithEvalCache the /api/stats response
// carries the evaluation-cache gauges; without it the field is absent.
func TestServerEvalCacheStats(t *testing.T) {
	cache := evalcache.NewLRU(1024)
	cache.Put("k", 1, 10)
	cache.Get("k")
	cache.Get("missing")
	cache.AddPruned(3)
	srv := httptest.NewServer(NewServer(New(), WithEvalCache(cache)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.EvalCache == nil {
		t.Fatal("stats.EvalCache missing with a cache wired in")
	}
	got := *stats.EvalCache
	want := EvalCacheStats{Entries: 1, Bytes: 10, Hits: 1, Misses: 1, Pruned: 3}
	if got != want {
		t.Errorf("eval cache gauges = %+v, want %+v", got, want)
	}

	bare := httptest.NewServer(NewServer(New()))
	defer bare.Close()
	_, body, _ := getJSON(t, bare.URL, "/api/stats")
	if strings.Contains(body, "eval_cache") {
		t.Errorf("stats without a cache should omit eval_cache: %s", body)
	}
}

// getJSON fetches a path and returns status, body and headers.
func getJSON(t *testing.T, url, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data), resp.Header
}
