package hive

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"apisense/internal/apierr"
	"apisense/internal/hive/store"
	"apisense/internal/otrace"
	"apisense/internal/transport"
)

// ErrJournalIO marks a storage-engine disk failure (open, append, fsync
// or close). The HTTP layer maps it to 500: acknowledged durability could
// not be provided, and the affected uploads were rolled back (see
// Hive.SubmitBatch). Operators should treat it as a disk-health page.
// Engine-level failures also carry the store.io code, so both match with
// errors.Is.
var ErrJournalIO = apierr.New("hive.journal_io", apierr.Internal, "hive: journal I/O")

// ErrCorruptJournal marks a persisted event or snapshot that cannot be
// replayed: Recover wraps it around the offending record so callers can
// distinguish corruption from I/O failures with errors.Is. Torn final
// appends are NOT corruption — every engine truncates them away (see
// internal/hive/store). HTTP 500 (recovery never runs inside a request,
// but the code keeps logs greppable).
var ErrCorruptJournal = apierr.New("hive.corrupt_journal", apierr.Internal, "hive: corrupt journal event")

// Journal is the single-file compatibility engine, re-exported so
// existing callers of Recover keep their handle type. See
// store.Journal.
type Journal = store.Journal

// StoreStats are the storage-engine gauges of an attached store (engine
// name, segments, log bytes, per-shard fsyncs, snapshot and replay
// timings).
type StoreStats = store.Stats

// event is one log record. Exactly one payload field is set, selected by
// Kind. The wire format is identical across all storage engines, which
// is what lets them replay the same history to the same state.
type event struct {
	Kind      string                `json:"kind"`
	Device    *transport.DeviceInfo `json:"device,omitempty"`
	DeviceID  string                `json:"deviceId,omitempty"`
	Task      *transport.TaskSpec   `json:"task,omitempty"`
	Recruited []string              `json:"recruited,omitempty"`
	Upload    *transport.Upload     `json:"upload,omitempty"`
}

// Event kinds.
const (
	evRegister   = "register"
	evUnregister = "unregister"
	evPublish    = "publish"
	evUpload     = "upload"
)

// snapshotState is the Hive's complete in-memory image, folded into an
// immutable snapshot by the segmented engine. json.Marshal emits map
// keys sorted and assignment sets are stored as sorted ID slices, so
// encoding the same logical state always yields the same bytes —
// engine-equality tests compare these images directly.
type snapshotState struct {
	Devices     map[string]transport.DeviceInfo `json:"devices"`
	Tasks       map[string]transport.TaskSpec   `json:"tasks"`
	Assignments map[string][]string             `json:"assignments"`
	Uploads     map[string][]transport.Upload   `json:"uploads"`
	NextTaskID  int                             `json:"nextTaskId"`
}

// encodeState serialises the registry under the read lock. The caller
// must have quiesced appends (hold metaMu and every commit lock) for the
// image to exactly cover the log.
func (h *Hive) encodeState() ([]byte, error) {
	h.mu.RLock()
	st := snapshotState{
		Devices:     h.devices,
		Tasks:       h.tasks,
		Assignments: make(map[string][]string, len(h.assignments)),
		Uploads:     h.uploads,
		NextTaskID:  h.nextTaskID,
	}
	for taskID, set := range h.assignments {
		ids := make([]string, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		st.Assignments[taskID] = ids
	}
	data, err := json.Marshal(st)
	h.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("%w: encode snapshot: %w", ErrJournalIO, err)
	}
	return data, nil
}

// restoreState loads a snapshot image into a fresh Hive during recovery.
func (h *Hive) restoreState(state []byte) error {
	var st snapshotState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("%w: snapshot: %w", ErrCorruptJournal, err)
	}
	for id, d := range st.Devices {
		h.devices[id] = d
	}
	for id, t := range st.Tasks {
		h.tasks[id] = t
	}
	for taskID, ids := range st.Assignments {
		set := make(map[string]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		h.assignments[taskID] = set
	}
	for taskID, ups := range st.Uploads {
		h.uploads[taskID] = ups
	}
	if st.NextTaskID > h.nextTaskID {
		h.nextTaskID = st.NextTaskID
	}
	return nil
}

// applyRecord decodes one log record and applies it during recovery.
func (h *Hive) applyRecord(rec []byte) error {
	var e event
	if err := json.Unmarshal(rec, &e); err != nil {
		return fmt.Errorf("%w: %w", ErrCorruptJournal, err)
	}
	return h.apply(e)
}

// AttachStore makes the Hive record every subsequent successful mutation
// to s, sharding upload commits across the engine's commit boundaries.
// Attach before serving traffic; existing state is not re-journalled.
// RecoverFrom attaches automatically.
func (h *Hive) AttachStore(s store.Store) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.store = s
	n := 1
	if s != nil {
		if sn := s.Shards(); sn > 1 {
			n = sn
		}
	}
	h.commit = make([]sync.Mutex, n)
}

// Store returns the attached storage engine (nil when the Hive is
// memory-only).
func (h *Hive) Store() store.Store {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.store
}

// StoreStats snapshots the attached engine's gauges; ok is false when
// the Hive runs memory-only.
func (h *Hive) StoreStats() (StoreStats, bool) {
	s := h.Store()
	if s == nil {
		return StoreStats{}, false
	}
	return s.Stats(), true
}

// appendMeta marshals e and appends it to s as one control-plane commit
// boundary. Callers hold h.metaMu — so append order matches mutation
// order — but never h.mu: the fsync does not block readers.
func (h *Hive) appendMeta(s store.Store, e event) error {
	if s == nil {
		return nil
	}
	rec, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("%w: encode event: %w", ErrJournalIO, err)
	}
	if err := s.AppendMeta([][]byte{rec}); err != nil {
		return fmt.Errorf("%w: %w", ErrJournalIO, err)
	}
	return nil
}

// maybeSnapshot folds the registry into an engine snapshot when the
// engine asks for one (segmented engine, after enough sealed segments).
// Mutators call it after releasing their locks; the fast path is one
// atomic load. The fold quiesces every writer — metaMu plus all commit
// locks, in order — so the encoded image covers exactly the records
// appended so far. Readers are only blocked for the in-memory encode:
// h.mu is released before the disk write.
func (h *Hive) maybeSnapshot() {
	h.mu.RLock()
	s := h.store
	commit := h.commit
	h.mu.RUnlock()
	if s == nil || !s.SnapshotDue() {
		return
	}
	h.metaMu.Lock()
	defer h.metaMu.Unlock()
	for i := range commit {
		commit[i].Lock()
	}
	defer func() {
		for i := len(commit) - 1; i >= 0; i-- {
			commit[i].Unlock()
		}
	}()
	// Re-check under the quiesce locks: if AttachStore swapped the engine
	// (or its commit slice) since the snapshot above, the mutexes held
	// here no longer exclude writers on the new slice — folding now could
	// miss in-flight appends. Bail; the new attachment owns snapshotting.
	h.mu.RLock()
	swapped := h.store != s || len(h.commit) != len(commit) ||
		(len(commit) > 0 && &h.commit[0] != &commit[0])
	h.mu.RUnlock()
	if swapped {
		return
	}
	if !s.SnapshotDue() { // another committer folded first
		return
	}
	// The fold is its own trace root: it runs on whichever committer
	// crossed the due point, amortised across many requests.
	var sp *otrace.ActiveSpan
	if tr := h.tracer.Load(); tr != nil {
		//lint:allow ctxflow the fold has no single caller; the span is a fresh trace root
		_, sp = tr.Start(context.Background(), "store.snapshot_fold")
	}
	state, err := h.encodeState()
	if err != nil {
		if sp != nil {
			sp.SetErr(apierr.Code(err))
			sp.End()
		}
		return // impossible for plain structs; the engine will re-ask
	}
	// A failed fold is counted by the engine and retried at the next due
	// point; the log stays intact either way.
	werr := s.WriteSnapshot(state)
	if sp != nil {
		sp.SetAttr(otrace.Int("bytes", len(state)))
		if werr != nil {
			sp.SetErr("store.snapshot_failed")
		}
		sp.End()
	}
}

// RecoverFrom replays a storage engine's persisted state (snapshot, then
// log records in commit order) into a fresh Hive and attaches the engine,
// so subsequent mutations append to it. The engine must be freshly
// opened; after RecoverFrom it is ready for traffic.
func RecoverFrom(s store.Store) (*Hive, error) {
	h := New()
	if err := s.Recover(h.restoreState, h.applyRecord); err != nil {
		return nil, wrapStoreErr(err)
	}
	h.AttachStore(s)
	return h, nil
}

// wrapStoreErr adds the hive-level error code matching a storage-engine
// failure, so callers branching on the historical hive.journal_io /
// hive.corrupt_journal codes keep working across engines.
func wrapStoreErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, store.ErrCorrupt):
		return fmt.Errorf("%w: %w", ErrCorruptJournal, err)
	case errors.Is(err, store.ErrIO):
		return fmt.Errorf("%w: %w", ErrJournalIO, err)
	default:
		return err
	}
}

// Recover replays the single-file journal at path into a fresh Hive and
// reopens it for appending, attaching it to the returned Hive. A missing
// file yields an empty Hive with a fresh journal; a torn final line
// (crash mid-append) is truncated away. This is the compatibility
// constructor — use RecoverFrom with store.OpenSegmented or
// store.OpenSharded for the other engines.
func Recover(path string) (*Hive, *Journal, error) {
	j, err := store.OpenJournal(path)
	if err != nil {
		return nil, nil, wrapStoreErr(err)
	}
	h, err := RecoverFrom(j)
	if err != nil {
		return nil, nil, err
	}
	return h, j, nil
}

// apply restores one event's effect without re-journalling it. Publication
// events restore the stored recruitment verbatim instead of re-running
// recruitment, so that replay is deterministic regardless of current state.
// apply is validation-free (recovery restores whatever was accepted),
// which also makes replay order-independent across per-task shard files:
// only the relative order within one task's uploads and within the
// registry events matters, and each lives in a single file.
func (h *Hive) apply(e event) error {
	switch e.Kind {
	case evRegister:
		if e.Device == nil {
			return fmt.Errorf("%w: register event lacks device", ErrCorruptJournal)
		}
		h.devices[e.Device.ID] = *e.Device
		return nil
	case evUnregister:
		delete(h.devices, e.DeviceID)
		for _, set := range h.assignments {
			delete(set, e.DeviceID)
		}
		return nil
	case evPublish:
		if e.Task == nil || e.Task.ID == "" {
			return fmt.Errorf("%w: publish event lacks task", ErrCorruptJournal)
		}
		h.tasks[e.Task.ID] = *e.Task
		set := make(map[string]bool, len(e.Recruited))
		for _, id := range e.Recruited {
			set[id] = true
		}
		h.assignments[e.Task.ID] = set
		// Keep the ID counter ahead of every restored task.
		var n int
		if _, err := fmt.Sscanf(e.Task.ID, "task-%d", &n); err == nil && n > h.nextTaskID {
			h.nextTaskID = n
		}
		return nil
	case evUpload:
		if e.Upload == nil {
			return fmt.Errorf("%w: upload event lacks payload", ErrCorruptJournal)
		}
		h.uploads[e.Upload.TaskID] = append(h.uploads[e.Upload.TaskID], *e.Upload)
		return nil
	default:
		return fmt.Errorf("%w: unknown event kind %q", ErrCorruptJournal, e.Kind)
	}
}
