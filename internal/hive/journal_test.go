package hive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"apisense/internal/transport"
)

func TestJournalRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hive.journal")

	// First life: build some state.
	h1, j1, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	must(t, h1.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	must(t, h1.RegisterDevice(deviceInfo("d2", "bob", 45.7, 4.8)))
	must(t, h1.RegisterDevice(deviceInfo("gone", "eve", 45.7, 4.8)))
	spec, recruited, err := h1.PublishTask(taskSpec("persisted"))
	if err != nil {
		t.Fatal(err)
	}
	must(t, h1.SubmitUpload(transport.Upload{
		TaskID: spec.ID, DeviceID: "d1",
		Records: []transport.UploadRecord{{Sensor: "gps", TimeMillis: 1, Data: map[string]any{"lat": 45.7, "lon": 4.8}}},
	}))
	must(t, h1.UnregisterDevice("gone"))
	statsBefore := h1.Stats()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: replay.
	h2, j2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()

	if got := h2.Stats(); got != statsBefore {
		t.Errorf("recovered stats = %+v, want %+v", got, statsBefore)
	}
	devs := h2.Devices()
	if len(devs) != 2 || devs[0].ID != "d1" || devs[1].ID != "d2" {
		t.Errorf("recovered devices = %+v", devs)
	}
	got, err := h2.Task(spec.ID)
	if err != nil || got.Name != "persisted" {
		t.Errorf("recovered task = %+v, %v", got, err)
	}
	tasks, err := h2.TasksFor("d1")
	if err != nil || len(tasks) != 1 {
		t.Errorf("recovered assignment: %v, %v", tasks, err)
	}
	ups, err := h2.Uploads(spec.ID)
	if err != nil || len(ups) != 1 || len(ups[0].Records) != 1 {
		t.Errorf("recovered uploads: %v, %v", ups, err)
	}
	_ = recruited

	// Task ID counter resumed: a new task must not collide.
	must(t, h2.RegisterDevice(deviceInfo("d3", "carol", 45.7, 4.8)))
	spec2, _, err := h2.PublishTask(taskSpec("after-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if spec2.ID == spec.ID {
		t.Errorf("task id collision after recovery: %s", spec2.ID)
	}
}

func TestRecoverMissingFileStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.journal")
	h, j, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := h.Stats(); got != (Stats{}) {
		t.Errorf("fresh hive stats = %+v", got)
	}
	// And it journals from the start.
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("journal file empty after a mutation")
	}
}

// TestRecoverRejectsCorruptJournal: corruption that cannot be a torn
// final append — invalid bytes with valid records after them, or a
// record whose JSON parses but whose event cannot be applied — still
// fails recovery. (A torn FINAL line is tolerated and truncated instead;
// see TestRecoverTruncatesTornTail.)
func TestRecoverRejectsCorruptJournal(t *testing.T) {
	valid := `{"kind":"register","device":{"id":"d1","user":"alice"}}` + "\n"

	path := filepath.Join(t.TempDir(), "bad.journal")
	if err := os.WriteFile(path, []byte("{not json\n"+valid), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Recover(path)
	if !errors.Is(err, ErrCorruptJournal) {
		t.Errorf("valid record after invalid bytes: err = %v, want ErrCorruptJournal", err)
	}

	unknown := filepath.Join(t.TempDir(), "unknown.journal")
	if err := os.WriteFile(unknown, []byte(`{"kind":"martian"}`+"\n"+valid), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(unknown); !errors.Is(err, ErrCorruptJournal) {
		t.Errorf("unknown event kind: err = %v, want ErrCorruptJournal", err)
	}
}

// TestRecoverTruncatesTornTail: a crash mid-append leaves a partial
// final record; recovery must keep every complete record, drop the torn
// bytes, and truncate the file so the next append starts at a clean
// boundary. Exercised at EVERY byte offset of the last event, including
// offset 0 (nothing of the last record written) and the full length
// (nothing torn at all).
func TestRecoverTruncatesTornTail(t *testing.T) {
	prefix := []byte(`{"kind":"register","device":{"id":"d1","user":"alice","sensors":["gps"],"battery":90,"lat":45.7,"lon":4.8}}` + "\n" +
		`{"kind":"register","device":{"id":"d2","user":"bob","sensors":["gps"],"battery":80,"lat":45.7,"lon":4.8}}` + "\n")
	last := []byte(`{"kind":"unregister","deviceId":"d2"}` + "\n")

	for cut := 0; cut <= len(last); cut++ {
		full := cut == len(last)
		data := append(append([]byte(nil), prefix...), last[:cut]...)
		path := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		h, j, err := Recover(path)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		wantDevices := 2
		if full {
			wantDevices = 1 // the unregister applied
		}
		if got := len(h.Devices()); got != wantDevices {
			t.Errorf("cut=%d: devices = %d, want %d", cut, got, wantDevices)
		}

		// The torn bytes are gone from disk: the journal must accept new
		// appends at a clean boundary, and a second recovery must see the
		// new event as valid.
		must(t, h.RegisterDevice(deviceInfo("d3", "carol", 45.7, 4.8)))
		if err := j.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		h2, j2, err := Recover(path)
		if err != nil {
			t.Fatalf("cut=%d: second recovery failed: %v", cut, err)
		}
		if got := len(h2.Devices()); got != wantDevices+1 {
			t.Errorf("cut=%d: second life devices = %d, want %d", cut, got, wantDevices+1)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalGroupCommitSync: every append call is one commit boundary —
// a batch of uploads costs one fsync, not one per upload — and SyncEvery
// widens the boundary further (0 disables, Close still syncs).
func TestJournalGroupCommitSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.journal")
	h, j, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("sync"))
	if err != nil {
		t.Fatal(err)
	}
	base := j.Syncs()
	if base == 0 {
		t.Fatal("register + publish performed no fsync")
	}

	// One batch of 10 uploads = one group commit = one fsync.
	ups := make([]transport.Upload, 10)
	for i := range ups {
		ups[i] = transport.Upload{TaskID: spec.ID, DeviceID: "d1"}
	}
	for _, err := range h.SubmitBatch(ups) {
		must(t, err)
	}
	if got := j.Syncs(); got != base+1 {
		t.Errorf("syncs after batch = %d, want %d (one group commit)", got, base+1)
	}

	// Single uploads sync every boundary...
	must(t, h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "d1"}))
	if got := j.Syncs(); got != base+2 {
		t.Errorf("syncs after single upload = %d, want %d", got, base+2)
	}

	// ...unless SyncEvery widens the boundary.
	j.SetSyncEvery(3)
	for i := 0; i < 2; i++ {
		must(t, h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "d1"}))
	}
	if got := j.Syncs(); got != base+2 {
		t.Errorf("syncs mid-window = %d, want %d (SyncEvery=3 not reached)", got, base+2)
	}
	must(t, h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "d1"}))
	if got := j.Syncs(); got != base+3 {
		t.Errorf("syncs at window boundary = %d, want %d", got, base+3)
	}

	// SyncEvery(0) disables periodic fsync entirely.
	j.SetSyncEvery(0)
	for i := 0; i < 5; i++ {
		must(t, h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "d1"}))
	}
	if got := j.Syncs(); got != base+3 {
		t.Errorf("syncs with SyncEvery=0 = %d, want %d", got, base+3)
	}
}

// TestSubmitBatchJournalFailureRollsBack: when the group commit cannot be
// written, the admitted uploads are rolled back from memory and every
// admitted item reports the failure — the store never claims more than
// the caller was told.
func TestSubmitBatchJournalFailureRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.journal")
	h, j, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("rollback"))
	if err != nil {
		t.Fatal(err)
	}
	must(t, h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "d1"}))
	// Break the journal: every further write fails.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	errs := h.SubmitBatch([]transport.Upload{
		{TaskID: spec.ID, DeviceID: "d1"},
		{TaskID: "task-9999", DeviceID: "d1"}, // rejected before the commit
		{TaskID: spec.ID, DeviceID: "d1"},
	})
	if errs[0] == nil || errs[2] == nil {
		t.Errorf("admitted items must report the journal failure: %v", errs)
	}
	if !errors.Is(errs[1], ErrUnknownTask) {
		t.Errorf("errs[1] = %v, want ErrUnknownTask", errs[1])
	}
	ups, err := h.Uploads(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Errorf("store holds %d uploads after failed commit, want 1 (rolled back)", len(ups))
	}
}

func TestJournalSkipsBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blank.journal")
	content := `{"kind":"register","device":{"id":"d1","user":"alice","sensors":["gps"],"battery":90,"lat":45.7,"lon":4.8}}

`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	h, j, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(h.Devices()) != 1 {
		t.Errorf("devices = %d, want 1", len(h.Devices()))
	}
}
