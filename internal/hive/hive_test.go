package hive

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"apisense/internal/transport"
)

func deviceInfo(id, user string, lat, lon float64, sensors ...string) transport.DeviceInfo {
	if sensors == nil {
		sensors = []string{"gps", "battery"}
	}
	return transport.DeviceInfo{ID: id, User: user, Sensors: sensors, Battery: 90, Lat: lat, Lon: lon}
}

func taskSpec(name string, sensors ...string) transport.TaskSpec {
	if sensors == nil {
		sensors = []string{"gps"}
	}
	return transport.TaskSpec{
		Name: name, Author: "lab", Script: "var x = 1;",
		PeriodSeconds: 60, Sensors: sensors,
	}
}

func TestRegisterAndListDevices(t *testing.T) {
	h := New()
	if err := h.RegisterDevice(deviceInfo("d2", "bob", 45.7, 4.8)); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterDevice(transport.DeviceInfo{ID: "", User: "x"}); err == nil {
		t.Error("empty id should fail")
	}
	devs := h.Devices()
	if len(devs) != 2 || devs[0].ID != "d1" || devs[1].ID != "d2" {
		t.Errorf("devices = %+v", devs)
	}
	// Re-register updates.
	upd := deviceInfo("d1", "alice", 45.7, 4.8)
	upd.Battery = 10
	if err := h.RegisterDevice(upd); err != nil {
		t.Fatal(err)
	}
	if h.Devices()[0].Battery != 10 {
		t.Error("re-registration did not update battery")
	}
}

func TestUnregister(t *testing.T) {
	h := New()
	if err := h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.PublishTask(taskSpec("t")); err != nil {
		t.Fatal(err)
	}
	if err := h.UnregisterDevice("d1"); err != nil {
		t.Fatal(err)
	}
	if err := h.UnregisterDevice("d1"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("err = %v, want ErrUnknownDevice", err)
	}
	if len(h.Devices()) != 0 {
		t.Error("device still listed")
	}
}

func TestPublishRecruitsBySensors(t *testing.T) {
	h := New()
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8, "gps")))
	must(t, h.RegisterDevice(deviceInfo("d2", "bob", 45.7, 4.8, "battery")))
	must(t, h.RegisterDevice(deviceInfo("d3", "carol", 45.7, 4.8, "gps", "battery")))

	spec, recruited, err := h.PublishTask(taskSpec("gps-task", "gps"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.ID == "" {
		t.Error("no task id assigned")
	}
	if len(recruited) != 2 || recruited[0] != "d1" || recruited[1] != "d3" {
		t.Errorf("recruited = %v, want [d1 d3]", recruited)
	}
	// d2 has no assignment.
	tasks, err := h.TasksFor("d2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Errorf("d2 has %d tasks, want 0", len(tasks))
	}
	tasks, err = h.TasksFor("d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].ID != spec.ID {
		t.Errorf("d1 tasks = %+v", tasks)
	}
}

func TestPublishRecruitsByRegion(t *testing.T) {
	h := New()
	must(t, h.RegisterDevice(deviceInfo("near", "alice", 45.7640, 4.8357)))
	must(t, h.RegisterDevice(deviceInfo("far", "bob", 48.8566, 2.3522))) // Paris

	spec := taskSpec("local")
	spec.Region = &transport.Region{Lat: 45.7640, Lon: 4.8357, Radius: 10000}
	_, recruited, err := h.PublishTask(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(recruited) != 1 || recruited[0] != "near" {
		t.Errorf("recruited = %v, want [near]", recruited)
	}
}

func TestPublishValidationAndNoDevices(t *testing.T) {
	h := New()
	if _, _, err := h.PublishTask(transport.TaskSpec{}); err == nil {
		t.Error("invalid spec should fail")
	}
	if _, _, err := h.PublishTask(taskSpec("t")); !errors.Is(err, ErrNoQualifyingDevices) {
		t.Errorf("err = %v, want ErrNoQualifyingDevices", err)
	}
}

func TestUploadFlow(t *testing.T) {
	h := New()
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	must(t, h.RegisterDevice(deviceInfo("d9", "eve", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("t"))
	if err != nil {
		t.Fatal(err)
	}

	up := transport.Upload{TaskID: spec.ID, DeviceID: "d1", Records: []transport.UploadRecord{
		{Sensor: "gps", TimeMillis: 1418031000000, Data: map[string]any{"lat": 45.7, "lon": 4.8}},
	}}
	if err := h.SubmitUpload(up); err != nil {
		t.Fatal(err)
	}
	// Unknown task / device / unassigned device.
	if err := h.SubmitUpload(transport.Upload{TaskID: "task-9999", DeviceID: "d1"}); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("err = %v, want ErrUnknownTask", err)
	}
	if err := h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "ghost"}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("err = %v, want ErrUnknownDevice", err)
	}
	h2 := New()
	must(t, h2.RegisterDevice(deviceInfo("solo", "x", 45.7, 4.8)))
	spec2, _, err := h2.PublishTask(taskSpec("t2"))
	if err != nil {
		t.Fatal(err)
	}
	must(t, h2.RegisterDevice(deviceInfo("late", "y", 45.7, 4.8)))
	if err := h2.SubmitUpload(transport.Upload{TaskID: spec2.ID, DeviceID: "late"}); !errors.Is(err, ErrNotAssigned) {
		t.Errorf("err = %v, want ErrNotAssigned", err)
	}

	ups, err := h.Uploads(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || len(ups[0].Records) != 1 {
		t.Errorf("uploads = %+v", ups)
	}
	if _, err := h.Uploads("task-404"); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("err = %v, want ErrUnknownTask", err)
	}

	stats := h.Stats()
	if stats.Devices != 2 || stats.Tasks != 1 || stats.Uploads != 1 || stats.Records != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestUploadCap: the per-task upload cap bounds memory against a runaway
// fleet — further submissions fail with ErrUploadLimit, other tasks are
// unaffected, and lifting the cap re-opens ingestion.
func TestUploadCap(t *testing.T) {
	h := New()
	h.SetMaxUploadsPerTask(2)
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("capped"))
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := h.PublishTask(taskSpec("other"))
	if err != nil {
		t.Fatal(err)
	}
	up := func(task string) transport.Upload {
		return transport.Upload{TaskID: task, DeviceID: "d1", Records: []transport.UploadRecord{{Sensor: "gps"}}}
	}
	must(t, h.SubmitUpload(up(spec.ID)))
	must(t, h.SubmitUpload(up(spec.ID)))
	if err := h.SubmitUpload(up(spec.ID)); !errors.Is(err, ErrUploadLimit) {
		t.Fatalf("third upload err = %v, want ErrUploadLimit", err)
	}
	ups, err := h.Uploads(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Errorf("capped task holds %d uploads, want 2", len(ups))
	}
	// The cap is per task, not global.
	must(t, h.SubmitUpload(up(other.ID)))
	// Lifting the cap re-opens ingestion.
	h.SetMaxUploadsPerTask(0)
	must(t, h.SubmitUpload(up(spec.ID)))
	if ups, _ := h.Uploads(spec.ID); len(ups) != 3 {
		t.Errorf("uncapped task holds %d uploads, want 3", len(ups))
	}
}

// TestUploadCapHTTP: the HTTP layer reports a full task as 429.
func TestUploadCapHTTP(t *testing.T) {
	h := New()
	h.SetMaxUploadsPerTask(1)
	must(t, h.RegisterDevice(deviceInfo("d1", "alice", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("capped"))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(h))
	defer srv.Close()
	cl := transport.NewClient(srv.URL)
	up := transport.Upload{TaskID: spec.ID, DeviceID: "d1", Records: []transport.UploadRecord{{Sensor: "gps"}}}
	if err := cl.Do(context.Background(), http.MethodPost, "/api/uploads", up, nil); err != nil {
		t.Fatal(err)
	}
	err = cl.Do(context.Background(), http.MethodPost, "/api/uploads", up, nil)
	var status *transport.ErrStatus
	if !errors.As(err, &status) || status.Code != http.StatusTooManyRequests {
		t.Errorf("second upload err = %v, want HTTP 429", err)
	}
}

// ---- HTTP API ----

func TestHTTPEndToEnd(t *testing.T) {
	srv := httptest.NewServer(NewServer(New()))
	defer srv.Close()
	client := transport.NewClient(srv.URL)
	ctx := context.Background()

	// Register two devices.
	for _, d := range []transport.DeviceInfo{
		deviceInfo("d1", "alice", 45.7640, 4.8357),
		deviceInfo("d2", "bob", 45.7700, 4.8400),
	} {
		if err := client.Do(ctx, http.MethodPost, "/api/devices", d, nil); err != nil {
			t.Fatal(err)
		}
	}
	var devs []transport.DeviceInfo
	if err := client.Do(ctx, http.MethodGet, "/api/devices", nil, &devs); err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 {
		t.Fatalf("devices = %d, want 2", len(devs))
	}

	// Publish a task.
	var pub PublishResponse
	if err := client.Do(ctx, http.MethodPost, "/api/tasks", taskSpec("http-task"), &pub); err != nil {
		t.Fatal(err)
	}
	if pub.Task.ID == "" || len(pub.Recruited) != 2 {
		t.Fatalf("publish = %+v", pub)
	}

	// Device pulls its tasks.
	var tasks []transport.TaskSpec
	if err := client.Do(ctx, http.MethodGet, "/api/devices/d1/tasks", nil, &tasks); err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Script == "" {
		t.Fatalf("tasks = %+v", tasks)
	}

	// Submit an upload and read it back.
	up := transport.Upload{TaskID: pub.Task.ID, DeviceID: "d1", Records: []transport.UploadRecord{
		{Sensor: "gps", TimeMillis: 1418031000000, Data: map[string]any{"lat": 45.76, "lon": 4.83}},
	}}
	if err := client.Do(ctx, http.MethodPost, "/api/uploads", up, nil); err != nil {
		t.Fatal(err)
	}
	var ups []transport.Upload
	if err := client.Do(ctx, http.MethodGet, "/api/tasks/"+pub.Task.ID+"/uploads", nil, &ups); err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0].Records[0].Data["lat"].(float64) != 45.76 {
		t.Fatalf("uploads = %+v", ups)
	}

	// Stats.
	var stats Stats
	if err := client.Do(ctx, http.MethodGet, "/api/stats", nil, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Devices != 2 || stats.Records != 1 {
		t.Errorf("stats = %+v", stats)
	}

	// Unregister.
	if err := client.Do(ctx, http.MethodDelete, "/api/devices/d2", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer(New()))
	defer srv.Close()
	client := transport.NewClient(srv.URL)
	ctx := context.Background()

	var statusErr *transport.ErrStatus

	// 404 for unknown task.
	err := client.Do(ctx, http.MethodGet, "/api/tasks/task-0001", nil, nil)
	if !errors.As(err, &statusErr) || statusErr.Code != http.StatusNotFound {
		t.Errorf("unknown task err = %v, want 404", err)
	}
	// 404 for unknown device tasks.
	err = client.Do(ctx, http.MethodGet, "/api/devices/ghost/tasks", nil, nil)
	if !errors.As(err, &statusErr) || statusErr.Code != http.StatusNotFound {
		t.Errorf("unknown device err = %v, want 404", err)
	}
	// 400 for malformed body.
	resp, err := http.Post(srv.URL+"/api/devices", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed register status = %d, want 400", resp.StatusCode)
	}
	// 409 when no device qualifies.
	err = client.Do(ctx, http.MethodPost, "/api/tasks", taskSpec("t"), nil)
	if !errors.As(err, &statusErr) || statusErr.Code != http.StatusConflict {
		t.Errorf("no-device publish err = %v, want 409", err)
	}
}

func TestConcurrentRegistrationAndUpload(t *testing.T) {
	h := New()
	must(t, h.RegisterDevice(deviceInfo("seed", "s", 45.7, 4.8)))
	spec, _, err := h.PublishTask(taskSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	for i := 0; i < 8; i++ {
		go func(n int) {
			var firstErr error
			for j := 0; j < 50; j++ {
				id := string(rune('a'+n)) + "-dev"
				if err := h.RegisterDevice(deviceInfo(id, "u", 45.7, 4.8)); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := h.SubmitUpload(transport.Upload{TaskID: spec.ID, DeviceID: "seed"}); err != nil && firstErr == nil {
					firstErr = err
				}
				_ = h.Devices()
				_ = h.Stats()
			}
			done <- firstErr
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Stats().Uploads; got != 8*50 {
		t.Errorf("uploads = %d, want 400", got)
	}
}
