package hive

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"apisense/internal/apierr"
	"apisense/internal/evalcache"
	"apisense/internal/ingest"
	"apisense/internal/transport"
)

// Server exposes a Hive over HTTP/JSON. Routes:
//
//	POST   /api/devices               register a device
//	GET    /api/devices               list devices
//	DELETE /api/devices/{id}          unregister
//	GET    /api/devices/{id}/tasks    tasks offloaded to the device
//	POST   /api/tasks                 publish a task (returns spec + recruits)
//	GET    /api/tasks/{id}            fetch a task
//	GET    /api/tasks/{id}/uploads    collected uploads
//	POST   /api/uploads               submit one upload
//	POST   /api/uploads/batch         submit a batch (per-item results)
//	GET    /api/stats                 platform statistics
//	GET    /metrics                   Prometheus text exposition (WithMetrics only)
//
// With WithIngestQueue both upload routes go through the bounded ingest
// queue: a full queue answers 429 Too Many Requests with a Retry-After
// header instead of admitting unbounded work.
//
// Error responses are JSON objects {"error": message, "code": code} where
// code is the stable apierr code of the failure (see internal/apierr and
// docs/OPERATIONS.md); transport.Client surfaces it on ErrStatus so
// callers can branch with errors.Is against the hive sentinels.
type Server struct {
	hive      *Hive
	queue     *ingest.Queue   // nil = synchronous ingestion
	evalCache evalcache.Cache // nil = no cache gauges
	metrics   *Metrics        // nil = no /metrics route, no HTTP instruments
	mux       *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithIngestQueue routes POST /api/uploads and /api/uploads/batch through
// q, adding backpressure (429 + Retry-After when full) and group-commit
// draining; /api/stats grows the queue gauges. The caller owns q's
// lifecycle (Close on shutdown, after the HTTP server stops).
func WithIngestQueue(q *ingest.Queue) ServerOption {
	return func(s *Server) { s.queue = q }
}

// WithEvalCache surfaces the evaluation cache's gauges (entries, bytes,
// hits, misses, evictions, pruned strategies) under /api/stats — and
// under /metrics when WithMetrics is also set. The cache itself is owned
// by whoever runs the publication engine — the server only reads its
// statistics.
func WithEvalCache(c evalcache.Cache) ServerOption {
	return func(s *Server) { s.evalCache = c }
}

// WithMetrics serves m's registry at GET /metrics and instruments every
// route with request, latency and error-code series. NewServer binds the
// Hive gauges (and the journal fsync counter and eval-cache series, when
// present) onto the same registry, so one option lights up the whole
// observability surface described in docs/OPERATIONS.md.
func WithMetrics(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// NewServer wraps a Hive with its HTTP API.
func NewServer(h *Hive, opts ...ServerOption) *Server {
	s := &Server{hive: h, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics != nil {
		s.metrics.BindHive(h)
		s.metrics.BindEvalCache(s.evalCache)
		s.handle("GET /metrics", s.metrics.Registry().ServeHTTP)
	}
	s.handle("POST /api/devices", s.handleRegister)
	s.handle("GET /api/devices", s.handleListDevices)
	s.handle("DELETE /api/devices/{id}", s.handleUnregister)
	s.handle("GET /api/devices/{id}/tasks", s.handleDeviceTasks)
	s.handle("POST /api/tasks", s.handlePublish)
	s.handle("GET /api/tasks/{id}", s.handleGetTask)
	s.handle("GET /api/tasks/{id}/uploads", s.handleUploadsOf)
	s.handle("POST /api/uploads", s.handleSubmitUpload)
	s.handle("POST /api/uploads/batch", s.handleSubmitBatch)
	s.handle("GET /api/stats", s.handleStats)
	return s
}

// handle registers a route, wrapping the handler with the HTTP instruments
// when metrics are on. The label is the registration pattern, not the
// request path — request paths carry IDs and would explode series
// cardinality (and leak device identifiers into telemetry).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	if s.metrics == nil {
		s.mux.HandleFunc(pattern, h)
		return
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := s.metrics.start()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.observeRequest(pattern, sw.status, t0)
	})
}

// statusWriter captures the status code a handler writes so the request
// counter can label it. Handlers that never call WriteHeader implicitly
// answer 200, which is the field's initial value.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errBadRequest codes request bodies the server cannot decode.
var errBadRequest = apierr.New("hive.bad_request", apierr.Validation, "hive: bad request")

// errEmptyBatch codes batch submissions with zero uploads.
var errEmptyBatch = apierr.New("hive.empty_batch", apierr.Validation, "hive: empty upload batch")

// errorResponse is the JSON error body: a human-readable message plus the
// stable apierr code for programmatic handling.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps err's apierr category to an HTTP status (500 for
// uncoded errors), answers {"error", "code"}, and counts the code on the
// error-code series when metrics are on.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := apierr.Code(err)
	s.metrics.recordErrorCode(code)
	writeJSON(w, apierr.HTTPStatus(err), errorResponse{Error: err.Error(), Code: code})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 32<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: decode request: %w", errBadRequest, err)
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var info transport.DeviceInfo
	if err := decode(r, &info); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.hive.RegisterDevice(info); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDevices(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.hive.Devices())
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if err := s.hive.UnregisterDevice(r.PathValue("id")); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unregistered"})
}

func (s *Server) handleDeviceTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := s.hive.TasksFor(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if tasks == nil {
		tasks = []transport.TaskSpec{}
	}
	writeJSON(w, http.StatusOK, tasks)
}

// PublishResponse is the result of POST /api/tasks.
type PublishResponse struct {
	Task      transport.TaskSpec `json:"task"`
	Recruited []string           `json:"recruited"`
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var spec transport.TaskSpec
	if err := decode(r, &spec); err != nil {
		s.writeError(w, err)
		return
	}
	published, recruited, err := s.hive.PublishTask(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, PublishResponse{Task: published, Recruited: recruited})
}

func (s *Server) handleGetTask(w http.ResponseWriter, r *http.Request) {
	spec, err := s.hive.Task(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

func (s *Server) handleUploadsOf(w http.ResponseWriter, r *http.Request) {
	ups, err := s.hive.Uploads(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if ups == nil {
		ups = []transport.Upload{}
	}
	writeJSON(w, http.StatusOK, ups)
}

func (s *Server) handleSubmitUpload(w http.ResponseWriter, r *http.Request) {
	var u transport.Upload
	if err := decode(r, &u); err != nil {
		s.writeError(w, err)
		return
	}
	var err error
	if s.queue != nil {
		var errs []error
		errs, err = s.queue.Submit(r.Context(), []transport.Upload{u})
		if err == nil {
			err = errs[0]
		}
	} else {
		err = s.hive.SubmitUpload(u)
	}
	if errors.Is(err, ingest.ErrQueueFull) {
		s.writeQueueFull(w, err)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted"})
}

// handleSubmitBatch ingests an UploadBatch. Admission is per item — the
// response always carries one result per upload — except when the ingest
// queue is saturated, which rejects the whole batch with 429 and a
// Retry-After hint before any work is done.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var batch transport.UploadBatch
	if err := decode(r, &batch); err != nil {
		s.writeError(w, err)
		return
	}
	if len(batch.Uploads) == 0 {
		s.writeError(w, errEmptyBatch)
		return
	}
	var errs []error
	if s.queue != nil {
		var err error
		errs, err = s.queue.Submit(r.Context(), batch.Uploads)
		if errors.Is(err, ingest.ErrQueueFull) {
			s.writeQueueFull(w, err)
			return
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
	} else {
		errs = s.hive.SubmitBatch(batch.Uploads)
	}
	resp := transport.UploadBatchResponse{Results: make([]transport.UploadResult, len(errs))}
	for i, err := range errs {
		res := transport.UploadResult{Index: i, Code: uploadResultCode(err)}
		if err != nil {
			res.Error = err.Error()
			resp.Rejected++
		} else {
			resp.Accepted++
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// uploadResultCode maps a per-item admission error to its wire code.
func uploadResultCode(err error) string {
	switch {
	case err == nil:
		return transport.UploadOK
	case errors.Is(err, ErrUnknownTask):
		return transport.UploadUnknownTask
	case errors.Is(err, ErrUnknownDevice):
		return transport.UploadUnknownDevice
	case errors.Is(err, ErrNotAssigned):
		return transport.UploadNotAssigned
	case errors.Is(err, ErrUploadLimit):
		return transport.UploadLimit
	default:
		return transport.UploadFailed
	}
}

// writeQueueFull answers backpressure: 429 with the queue's Retry-After
// hint so producers know when to resubmit.
func (s *Server) writeQueueFull(w http.ResponseWriter, err error) {
	secs := int(s.queue.RetryAfter().Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	code := apierr.Code(err)
	s.metrics.recordErrorCode(code)
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), Code: code})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.hive.Stats()
	if s.queue != nil {
		qs := s.queue.Stats()
		st.Ingest = &qs
	}
	if s.evalCache != nil {
		cs := s.evalCache.Stats()
		st.EvalCache = &cs
	}
	if ss, ok := s.hive.StoreStats(); ok {
		st.Store = &ss
	}
	writeJSON(w, http.StatusOK, st)
}
