package hive

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"apisense/internal/transport"
)

// Server exposes a Hive over HTTP/JSON. Routes:
//
//	POST   /api/devices               register a device
//	GET    /api/devices               list devices
//	DELETE /api/devices/{id}          unregister
//	GET    /api/devices/{id}/tasks    tasks offloaded to the device
//	POST   /api/tasks                 publish a task (returns spec + recruits)
//	GET    /api/tasks/{id}            fetch a task
//	GET    /api/tasks/{id}/uploads    collected uploads
//	POST   /api/uploads               submit an upload
//	GET    /api/stats                 platform statistics
type Server struct {
	hive *Hive
	mux  *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer wraps a Hive with its HTTP API.
func NewServer(h *Hive) *Server {
	s := &Server{hive: h, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/devices", s.handleRegister)
	s.mux.HandleFunc("GET /api/devices", s.handleListDevices)
	s.mux.HandleFunc("DELETE /api/devices/{id}", s.handleUnregister)
	s.mux.HandleFunc("GET /api/devices/{id}/tasks", s.handleDeviceTasks)
	s.mux.HandleFunc("POST /api/tasks", s.handlePublish)
	s.mux.HandleFunc("GET /api/tasks/{id}", s.handleGetTask)
	s.mux.HandleFunc("GET /api/tasks/{id}/uploads", s.handleUploadsOf)
	s.mux.HandleFunc("POST /api/uploads", s.handleSubmitUpload)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownDevice), errors.Is(err, ErrUnknownTask):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotAssigned):
		code = http.StatusForbidden
	case errors.Is(err, ErrNoQualifyingDevices):
		code = http.StatusConflict
	case errors.Is(err, ErrUploadLimit):
		code = http.StatusTooManyRequests
	default:
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 32<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("hive: decode request: %w", err)
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var info transport.DeviceInfo
	if err := decode(r, &info); err != nil {
		writeError(w, err)
		return
	}
	if err := s.hive.RegisterDevice(info); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDevices(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.hive.Devices())
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if err := s.hive.UnregisterDevice(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unregistered"})
}

func (s *Server) handleDeviceTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := s.hive.TasksFor(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if tasks == nil {
		tasks = []transport.TaskSpec{}
	}
	writeJSON(w, http.StatusOK, tasks)
}

// PublishResponse is the result of POST /api/tasks.
type PublishResponse struct {
	Task      transport.TaskSpec `json:"task"`
	Recruited []string           `json:"recruited"`
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var spec transport.TaskSpec
	if err := decode(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	published, recruited, err := s.hive.PublishTask(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, PublishResponse{Task: published, Recruited: recruited})
}

func (s *Server) handleGetTask(w http.ResponseWriter, r *http.Request) {
	spec, err := s.hive.Task(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

func (s *Server) handleUploadsOf(w http.ResponseWriter, r *http.Request) {
	ups, err := s.hive.Uploads(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if ups == nil {
		ups = []transport.Upload{}
	}
	writeJSON(w, http.StatusOK, ups)
}

func (s *Server) handleSubmitUpload(w http.ResponseWriter, r *http.Request) {
	var u transport.Upload
	if err := decode(r, &u); err != nil {
		writeError(w, err)
		return
	}
	if err := s.hive.SubmitUpload(u); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.hive.Stats())
}
