package hive

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"apisense/internal/apierr"
	"apisense/internal/evalcache"
	"apisense/internal/ingest"
	"apisense/internal/otrace"
	"apisense/internal/transport"
)

// Server exposes a Hive over HTTP/JSON. Routes:
//
//	POST   /api/devices               register a device
//	GET    /api/devices               list devices
//	DELETE /api/devices/{id}          unregister
//	GET    /api/devices/{id}/tasks    tasks offloaded to the device
//	POST   /api/tasks                 publish a task (returns spec + recruits)
//	GET    /api/tasks/{id}            fetch a task
//	GET    /api/tasks/{id}/uploads    collected uploads
//	POST   /api/uploads               submit one upload
//	POST   /api/uploads/batch         submit a batch (per-item results)
//	GET    /api/stats                 platform statistics
//	GET    /metrics                   Prometheus text exposition (WithMetrics only)
//	GET    /healthz                   liveness probe (always 200 while serving)
//	GET    /readyz                    readiness probe (503 when draining or queue closed)
//	GET    /debug/traces              recent traces, newest first (WithTracer only)
//	GET    /debug/traces/{id}         one trace's full span tree (WithTracer only)
//
// With WithIngestQueue both upload routes go through the bounded ingest
// queue: a full queue answers 429 Too Many Requests with a Retry-After
// header instead of admitting unbounded work.
//
// With WithTracer every route opens a server span (named "http.<pattern>")
// that adopts the client's trace when the request carries a W3C
// traceparent header, records the response status and — on failure — the
// apierr code, and hands its context to the ingest queue and Hive so the
// whole ingestion path lands in one trace. With WithLogger each request
// is logged structurally with trace_id/span_id correlation.
//
// Error responses are JSON objects {"error": message, "code": code} where
// code is the stable apierr code of the failure (see internal/apierr and
// docs/OPERATIONS.md); transport.Client surfaces it on ErrStatus so
// callers can branch with errors.Is against the hive sentinels.
type Server struct {
	hive      *Hive
	queue     *ingest.Queue   // nil = synchronous ingestion
	evalCache evalcache.Cache // nil = no cache gauges
	metrics   *Metrics        // nil = no /metrics route, no HTTP instruments
	tracer    *otrace.Tracer  // nil = no tracing, no /debug/traces routes
	logger    *slog.Logger    // nil = no request logging
	draining  atomic.Bool     // readiness: set by SetDraining at shutdown
	mux       *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithIngestQueue routes POST /api/uploads and /api/uploads/batch through
// q, adding backpressure (429 + Retry-After when full) and group-commit
// draining; /api/stats grows the queue gauges. The caller owns q's
// lifecycle (Close on shutdown, after the HTTP server stops).
func WithIngestQueue(q *ingest.Queue) ServerOption {
	return func(s *Server) { s.queue = q }
}

// WithEvalCache surfaces the evaluation cache's gauges (entries, bytes,
// hits, misses, evictions, pruned strategies) under /api/stats — and
// under /metrics when WithMetrics is also set. The cache itself is owned
// by whoever runs the publication engine — the server only reads its
// statistics.
func WithEvalCache(c evalcache.Cache) ServerOption {
	return func(s *Server) { s.evalCache = c }
}

// WithMetrics serves m's registry at GET /metrics and instruments every
// route with request, latency and error-code series. NewServer binds the
// Hive gauges (and the journal fsync counter and eval-cache series, when
// present) onto the same registry, so one option lights up the whole
// observability surface described in docs/OPERATIONS.md.
func WithMetrics(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// WithTracer opens a server span per request on t, attaches t to the Hive
// so store appends and snapshot folds join the request trace, serves the
// collected traces under GET /debug/traces, and — when WithMetrics is
// also set — exports the slowest-trace exemplar gauge. Nil t disables
// tracing (same as omitting the option).
func WithTracer(t *otrace.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// WithLogger emits one structured log record per request (level by
// status: debug <400, warn 4xx, error 5xx) plus one per error response
// carrying the apierr code and telemetry-safe metadata. The handler is
// wrapped with otrace.NewLogHandler, so records logged under a traced
// request automatically carry trace_id/span_id. Nil l disables logging.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) {
		if l == nil {
			return
		}
		s.logger = slog.New(otrace.NewLogHandler(l.Handler()))
	}
}

// NewServer wraps a Hive with its HTTP API.
func NewServer(h *Hive, opts ...ServerOption) *Server {
	s := &Server{hive: h, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics != nil {
		s.metrics.BindHive(h)
		s.metrics.BindEvalCache(s.evalCache)
		s.handle("GET /metrics", s.metrics.Registry().ServeHTTP)
	}
	if s.tracer != nil {
		h.SetTracer(s.tracer)
		if s.metrics != nil {
			s.tracer.BindObs(s.metrics.Registry())
		}
		s.handle("GET /debug/traces", s.handleListTraces)
		s.handle("GET /debug/traces/{id}", s.handleGetTrace)
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /readyz", s.handleReadyz)
	s.handle("POST /api/devices", s.handleRegister)
	s.handle("GET /api/devices", s.handleListDevices)
	s.handle("DELETE /api/devices/{id}", s.handleUnregister)
	s.handle("GET /api/devices/{id}/tasks", s.handleDeviceTasks)
	s.handle("POST /api/tasks", s.handlePublish)
	s.handle("GET /api/tasks/{id}", s.handleGetTask)
	s.handle("GET /api/tasks/{id}/uploads", s.handleUploadsOf)
	s.handle("POST /api/uploads", s.handleSubmitUpload)
	s.handle("POST /api/uploads/batch", s.handleSubmitBatch)
	s.handle("GET /api/stats", s.handleStats)
	return s
}

// handle registers a route, wrapping the handler with whichever
// observability instruments are switched on: the HTTP metrics, a server
// span per request (adopting the caller's W3C traceparent header so a
// device flush and the server-side work land in one trace), and one
// structured log record per request. The label is the registration
// pattern, not the request path — request paths carry IDs and would
// explode series cardinality (and leak device identifiers into telemetry).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	if s.metrics == nil && s.tracer == nil && s.logger == nil {
		s.mux.HandleFunc(pattern, h)
		return
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		var sp *otrace.ActiveSpan
		if s.tracer != nil {
			ctx := r.Context()
			if sc, ok := otrace.ParseTraceparent(r.Header.Get("traceparent")); ok {
				ctx = otrace.ContextWithSpanContext(ctx, sc)
			}
			ctx, sp = s.tracer.Start(ctx, "http."+pattern)
			r = r.WithContext(ctx)
		}
		h(sw, r)
		if sp != nil {
			sp.SetAttr(otrace.Int("status", sw.status))
			if sw.errCode != "" {
				sp.SetErr(sw.errCode)
			}
			sp.End()
		}
		s.metrics.observeRequest(pattern, sw.status, t0)
		s.logRequest(r, pattern, sw, time.Since(t0))
	})
}

// logRequest emits the per-request structured record. Level tracks the
// response class: debug for success, warn for client errors, error for
// server errors. Attributes are telemetry-safe (route pattern, status,
// duration, apierr code — never raw paths or device identifiers), and the
// otrace handler adds trace_id/span_id from the request context.
func (s *Server) logRequest(r *http.Request, pattern string, sw *statusWriter, d time.Duration) {
	if s.logger == nil {
		return
	}
	lvl := slog.LevelDebug
	switch {
	case sw.status >= 500:
		lvl = slog.LevelError
	case sw.status >= 400:
		lvl = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("route", pattern),
		slog.Int("status", sw.status),
		slog.Duration("duration", d),
	}
	if sw.errCode != "" {
		attrs = append(attrs, slog.String("code", sw.errCode))
	}
	s.logger.LogAttrs(r.Context(), lvl, "request", attrs...)
}

// statusWriter captures the status code a handler writes so the request
// counter can label it, and the apierr code of an error response so the
// server span and log record can carry it. Handlers that never call
// WriteHeader implicitly answer 200, which is the field's initial value.
type statusWriter struct {
	http.ResponseWriter
	status  int
	errCode string
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errBadRequest codes request bodies the server cannot decode.
var errBadRequest = apierr.New("hive.bad_request", apierr.Validation, "hive: bad request")

// errEmptyBatch codes batch submissions with zero uploads.
var errEmptyBatch = apierr.New("hive.empty_batch", apierr.Validation, "hive: empty upload batch")

// errorResponse is the JSON error body: a human-readable message plus the
// stable apierr code for programmatic handling.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps err's apierr category to an HTTP status (500 for
// uncoded errors), answers {"error", "code"}, counts the code on the
// error-code series when metrics are on, stamps it on the request's
// server span, and logs it with the error's telemetry-safe metadata.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	code := apierr.Code(err)
	s.metrics.recordErrorCode(code)
	if sw, ok := w.(*statusWriter); ok {
		sw.errCode = code
	}
	s.logError(r, err, code)
	writeJSON(w, apierr.HTTPStatus(err), errorResponse{Error: err.Error(), Code: code})
}

// logError emits one structured record per error response: the stable
// apierr code plus the error's telemetry-safe metadata, in sorted key
// order so records render deterministically. Trace correlation comes from
// the request context via the otrace log handler.
func (s *Server) logError(r *http.Request, err error, code string) {
	if s.logger == nil {
		return
	}
	attrs := []slog.Attr{slog.String("code", code)}
	var ae *apierr.Error
	if errors.As(err, &ae) {
		meta := ae.Meta()
		keys := make([]string, 0, len(meta))
		for k := range meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			attrs = append(attrs, slog.String(k, meta[k]))
		}
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "request error", attrs...)
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 32<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: decode request: %w", errBadRequest, err)
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var info transport.DeviceInfo
	if err := decode(r, &info); err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := s.hive.RegisterDevice(info); err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDevices(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.hive.Devices())
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if err := s.hive.UnregisterDevice(r.PathValue("id")); err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unregistered"})
}

func (s *Server) handleDeviceTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := s.hive.TasksFor(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if tasks == nil {
		tasks = []transport.TaskSpec{}
	}
	writeJSON(w, http.StatusOK, tasks)
}

// PublishResponse is the result of POST /api/tasks.
type PublishResponse struct {
	Task      transport.TaskSpec `json:"task"`
	Recruited []string           `json:"recruited"`
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var spec transport.TaskSpec
	if err := decode(r, &spec); err != nil {
		s.writeError(w, r, err)
		return
	}
	published, recruited, err := s.hive.PublishTask(spec)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, PublishResponse{Task: published, Recruited: recruited})
}

func (s *Server) handleGetTask(w http.ResponseWriter, r *http.Request) {
	spec, err := s.hive.Task(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

func (s *Server) handleUploadsOf(w http.ResponseWriter, r *http.Request) {
	ups, err := s.hive.Uploads(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if ups == nil {
		ups = []transport.Upload{}
	}
	writeJSON(w, http.StatusOK, ups)
}

func (s *Server) handleSubmitUpload(w http.ResponseWriter, r *http.Request) {
	var u transport.Upload
	if err := decode(r, &u); err != nil {
		s.writeError(w, r, err)
		return
	}
	var err error
	if s.queue != nil {
		var errs []error
		errs, err = s.queue.Submit(r.Context(), []transport.Upload{u})
		if err == nil {
			err = errs[0]
		}
	} else {
		err = s.hive.SubmitUpload(u)
	}
	if errors.Is(err, ingest.ErrQueueFull) {
		s.writeQueueFull(w, r, err)
		return
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted"})
}

// handleSubmitBatch ingests an UploadBatch. Admission is per item — the
// response always carries one result per upload — except when the ingest
// queue is saturated, which rejects the whole batch with 429 and a
// Retry-After hint before any work is done.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var batch transport.UploadBatch
	if err := decode(r, &batch); err != nil {
		s.writeError(w, r, err)
		return
	}
	if len(batch.Uploads) == 0 {
		s.writeError(w, r, errEmptyBatch)
		return
	}
	var errs []error
	if s.queue != nil {
		var err error
		errs, err = s.queue.Submit(r.Context(), batch.Uploads)
		if errors.Is(err, ingest.ErrQueueFull) {
			s.writeQueueFull(w, r, err)
			return
		}
		if err != nil {
			s.writeError(w, r, err)
			return
		}
	} else {
		errs = s.hive.SubmitBatchContext(r.Context(), batch.Uploads)
	}
	resp := transport.UploadBatchResponse{Results: make([]transport.UploadResult, len(errs))}
	for i, err := range errs {
		res := transport.UploadResult{Index: i, Code: uploadResultCode(err)}
		if err != nil {
			res.Error = err.Error()
			resp.Rejected++
		} else {
			resp.Accepted++
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// uploadResultCode maps a per-item admission error to its wire code.
func uploadResultCode(err error) string {
	switch {
	case err == nil:
		return transport.UploadOK
	case errors.Is(err, ErrUnknownTask):
		return transport.UploadUnknownTask
	case errors.Is(err, ErrUnknownDevice):
		return transport.UploadUnknownDevice
	case errors.Is(err, ErrNotAssigned):
		return transport.UploadNotAssigned
	case errors.Is(err, ErrUploadLimit):
		return transport.UploadLimit
	default:
		return transport.UploadFailed
	}
}

// writeQueueFull answers backpressure: 429 with the queue's Retry-After
// hint so producers know when to resubmit.
func (s *Server) writeQueueFull(w http.ResponseWriter, r *http.Request, err error) {
	secs := int(s.queue.RetryAfter().Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	code := apierr.Code(err)
	s.metrics.recordErrorCode(code)
	if sw, ok := w.(*statusWriter); ok {
		sw.errCode = code
	}
	s.logError(r, err, code)
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), Code: code})
}

// errUnknownTrace codes GET /debug/traces/{id} lookups for a trace the
// bounded span store does not hold (never collected, or already evicted).
var errUnknownTrace = apierr.New("hive.unknown_trace", apierr.NotFound, "hive: unknown trace")

// TraceResponse is the result of GET /debug/traces/{id}: the trace's
// spans assembled into parent→child trees, roots first, siblings in
// start-time order.
type TraceResponse struct {
	TraceID string             `json:"traceId"`
	Spans   []*otrace.SpanNode `json:"spans"`
}

func (s *Server) handleListTraces(w http.ResponseWriter, _ *http.Request) {
	sums := s.tracer.Store().Summaries()
	if sums == nil {
		sums = []otrace.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, sums)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id, ok := otrace.ParseTraceID(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, fmt.Errorf("%w: malformed trace id", errBadRequest))
		return
	}
	spans, ok := s.tracer.Store().Spans(id)
	if !ok {
		s.writeError(w, r, errUnknownTrace)
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{TraceID: id.String(), Spans: otrace.Assemble(spans)})
}

// SetDraining flips the /readyz readiness signal. Call with true before
// stopping the HTTP listener so load balancers stop routing new work
// while in-flight requests and the ingest queue drain.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness: 503 while the server is draining for
// shutdown or once the ingest queue has been closed, 200 otherwise. The
// body names the failing gate so probes are debuggable from logs alone.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.queue != nil && s.queue.Closed():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "queue-closed"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.hive.Stats()
	if s.queue != nil {
		qs := s.queue.Stats()
		st.Ingest = &qs
	}
	if s.evalCache != nil {
		cs := s.evalCache.Stats()
		st.EvalCache = &cs
	}
	if ss, ok := s.hive.StoreStats(); ok {
		st.Store = &ss
	}
	writeJSON(w, http.StatusOK, st)
}
