package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"
)

// ShardedConfig sizes the sharded engine. The zero value gets sensible
// defaults.
type ShardedConfig struct {
	// Shards is the number of per-task upload files, each with its own
	// group-commit boundary. Default 8.
	Shards int
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// Sharded is the per-task sharded engine: registry (meta) events append
// to meta.log while uploads land in shard-%02d.log files chosen by task
// hash, each shard with an independent append+fsync boundary. Two hot
// tasks hashing to different shards commit concurrently instead of
// serialising on one descriptor. The engine keeps full history (no
// snapshots); recovery replays every file, which is order-safe because
// hive replay is validation-free and upload order only matters within a
// task — and one task always lands in one shard, in order.
//
// Shrinking Shards across restarts is safe: orphan shard files beyond
// the configured count are replayed before the configured shards (then
// left untouched). They receive no new writes after the shrink, so their
// records are strictly older than any record for the same task in its
// new home shard — replaying them first preserves per-task order.
type Sharded struct {
	dir    string
	cfg    ShardedConfig
	meta   logFile
	shards []logFile
	replay recoveryStats
}

var _ Store = (*Sharded)(nil)

// OpenSharded opens the sharded engine on dir, creating the directory
// if needed. Nothing is read until Recover.
func OpenSharded(dir string, cfg ShardedConfig) (*Sharded, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: sharded store dir is empty", ErrIO)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: mkdir %s: %w", ErrIO, dir, err)
	}
	cfg = cfg.withDefaults()
	s := &Sharded{dir: dir, cfg: cfg}
	s.meta = logFile{path: filepath.Join(dir, "meta.log"), syncEvery: 1}
	s.shards = make([]logFile, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = logFile{path: filepath.Join(dir, shardName(i)), syncEvery: 1}
	}
	return s, nil
}

func shardName(i int) string { return fmt.Sprintf("shard-%02d.log", i) }

// Recover implements Store: replay meta.log first (registry state before
// the uploads that reference it), then orphan shard files from a larger
// previous shard count, then the configured shards. Orphans go first
// because they are frozen — nothing writes to them after a shrink — so
// every orphan record predates any record for the same task in its new
// home shard; replaying them last would invert per-task arrival order.
// All files are torn-tail tolerant: a crash can land mid-append on any
// of them, since each has its own commit boundary.
func (s *Sharded) Recover(_ func([]byte) error, record func([]byte) error) error {
	start := time.Now()
	n, size, err := replayFile(s.meta.path, true, record)
	if err != nil {
		return err
	}
	s.meta.mu.Lock()
	s.meta.size = size
	err = s.meta.open()
	s.meta.mu.Unlock()
	if err != nil {
		return err
	}

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("%w: read dir %s: %w", ErrIO, s.dir, err)
	}
	for _, e := range entries {
		// Strict parse: operator leftovers like shard-02.log.bak must not
		// replay as live history.
		if idx := parseSeq(e.Name(), "shard-", ".log"); idx >= len(s.shards) {
			rn, _, err := replayFile(filepath.Join(s.dir, e.Name()), true, record)
			if err != nil {
				return err
			}
			n += rn
		}
	}
	for i := range s.shards {
		lf := &s.shards[i]
		rn, size, err := replayFile(lf.path, true, record)
		if err != nil {
			return err
		}
		n += rn
		lf.mu.Lock()
		lf.size = size
		err = lf.open()
		lf.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.replay.duration.Store(int64(time.Since(start)))
	s.replay.records.Store(n)
	return nil
}

// AppendMeta implements Store: registry events commit on meta.log's own
// boundary, independent of every upload shard.
func (s *Sharded) AppendMeta(recs [][]byte) error { return s.meta.append(recs) }

// AppendBatch implements Store: recs commit on shard's file and fsync
// boundary only.
func (s *Sharded) AppendBatch(shard int, recs [][]byte) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("%w: shard %d out of range [0,%d)", ErrIO, shard, len(s.shards))
	}
	return s.shards[shard].append(recs)
}

// Shards implements Store.
func (s *Sharded) Shards() int { return len(s.shards) }

// ShardFor implements Store: FNV-1a of the task key modulo the shard
// count, so a task's uploads always land in one file, in order.
func (s *Sharded) ShardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// SnapshotDue implements Store: the sharded engine keeps full history.
func (s *Sharded) SnapshotDue() bool { return false }

// WriteSnapshot implements Store as a no-op — SnapshotDue is always
// false, so the Hive never calls this.
func (s *Sharded) WriteSnapshot([]byte) error { return nil }

// SetSyncEvery implements Store: the cadence applies independently to
// meta.log and each shard.
func (s *Sharded) SetSyncEvery(n int) {
	s.meta.setSyncEvery(n)
	for i := range s.shards {
		s.shards[i].setSyncEvery(n)
	}
}

// Stats implements Store.
func (s *Sharded) Stats() Stats {
	st := Stats{
		Engine:     EngineSharded,
		Shards:     len(s.shards),
		Segments:   len(s.shards) + 1,
		ShardSyncs: make([]uint64, len(s.shards)),
	}
	metaBytes, metaSyncs := s.meta.bytesAndSyncs()
	st.LogBytes = metaBytes
	st.MetaSyncs = metaSyncs
	st.Syncs = metaSyncs
	for i := range s.shards {
		bytes, syncs := s.shards[i].bytesAndSyncs()
		st.LogBytes += bytes
		st.ShardSyncs[i] = syncs
		st.Syncs += syncs
	}
	s.replay.fill(&st)
	return st
}

// Close implements Store: syncs and closes meta.log and every shard.
// All files are closed even when some fail; the first error wins.
func (s *Sharded) Close() error {
	errs := []error{s.meta.close()}
	for i := range s.shards {
		errs = append(errs, s.shards[i].close())
	}
	return errors.Join(errs...)
}
