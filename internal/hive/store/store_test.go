package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// rec builds a small JSON record with a distinguishing sequence number.
func rec(n int) []byte {
	return []byte(fmt.Sprintf(`{"seq":%d}`, n))
}

// collect recovers a store and returns the snapshot blob (nil if none)
// and the replayed records in order.
func collect(t *testing.T, s Store) ([]byte, [][]byte) {
	t.Helper()
	var snap []byte
	var recs [][]byte
	err := s.Recover(
		func(state []byte) error { snap = append([]byte(nil), state...); return nil },
		func(r []byte) error { recs = append(recs, append([]byte(nil), r...)); return nil },
	)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return snap, recs
}

func seqs(recs [][]byte) []int {
	out := make([]int, len(recs))
	for i, r := range recs {
		var v struct{ Seq int }
		if err := json.Unmarshal(r, &v); err != nil {
			panic(err)
		}
		out[i] = v.Seq
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestJournalEngineRoundTrip: records appended in one life replay in
// order in the next.
func TestJournalEngineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, recs := collect(t, j); len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	if err := j.AppendMeta([][]byte{rec(1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch(0, [][]byte{rec(2), rec(3)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, recs := collect(t, j2)
	if got := seqs(recs); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("replayed %v, want [1 2 3]", got)
	}
	st := j2.Stats()
	if st.Engine != EngineJournal || st.Shards != 1 || st.ReplayRecords != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAppendBeforeRecoverFails: the lifecycle is construct → Recover →
// append; an append on an unrecovered store is an ErrIO, not a panic.
func TestAppendBeforeRecoverFails(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMeta([][]byte{rec(1)}); !errors.Is(err, ErrIO) {
		t.Errorf("append before recover: %v, want ErrIO", err)
	}
	s, err := OpenSegmented(t.TempDir(), SegmentedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendMeta([][]byte{rec(1)}); !errors.Is(err, ErrIO) {
		t.Errorf("segmented append before recover: %v, want ErrIO", err)
	}
}

// TestCloseReleasesFdWhenSyncFails: Close must close the descriptor even
// when the final fsync fails (fsync on a pipe fails with EINVAL). The
// reader observing EOF proves the write end was actually closed — the
// historical bug leaked it.
func TestCloseReleasesFdWhenSyncFails(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	lf := &logFile{path: "pipe", syncEvery: 1}
	lf.f = w
	if err := lf.close(); !errors.Is(err, ErrIO) {
		t.Errorf("close with failing sync: err = %v, want ErrIO", err)
	}
	// EOF on the read end proves the write end is closed, not leaked.
	buf := make([]byte, 1)
	if n, err := r.Read(buf); err == nil || n != 0 {
		t.Errorf("pipe read after close: n=%d err=%v, want EOF", n, err)
	}
	// Idempotent: a second close is a clean no-op.
	if err := lf.close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestTornTailTruncation: a partial final record — at every byte offset —
// is dropped and physically truncated; complete records survive.
func TestTornTailTruncation(t *testing.T) {
	complete := append(append(rec(1), '\n'), append(rec(2), '\n')...)
	last := append(rec(3), '\n')

	for cut := 0; cut < len(last); cut++ {
		path := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(path, append(append([]byte(nil), complete...), last[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		var got []int
		n, size, err := replayFile(path, true, func(r []byte) error {
			got = append(got, seqs([][]byte{r})[0])
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !equalInts(got, []int{1, 2}) || n != 2 {
			t.Errorf("cut=%d: replayed %v (n=%d), want [1 2]", cut, got, n)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(len(complete)) || size != int64(len(complete)) {
			t.Errorf("cut=%d: file size %d (reported %d), want %d (torn bytes truncated)",
				cut, fi.Size(), size, len(complete))
		}
	}

	// Strict mode refuses the same tear.
	path := filepath.Join(t.TempDir(), "sealed.log")
	if err := os.WriteFile(path, append(append([]byte(nil), complete...), last[:3]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayFile(path, false, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("strict replay of torn file: %v, want ErrCorrupt", err)
	}

	// Valid record AFTER invalid bytes is corruption in both modes.
	path = filepath.Join(t.TempDir(), "corrupt.log")
	if err := os.WriteFile(path, []byte("garbage\n"+string(rec(9))+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayFile(path, true, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tolerant replay of mid-file corruption: %v, want ErrCorrupt", err)
	}
}

// TestSegmentedRotationAndFold: the tail rotates at the size threshold,
// SnapshotDue arms after SnapshotEvery sealed segments, and a fold
// retires every covered segment, leaving snapshot + fresh tail.
func TestSegmentedRotationAndFold(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, SegmentedConfig{SegmentBytes: 32, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, s)

	// Each record is ~10 bytes; 32-byte segments seal after a few.
	n := 0
	var written int64
	for !s.SnapshotDue() {
		n++
		if n > 1000 {
			t.Fatal("snapshot never became due")
		}
		if err := s.AppendBatch(0, [][]byte{rec(n)}); err != nil {
			t.Fatal(err)
		}
		written += int64(len(rec(n))) + 1
	}
	if segs := s.Stats().Segments; segs < 3 {
		t.Errorf("segments before fold = %d, want >= 3", segs)
	}
	// LogBytes is the restart-replay volume: sealed segments count, not
	// just the current tail.
	if got := s.Stats().LogBytes; got != written {
		t.Errorf("pre-fold LogBytes = %d, want %d (all live segments)", got, written)
	}

	state := []byte(`{"upTo":` + fmt.Sprint(n) + `}`)
	if err := s.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotDue() {
		t.Error("SnapshotDue still set after a successful fold")
	}
	st := s.Stats()
	if st.Snapshots != 1 || st.Segments != 1 || st.LogBytes != 0 {
		t.Errorf("post-fold stats = %+v", st)
	}

	// Appends continue on the fresh tail; recovery = snapshot + tail.
	if err := s.AppendBatch(0, [][]byte{rec(n + 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmented(dir, SegmentedConfig{SegmentBytes: 32, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, recs := collect(t, s2)
	if string(snap) != string(state) {
		t.Errorf("recovered snapshot = %q, want %q", snap, state)
	}
	if got := seqs(recs); !equalInts(got, []int{n + 1}) {
		t.Errorf("tail replay = %v, want [%d] (history is in the snapshot)", got, n+1)
	}
}

// TestSegmentedRecoverPrunesCoveredSegments: a crash between publishing
// a snapshot and deleting the segments it covers must not double-apply —
// recovery skips and removes segments at or below the snapshot watermark.
func TestSegmentedRecoverPrunesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	// Simulate the crash window by hand: a snapshot covering segment 3,
	// a stale covered segment 2, a live segment 4, and fold leftovers.
	if err := os.WriteFile(filepath.Join(dir, snapName(3)), []byte(`{"s":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(1)), []byte(`{"stale":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), append(rec(2), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(4)), append(rec(4), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(9)+tmpSuffix), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSegmented(dir, SegmentedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, recs := collect(t, s)
	if string(snap) != `{"s":1}` {
		t.Errorf("snapshot = %q, want the newest one", snap)
	}
	if got := seqs(recs); !equalInts(got, []int{4}) {
		t.Errorf("replay = %v, want [4] (covered segment must not replay)", got)
	}
	for _, stale := range []string{segName(2), snapName(1), snapName(9) + tmpSuffix} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s still present after recovery", stale)
		}
	}
}

// TestSegmentedFoldFailStopAfterPublish: if the fold fails AFTER the
// snapshot rename published it (directory sync error), the engine must
// stop accepting appends — the published snapshot claims to cover the
// current tail, so anything appended there would be pruned by the next
// Recover. Fail-stop plus recovery must lose nothing.
func TestSegmentedFoldFailStopAfterPublish(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, SegmentedConfig{SegmentBytes: 32, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, s)
	n := 0
	for !s.SnapshotDue() {
		n++
		if n > 1000 {
			t.Fatal("snapshot never became due")
		}
		if err := s.AppendBatch(0, [][]byte{rec(n)}); err != nil {
			t.Fatal(err)
		}
	}

	syncDirHook = func(string) error { return fmt.Errorf("%w: injected dir sync failure", ErrIO) }
	defer func() { syncDirHook = syncDir }()
	state := []byte(`{"upTo":` + fmt.Sprint(n) + `}`)
	if err := s.WriteSnapshot(state); err == nil {
		t.Fatal("WriteSnapshot succeeded despite directory sync failure")
	}
	if st := s.Stats(); st.SnapshotFailures != 1 {
		t.Errorf("snapshot failures = %d, want 1", st.SnapshotFailures)
	}
	if err := s.AppendBatch(0, [][]byte{rec(n + 1)}); err == nil {
		t.Fatal("append accepted after a failed fold published a covering snapshot")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery resolves the interrupted fold: the published snapshot wins,
	// covered segments are pruned unreplayed, and appends work again.
	s2, err := OpenSegmented(dir, SegmentedConfig{SegmentBytes: 32, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, recs := collect(t, s2)
	if string(snap) != string(state) {
		t.Errorf("recovered snapshot = %q, want %q", snap, state)
	}
	if len(recs) != 0 {
		t.Errorf("replayed %d records, want 0 (all history is in the snapshot)", len(recs))
	}
	if err := s2.AppendBatch(0, [][]byte{rec(n + 2)}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestShardedIndependentCommits: uploads for tasks on different shards
// land in different files with separate fsync counters — the
// no-serialisation proof — and replay together with meta records.
func TestShardedIndependentCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, s)

	// Find two keys on distinct shards.
	a, b := "task-a", ""
	for i := 0; b == ""; i++ {
		if k := fmt.Sprintf("task-%d", i); s.ShardFor(k) != s.ShardFor(a) {
			b = k
		}
	}
	sa, sb := s.ShardFor(a), s.ShardFor(b)

	if err := s.AppendMeta([][]byte{rec(1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.AppendBatch(sa, [][]byte{rec(10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendBatch(sb, [][]byte{rec(20)}); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.MetaSyncs != 1 {
		t.Errorf("meta syncs = %d, want 1", st.MetaSyncs)
	}
	if st.ShardSyncs[sa] != 3 || st.ShardSyncs[sb] != 1 {
		t.Errorf("shard syncs = %v, want 3 on shard %d and 1 on shard %d", st.ShardSyncs, sa, sb)
	}
	for i, n := range st.ShardSyncs {
		if i != sa && i != sb && n != 0 {
			t.Errorf("untouched shard %d has %d syncs", i, n)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(dir, ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, recs := collect(t, s2)
	if len(recs) != 5 {
		t.Errorf("replayed %d records, want 5", len(recs))
	}
}

// TestShardedShrinkReplaysOrphans: shrinking the shard count across
// restarts still replays the now-orphaned higher shard files, and
// replays them BEFORE the configured shards — orphan records are
// strictly older than any same-task record in its new home shard, so
// orphans-first is what preserves per-task arrival order.
func TestShardedShrinkReplaysOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, s)
	for shard := 0; shard < 4; shard++ {
		if err := s.AppendBatch(shard, [][]byte{rec(shard)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// An operator's backup copy in the store dir must not replay as live
	// history — only exact shard-N.log names count.
	if err := os.WriteFile(filepath.Join(dir, "shard-03.log.bak"), append(rec(99), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(dir, ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, recs := collect(t, s2)
	if got, want := seqs(recs), []int{2, 3, 0, 1}; !equalInts(got, want) {
		t.Errorf("replay after shrink = %v, want %v (orphans first, backup file ignored)", got, want)
	}
	// The task whose history lives in orphan shard-03 keeps uploading; its
	// new records land in its new home shard.
	if err := s2.AppendBatch(1, [][]byte{rec(31)}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := OpenSharded(dir, ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	_, recs = collect(t, s3)
	if got, want := seqs(recs), []int{2, 3, 0, 1, 31}; !equalInts(got, want) {
		t.Errorf("replay after shrink+append = %v, want %v (orphan record 3 must precede its task's newer record 31)", got, want)
	}
}
