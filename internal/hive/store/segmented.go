package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SegmentedConfig sizes the compacting engine. The zero value gets
// sensible defaults.
type SegmentedConfig struct {
	// SegmentBytes is the tail rotation threshold: once the tail file
	// grows past it, the tail is sealed (synced and closed) and a fresh
	// one opened. Default 4 MiB.
	SegmentBytes int64
	// SnapshotEvery triggers a fold: after this many segments have been
	// sealed since the last snapshot, SnapshotDue turns true and the
	// owner folds its state via WriteSnapshot. Default 4.
	SnapshotEvery int
}

func (c SegmentedConfig) withDefaults() SegmentedConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4
	}
	return c
}

// Segmented is the snapshot+tail compacting engine. Records append to a
// tail file that rotates at SegmentBytes; after SnapshotEvery rotations
// the owner folds its complete in-memory state into an immutable
// snapshot file and the superseded segments are deleted. Recovery is
// snapshot + remaining segments — O(writes since the last fold), not
// O(history).
//
// On-disk layout (one directory): snapshot-%08d.json is the newest fold,
// named by the highest segment it covers; seg-%08d.log are the segments
// after it, the highest being the live tail. A fold is crash-safe: the
// snapshot lands via tmp-file + atomic rename before any segment is
// deleted, and recovery ignores (and prunes) segments the snapshot
// already covers, so an interrupted fold can only leave harmless
// leftovers.
type Segmented struct {
	dir string
	cfg SegmentedConfig

	// mu is the engine's commit lock: it serialises append+fsync,
	// rotation and folding. Held across the sync by design — it is the
	// commit boundary, and nothing that reads registry state contends on
	// it.
	//
	//lint:allowsync designated commit lock, serialises append+fsync and rotation by design
	mu          sync.Mutex
	tail        *os.File
	tailSeq     int
	tailSize    int64
	sealedBytes int64 // bytes in sealed-but-unfolded segments, replayed at restart
	liveSegs    []int // live segment seqs, ascending; last is the tail
	sealed      int   // segments sealed since the last fold
	pending     int
	syncEvery   int
	ready       bool

	due              atomic.Bool
	syncs            atomic.Uint64
	snapshots        atomic.Uint64
	snapshotFailures atomic.Uint64
	lastSnapshotNs   atomic.Int64 // unix ns; 0 = never
	snapshotDurNs    atomic.Int64
	replay           recoveryStats
}

var _ Store = (*Segmented)(nil)

// OpenSegmented opens the compacting engine on dir, creating the
// directory if needed. Nothing is read until Recover.
func OpenSegmented(dir string, cfg SegmentedConfig) (*Segmented, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: segmented store dir is empty", ErrIO)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: mkdir %s: %w", ErrIO, dir, err)
	}
	return &Segmented{dir: dir, cfg: cfg.withDefaults(), syncEvery: 1}, nil
}

const (
	segPrefix  = "seg-"
	segSuffix  = ".log"
	snapPrefix = "snapshot-"
	snapSuffix = ".json"
	tmpSuffix  = ".tmp"
)

func segName(seq int) string  { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }
func snapName(seq int) string { return fmt.Sprintf("%s%08d%s", snapPrefix, seq, snapSuffix) }

// parseSeq extracts the sequence number of an engine file name, or -1 if
// name is not exactly prefix+digits+suffix. Strict on purpose: operator
// leftovers like seg-00000003.log.bak must not replay as live history.
func parseSeq(name, prefix, suffix string) int {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return -1
	}
	rest, ok = strings.CutSuffix(rest, suffix)
	if !ok {
		return -1
	}
	if rest == "" {
		return -1
	}
	for _, c := range rest {
		if c < '0' || c > '9' {
			return -1
		}
	}
	seq, err := strconv.Atoi(rest)
	if err != nil { // digits only, so only overflow lands here
		return -1
	}
	return seq
}

// Recover implements Store: restore the newest snapshot (if any), replay
// the segments after it in order — strict for sealed segments, torn-tail
// tolerant for the live tail — prune files an interrupted fold left
// behind, and open the tail for appending.
func (s *Segmented) Recover(snapshot func([]byte) error, record func([]byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("%w: read dir %s: %w", ErrIO, s.dir, err)
	}
	snapSeq := -1
	var segs, oldSnaps []int
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(s.dir, name)) // interrupted fold leftovers
			continue
		}
		if seq := parseSeq(name, snapPrefix, snapSuffix); seq >= 0 {
			if seq > snapSeq {
				if snapSeq >= 0 {
					oldSnaps = append(oldSnaps, snapSeq)
				}
				snapSeq = seq
			} else {
				oldSnaps = append(oldSnaps, seq)
			}
			continue
		}
		if seq := parseSeq(name, segPrefix, segSuffix); seq >= 0 {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)

	if snapSeq >= 0 {
		state, err := os.ReadFile(filepath.Join(s.dir, snapName(snapSeq)))
		if err != nil {
			return fmt.Errorf("%w: read snapshot %d: %w", ErrIO, snapSeq, err)
		}
		if err := snapshot(state); err != nil {
			return err
		}
	}

	var n int64
	live := segs[:0]
	s.sealedBytes = 0
	for i, seq := range segs {
		path := filepath.Join(s.dir, segName(seq))
		if seq <= snapSeq {
			// Covered by the snapshot: an interrupted fold did not get to
			// delete it. Replaying it would double-apply history.
			os.Remove(path)
			continue
		}
		tolerant := i == len(segs)-1 // only the tail can be mid-append at a crash
		rn, size, err := replayFile(path, tolerant, record)
		if err != nil {
			return err
		}
		n += rn
		live = append(live, seq)
		s.sealedBytes += s.tailSize // the previous segment is now known sealed
		s.tailSeq, s.tailSize = seq, size
	}
	for _, seq := range oldSnaps {
		os.Remove(filepath.Join(s.dir, snapName(seq)))
	}
	if len(live) == 0 {
		s.tailSeq, s.tailSize = snapSeq+1, 0
		live = append(live, s.tailSeq)
	}
	s.liveSegs = append([]int(nil), live...)
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.tailSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("%w: open tail segment %d: %w", ErrIO, s.tailSeq, err)
	}
	s.tail = f
	// Sealed-but-unfolded segments survive a restart; re-arm the fold
	// trigger so long-lived histories still converge to snapshot + tail.
	s.sealed = len(live) - 1
	s.due.Store(s.sealed >= s.cfg.SnapshotEvery)
	s.ready = true
	s.replay.duration.Store(int64(time.Since(start)))
	s.replay.records.Store(n)
	return nil
}

// AppendMeta implements Store: meta and data records share the tail.
func (s *Segmented) AppendMeta(recs [][]byte) error { return s.append(recs) }

// AppendBatch implements Store; the shard argument is ignored — the
// segmented engine has one commit boundary.
func (s *Segmented) AppendBatch(_ int, recs [][]byte) error { return s.append(recs) }

func (s *Segmented) append(recs [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ready {
		return fmt.Errorf("%w: %s: append before Recover (or after Close)", ErrIO, s.dir)
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		buf.Write(rec)
		buf.WriteByte('\n')
	}
	if _, err := s.tail.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("%w: append segment %d: %w", ErrIO, s.tailSeq, err)
	}
	s.tailSize += int64(buf.Len())
	if err := s.commitLocked(); err != nil {
		return err
	}
	if s.tailSize >= s.cfg.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// commitLocked advances the group-commit boundary, syncing per the
// cadence.
func (s *Segmented) commitLocked() error {
	if s.syncEvery <= 0 {
		return nil
	}
	s.pending++
	if s.pending < s.syncEvery {
		return nil
	}
	s.pending = 0
	if err := s.tail.Sync(); err != nil {
		return fmt.Errorf("%w: sync segment %d: %w", ErrIO, s.tailSeq, err)
	}
	s.syncs.Add(1)
	return nil
}

// rotateLocked seals the tail (sync + close: sealed segments are fully
// durable regardless of the commit cadence) and opens the next one,
// arming the fold trigger when enough history has sealed.
func (s *Segmented) rotateLocked() error {
	if err := s.tail.Sync(); err != nil {
		return fmt.Errorf("%w: seal segment %d: %w", ErrIO, s.tailSeq, err)
	}
	s.syncs.Add(1)
	s.pending = 0
	if err := s.tail.Close(); err != nil {
		return fmt.Errorf("%w: seal segment %d: %w", ErrIO, s.tailSeq, err)
	}
	s.tailSeq++
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.tailSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.tail, s.ready = nil, false
		return fmt.Errorf("%w: open segment %d: %w", ErrIO, s.tailSeq, err)
	}
	s.sealedBytes += s.tailSize
	s.tail, s.tailSize = f, 0
	s.liveSegs = append(s.liveSegs, s.tailSeq)
	s.sealed++
	if s.sealed >= s.cfg.SnapshotEvery {
		s.due.Store(true)
	}
	return nil
}

// Shards implements Store: one commit boundary.
func (s *Segmented) Shards() int { return 1 }

// ShardFor implements Store: everything commits on shard 0.
func (s *Segmented) ShardFor(string) int { return 0 }

// SnapshotDue implements Store.
func (s *Segmented) SnapshotDue() bool { return s.due.Load() }

// WriteSnapshot implements Store: write state to a tmp file, sync it,
// atomically rename it over the engine's snapshot slot, then retire
// every segment it covers (including the current tail) and start a fresh
// tail. The caller quiesces appends for the duration. On failure the
// fold trigger is disarmed — it re-arms at the next rotation, bounding
// retry frequency — and the failure is counted. A failure before the
// rename leaves the log fully intact; a failure after it (directory
// sync, post-fold tail open) fail-stops the engine so no new append can
// land in a segment the published snapshot covers — restart and Recover
// to resume.
func (s *Segmented) WriteSnapshot(state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.due.Store(false)
	if !s.ready {
		return fmt.Errorf("%w: %s: snapshot before Recover (or after Close)", ErrIO, s.dir)
	}
	start := time.Now()
	err := s.foldLocked(state)
	if err != nil {
		s.snapshotFailures.Add(1)
		return err
	}
	s.snapshots.Add(1)
	s.lastSnapshotNs.Store(start.UnixNano())
	s.snapshotDurNs.Store(int64(time.Since(start)))
	return nil
}

func (s *Segmented) foldLocked(state []byte) error {
	covered := s.tailSeq // the snapshot includes everything up to and including the tail
	tmp := filepath.Join(s.dir, snapName(covered)+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("%w: create snapshot tmp: %w", ErrIO, err)
	}
	if _, err := f.Write(state); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%w: write snapshot: %w", ErrIO, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%w: sync snapshot: %w", ErrIO, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: close snapshot: %w", ErrIO, err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(covered))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: publish snapshot: %w", ErrIO, err)
	}
	if err := syncDirHook(s.dir); err != nil {
		// The snapshot is renamed into place but its durability is
		// unknown. Staying ready would keep appending to a tail the
		// published snapshot already claims to cover — the next Recover
		// would prune those acknowledged records. Fail stop instead:
		// appends are refused, every segment stays on disk, and Recover
		// resolves the fold either way without losing a record.
		s.tail.Close()
		s.tail, s.ready = nil, false
		return err
	}
	// The snapshot is durable: everything below is cleanup that recovery
	// redoes if interrupted. Retire the folded log and start fresh.
	s.tail.Close() // contents are in the snapshot; no sync needed
	for _, seq := range s.liveSegs {
		os.Remove(filepath.Join(s.dir, segName(seq)))
	}
	// Older snapshots are superseded by the one just published.
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if seq := parseSeq(e.Name(), snapPrefix, snapSuffix); seq >= 0 && seq < covered {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	s.tailSeq = covered + 1
	f, err = os.OpenFile(filepath.Join(s.dir, segName(s.tailSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.tail, s.ready = nil, false
		return fmt.Errorf("%w: open post-fold tail: %w", ErrIO, err)
	}
	s.tail, s.tailSize, s.pending = f, 0, 0
	s.sealedBytes = 0
	s.liveSegs = []int{s.tailSeq}
	s.sealed = 0
	return nil
}

// SetSyncEvery implements Store.
func (s *Segmented) SetSyncEvery(n int) {
	s.mu.Lock()
	s.syncEvery = n
	s.mu.Unlock()
}

// Stats implements Store.
func (s *Segmented) Stats() Stats {
	s.mu.Lock()
	segs := len(s.liveSegs)
	size := s.sealedBytes + s.tailSize // everything the next restart replays
	s.mu.Unlock()
	syncs := s.syncs.Load()
	st := Stats{
		Engine:               EngineSegmented,
		Shards:               1,
		Segments:             segs,
		LogBytes:             size,
		Syncs:                syncs,
		ShardSyncs:           []uint64{syncs},
		Snapshots:            s.snapshots.Load(),
		SnapshotFailures:     s.snapshotFailures.Load(),
		LastSnapshotDuration: time.Duration(s.snapshotDurNs.Load()),
	}
	if ns := s.lastSnapshotNs.Load(); ns != 0 {
		st.LastSnapshotAt = time.Unix(0, ns)
	}
	s.replay.fill(&st)
	return st
}

// Close implements Store: syncs outstanding commits and releases the
// tail. The descriptor is closed even when the sync fails.
func (s *Segmented) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tail == nil {
		return nil
	}
	syncErr := s.tail.Sync()
	closeErr := s.tail.Close() // always runs: no fd leak when the sync fails
	s.tail, s.ready = nil, false
	if syncErr != nil {
		return fmt.Errorf("%w: close sync segment %d: %w", ErrIO, s.tailSeq, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("%w: close segment %d: %w", ErrIO, s.tailSeq, closeErr)
	}
	return nil
}
