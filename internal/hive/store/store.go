// Package store is the Hive's pluggable storage layer: three engines
// behind one Store interface, all persisting the same JSONL event
// records the Hive journals (see internal/hive's event codec).
//
//   - Journal is the compatibility engine — the platform's original
//     single append-only file, replayed fully at startup. O(history)
//     restart, one commit boundary.
//   - Segmented is a compacting log: the tail file rotates at a size
//     threshold, and sealed history is periodically folded — together
//     with the owner's in-memory state — into an immutable snapshot, so
//     restart cost is O(writes since the last fold), not O(history).
//   - Sharded lands records for different tasks in per-shard files with
//     independent group-commit boundaries, so two hot tasks never
//     serialise on one fsync.
//
// Engines know nothing about event semantics: records are opaque JSON
// lines, snapshots are opaque state blobs. The owner (internal/hive)
// encodes, decodes and applies both. Crash consistency is uniform across
// engines: a torn final append (a trailing run of unterminated or
// non-JSON bytes, the signature of a crash mid-write) is truncated away
// on recovery — an fsync-acknowledged record always ends in a synced
// newline, so truncation can only drop writes that were never
// acknowledged.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"apisense/internal/apierr"
)

// Engine names, as selected by cmd/hive's -store flag.
const (
	// EngineJournal names the single-file compatibility engine.
	EngineJournal = "journal"
	// EngineSegmented names the snapshot+tail compacting engine.
	EngineSegmented = "segmented"
	// EngineSharded names the per-task sharded engine.
	EngineSharded = "sharded"
)

// Sentinel errors of the storage layer — coded apierr sentinels; the
// Hive wraps them in its own hive.journal_io / hive.corrupt_journal
// sentinels at the registry boundary, so both codes match with
// errors.Is (see docs/OPERATIONS.md for remediations).
var (
	// ErrIO marks a disk failure (open, append, fsync, rename, close).
	ErrIO = apierr.New("store.io", apierr.Internal, "store: log I/O")
	// ErrCorrupt marks a log record that cannot be a torn tail: invalid
	// bytes with valid records after them, or a snapshot that does not
	// parse. Recovery refuses to guess; restore from a replica or
	// hand-repair the file.
	ErrCorrupt = apierr.New("store.corrupt", apierr.Internal, "store: corrupt log")
)

// Store is one storage engine. The lifecycle is: construct (OpenJournal,
// OpenSegmented, OpenSharded), Recover exactly once to replay persisted
// state and open the append handles, then append freely; appends before
// Recover fail with ErrIO. All methods are safe for concurrent use after
// Recover.
//
// Commit boundaries: every Append* call is one group commit on its
// shard, fsynced per the SetSyncEvery cadence. The caller owns ordering:
// records within one Append* call land in order, and two calls on the
// same shard land in call order (each shard serialises internally) — the
// Hive's commit locks provide the cross-call ordering its replay needs.
type Store interface {
	// Recover streams persisted state back to the owner: the snapshot
	// blob first (if the engine holds one), then every log record in
	// commit order. Torn final appends are truncated away (see the
	// package comment); corruption that cannot be a torn tail fails with
	// ErrCorrupt. After Recover returns the engine is ready to append.
	Recover(snapshot func(state []byte) error, record func(rec []byte) error) error
	// AppendMeta durably appends control-plane records (registrations,
	// task publications) as one commit boundary.
	AppendMeta(recs [][]byte) error
	// AppendBatch durably appends data-plane records as one commit
	// boundary on the given shard (0 <= shard < Shards()).
	AppendBatch(shard int, recs [][]byte) error
	// Shards reports how many independent data-plane commit shards the
	// engine has — 1 for the single-file engines.
	Shards() int
	// ShardFor maps a task key to its commit shard.
	ShardFor(key string) int
	// SnapshotDue reports whether the engine wants the owner to fold a
	// snapshot (see WriteSnapshot). Engines without compaction always
	// return false. Cheap: read on every commit.
	SnapshotDue() bool
	// WriteSnapshot folds state — the owner's complete in-memory image,
	// covering every record appended so far — into an immutable snapshot
	// and retires the log files it supersedes. The caller must quiesce
	// appends for the duration (the Hive holds all commit locks).
	// Failures are counted in Stats. A fold that fails before the
	// snapshot is published leaves the log intact and is retried at a
	// later due point; one that fails after publication fail-stops the
	// engine (appends return ErrIO) so no acknowledged record can land in
	// a file the snapshot already covers — restart to Recover.
	WriteSnapshot(state []byte) error
	// SetSyncEvery tunes the group-commit durability cadence on every
	// file of the engine: fsync once per n commit boundaries (default 1);
	// n <= 0 disables fsync, leaving flushes to the OS (Close still
	// syncs).
	SetSyncEvery(n int)
	// Stats snapshots the engine gauges.
	Stats() Stats
	// Close syncs outstanding commits and releases every file. The file
	// descriptors are closed even when the final sync fails — the sync
	// error is still returned, but nothing leaks.
	Close() error
}

// Stats are the storage-engine gauges, surfaced on GET /api/stats and —
// via hive.WithMetrics — as apisense_store_* series on /metrics.
type Stats struct {
	// Engine is the engine name (journal, segmented, sharded).
	Engine string `json:"engine"`
	// Shards is the number of independent data-plane commit shards.
	Shards int `json:"shards"`
	// Segments counts the live log files (tail region + meta files).
	Segments int `json:"segments"`
	// LogBytes is the byte volume of the live log files — what the next
	// restart will replay line by line.
	LogBytes int64 `json:"logBytes"`
	// Syncs counts fsyncs across every file of the engine.
	Syncs uint64 `json:"syncs"`
	// ShardSyncs counts fsyncs per data-plane shard (len == Shards).
	// Independent entries growing under a multi-task workload are the
	// proof that hot tasks no longer serialise on one commit boundary.
	ShardSyncs []uint64 `json:"shardSyncs,omitempty"`
	// MetaSyncs counts fsyncs of the control-plane file (sharded engine
	// only; the single-file engines fold meta into Syncs).
	MetaSyncs uint64 `json:"metaSyncs,omitempty"`
	// Snapshots and SnapshotFailures count completed and failed folds.
	Snapshots        uint64 `json:"snapshots"`
	SnapshotFailures uint64 `json:"snapshotFailures"`
	// LastSnapshotAt is when the last fold completed (zero = never).
	LastSnapshotAt time.Time `json:"lastSnapshotAt,omitzero"`
	// LastSnapshotDuration is how long the last fold took.
	LastSnapshotDuration time.Duration `json:"lastSnapshotDurationNs"`
	// ReplayDuration and ReplayRecords describe the last Recover: how
	// long the log replay took and how many records it streamed. With
	// the segmented engine these stay bounded by the tail size no matter
	// how old the deployment is — the restart-cost gauge.
	ReplayDuration time.Duration `json:"replayDurationNs"`
	ReplayRecords  int64         `json:"replayRecords"`
}

// recoveryStats is the Recover timing shared by every engine.
type recoveryStats struct {
	duration atomic.Int64 // ns
	records  atomic.Int64
}

func (r *recoveryStats) fill(s *Stats) {
	s.ReplayDuration = time.Duration(r.duration.Load())
	s.ReplayRecords = r.records.Load()
}

// logFile is one append-only JSONL file with its own group-commit
// boundary: a mutex serialising append+fsync, a sync cadence and a sync
// counter. It is the unit the sharded engine parallelises over.
type logFile struct {
	// mu serialises append+fsync on this file; held across the sync by
	// design — it is the file's commit boundary, and nothing that reads
	// registry state ever contends on it.
	//
	//lint:allowsync designated per-file commit lock, serialises append+fsync by design
	mu        sync.Mutex
	f         *os.File
	path      string
	size      int64
	syncEvery int
	pending   int
	syncs     atomic.Uint64 // read lock-free by Stats
}

// open readies the file for appending (creating it if needed). Called
// after replayFile has truncated any torn tail.
func (lf *logFile) open() error {
	f, err := os.OpenFile(lf.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("%w: open %s: %w", ErrIO, lf.path, err)
	}
	lf.f = f
	return nil
}

// append writes recs — one JSON document per record, newline-terminated —
// as one commit boundary.
func (lf *logFile) append(recs [][]byte) error {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.appendLocked(recs)
}

// appendLocked is append with lf.mu held.
func (lf *logFile) appendLocked(recs [][]byte) error {
	if lf.f == nil {
		return fmt.Errorf("%w: %s: append before Recover (or after Close)", ErrIO, lf.path)
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		buf.Write(rec)
		buf.WriteByte('\n')
	}
	if _, err := lf.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("%w: append %s: %w", ErrIO, lf.path, err)
	}
	lf.size += int64(buf.Len())
	return lf.commitLocked()
}

// commitLocked advances the group-commit boundary, syncing per the
// cadence. Callers hold lf.mu.
func (lf *logFile) commitLocked() error {
	if lf.syncEvery <= 0 {
		return nil
	}
	lf.pending++
	if lf.pending < lf.syncEvery {
		return nil
	}
	lf.pending = 0
	if err := lf.f.Sync(); err != nil {
		return fmt.Errorf("%w: sync %s: %w", ErrIO, lf.path, err)
	}
	lf.syncs.Add(1)
	return nil
}

// setSyncEvery tunes the commit cadence.
func (lf *logFile) setSyncEvery(n int) {
	lf.mu.Lock()
	lf.syncEvery = n
	lf.mu.Unlock()
}

// close syncs and releases the file. The descriptor is closed even when
// the sync fails — the sync error is returned, but nothing leaks.
func (lf *logFile) close() error {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.closeLocked()
}

// closeLocked is close with lf.mu held. Idempotent: a second close is a
// no-op.
func (lf *logFile) closeLocked() error {
	if lf.f == nil {
		return nil
	}
	syncErr := lf.f.Sync()
	closeErr := lf.f.Close() // always runs: no fd leak when the sync fails
	lf.f = nil
	if syncErr != nil {
		return fmt.Errorf("%w: close sync %s: %w", ErrIO, lf.path, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("%w: close %s: %w", ErrIO, lf.path, closeErr)
	}
	return nil
}

// bytesAndSyncs snapshots the file's gauges.
func (lf *logFile) bytesAndSyncs() (int64, uint64) {
	lf.mu.Lock()
	size := lf.size
	lf.mu.Unlock()
	return size, lf.syncs.Load()
}

// replayFile streams the JSONL records of path into record, skipping
// blank lines. A missing file is an empty log. Invalid records are
// handled per tolerance:
//
//   - tolerant (the file could have been mid-append at a crash): a
//     trailing run of unterminated or non-JSON records is a torn final
//     append — the file is truncated back to the last valid boundary and
//     the torn bytes are dropped. An fsync-acknowledged record always
//     ends in a synced newline, so only unacknowledged writes can be
//     dropped. A valid record after an invalid one cannot be a tear and
//     fails with ErrCorrupt.
//   - strict (sealed segments, completed and synced in a previous
//     life): any invalid record fails with ErrCorrupt.
//
// Returns the number of records streamed and the usable size of the file
// after any truncation.
func replayFile(path string, tolerant bool, record func([]byte) error) (n, size int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("%w: open %s: %w", ErrIO, path, err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64       // start offset of the line being read
	tornAt := int64(-1) // offset of the first invalid record
	for {
		line, rerr := r.ReadBytes('\n')
		if len(line) > 0 {
			terminated := len(line) > 0 && line[len(line)-1] == '\n'
			rec := bytes.TrimSuffix(line, []byte("\n"))
			switch {
			case terminated && len(bytes.TrimSpace(rec)) == 0:
				// Blank line: preserved journal quirk, not a record.
			case terminated && json.Valid(rec):
				if tornAt >= 0 {
					f.Close()
					return n, off, fmt.Errorf("%w: %s: valid record after invalid bytes at offset %d — not a torn tail, refusing to truncate", ErrCorrupt, path, tornAt)
				}
				if err := record(rec); err != nil {
					f.Close()
					return n, off, err
				}
				n++
			default:
				// Unterminated or non-JSON: a torn append, if it is the
				// trailing run of the file.
				if !tolerant {
					f.Close()
					return n, off, fmt.Errorf("%w: %s: invalid record at offset %d", ErrCorrupt, path, off)
				}
				if tornAt < 0 {
					tornAt = off
				}
			}
			off += int64(len(line))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return n, off, fmt.Errorf("%w: read %s: %w", ErrIO, path, rerr)
		}
	}
	if err := f.Close(); err != nil {
		return n, off, fmt.Errorf("%w: close %s: %w", ErrIO, path, err)
	}
	if tornAt >= 0 {
		if err := os.Truncate(path, tornAt); err != nil {
			return n, tornAt, fmt.Errorf("%w: truncate torn tail of %s: %w", ErrIO, path, err)
		}
		return n, tornAt, nil
	}
	return n, off, nil
}

// syncDirHook is the directory-sync entry point, a variable so tests can
// inject failures into the post-rename fold window.
var syncDirHook = syncDir

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("%w: open dir %s: %w", ErrIO, dir, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("%w: sync dir %s: %w", ErrIO, dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("%w: close dir %s: %w", ErrIO, dir, closeErr)
	}
	return nil
}
