package store

import (
	"fmt"
	"time"
)

// Journal is the compatibility engine: the platform's original storage
// format, one append-only JSONL file replayed fully at startup. Restart
// time and memory grow with history and every commit shares one fsync
// boundary — prefer Segmented (bounded restart) or Sharded (independent
// per-task commits) for long-lived or hot deployments. This engine
// exists so pre-existing journal files keep working byte-for-byte.
type Journal struct {
	lf     logFile
	replay recoveryStats
}

var _ Store = (*Journal)(nil)

// OpenJournal opens the single-file engine on path. The file is not
// touched until Recover, which replays it (truncating a torn tail) and
// readies it for appending; a missing file is an empty store.
func OpenJournal(path string) (*Journal, error) {
	if path == "" {
		return nil, fmt.Errorf("%w: journal path is empty", ErrIO)
	}
	return &Journal{lf: logFile{path: path, syncEvery: 1}}, nil
}

// Recover implements Store.
func (j *Journal) Recover(_ func([]byte) error, record func([]byte) error) error {
	start := time.Now()
	n, size, err := replayFile(j.lf.path, true, record)
	if err != nil {
		return err
	}
	j.replay.duration.Store(int64(time.Since(start)))
	j.replay.records.Store(n)
	j.lf.mu.Lock()
	defer j.lf.mu.Unlock()
	j.lf.size = size
	return j.lf.open()
}

// AppendMeta implements Store: meta and data records share the one file.
func (j *Journal) AppendMeta(recs [][]byte) error { return j.lf.append(recs) }

// AppendBatch implements Store; the shard argument is ignored — a
// single-file engine has exactly one commit boundary.
func (j *Journal) AppendBatch(_ int, recs [][]byte) error { return j.lf.append(recs) }

// Shards implements Store: one commit boundary.
func (j *Journal) Shards() int { return 1 }

// ShardFor implements Store: everything commits on shard 0.
func (j *Journal) ShardFor(string) int { return 0 }

// SnapshotDue implements Store: the journal never compacts.
func (j *Journal) SnapshotDue() bool { return false }

// WriteSnapshot implements Store as a no-op — the journal keeps full
// history by design (SnapshotDue is always false, so the Hive never
// calls this).
func (j *Journal) WriteSnapshot([]byte) error { return nil }

// SetSyncEvery implements Store.
func (j *Journal) SetSyncEvery(n int) { j.lf.setSyncEvery(n) }

// Syncs reports how many fsyncs the journal has performed — the
// group-commit effectiveness gauge: uploads ingested per sync is the
// amortisation factor.
func (j *Journal) Syncs() uint64 { return j.lf.syncs.Load() }

// Stats implements Store.
func (j *Journal) Stats() Stats {
	size, syncs := j.lf.bytesAndSyncs()
	s := Stats{
		Engine:     EngineJournal,
		Shards:     1,
		Segments:   1,
		LogBytes:   size,
		Syncs:      syncs,
		ShardSyncs: []uint64{syncs},
	}
	j.replay.fill(&s)
	return s
}

// Close implements Store: syncs outstanding commits and releases the
// file. The descriptor is closed even when the sync fails.
func (j *Journal) Close() error { return j.lf.close() }
