package hive

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"apisense/internal/core"
	"apisense/internal/geo"
	"apisense/internal/mobgen"
	"apisense/internal/otrace"
)

// TestPublishShardedTraceRetrievableOverHTTP: when the publication engine
// and the Hive share one tracer, a PublishSharded run is retrievable as a
// single assembled trace through GET /debug/traces/{id} — partition,
// per-shard selection, per-strategy evaluation and merge, correctly nested.
func TestPublishShardedTraceRetrievableOverHTTP(t *testing.T) {
	tracer := otrace.New(otrace.Config{Store: otrace.NewSpanStore(16)})
	hs := NewServer(New(), WithTracer(tracer))

	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 21, Users: 6, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{
		Parallelism:  4,
		PseudonymKey: []byte("http-trace"),
		Tracer:       tracer,
	}, geo.Point{Lat: 45.7640, Lon: 4.8357})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := core.NewShardByUser(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PublishShardedContext(context.Background(), ds, policy); err != nil {
		t.Fatal(err)
	}

	var pubID otrace.TraceID
	for _, s := range tracer.Store().Summaries() {
		if s.Root == "core.publish_sharded" {
			pubID = s.TraceID
		}
	}
	if pubID.IsZero() {
		t.Fatal("no trace rooted at core.publish_sharded in the shared store")
	}

	rec := httptest.NewRecorder()
	hs.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+pubID.String(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("get trace: %d body %s", rec.Code, rec.Body.String())
	}
	var tr TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != pubID.String() {
		t.Fatalf("traceId = %q, want %q", tr.TraceID, pubID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "core.publish_sharded" {
		t.Fatalf("want one core.publish_sharded root, got %+v", tr.Spans)
	}

	// Walk the served tree: the full pipeline must be nested under the root.
	counts := map[string]int{}
	var walk func(n *otrace.SpanNode)
	walk = func(n *otrace.SpanNode) {
		counts[n.Span.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr.Spans[0])
	if counts["core.partition"] != 1 || counts["core.merge"] != 1 {
		t.Errorf("partition/merge spans = %d/%d, want 1/1",
			counts["core.partition"], counts["core.merge"])
	}
	if counts["core.shard"] < 2 {
		t.Errorf("%d core.shard spans, want >= 2", counts["core.shard"])
	}
	if counts["core.select"] != counts["core.shard"] {
		t.Errorf("%d core.select spans for %d shards", counts["core.select"], counts["core.shard"])
	}
	if want := counts["core.shard"] * len(m.Strategies()); counts["core.strategy"] != want {
		t.Errorf("%d core.strategy spans, want %d", counts["core.strategy"], want)
	}
	if counts["core.attack"] != counts["core.strategy"] {
		t.Errorf("%d core.attack spans for %d strategy evaluations (cold run: one attack each)",
			counts["core.attack"], counts["core.strategy"])
	}
}
