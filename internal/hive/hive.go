// Package hive implements the central service of the APISENSE platform
// (§2 of the paper): "the Hive service, that is responsible for managing
// the community of mobile users and publishing crowd-sensing tasks". Tasks
// are uploaded by Honeycomb endpoints, offloaded to qualifying devices
// (recruitment by shared sensors and optionally by region), and the
// datasets the devices produce are ingested and handed back to the
// publishing Honeycomb.
//
// The Hive is an in-memory, mutex-guarded registry wrapped by an HTTP API
// (see server.go); it is deliberately dependency-free so it can run
// in-process in tests and benchmarks or as the cmd/hive binary.
package hive

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"apisense/internal/apierr"
	"apisense/internal/evalcache"
	"apisense/internal/geo"
	"apisense/internal/ingest"
	"apisense/internal/transport"
)

// Sentinel errors of the registry API. Each is a coded apierr sentinel:
// the code is returned in HTTP error bodies and counted in metrics, and
// the category determines the HTTP status (see apierr.HTTPStatus and
// docs/OPERATIONS.md for the operator-facing catalogue). Wrap with
// fmt.Errorf("%w: ...", Err) to add call-site context; match with
// errors.Is.
var (
	// ErrUnknownDevice marks a reference to an unregistered device.
	// HTTP 404.
	ErrUnknownDevice = apierr.New("hive.unknown_device", apierr.NotFound, "hive: unknown device")
	// ErrUnknownTask marks a reference to an unpublished task. HTTP 404.
	ErrUnknownTask = apierr.New("hive.unknown_task", apierr.NotFound, "hive: unknown task")
	// ErrNotAssigned marks an upload from a device that was not recruited
	// for the task. HTTP 403.
	ErrNotAssigned = apierr.New("hive.not_assigned", apierr.Forbidden, "hive: device not assigned to task")
	// ErrNoQualifyingDevices marks a task publication no registered
	// device qualifies for. HTTP 409.
	ErrNoQualifyingDevices = apierr.New("hive.no_qualifying_devices", apierr.Conflict, "hive: no device qualifies for the task")
	// ErrUploadLimit is returned by SubmitUpload when a task has reached
	// its per-task upload cap (see SetMaxUploadsPerTask). The HTTP layer
	// maps it to 429 Too Many Requests.
	ErrUploadLimit = apierr.New("hive.upload_limit", apierr.ResourceExhausted, "hive: task upload limit reached")
	// ErrInvalidDevice marks a structurally invalid device registration.
	// The HTTP layer maps it to 400 Bad Request.
	ErrInvalidDevice = apierr.New("hive.invalid_device", apierr.Validation, "hive: invalid device registration")
)

// DefaultMaxUploadsPerTask is the per-task upload cap of a fresh Hive. The
// upload store is in-memory, so without a cap a runaway device fleet (or a
// stuck device retrying the same batch) could grow one task's history until
// the service OOMs.
const DefaultMaxUploadsPerTask = 100000

// Hive is the central coordination service. All exported methods are safe
// for concurrent use; reads take the registry RLock, admissions serialise
// on the ingest commit lock so the journal sees one writer at a time.
//
// Lock order, checked mechanically by cmd/apisenselint (lockfsync):
//
//lint:lockorder ingestMu < mu
type Hive struct {
	mu          sync.RWMutex
	devices     map[string]transport.DeviceInfo
	tasks       map[string]transport.TaskSpec
	assignments map[string]map[string]bool // taskID -> deviceID set
	uploads     map[string][]transport.Upload
	uploadCap   int // per-task; <= 0 means unlimited
	nextTaskID  int
	journal     *Journal // optional durability, see journal.go

	// metrics, when bound (see Metrics.BindHive), counts admitted uploads
	// per task. Atomic so late binding never races SubmitBatch.
	metrics atomic.Pointer[Metrics]

	// ingestMu serialises whole upload group commits (admit + journal +
	// fsync) with each other, so h.mu — which every fleet task poll and
	// stats read contends on — is held only for the in-memory admission,
	// never across a disk sync. The lock order and the fsync exemption
	// below are checked mechanically by cmd/apisenselint (lockfsync); see
	// the "Static analysis" section of the README.
	//
	//lint:allowsync designated commit lock, held across fsync by design
	ingestMu sync.Mutex
}

// New creates an empty Hive with the default per-task upload cap.
func New() *Hive {
	return &Hive{
		devices:     make(map[string]transport.DeviceInfo),
		tasks:       make(map[string]transport.TaskSpec),
		assignments: make(map[string]map[string]bool),
		uploads:     make(map[string][]transport.Upload),
		uploadCap:   DefaultMaxUploadsPerTask,
	}
}

// SetMaxUploadsPerTask bounds how many uploads one task may accumulate;
// further submissions fail with ErrUploadLimit. n <= 0 removes the cap.
// Journal replay is exempt: recovery restores whatever was accepted.
func (h *Hive) SetMaxUploadsPerTask(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.uploadCap = n
}

// RegisterDevice adds a device to the community. Re-registering the same ID
// updates its info (battery level, position).
func (h *Hive) RegisterDevice(info transport.DeviceInfo) error {
	if info.ID == "" || info.User == "" {
		return fmt.Errorf("%w: device id and user are required", ErrInvalidDevice)
	}
	h.mu.Lock()
	h.devices[info.ID] = info
	j, err := h.logEvent(event{Kind: evRegister, Device: &info})
	h.mu.Unlock()
	if err != nil {
		return err
	}
	return commitJournal(j)
}

// UnregisterDevice removes a device; pending assignments are dropped.
func (h *Hive) UnregisterDevice(id string) error {
	h.mu.Lock()
	if _, ok := h.devices[id]; !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownDevice, id)
	}
	delete(h.devices, id)
	for _, set := range h.assignments {
		delete(set, id)
	}
	j, err := h.logEvent(event{Kind: evUnregister, DeviceID: id})
	h.mu.Unlock()
	if err != nil {
		return err
	}
	return commitJournal(j)
}

// Devices returns the registered devices, sorted by ID.
func (h *Hive) Devices() []transport.DeviceInfo {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]transport.DeviceInfo, 0, len(h.devices))
	for _, d := range h.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// qualifies reports whether a device can serve a task.
func qualifies(d transport.DeviceInfo, spec transport.TaskSpec) bool {
	have := make(map[string]bool, len(d.Sensors))
	for _, s := range d.Sensors {
		have[s] = true
	}
	for _, s := range spec.Sensors {
		if !have[s] {
			return false
		}
	}
	if spec.Region != nil {
		center := geo.Point{Lat: spec.Region.Lat, Lon: spec.Region.Lon}
		if geo.Distance(center, geo.Point{Lat: d.Lat, Lon: d.Lon}) > spec.Region.Radius {
			return false
		}
	}
	return true
}

// PublishTask validates the spec, assigns an ID, and recruits every
// qualifying device. It returns the published spec (with ID) and the
// recruited device IDs. Publishing a task no device qualifies for returns
// ErrNoQualifyingDevices.
func (h *Hive) PublishTask(spec transport.TaskSpec) (transport.TaskSpec, []string, error) {
	if err := spec.Validate(); err != nil {
		return transport.TaskSpec{}, nil, err
	}
	h.mu.Lock()
	h.nextTaskID++
	spec.ID = fmt.Sprintf("task-%04d", h.nextTaskID)

	recruited := make(map[string]bool)
	var ids []string
	for id, d := range h.devices {
		if qualifies(d, spec) {
			recruited[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		h.mu.Unlock()
		return transport.TaskSpec{}, nil, fmt.Errorf("%w: %s", ErrNoQualifyingDevices, spec.Name)
	}
	sort.Strings(ids)
	h.tasks[spec.ID] = spec
	h.assignments[spec.ID] = recruited
	j, err := h.logEvent(event{Kind: evPublish, Task: &spec, Recruited: ids})
	h.mu.Unlock()
	if err != nil {
		return transport.TaskSpec{}, nil, err
	}
	if err := commitJournal(j); err != nil {
		return transport.TaskSpec{}, nil, err
	}
	return spec, ids, nil
}

// Task returns a published task by ID.
func (h *Hive) Task(id string) (transport.TaskSpec, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	spec, ok := h.tasks[id]
	if !ok {
		return transport.TaskSpec{}, fmt.Errorf("%w: %s", ErrUnknownTask, id)
	}
	return spec, nil
}

// TasksFor returns the tasks assigned to a device, sorted by ID — the
// offloading step: devices poll this to receive their scripts.
func (h *Hive) TasksFor(deviceID string) ([]transport.TaskSpec, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if _, ok := h.devices[deviceID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDevice, deviceID)
	}
	var out []transport.TaskSpec
	for taskID, set := range h.assignments {
		if set[deviceID] {
			out = append(out, h.tasks[taskID])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SubmitUpload ingests a dataset batch from a device. It is a thin wrapper
// over a batch of one, so it shares the validation and group-commit path of
// SubmitBatch.
func (h *Hive) SubmitUpload(u transport.Upload) error {
	return h.SubmitBatch([]transport.Upload{u})[0]
}

// SubmitBatch validates and admits a batch of uploads under one lock
// acquisition and journals every accepted one as a single group commit —
// one fsync per batch instead of one per upload. Admission is per item, not
// all-or-nothing: the returned slice has one entry per upload, nil meaning
// accepted. This is the sink the ingest queue's drain workers feed.
//
// If the group commit itself fails, the admitted uploads are rolled back
// from the in-memory store and reported failed, so memory never claims
// more than the caller was told. A partially persisted group may still
// replay after a crash — the failure edge is at-least-once, like any WAL.
// Conversely, concurrent readers may briefly observe admitted uploads
// whose sync is still in flight; the caller is only acknowledged after it.
func (h *Hive) SubmitBatch(ups []transport.Upload) []error {
	errs := make([]error, len(ups))
	if len(ups) == 0 {
		return errs
	}
	// One group commit at a time: admission, journal write and fsync are
	// serialised here, NOT under h.mu — readers only contend with the
	// short in-memory section below. The exclusivity also keeps the
	// rollback simple: no other batch can interleave, so every admitted
	// upload is still the tail of its task's slice if the commit fails.
	h.ingestMu.Lock()
	defer h.ingestMu.Unlock()

	h.mu.Lock()
	events := make([]event, 0, len(ups))
	admitted := make([]int, 0, len(ups))
	for i := range ups {
		if err := h.admitUpload(ups[i]); err != nil {
			errs[i] = err
			continue
		}
		events = append(events, event{Kind: evUpload, Upload: &ups[i]})
		admitted = append(admitted, i)
	}
	journal := h.journal
	h.mu.Unlock()

	if journal != nil && len(events) > 0 {
		if err := journal.appendBatch(events); err != nil {
			// Roll back newest-first: each admitted upload is the current
			// tail of its task's slice (guaranteed by ingestMu).
			h.mu.Lock()
			for k := len(admitted) - 1; k >= 0; k-- {
				i := admitted[k]
				task := ups[i].TaskID
				h.uploads[task] = h.uploads[task][:len(h.uploads[task])-1]
				errs[i] = err
			}
			h.mu.Unlock()
		}
	}
	if m := h.metrics.Load(); m != nil {
		for _, i := range admitted {
			if errs[i] == nil {
				m.taskUploads.With(ups[i].TaskID).Inc()
			}
		}
	}
	return errs
}

// admitUpload validates one upload and appends it to the in-memory store.
// Called with h.mu held; journaling is the caller's group commit.
func (h *Hive) admitUpload(u transport.Upload) error {
	if _, ok := h.tasks[u.TaskID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, u.TaskID)
	}
	if _, ok := h.devices[u.DeviceID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDevice, u.DeviceID)
	}
	if !h.assignments[u.TaskID][u.DeviceID] {
		return fmt.Errorf("%w: device %s, task %s", ErrNotAssigned, u.DeviceID, u.TaskID)
	}
	if h.uploadCap > 0 && len(h.uploads[u.TaskID]) >= h.uploadCap {
		return fmt.Errorf("%w: task %s already holds %d uploads", ErrUploadLimit, u.TaskID, len(h.uploads[u.TaskID]))
	}
	h.uploads[u.TaskID] = append(h.uploads[u.TaskID], u)
	return nil
}

// Uploads returns the ingested uploads of a task, in arrival order.
func (h *Hive) Uploads(taskID string) ([]transport.Upload, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if _, ok := h.tasks[taskID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTask, taskID)
	}
	return append([]transport.Upload(nil), h.uploads[taskID]...), nil
}

// IngestStats are the streaming-ingestion gauges of an attached queue
// (queue depth, accepted/rejected/dropped counters, group commits).
type IngestStats = ingest.Stats

// EvalCacheStats are the evaluation-cache gauges of an attached cache
// (entries, bytes, hits, misses, evictions, pruned strategies).
type EvalCacheStats = evalcache.Stats

// Stats summarises the Hive state. Ingest and EvalCache are populated by
// the HTTP layer when the server runs with the corresponding subsystem
// (see WithIngestQueue and WithEvalCache).
type Stats struct {
	Devices int `json:"devices"`
	Tasks   int `json:"tasks"`
	Uploads int `json:"uploads"`
	Records int `json:"records"`
	// Ingest snapshots the ingest queue, when one is wired in.
	Ingest *IngestStats `json:"ingest,omitempty"`
	// EvalCache snapshots the evaluation cache, when one is wired in.
	EvalCache *EvalCacheStats `json:"eval_cache,omitempty"`
}

// Stats returns current platform statistics.
func (h *Hive) Stats() Stats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := Stats{Devices: len(h.devices), Tasks: len(h.tasks)}
	for _, us := range h.uploads {
		s.Uploads += len(us)
		for _, u := range us {
			s.Records += len(u.Records)
		}
	}
	return s
}
