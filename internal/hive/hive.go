// Package hive implements the central service of the APISENSE platform
// (§2 of the paper): "the Hive service, that is responsible for managing
// the community of mobile users and publishing crowd-sensing tasks". Tasks
// are uploaded by Honeycomb endpoints, offloaded to qualifying devices
// (recruitment by shared sensors and optionally by region), and the
// datasets the devices produce are ingested and handed back to the
// publishing Honeycomb.
//
// The Hive is an in-memory, mutex-guarded registry wrapped by an HTTP API
// (see server.go); it is deliberately dependency-free so it can run
// in-process in tests and benchmarks or as the cmd/hive binary.
package hive

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"apisense/internal/apierr"
	"apisense/internal/evalcache"
	"apisense/internal/geo"
	"apisense/internal/hive/store"
	"apisense/internal/ingest"
	"apisense/internal/otrace"
	"apisense/internal/transport"
)

// Sentinel errors of the registry API. Each is a coded apierr sentinel:
// the code is returned in HTTP error bodies and counted in metrics, and
// the category determines the HTTP status (see apierr.HTTPStatus and
// docs/OPERATIONS.md for the operator-facing catalogue). Wrap with
// fmt.Errorf("%w: ...", Err) to add call-site context; match with
// errors.Is.
var (
	// ErrUnknownDevice marks a reference to an unregistered device.
	// HTTP 404.
	ErrUnknownDevice = apierr.New("hive.unknown_device", apierr.NotFound, "hive: unknown device")
	// ErrUnknownTask marks a reference to an unpublished task. HTTP 404.
	ErrUnknownTask = apierr.New("hive.unknown_task", apierr.NotFound, "hive: unknown task")
	// ErrNotAssigned marks an upload from a device that was not recruited
	// for the task. HTTP 403.
	ErrNotAssigned = apierr.New("hive.not_assigned", apierr.Forbidden, "hive: device not assigned to task")
	// ErrNoQualifyingDevices marks a task publication no registered
	// device qualifies for. HTTP 409.
	ErrNoQualifyingDevices = apierr.New("hive.no_qualifying_devices", apierr.Conflict, "hive: no device qualifies for the task")
	// ErrUploadLimit is returned by SubmitUpload when a task has reached
	// its per-task upload cap (see SetMaxUploadsPerTask). The HTTP layer
	// maps it to 429 Too Many Requests.
	ErrUploadLimit = apierr.New("hive.upload_limit", apierr.ResourceExhausted, "hive: task upload limit reached")
	// ErrInvalidDevice marks a structurally invalid device registration.
	// The HTTP layer maps it to 400 Bad Request.
	ErrInvalidDevice = apierr.New("hive.invalid_device", apierr.Validation, "hive: invalid device registration")
)

// DefaultMaxUploadsPerTask is the per-task upload cap of a fresh Hive. The
// upload store is in-memory, so without a cap a runaway device fleet (or a
// stuck device retrying the same batch) could grow one task's history until
// the service OOMs.
const DefaultMaxUploadsPerTask = 100000

// Hive is the central coordination service. All exported methods are safe
// for concurrent use; reads take the registry RLock, admissions serialise
// per storage shard on the commit locks so each log file sees one writer
// at a time and h.mu is never held across a disk sync.
//
// Lock order, checked mechanically by cmd/apisenselint (lockfsync):
// metaMu before any commit lock, commit locks in ascending index order,
// h.mu innermost.
//
//lint:lockorder metaMu < mu
type Hive struct {
	mu          sync.RWMutex
	devices     map[string]transport.DeviceInfo
	tasks       map[string]transport.TaskSpec
	assignments map[string]map[string]bool // taskID -> deviceID set
	uploads     map[string][]transport.Upload
	uploadCap   int // per-task; <= 0 means unlimited
	nextTaskID  int
	store       store.Store // optional durability engine, see storage.go

	// commit serialises upload group commits (admit + append + fsync) per
	// storage shard: commit[i] guards shard i of the attached store, so
	// two hot tasks on different shards commit concurrently while batches
	// touching the same task still serialise (a task always maps to one
	// shard). Holding a task's shard lock also keeps its admitted uploads
	// at the tail of the task slice until the commit outcome is known,
	// which is what makes rollback a simple pop. Sized by AttachStore
	// (one lock for single-shard engines and memory-only Hives).
	commit []sync.Mutex

	// metaMu serialises registry mutations (register, unregister,
	// publish) end to end — memory mutation plus control-plane append —
	// so the persisted event order always matches the mutation order
	// without holding h.mu across the disk sync.
	metaMu sync.Mutex

	// metrics, when bound (see Metrics.BindHive), counts admitted uploads
	// per task. Atomic so late binding never races SubmitBatch.
	metrics atomic.Pointer[Metrics]

	// tracer, when set (see SetTracer), records store.append spans per
	// commit shard and store.snapshot_fold spans. Atomic so late binding
	// never races SubmitBatch.
	tracer atomic.Pointer[otrace.Tracer]
}

// New creates an empty Hive with the default per-task upload cap.
func New() *Hive {
	return &Hive{
		devices:     make(map[string]transport.DeviceInfo),
		tasks:       make(map[string]transport.TaskSpec),
		assignments: make(map[string]map[string]bool),
		uploads:     make(map[string][]transport.Upload),
		uploadCap:   DefaultMaxUploadsPerTask,
		commit:      make([]sync.Mutex, 1),
	}
}

// SetMaxUploadsPerTask bounds how many uploads one task may accumulate;
// further submissions fail with ErrUploadLimit. n <= 0 removes the cap.
// Journal replay is exempt: recovery restores whatever was accepted.
func (h *Hive) SetMaxUploadsPerTask(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.uploadCap = n
}

// RegisterDevice adds a device to the community. Re-registering the same ID
// updates its info (battery level, position).
func (h *Hive) RegisterDevice(info transport.DeviceInfo) error {
	if info.ID == "" || info.User == "" {
		return fmt.Errorf("%w: device id and user are required", ErrInvalidDevice)
	}
	h.metaMu.Lock()
	h.mu.Lock()
	h.devices[info.ID] = info
	s := h.store
	h.mu.Unlock()
	err := h.appendMeta(s, event{Kind: evRegister, Device: &info})
	h.metaMu.Unlock()
	if err != nil {
		return err
	}
	h.maybeSnapshot()
	return nil
}

// UnregisterDevice removes a device; pending assignments are dropped.
func (h *Hive) UnregisterDevice(id string) error {
	h.metaMu.Lock()
	h.mu.Lock()
	if _, ok := h.devices[id]; !ok {
		h.mu.Unlock()
		h.metaMu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownDevice, id)
	}
	delete(h.devices, id)
	for _, set := range h.assignments {
		delete(set, id)
	}
	s := h.store
	h.mu.Unlock()
	err := h.appendMeta(s, event{Kind: evUnregister, DeviceID: id})
	h.metaMu.Unlock()
	if err != nil {
		return err
	}
	h.maybeSnapshot()
	return nil
}

// Devices returns the registered devices, sorted by ID.
func (h *Hive) Devices() []transport.DeviceInfo {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]transport.DeviceInfo, 0, len(h.devices))
	for _, d := range h.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// qualifies reports whether a device can serve a task.
func qualifies(d transport.DeviceInfo, spec transport.TaskSpec) bool {
	have := make(map[string]bool, len(d.Sensors))
	for _, s := range d.Sensors {
		have[s] = true
	}
	for _, s := range spec.Sensors {
		if !have[s] {
			return false
		}
	}
	if spec.Region != nil {
		center := geo.Point{Lat: spec.Region.Lat, Lon: spec.Region.Lon}
		if geo.Distance(center, geo.Point{Lat: d.Lat, Lon: d.Lon}) > spec.Region.Radius {
			return false
		}
	}
	return true
}

// PublishTask validates the spec, assigns an ID, and recruits every
// qualifying device. It returns the published spec (with ID) and the
// recruited device IDs. Publishing a task no device qualifies for returns
// ErrNoQualifyingDevices.
func (h *Hive) PublishTask(spec transport.TaskSpec) (transport.TaskSpec, []string, error) {
	if err := spec.Validate(); err != nil {
		return transport.TaskSpec{}, nil, err
	}
	h.metaMu.Lock()
	h.mu.Lock()
	h.nextTaskID++
	spec.ID = fmt.Sprintf("task-%04d", h.nextTaskID)

	recruited := make(map[string]bool)
	var ids []string
	for id, d := range h.devices {
		if qualifies(d, spec) {
			recruited[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		h.mu.Unlock()
		h.metaMu.Unlock()
		return transport.TaskSpec{}, nil, fmt.Errorf("%w: %s", ErrNoQualifyingDevices, spec.Name)
	}
	sort.Strings(ids)
	h.tasks[spec.ID] = spec
	h.assignments[spec.ID] = recruited
	s := h.store
	h.mu.Unlock()
	err := h.appendMeta(s, event{Kind: evPublish, Task: &spec, Recruited: ids})
	h.metaMu.Unlock()
	if err != nil {
		return transport.TaskSpec{}, nil, err
	}
	h.maybeSnapshot()
	return spec, ids, nil
}

// Task returns a published task by ID.
func (h *Hive) Task(id string) (transport.TaskSpec, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	spec, ok := h.tasks[id]
	if !ok {
		return transport.TaskSpec{}, fmt.Errorf("%w: %s", ErrUnknownTask, id)
	}
	return spec, nil
}

// TasksFor returns the tasks assigned to a device, sorted by ID — the
// offloading step: devices poll this to receive their scripts.
func (h *Hive) TasksFor(deviceID string) ([]transport.TaskSpec, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if _, ok := h.devices[deviceID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDevice, deviceID)
	}
	var out []transport.TaskSpec
	for taskID, set := range h.assignments {
		if set[deviceID] {
			out = append(out, h.tasks[taskID])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SetTracer makes subsequent commits record their storage work as spans
// of t: one store.append span per touched commit shard (attrs: shard,
// records; Err carries the apierr code on failure) parented on the
// caller's span, plus store.snapshot_fold spans when the engine folds.
// Safe to call concurrently with traffic; nil detaches.
func (h *Hive) SetTracer(t *otrace.Tracer) {
	h.tracer.Store(t)
}

// SubmitUpload ingests a dataset batch from a device. It is a thin wrapper
// over a batch of one, so it shares the validation and group-commit path of
// SubmitBatch.
func (h *Hive) SubmitUpload(u transport.Upload) error {
	return h.SubmitBatch([]transport.Upload{u})[0]
}

// SubmitBatch validates and admits a batch of uploads under one lock
// acquisition and journals every accepted one as a single group commit
// per storage shard — one fsync per batch per shard instead of one per
// upload. Admission is per item, not all-or-nothing: the returned slice
// has one entry per upload, nil meaning accepted. This is the sink the
// ingest queue's drain workers feed.
//
// Concurrency: the batch locks only the commit shards its tasks map to,
// so two batches for tasks on different shards of a sharded store admit
// and fsync fully in parallel; batches touching the same task always
// serialise (a task maps to one shard). h.mu is held only for the
// in-memory admission, never across a disk sync.
//
// If a shard's group commit fails, the uploads admitted on that shard
// are rolled back from the in-memory store and reported failed, so
// memory never claims more than the caller was told. A partially
// persisted group may still replay after a crash — the failure edge is
// at-least-once, like any WAL. Conversely, concurrent readers may
// briefly observe admitted uploads whose sync is still in flight; the
// caller is only acknowledged after it.
func (h *Hive) SubmitBatch(ups []transport.Upload) []error {
	//lint:allow ctxflow convenience wrapper, SubmitBatchContext is the traced form
	return h.SubmitBatchContext(context.Background(), ups)
}

// SubmitBatchContext is SubmitBatch with a caller context: when a tracer
// is attached (SetTracer) each touched shard's group commit is recorded
// as a store.append child span of the span carried by ctx — which is how
// an upload's trace extends through the ingest queue down to its fsync.
// Admission semantics are identical to SubmitBatch; the commit itself
// never aborts on ctx (acknowledged durability is all-or-nothing per
// shard).
func (h *Hive) SubmitBatchContext(ctx context.Context, ups []transport.Upload) []error {
	errs := h.submitBatch(ctx, ups)
	h.maybeSnapshot()
	return errs
}

func (h *Hive) submitBatch(ctx context.Context, ups []transport.Upload) []error {
	errs := make([]error, len(ups))
	if len(ups) == 0 {
		return errs
	}
	h.mu.RLock()
	st := h.store
	commit := h.commit
	h.mu.RUnlock()

	// Lock the touched commit shards in ascending order (deadlock-free
	// against other batches and the snapshot quiesce, which locks all).
	shards := make([]int, 0, 4)
	if st != nil && len(commit) > 1 {
		touched := make(map[int]bool)
		for i := range ups {
			touched[st.ShardFor(ups[i].TaskID)] = true
		}
		for si := range touched {
			shards = append(shards, si)
		}
		sort.Ints(shards)
	} else {
		shards = append(shards, 0)
	}
	for _, si := range shards {
		commit[si].Lock()
	}
	defer func() {
		for k := len(shards) - 1; k >= 0; k-- {
			commit[shards[k]].Unlock()
		}
	}()

	h.mu.Lock()
	admitted := make([]int, 0, len(ups))
	for i := range ups {
		if err := h.admitUpload(ups[i]); err != nil {
			errs[i] = err
			continue
		}
		admitted = append(admitted, i)
	}
	h.mu.Unlock()

	if st != nil && len(admitted) > 0 {
		// One group commit per touched shard. Encoding happens outside
		// h.mu; the shard locks keep each admitted upload at the tail of
		// its task's slice until its commit outcome is known.
		byShard := make(map[int][]int, len(shards))
		for _, i := range admitted {
			si := 0
			if len(commit) > 1 {
				si = st.ShardFor(ups[i].TaskID)
			}
			byShard[si] = append(byShard[si], i)
		}
		tr := h.tracer.Load()
		for _, si := range shards {
			idxs := byShard[si]
			if len(idxs) == 0 {
				continue
			}
			var sp *otrace.ActiveSpan
			if tr != nil {
				_, sp = tr.Start(ctx, "store.append",
					otrace.Int("shard", si), otrace.Int("records", len(idxs)))
			}
			recs := make([][]byte, 0, len(idxs))
			var encErr error
			for _, i := range idxs {
				rec, err := json.Marshal(event{Kind: evUpload, Upload: &ups[i]})
				if err != nil {
					encErr = fmt.Errorf("%w: encode event: %w", ErrJournalIO, err)
					break
				}
				recs = append(recs, rec)
			}
			err := encErr
			if err == nil {
				if aerr := st.AppendBatch(si, recs); aerr != nil {
					err = fmt.Errorf("%w: %w", ErrJournalIO, aerr)
				}
			}
			if sp != nil {
				if err != nil {
					sp.SetErr(apierr.Code(err))
				}
				sp.End()
			}
			if err != nil {
				// Roll back this shard newest-first: each admitted upload
				// is the current tail of its task's slice (guaranteed by
				// the shard lock).
				h.mu.Lock()
				for k := len(idxs) - 1; k >= 0; k-- {
					i := idxs[k]
					task := ups[i].TaskID
					h.uploads[task] = h.uploads[task][:len(h.uploads[task])-1]
					errs[i] = err
				}
				h.mu.Unlock()
			}
		}
	}
	if m := h.metrics.Load(); m != nil {
		for _, i := range admitted {
			if errs[i] == nil {
				m.taskUploads.With(ups[i].TaskID).Inc()
			}
		}
	}
	return errs
}

// admitUpload validates one upload and appends it to the in-memory store.
// Called with h.mu held; journaling is the caller's group commit.
func (h *Hive) admitUpload(u transport.Upload) error {
	if _, ok := h.tasks[u.TaskID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, u.TaskID)
	}
	if _, ok := h.devices[u.DeviceID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDevice, u.DeviceID)
	}
	if !h.assignments[u.TaskID][u.DeviceID] {
		return fmt.Errorf("%w: device %s, task %s", ErrNotAssigned, u.DeviceID, u.TaskID)
	}
	if h.uploadCap > 0 && len(h.uploads[u.TaskID]) >= h.uploadCap {
		return fmt.Errorf("%w: task %s already holds %d uploads", ErrUploadLimit, u.TaskID, len(h.uploads[u.TaskID]))
	}
	h.uploads[u.TaskID] = append(h.uploads[u.TaskID], u)
	return nil
}

// Uploads returns the ingested uploads of a task, in arrival order.
func (h *Hive) Uploads(taskID string) ([]transport.Upload, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if _, ok := h.tasks[taskID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTask, taskID)
	}
	return append([]transport.Upload(nil), h.uploads[taskID]...), nil
}

// IngestStats are the streaming-ingestion gauges of an attached queue
// (queue depth, accepted/rejected/dropped counters, group commits).
type IngestStats = ingest.Stats

// EvalCacheStats are the evaluation-cache gauges of an attached cache
// (entries, bytes, hits, misses, evictions, pruned strategies).
type EvalCacheStats = evalcache.Stats

// Stats summarises the Hive state. Ingest, EvalCache and Store are
// populated by the HTTP layer when the server runs with the
// corresponding subsystem (see WithIngestQueue, WithEvalCache and
// AttachStore).
type Stats struct {
	Devices int `json:"devices"`
	Tasks   int `json:"tasks"`
	Uploads int `json:"uploads"`
	Records int `json:"records"`
	// Ingest snapshots the ingest queue, when one is wired in.
	Ingest *IngestStats `json:"ingest,omitempty"`
	// EvalCache snapshots the evaluation cache, when one is wired in.
	EvalCache *EvalCacheStats `json:"eval_cache,omitempty"`
	// Store snapshots the storage engine, when one is attached.
	Store *StoreStats `json:"store,omitempty"`
}

// Stats returns current platform statistics.
func (h *Hive) Stats() Stats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := Stats{Devices: len(h.devices), Tasks: len(h.tasks)}
	for _, us := range h.uploads {
		s.Uploads += len(us)
		for _, u := range us {
			s.Records += len(u.Records)
		}
	}
	return s
}
