package mobgen

import (
	"testing"
	"time"

	"apisense/internal/geo"
)

func smallConfig() Config {
	return Config{Seed: 42, Users: 5, Days: 3}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"good", Config{Users: 1, Days: 1}, true},
		{"no users", Config{Users: 0, Days: 1}, false},
		{"no days", Config{Users: 1, Days: 0}, false},
		{"bad dropout", Config{Users: 1, Days: 1, Dropout: 1.5}, false},
		{"negative dropout", Config{Users: 1, Days: 1, Dropout: -0.1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() error = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	ds, city, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Users()); got != 5 {
		t.Errorf("users = %d, want 5", got)
	}
	if ds.Len() != 5*3 {
		t.Errorf("trajectories = %d, want 15 (one per user per day)", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("dataset invalid: %v", err)
	}
	if len(city.Residents) != 5 {
		t.Errorf("residents = %d, want 5", len(city.Residents))
	}
	for _, r := range city.Residents {
		if len(r.TruePOIs()) != 3 {
			t.Errorf("resident %s has %d true POIs", r.User, len(r.TruePOIs()))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", a.NumRecords(), b.NumRecords())
	}
	for i := range a.Trajectories {
		ra, rb := a.Trajectories[i].Records, b.Trajectories[i].Records
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("trajectory %d record %d differs: %+v vs %+v", i, j, ra[j], rb[j])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumRecords() == b.NumRecords()
	if same {
		// Same counts can coincide; positions must not.
		pa := a.Trajectories[0].Records[0].Pos
		pb := b.Trajectories[0].Records[0].Pos
		if pa == pb {
			t.Error("different seeds produced identical first fixes")
		}
	}
}

func TestResidentsStayInCity(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 20
	ds, city, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every fix must lie within the city radius plus slack for GPS noise.
	limit := city.Radius*1.05 + 100
	for _, tr := range ds.Trajectories {
		for _, r := range tr.Records {
			if d := geo.Distance(city.Center, r.Pos); d > limit {
				t.Fatalf("fix %v is %f m from centre (limit %f)", r.Pos, d, limit)
			}
		}
	}
}

func TestWeekdayRoutineVisitsWork(t *testing.T) {
	cfg := smallConfig()
	cfg.GPSNoise = -1 // disable noise for exact matching
	ds, city, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2014-12-08 is a Monday: the first trajectory of each user is a
	// weekday; the user must pass within 50 m of their workplace.
	byUser := ds.ByUser()
	for _, res := range city.Residents {
		monday := byUser[res.User][0]
		closest := 1e18
		for _, r := range monday.Records {
			if d := geo.Distance(r.Pos, res.Work); d < closest {
				closest = d
			}
		}
		if closest > 50 {
			t.Errorf("%s never approached workplace (closest %f m)", res.User, closest)
		}
	}
}

func TestNightIsAtHome(t *testing.T) {
	cfg := smallConfig()
	cfg.GPSNoise = -1
	ds, city, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Trajectories {
		res, ok := city.Resident(tr.User)
		if !ok {
			t.Fatalf("unknown user %s", tr.User)
		}
		for _, r := range tr.Records {
			h := r.Time.UTC().Hour()
			if h >= 2 && h < 6 { // deep night
				if d := geo.Distance(r.Pos, res.Home); d > 30 {
					t.Fatalf("%s at %v is %f m from home at night", tr.User, r.Time, d)
				}
			}
		}
	}
}

func TestDropoutReducesRecords(t *testing.T) {
	cfg := smallConfig()
	full, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dropout = 0.5
	half, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(half.NumRecords()) / float64(full.NumRecords())
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("dropout 0.5 kept %.2f of records, want ~0.5", ratio)
	}
}

func TestSamplePeriodControlsDensity(t *testing.T) {
	cfg := smallConfig()
	cfg.SamplePeriod = 30 * time.Second
	fine, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SamplePeriod = 2 * time.Minute
	coarse, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fine.NumRecords() <= coarse.NumRecords()*3 {
		t.Errorf("30s sampling (%d records) should be ~4x denser than 2m (%d)",
			fine.NumRecords(), coarse.NumRecords())
	}
}

func TestCityResidentLookup(t *testing.T) {
	_, city, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := city.Resident("user-000"); !ok {
		t.Error("user-000 should exist")
	}
	if _, ok := city.Resident("nobody"); ok {
		t.Error("unknown user should not resolve")
	}
}

func TestSpeedsAreHuman(t *testing.T) {
	cfg := smallConfig()
	cfg.GPSNoise = -1
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Trajectories {
		for _, v := range tr.Speeds() {
			if v > 15 { // fastest generated mode is ~13 m/s
				t.Fatalf("unrealistic speed %f m/s", v)
			}
		}
	}
}
