package mobgen

import (
	"math/rand/v2"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// leg is one piece of a daily itinerary: either a stay (From == To) or a
// constant-speed move between two places.
type leg struct {
	start time.Time
	end   time.Time
	from  geo.Point
	to    geo.Point
}

// itinerary is a gap-free sequence of legs covering one day.
type itinerary []leg

// at returns the position at time ts (ts must fall inside the itinerary).
func (it itinerary) at(ts time.Time) (geo.Point, bool) {
	for _, l := range it {
		if ts.Before(l.start) || ts.After(l.end) {
			continue
		}
		span := l.end.Sub(l.start)
		if span <= 0 || l.from == l.to {
			return l.from, true
		}
		frac := float64(ts.Sub(l.start)) / float64(span)
		return geo.Lerp(l.from, l.to, frac), true
	}
	return geo.Point{}, false
}

// travelSpeed picks a realistic speed in m/s for a trip of the given length:
// people walk short hops and drive or ride transit for longer ones.
func travelSpeed(dist float64, rng *rand.Rand) float64 {
	switch {
	case dist < 800:
		return 1.2 + rng.Float64()*0.5 // walking
	case dist < 3000:
		return 4 + rng.Float64()*3 // bike / slow transit
	default:
		return 8 + rng.Float64()*5 // car / metro
	}
}

// jitterMinutes returns a duration of +/- m minutes.
func jitterMinutes(m float64, rng *rand.Rand) time.Duration {
	return time.Duration((rng.Float64()*2 - 1) * m * float64(time.Minute))
}

// buildItinerary lays out one day for a resident. Weekdays follow a
// home->work->(lunch)->work->(leisure)->home routine; weekends are
// home-anchored with optional leisure outings. The routine repetition is
// what makes POI-based re-identification work, mirroring real datasets.
func buildItinerary(res Resident, city *City, dayStart time.Time, rng *rand.Rand) itinerary {
	dayEnd := dayStart.Add(24 * time.Hour)
	weekday := dayStart.Weekday()
	weekend := weekday == time.Saturday || weekday == time.Sunday

	var it itinerary
	cursor := dayStart
	pos := res.Home

	stay := func(until time.Time, where geo.Point) {
		if until.After(dayEnd) {
			until = dayEnd
		}
		if until.After(cursor) {
			it = append(it, leg{start: cursor, end: until, from: where, to: where})
			cursor = until
		}
		pos = where
	}
	move := func(to geo.Point) {
		dist := geo.Distance(pos, to)
		if dist < 1 {
			pos = to
			return
		}
		speed := travelSpeed(dist, rng)
		dur := time.Duration(dist / speed * float64(time.Second))
		end := cursor.Add(dur)
		if end.After(dayEnd) {
			end = dayEnd
		}
		it = append(it, leg{start: cursor, end: end, from: pos, to: to})
		cursor = end
		pos = to
	}

	if weekend {
		// Sleep in, then zero to two leisure outings.
		stay(dayStart.Add(10*time.Hour).Add(jitterMinutes(40, rng)), res.Home)
		outings := rng.IntN(3)
		for i := 0; i < outings && cursor.Before(dayStart.Add(20*time.Hour)); i++ {
			target := res.Leisure
			if rng.Float64() < 0.4 && len(city.Leisure) > 0 {
				target = city.Leisure[rng.IntN(len(city.Leisure))].Pos
			}
			move(target)
			stay(cursor.Add(90*time.Minute).Add(jitterMinutes(30, rng)), target)
			move(res.Home)
			stay(cursor.Add(time.Hour), res.Home)
		}
		stay(dayEnd, res.Home)
		return it
	}

	// Weekday routine.
	leaveHome := dayStart.Add(8 * time.Hour).Add(jitterMinutes(25, rng))
	stay(leaveHome, res.Home)
	move(res.Work)
	lunch := dayStart.Add(12 * time.Hour).Add(jitterMinutes(15, rng))
	stay(lunch, res.Work)
	if rng.Float64() < 0.5 && len(city.Leisure) > 0 {
		// Lunch outing to the leisure site nearest the workplace.
		spot := nearestSite(city.Leisure, res.Work)
		move(spot)
		stay(cursor.Add(45*time.Minute).Add(jitterMinutes(10, rng)), spot)
		move(res.Work)
	}
	leaveWork := dayStart.Add(17 * time.Hour).Add(jitterMinutes(40, rng))
	stay(leaveWork, res.Work)
	if rng.Float64() < 0.3 {
		move(res.Leisure)
		stay(cursor.Add(100*time.Minute).Add(jitterMinutes(20, rng)), res.Leisure)
	}
	move(res.Home)
	stay(dayEnd, res.Home)
	return it
}

func nearestSite(sites []Site, to geo.Point) geo.Point {
	best := sites[0].Pos
	bestDist := geo.Distance(best, to)
	for _, s := range sites[1:] {
		if d := geo.Distance(s.Pos, to); d < bestDist {
			best, bestDist = s.Pos, d
		}
	}
	return best
}

// sampleItinerary converts a continuous itinerary into discrete GPS fixes
// with sensor noise and dropout.
func sampleItinerary(user string, it itinerary, cfg Config, rng *rand.Rand) *trace.Trajectory {
	tr := &trace.Trajectory{User: user}
	if len(it) == 0 {
		return tr
	}
	for ts := it[0].start; !ts.After(it[len(it)-1].end); ts = ts.Add(cfg.SamplePeriod) {
		if cfg.Dropout > 0 && rng.Float64() < cfg.Dropout {
			continue
		}
		pos, ok := it.at(ts)
		if !ok {
			continue
		}
		if cfg.GPSNoise > 0 {
			pos = geo.Translate(pos, rng.NormFloat64()*cfg.GPSNoise, rng.NormFloat64()*cfg.GPSNoise)
		}
		tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: pos, Accuracy: cfg.GPSNoise})
	}
	return tr
}
