// Package mobgen generates synthetic human-mobility datasets.
//
// The paper evaluates PRIVAPI on proprietary real-life GPS datasets that are
// not redistributable. This generator is the documented substitution (see
// DESIGN.md §2): it produces agenda-driven traces — overnight stays at home,
// commutes, office hours, lunch and leisure trips — because every quantity
// the paper's claims rest on (dwell-time structure revealing points of
// interest, repeated daily routines enabling re-identification, and spatial
// density enabling crowd/traffic analytics) is a function of exactly that
// routine structure.
//
// Generation is fully deterministic for a given Config.Seed.
package mobgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// Config parameterises the generator.
type Config struct {
	// Seed makes the dataset reproducible.
	Seed uint64
	// Users is the number of simulated contributors.
	Users int
	// Days is the number of consecutive days to simulate.
	Days int
	// Start is the first simulated instant (midnight of day one). Zero
	// means 2014-12-08 UTC, the week of Middleware'14.
	Start time.Time
	// Center is the city centre. Zero means Lyon, France.
	Center geo.Point
	// CityRadius is the radius in metres within which homes are placed.
	// Zero means 6000 m.
	CityRadius float64
	// Workplaces is the size of the shared workplace pool. Zero means
	// max(3, Users/6).
	Workplaces int
	// LeisureSites is the size of the shared leisure pool (restaurants,
	// cinemas, parks). Zero means max(5, Users/4).
	LeisureSites int
	// SamplePeriod is the GPS sampling period. Zero means 60 s.
	SamplePeriod time.Duration
	// GPSNoise is the standard deviation of per-fix Gaussian noise in
	// metres. Zero means 4 m. Set negative to disable noise.
	GPSNoise float64
	// Dropout is the probability that an individual fix is lost.
	Dropout float64
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = time.Date(2014, 12, 8, 0, 0, 0, 0, time.UTC)
	}
	if c.Center == (geo.Point{}) {
		c.Center = geo.Point{Lat: 45.7640, Lon: 4.8357}
	}
	if c.CityRadius == 0 {
		c.CityRadius = 6000
	}
	if c.Workplaces == 0 {
		c.Workplaces = maxInt(3, c.Users/6)
	}
	if c.LeisureSites == 0 {
		c.LeisureSites = maxInt(5, c.Users/4)
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = time.Minute
	}
	if c.GPSNoise == 0 {
		c.GPSNoise = 4
	}
	if c.GPSNoise < 0 {
		c.GPSNoise = 0
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("mobgen: Users must be positive, got %d", c.Users)
	}
	if c.Days <= 0 {
		return fmt.Errorf("mobgen: Days must be positive, got %d", c.Days)
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("mobgen: Dropout must be in [0,1), got %v", c.Dropout)
	}
	return nil
}

// Site is a named place in the simulated city.
type Site struct {
	Name string
	Pos  geo.Point
}

// Resident is the ground truth for one simulated user: the places that an
// ideal attacker would call this user's points of interest.
type Resident struct {
	User    string
	Home    geo.Point
	Work    geo.Point
	Leisure geo.Point // the user's favourite leisure site
}

// TruePOIs returns the resident's ground-truth points of interest
// (home, workplace, favourite leisure site).
func (r Resident) TruePOIs() []geo.Point {
	return []geo.Point{r.Home, r.Work, r.Leisure}
}

// City is the generated environment plus the per-user ground truth.
type City struct {
	Center     geo.Point
	Radius     float64
	Workplaces []Site
	Leisure    []Site
	Residents  []Resident
}

// Resident returns the ground truth for the given user. ok is false for
// unknown users.
func (c *City) Resident(user string) (Resident, bool) {
	for _, r := range c.Residents {
		if r.User == user {
			return r, true
		}
	}
	return Resident{}, false
}

// Generate produces one trajectory per user per day.
func Generate(cfg Config) (*trace.Dataset, *City, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))

	city := buildCity(cfg, rng)
	ds := trace.NewDataset()
	for _, res := range city.Residents {
		for day := 0; day < cfg.Days; day++ {
			dayStart := cfg.Start.AddDate(0, 0, day)
			itin := buildItinerary(res, city, dayStart, rng)
			tr := sampleItinerary(res.User, itin, cfg, rng)
			if tr.Len() > 0 {
				ds.Add(tr)
			}
		}
	}
	return ds, city, nil
}

func buildCity(cfg Config, rng *rand.Rand) *City {
	city := &City{Center: cfg.Center, Radius: cfg.CityRadius}
	for i := 0; i < cfg.Workplaces; i++ {
		city.Workplaces = append(city.Workplaces, Site{
			Name: fmt.Sprintf("work-%02d", i),
			Pos:  randomSite(cfg.Center, cfg.CityRadius*0.6, rng),
		})
	}
	for i := 0; i < cfg.LeisureSites; i++ {
		city.Leisure = append(city.Leisure, Site{
			Name: fmt.Sprintf("leisure-%02d", i),
			Pos:  randomSite(cfg.Center, cfg.CityRadius*0.9, rng),
		})
	}
	for i := 0; i < cfg.Users; i++ {
		res := Resident{
			User: fmt.Sprintf("user-%03d", i),
			Home: randomSite(cfg.Center, cfg.CityRadius, rng),
		}
		res.Work = city.Workplaces[rng.IntN(len(city.Workplaces))].Pos
		res.Leisure = city.Leisure[rng.IntN(len(city.Leisure))].Pos
		city.Residents = append(city.Residents, res)
	}
	return city
}

// randomSite draws a point uniformly from the disc of the given radius.
func randomSite(center geo.Point, radius float64, rng *rand.Rand) geo.Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 2 * math.Pi
	return geo.Translate(center, r*math.Cos(theta), r*math.Sin(theta))
}
