package mobgen

import (
	"testing"
	"time"

	"apisense/internal/geo"
)

// TestWeekendSkipsWork verifies the agenda model's weekday/weekend split:
// on Saturdays and Sundays, residents must not dwell at their workplace
// during office hours.
func TestWeekendSkipsWork(t *testing.T) {
	cfg := Config{Seed: 42, Users: 8, Days: 7, GPSNoise: -1} // Mon 8 Dec - Sun 14 Dec
	ds, city, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Trajectories {
		start, err := tr.Start()
		if err != nil {
			t.Fatal(err)
		}
		wd := start.UTC().Weekday()
		if wd != time.Saturday && wd != time.Sunday {
			continue
		}
		res, ok := city.Resident(tr.User)
		if !ok {
			t.Fatalf("unknown user %s", tr.User)
		}
		// Count office-hour fixes within 30 m of the workplace: a dwell
		// would produce dozens; passing through produces a handful.
		atWork := 0
		for _, r := range tr.Records {
			h := r.Time.UTC().Hour()
			if h >= 10 && h < 16 && geo.Distance(r.Pos, res.Work) < 30 {
				atWork++
			}
		}
		if atWork > 10 {
			t.Errorf("%s spent %d office-hour fixes at work on %s", tr.User, atWork, wd)
		}
	}
}

// TestWeekdayMorningCommute verifies commute structure: weekday moving
// fixes exist between home departure and work arrival.
func TestWeekdayMorningCommute(t *testing.T) {
	cfg := Config{Seed: 9, Users: 5, Days: 1, GPSNoise: -1} // Monday
	ds, city, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Trajectories {
		res, _ := city.Resident(tr.User)
		if geo.Distance(res.Home, res.Work) < 500 {
			continue // commute too short to observe reliably
		}
		moving := 0
		for i := 1; i < tr.Len(); i++ {
			h := tr.Records[i].Time.UTC().Hour()
			if h < 7 || h > 10 {
				continue
			}
			dt := tr.Records[i].Time.Sub(tr.Records[i-1].Time).Seconds()
			if dt <= 0 {
				continue
			}
			if geo.Distance(tr.Records[i-1].Pos, tr.Records[i].Pos)/dt > 0.7 {
				moving++
			}
		}
		if moving == 0 {
			t.Errorf("%s has no morning commute movement", tr.User)
		}
	}
}

// TestGroundTruthSitesDistinct ensures homes are unique per user (the
// attack experiments rely on homes being identifying).
func TestGroundTruthSitesDistinct(t *testing.T) {
	_, city, err := Generate(Config{Seed: 4, Users: 30, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Residents {
		for j := i + 1; j < len(city.Residents); j++ {
			d := geo.Distance(city.Residents[i].Home, city.Residents[j].Home)
			if d < 1 {
				t.Fatalf("residents %d and %d share a home", i, j)
			}
		}
	}
}
