package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleDataset() *Dataset {
	d := NewDataset()
	d.Add(walkTrajectory("alice", 5, 1.2, 30*time.Second))
	d.Add(walkTrajectory("bob", 8, 2.5, 45*time.Second))
	d.Trajectories[0].Records[2].Accuracy = 12.5
	return d
}

func datasetsEqual(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("trajectory count %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Trajectories {
		ta, tb := a.Trajectories[i], b.Trajectories[i]
		if ta.User != tb.User {
			t.Fatalf("trajectory %d user %q vs %q", i, ta.User, tb.User)
		}
		if ta.Len() != tb.Len() {
			t.Fatalf("trajectory %d len %d vs %d", i, ta.Len(), tb.Len())
		}
		for j := range ta.Records {
			ra, rb := ta.Records[j], tb.Records[j]
			if !ra.Time.Equal(rb.Time) || ra.Pos != rb.Pos || ra.Accuracy != rb.Accuracy {
				t.Fatalf("record %d/%d: %+v vs %+v", i, j, ra, rb)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, d, back)
}

func TestCSVHeaderOptional(t *testing.T) {
	raw := "alice,2014-12-08T08:00:00Z,45.764,4.8357,0\n"
	d, err := ReadCSV(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != 1 {
		t.Fatalf("NumRecords = %d, want 1", d.NumRecords())
	}
}

func TestCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad time": "alice,notatime,45.0,4.0,0\n",
		"bad lat":  "alice,2014-12-08T08:00:00Z,xx,4.0,0\n",
		"bad lon":  "alice,2014-12-08T08:00:00Z,45.0,xx,0\n",
		"bad acc":  "alice,2014-12-08T08:00:00Z,45.0,4.0,xx\n",
		"short":    "alice,2014-12-08T08:00:00Z\n",
	}
	for name, raw := range cases {
		if _, err := ReadCSV(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, d, back)
}

func TestJSONDecodeError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	d := sampleDataset()
	path := filepath.Join(t.TempDir(), "traces.csv")
	if err := SaveCSVFile(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, d, back)

	if _, err := LoadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("loading a missing file should fail")
	}
}
