// Package trace defines the mobility-data model shared by the whole stack:
// timestamped location records, per-user trajectories and multi-user
// datasets, together with the operations privacy mechanisms and metrics
// need (day splitting, resampling, statistics) and CSV/JSON codecs.
//
// A trajectory is the unit PRIVAPI anonymises ("typically one day of data",
// §3 of the paper); a dataset is what the Hive collects and the Honeycomb
// stores before publication.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"apisense/internal/geo"
)

// Record is a single timestamped location fix.
type Record struct {
	Time time.Time
	Pos  geo.Point
	// Accuracy is the reported GPS accuracy in metres (0 when unknown).
	Accuracy float64
}

// Trajectory is a time-ordered sequence of records belonging to one user.
type Trajectory struct {
	// User identifies the contributor. Anonymised releases replace it with
	// a pseudonym.
	User string
	// Records are sorted by ascending time.
	Records []Record
}

// ErrEmpty is returned by operations that need at least one record.
var ErrEmpty = errors.New("trace: empty trajectory")

// Len returns the number of records.
func (t *Trajectory) Len() int { return len(t.Records) }

// Clone returns a deep copy of the trajectory.
func (t *Trajectory) Clone() *Trajectory {
	out := &Trajectory{User: t.User, Records: make([]Record, len(t.Records))}
	copy(out.Records, t.Records)
	return out
}

// Sort orders records by ascending timestamp (stable).
func (t *Trajectory) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Time.Before(t.Records[j].Time)
	})
}

// Validate checks temporal ordering and coordinate sanity.
func (t *Trajectory) Validate() error {
	for i, r := range t.Records {
		if !r.Pos.Valid() {
			return fmt.Errorf("trace: record %d of user %q has invalid position %v", i, t.User, r.Pos)
		}
		if i > 0 && r.Time.Before(t.Records[i-1].Time) {
			return fmt.Errorf("trace: record %d of user %q is out of order", i, t.User)
		}
	}
	return nil
}

// Start returns the timestamp of the first record.
func (t *Trajectory) Start() (time.Time, error) {
	if len(t.Records) == 0 {
		return time.Time{}, ErrEmpty
	}
	return t.Records[0].Time, nil
}

// End returns the timestamp of the last record.
func (t *Trajectory) End() (time.Time, error) {
	if len(t.Records) == 0 {
		return time.Time{}, ErrEmpty
	}
	return t.Records[len(t.Records)-1].Time, nil
}

// Duration returns End - Start (zero for trajectories with <2 records).
func (t *Trajectory) Duration() time.Duration {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time.Sub(t.Records[0].Time)
}

// Length returns the travelled path length in metres.
func (t *Trajectory) Length() float64 {
	var total float64
	for i := 1; i < len(t.Records); i++ {
		total += geo.Distance(t.Records[i-1].Pos, t.Records[i].Pos)
	}
	return total
}

// Points returns the positions of all records, in order.
func (t *Trajectory) Points() []geo.Point {
	pts := make([]geo.Point, len(t.Records))
	for i, r := range t.Records {
		pts[i] = r.Pos
	}
	return pts
}

// SplitDays splits the trajectory into per-calendar-day sub-trajectories in
// the given location. Days appear in chronological order. The paper's speed
// smoothing operates on "typically one day of data".
func (t *Trajectory) SplitDays(loc *time.Location) []*Trajectory {
	if loc == nil {
		loc = time.UTC
	}
	if len(t.Records) == 0 {
		return nil
	}
	var out []*Trajectory
	var cur *Trajectory
	var curDay string
	for _, r := range t.Records {
		day := r.Time.In(loc).Format("2006-01-02")
		if cur == nil || day != curDay {
			cur = &Trajectory{User: t.User}
			curDay = day
			out = append(out, cur)
		}
		cur.Records = append(cur.Records, r)
	}
	return out
}

// At returns the interpolated position of the moving user at time ts. The
// second return value is false when ts falls outside the trajectory span or
// the trajectory is empty.
func (t *Trajectory) At(ts time.Time) (geo.Point, bool) {
	n := len(t.Records)
	if n == 0 {
		return geo.Point{}, false
	}
	if ts.Before(t.Records[0].Time) || ts.After(t.Records[n-1].Time) {
		return geo.Point{}, false
	}
	// Binary search for the segment containing ts.
	i := sort.Search(n, func(i int) bool { return !t.Records[i].Time.Before(ts) })
	if i == 0 {
		return t.Records[0].Pos, true
	}
	prev, next := t.Records[i-1], t.Records[i]
	span := next.Time.Sub(prev.Time)
	if span <= 0 {
		return next.Pos, true
	}
	frac := float64(ts.Sub(prev.Time)) / float64(span)
	return geo.Lerp(prev.Pos, next.Pos, frac), true
}

// Resample returns a copy of the trajectory sampled at the fixed period.
// Positions are linearly interpolated. It returns an empty trajectory when
// the input has fewer than two records.
func (t *Trajectory) Resample(period time.Duration) (*Trajectory, error) {
	if period <= 0 {
		return nil, fmt.Errorf("trace: resample period must be positive, got %v", period)
	}
	out := &Trajectory{User: t.User}
	if len(t.Records) < 2 {
		return out, nil
	}
	for ts := t.Records[0].Time; !ts.After(t.Records[len(t.Records)-1].Time); ts = ts.Add(period) {
		pos, ok := t.At(ts)
		if !ok {
			break
		}
		out.Records = append(out.Records, Record{Time: ts, Pos: pos})
	}
	return out, nil
}

// Speeds returns the per-segment speeds in metres/second. Segments with a
// non-positive time delta are skipped.
func (t *Trajectory) Speeds() []float64 {
	var out []float64
	for i := 1; i < len(t.Records); i++ {
		dt := t.Records[i].Time.Sub(t.Records[i-1].Time).Seconds()
		if dt <= 0 {
			continue
		}
		out = append(out, geo.Distance(t.Records[i-1].Pos, t.Records[i].Pos)/dt)
	}
	return out
}
