package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Canonical content hashing. The evaluation cache (internal/evalcache)
// addresses entries by what the data *is*, not where it came from, so the
// digest must be a pure function of the observable trajectory content:
// user identifier, record timestamps (as UTC instants), positions and
// accuracies. Every field is encoded fixed-width little-endian with
// length prefixes, so distinct contents cannot collide by concatenation
// ("ab"+"c" vs "a"+"bc") and the digest is stable across processes and
// architectures.

// HashSize is the size in bytes of a content hash (SHA-256).
const HashSize = sha256.Size

// ContentHash returns the canonical digest of the trajectory: the user
// identifier plus every record's instant (UnixNano), position and
// accuracy. Two trajectories have equal hashes iff their observable
// content is equal; monotonic-clock readings and Location values do not
// participate (instants compare as absolute time).
func (t *Trajectory) ContentHash() [HashSize]byte {
	h := sha256.New()
	var buf [8]byte
	writeString := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeString(t.User)
	writeU64(uint64(len(t.Records)))
	for _, r := range t.Records {
		writeU64(uint64(r.Time.UnixNano()))
		writeU64(math.Float64bits(r.Pos.Lat))
		writeU64(math.Float64bits(r.Pos.Lon))
		writeU64(math.Float64bits(r.Accuracy))
	}
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// ContentHash returns the canonical digest of the whole dataset: the
// trajectory count followed by every trajectory's ContentHash, in dataset
// order. Order participates deliberately — the publication engine's
// output (reports, release order) is defined over dataset order, so two
// datasets that differ only by ordering must not share a cache entry.
func (d *Dataset) ContentHash() [HashSize]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(d.Trajectories)))
	h.Write(buf[:])
	for _, t := range d.Trajectories {
		th := t.ContentHash()
		h.Write(th[:])
	}
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// CombineHashes folds a sequence of content hashes into one digest, in
// order. The engine uses it to key a user's trajectory set (the
// trajectories a dataset holds for one user, in dataset order) without
// materialising a sub-dataset.
func CombineHashes(hashes ...[HashSize]byte) [HashSize]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(hashes)))
	h.Write(buf[:])
	for _, hh := range hashes {
		h.Write(hh[:])
	}
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}
