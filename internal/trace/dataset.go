package trace

import (
	"fmt"
	"sort"
	"time"

	"apisense/internal/geo"
)

// Dataset is a collection of trajectories, one or more per user. It is the
// unit PRIVAPI anonymises and publishes, and the unit the Honeycomb stores.
type Dataset struct {
	Trajectories []*Trajectory
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return &Dataset{} }

// Add appends a trajectory.
func (d *Dataset) Add(t *Trajectory) { d.Trajectories = append(d.Trajectories, t) }

// Len returns the number of trajectories.
func (d *Dataset) Len() int { return len(d.Trajectories) }

// NumRecords returns the total number of records across all trajectories.
func (d *Dataset) NumRecords() int {
	var n int
	for _, t := range d.Trajectories {
		n += len(t.Records)
	}
	return n
}

// Users returns the distinct user identifiers, sorted.
func (d *Dataset) Users() []string {
	seen := make(map[string]bool)
	for _, t := range d.Trajectories {
		seen[t.User] = true
	}
	users := make([]string, 0, len(seen))
	for u := range seen {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}

// ByUser groups trajectories by user identifier.
func (d *Dataset) ByUser() map[string][]*Trajectory {
	out := make(map[string][]*Trajectory)
	for _, t := range d.Trajectories {
		out[t.User] = append(out[t.User], t)
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Trajectories: make([]*Trajectory, len(d.Trajectories))}
	for i, t := range d.Trajectories {
		out.Trajectories[i] = t.Clone()
	}
	return out
}

// Validate checks every trajectory.
func (d *Dataset) Validate() error {
	for i, t := range d.Trajectories {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("trajectory %d: %w", i, err)
		}
	}
	return nil
}

// BBox returns the bounding box of all records. ok is false when the dataset
// holds no records.
func (d *Dataset) BBox() (geo.BBox, bool) {
	var box geo.BBox
	found := false
	for _, t := range d.Trajectories {
		for _, r := range t.Records {
			if !found {
				box = geo.BBox{MinLat: r.Pos.Lat, MaxLat: r.Pos.Lat, MinLon: r.Pos.Lon, MaxLon: r.Pos.Lon}
				found = true
				continue
			}
			box = box.Extend(r.Pos)
		}
	}
	return box, found
}

// SplitDays splits every trajectory into calendar days, producing a new
// dataset whose trajectories each span a single day.
func (d *Dataset) SplitDays(loc *time.Location) *Dataset {
	out := NewDataset()
	for _, t := range d.Trajectories {
		out.Trajectories = append(out.Trajectories, t.SplitDays(loc)...)
	}
	return out
}

// Filter returns a dataset with only the trajectories accepted by keep.
func (d *Dataset) Filter(keep func(*Trajectory) bool) *Dataset {
	out := NewDataset()
	for _, t := range d.Trajectories {
		if keep(t) {
			out.Add(t)
		}
	}
	return out
}

// TimeSpan returns the earliest and latest record timestamps. ok is false
// when the dataset holds no records.
func (d *Dataset) TimeSpan() (start, end time.Time, ok bool) {
	for _, t := range d.Trajectories {
		if len(t.Records) == 0 {
			continue
		}
		s := t.Records[0].Time
		e := t.Records[len(t.Records)-1].Time
		if !ok {
			start, end, ok = s, e, true
			continue
		}
		if s.Before(start) {
			start = s
		}
		if e.After(end) {
			end = e
		}
	}
	return start, end, ok
}

// Stats summarises a dataset.
type Stats struct {
	Trajectories int
	Records      int
	Users        int
	TotalLength  float64       // metres
	TotalTime    time.Duration // sum of trajectory durations
}

// Summarize computes dataset statistics.
func (d *Dataset) Summarize() Stats {
	s := Stats{Trajectories: len(d.Trajectories), Users: len(d.Users())}
	for _, t := range d.Trajectories {
		s.Records += len(t.Records)
		s.TotalLength += t.Length()
		s.TotalTime += t.Duration()
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d users, %d trajectories, %d records, %.1f km, %s",
		s.Users, s.Trajectories, s.Records, s.TotalLength/1000, s.TotalTime)
}
