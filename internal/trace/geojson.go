package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// GeoJSON export: each trajectory becomes a LineString feature with the
// user id and time span as properties, ready for visual inspection in any
// GIS tool or web map. Only an exporter is provided — GeoJSON drops the
// per-record timestamps, so it is not a round-trippable storage format.

type geoJSONFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string          `json:"type"`
	Geometry   geoJSONGeometry `json:"geometry"`
	Properties map[string]any  `json:"properties"`
}

type geoJSONGeometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"`
}

// WriteGeoJSON writes the dataset as a GeoJSON FeatureCollection of
// LineStrings (one per trajectory with at least two records; shorter
// trajectories are skipped, as GeoJSON LineStrings need two positions).
func WriteGeoJSON(w io.Writer, d *Dataset) error {
	fc := geoJSONFeatureCollection{Type: "FeatureCollection"}
	for _, t := range d.Trajectories {
		if t.Len() < 2 {
			continue
		}
		coords := make([][2]float64, t.Len())
		for i, r := range t.Records {
			coords[i] = [2]float64{r.Pos.Lon, r.Pos.Lat} // GeoJSON is lon,lat
		}
		start, _ := t.Start()
		end, _ := t.End()
		fc.Features = append(fc.Features, geoJSONFeature{
			Type:     "Feature",
			Geometry: geoJSONGeometry{Type: "LineString", Coordinates: coords},
			Properties: map[string]any{
				"user":  t.User,
				"start": start,
				"end":   end,
				"fixes": t.Len(),
			},
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("trace: encode geojson: %w", err)
	}
	return nil
}
