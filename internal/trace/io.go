package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// CSV layout: user,timestamp(RFC3339),lat,lon,accuracy
// The header row is written on output and tolerated on input.

var csvHeader = []string{"user", "time", "lat", "lon", "accuracy"}

// WriteCSV writes the dataset in the canonical CSV layout.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	row := make([]string, 5)
	for _, t := range d.Trajectories {
		for _, r := range t.Records {
			row[0] = t.User
			row[1] = r.Time.UTC().Format(time.RFC3339Nano)
			row[2] = strconv.FormatFloat(r.Pos.Lat, 'f', -1, 64)
			row[3] = strconv.FormatFloat(r.Pos.Lon, 'f', -1, 64)
			row[4] = strconv.FormatFloat(r.Accuracy, 'f', -1, 64)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a dataset from the canonical CSV layout. Consecutive rows
// with the same user form one trajectory; a change of user starts a new one,
// so a round trip through WriteCSV/ReadCSV preserves trajectory boundaries
// for datasets whose users' trajectories are stored contiguously.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	d := NewDataset()
	var cur *Trajectory
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read csv: %w", err)
		}
		line++
		if line == 1 && rec[0] == csvHeader[0] {
			continue // header
		}
		ts, err := time.Parse(time.RFC3339Nano, rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad timestamp %q: %w", line, rec[1], err)
		}
		lat, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad latitude %q: %w", line, rec[2], err)
		}
		lon, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad longitude %q: %w", line, rec[3], err)
		}
		acc, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad accuracy %q: %w", line, rec[4], err)
		}
		if cur == nil || cur.User != rec[0] {
			cur = &Trajectory{User: rec[0]}
			d.Add(cur)
		}
		cur.Records = append(cur.Records, Record{
			Time:     ts,
			Pos:      geoPoint(lat, lon),
			Accuracy: acc,
		})
	}
	return d, nil
}

// jsonRecord is the wire form of a Record.
type jsonRecord struct {
	Time     time.Time `json:"time"`
	Lat      float64   `json:"lat"`
	Lon      float64   `json:"lon"`
	Accuracy float64   `json:"accuracy,omitempty"`
}

// jsonTrajectory is the wire form of a Trajectory.
type jsonTrajectory struct {
	User    string       `json:"user"`
	Records []jsonRecord `json:"records"`
}

// MarshalJSON implements json.Marshaler.
func (t *Trajectory) MarshalJSON() ([]byte, error) {
	jt := jsonTrajectory{User: t.User, Records: make([]jsonRecord, len(t.Records))}
	for i, r := range t.Records {
		jt.Records[i] = jsonRecord{Time: r.Time, Lat: r.Pos.Lat, Lon: r.Pos.Lon, Accuracy: r.Accuracy}
	}
	return json.Marshal(jt)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Trajectory) UnmarshalJSON(data []byte) error {
	var jt jsonTrajectory
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("trace: unmarshal trajectory: %w", err)
	}
	t.User = jt.User
	t.Records = make([]Record, len(jt.Records))
	for i, r := range jt.Records {
		t.Records[i] = Record{Time: r.Time, Pos: geoPoint(r.Lat, r.Lon), Accuracy: r.Accuracy}
	}
	return nil
}

// WriteJSON writes the dataset as a JSON array of trajectories.
func WriteJSON(w io.Writer, d *Dataset) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(d.Trajectories); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON parses a dataset from a JSON array of trajectories.
func ReadJSON(r io.Reader) (*Dataset, error) {
	d := NewDataset()
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d.Trajectories); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	return d, nil
}

// LoadCSVFile reads a dataset from a CSV file on disk.
func LoadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(f)
}

// SaveCSVFile writes a dataset to a CSV file on disk.
func SaveCSVFile(path string, d *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	return WriteCSV(f, d)
}
