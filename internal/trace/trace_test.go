package trace

import (
	"math"
	"testing"
	"time"

	"apisense/internal/geo"
)

var lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}

var t0 = time.Date(2014, 12, 8, 8, 0, 0, 0, time.UTC) // Middleware'14 week

// walkTrajectory builds a trajectory moving east at a constant vMS m/s with
// one fix every step for n records.
func walkTrajectory(user string, n int, vMS float64, step time.Duration) *Trajectory {
	t := &Trajectory{User: user}
	for i := 0; i < n; i++ {
		dx := vMS * step.Seconds() * float64(i)
		t.Records = append(t.Records, Record{
			Time: t0.Add(time.Duration(i) * step),
			Pos:  geo.Translate(lyon, dx, 0),
		})
	}
	return t
}

func TestTrajectoryBasics(t *testing.T) {
	tr := walkTrajectory("alice", 11, 1.5, 10*time.Second)
	if tr.Len() != 11 {
		t.Fatalf("Len = %d, want 11", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := tr.Duration(); d != 100*time.Second {
		t.Errorf("Duration = %v, want 100s", d)
	}
	wantLen := 1.5 * 100
	if l := tr.Length(); math.Abs(l-wantLen) > 0.5 {
		t.Errorf("Length = %f, want ~%f", l, wantLen)
	}
	start, err := tr.Start()
	if err != nil || !start.Equal(t0) {
		t.Errorf("Start = %v, %v", start, err)
	}
	end, err := tr.End()
	if err != nil || !end.Equal(t0.Add(100*time.Second)) {
		t.Errorf("End = %v, %v", end, err)
	}
}

func TestEmptyTrajectory(t *testing.T) {
	tr := &Trajectory{User: "bob"}
	if _, err := tr.Start(); err == nil {
		t.Error("Start on empty should error")
	}
	if _, err := tr.End(); err == nil {
		t.Error("End on empty should error")
	}
	if tr.Duration() != 0 || tr.Length() != 0 {
		t.Error("empty trajectory should have zero duration and length")
	}
	if _, ok := tr.At(t0); ok {
		t.Error("At on empty should report not-ok")
	}
}

func TestValidateDetectsDisorder(t *testing.T) {
	tr := walkTrajectory("alice", 5, 1, time.Minute)
	tr.Records[2].Time = t0.Add(10 * time.Minute) // out of order
	if err := tr.Validate(); err == nil {
		t.Error("Validate should detect out-of-order records")
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate after Sort: %v", err)
	}
}

func TestValidateDetectsBadPosition(t *testing.T) {
	tr := walkTrajectory("alice", 3, 1, time.Minute)
	tr.Records[1].Pos = geo.Point{Lat: 200, Lon: 0}
	if err := tr.Validate(); err == nil {
		t.Error("Validate should detect invalid position")
	}
}

func TestAtInterpolates(t *testing.T) {
	tr := walkTrajectory("alice", 2, 2, 100*time.Second) // 200 m apart
	mid, ok := tr.At(t0.Add(50 * time.Second))
	if !ok {
		t.Fatal("At mid: not ok")
	}
	want := geo.Translate(lyon, 100, 0)
	if d := geo.Distance(mid, want); d > 1 {
		t.Errorf("At mid = %v, %f m away from expected", mid, d)
	}
	if _, ok := tr.At(t0.Add(-time.Second)); ok {
		t.Error("At before start should be not-ok")
	}
	if _, ok := tr.At(t0.Add(101 * time.Second)); ok {
		t.Error("At after end should be not-ok")
	}
}

func TestResample(t *testing.T) {
	tr := walkTrajectory("alice", 11, 1, 10*time.Second) // 100 s span
	rs, err := tr.Resample(25 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 5 { // 0,25,50,75,100
		t.Fatalf("resampled Len = %d, want 5", rs.Len())
	}
	for i := 1; i < rs.Len(); i++ {
		dt := rs.Records[i].Time.Sub(rs.Records[i-1].Time)
		if dt != 25*time.Second {
			t.Errorf("resample gap = %v, want 25s", dt)
		}
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("Resample(0) should fail")
	}
}

func TestSpeeds(t *testing.T) {
	tr := walkTrajectory("alice", 6, 3, 10*time.Second)
	for _, v := range tr.Speeds() {
		if math.Abs(v-3) > 0.01 {
			t.Errorf("speed = %f, want ~3", v)
		}
	}
}

func TestSplitDays(t *testing.T) {
	tr := &Trajectory{User: "carol"}
	for day := 0; day < 3; day++ {
		for i := 0; i < 4; i++ {
			tr.Records = append(tr.Records, Record{
				Time: t0.AddDate(0, 0, day).Add(time.Duration(i) * time.Hour),
				Pos:  lyon,
			})
		}
	}
	days := tr.SplitDays(time.UTC)
	if len(days) != 3 {
		t.Fatalf("SplitDays = %d days, want 3", len(days))
	}
	for i, d := range days {
		if d.Len() != 4 {
			t.Errorf("day %d has %d records, want 4", i, d.Len())
		}
		if d.User != "carol" {
			t.Errorf("day %d user = %q", i, d.User)
		}
	}
	if got := (&Trajectory{}).SplitDays(nil); got != nil {
		t.Errorf("SplitDays on empty = %v, want nil", got)
	}
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset()
	d.Add(walkTrajectory("alice", 5, 1, time.Minute))
	d.Add(walkTrajectory("bob", 7, 1, time.Minute))
	d.Add(walkTrajectory("alice", 3, 1, time.Minute))

	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if d.NumRecords() != 15 {
		t.Errorf("NumRecords = %d, want 15", d.NumRecords())
	}
	users := d.Users()
	if len(users) != 2 || users[0] != "alice" || users[1] != "bob" {
		t.Errorf("Users = %v", users)
	}
	if got := len(d.ByUser()["alice"]); got != 2 {
		t.Errorf("alice has %d trajectories, want 2", got)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}

	stats := d.Summarize()
	if stats.Users != 2 || stats.Records != 15 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.String() == "" {
		t.Error("Stats.String is empty")
	}
}

func TestDatasetCloneIsDeep(t *testing.T) {
	d := NewDataset()
	d.Add(walkTrajectory("alice", 3, 1, time.Minute))
	c := d.Clone()
	c.Trajectories[0].User = "evil"
	c.Trajectories[0].Records[0].Pos = geo.Point{}
	if d.Trajectories[0].User != "alice" {
		t.Error("Clone shares user field")
	}
	if d.Trajectories[0].Records[0].Pos == (geo.Point{}) {
		t.Error("Clone shares record storage")
	}
}

func TestDatasetBBoxAndTimeSpan(t *testing.T) {
	d := NewDataset()
	if _, ok := d.BBox(); ok {
		t.Error("BBox on empty dataset should be not-ok")
	}
	if _, _, ok := d.TimeSpan(); ok {
		t.Error("TimeSpan on empty dataset should be not-ok")
	}
	d.Add(walkTrajectory("alice", 5, 2, time.Minute))
	box, ok := d.BBox()
	if !ok {
		t.Fatal("BBox not ok")
	}
	if !box.Contains(lyon) {
		t.Error("BBox should contain the start point")
	}
	start, end, ok := d.TimeSpan()
	if !ok || !start.Equal(t0) || !end.Equal(t0.Add(4*time.Minute)) {
		t.Errorf("TimeSpan = %v..%v ok=%v", start, end, ok)
	}
}

func TestDatasetFilter(t *testing.T) {
	d := NewDataset()
	d.Add(walkTrajectory("alice", 5, 1, time.Minute))
	d.Add(walkTrajectory("bob", 50, 1, time.Minute))
	long := d.Filter(func(tr *Trajectory) bool { return tr.Len() >= 10 })
	if long.Len() != 1 || long.Trajectories[0].User != "bob" {
		t.Errorf("Filter kept %d trajectories", long.Len())
	}
}

func TestPseudonymizer(t *testing.T) {
	if _, err := NewPseudonymizer(nil); err == nil {
		t.Error("empty key should be rejected")
	}
	p1, err := NewPseudonymizer([]byte("release-1"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPseudonymizer([]byte("release-2"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Pseudonym("alice") != p1.Pseudonym("alice") {
		t.Error("pseudonym is not stable")
	}
	if p1.Pseudonym("alice") == p1.Pseudonym("bob") {
		t.Error("different users collide")
	}
	if p1.Pseudonym("alice") == p2.Pseudonym("alice") {
		t.Error("pseudonyms are linkable across releases")
	}

	d := NewDataset()
	d.Add(walkTrajectory("alice", 3, 1, time.Minute))
	anon := p1.Apply(d)
	if anon.Trajectories[0].User == "alice" {
		t.Error("Apply did not replace user id")
	}
	if d.Trajectories[0].User != "alice" {
		t.Error("Apply mutated the input dataset")
	}
}
