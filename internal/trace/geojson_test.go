package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteGeoJSON(t *testing.T) {
	d := NewDataset()
	d.Add(walkTrajectory("alice", 5, 1.5, time.Minute))
	d.Add(&Trajectory{User: "tiny", Records: walkTrajectory("tiny", 1, 1, time.Minute).Records})

	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string       `json:"type"`
				Coordinates [][2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(buf.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" {
		t.Errorf("type = %q", fc.Type)
	}
	if len(fc.Features) != 1 {
		t.Fatalf("features = %d, want 1 (single-record trajectory skipped)", len(fc.Features))
	}
	f := fc.Features[0]
	if f.Geometry.Type != "LineString" || len(f.Geometry.Coordinates) != 5 {
		t.Errorf("geometry = %+v", f.Geometry)
	}
	// GeoJSON order is lon,lat.
	if f.Geometry.Coordinates[0][0] != lyon.Lon || f.Geometry.Coordinates[0][1] != lyon.Lat {
		t.Errorf("first coordinate = %v, want lon,lat of start", f.Geometry.Coordinates[0])
	}
	if f.Properties["user"] != "alice" {
		t.Errorf("user property = %v", f.Properties["user"])
	}
	if f.Properties["fixes"].(float64) != 5 {
		t.Errorf("fixes property = %v", f.Properties["fixes"])
	}
}
