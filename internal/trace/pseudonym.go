package trace

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"apisense/internal/geo"
)

func geoPoint(lat, lon float64) geo.Point { return geo.Point{Lat: lat, Lon: lon} }

// Pseudonymizer replaces user identifiers with stable pseudonyms derived
// from an HMAC-SHA256 keyed by a release-specific secret. The same user maps
// to the same pseudonym within one release, but pseudonyms are unlinkable
// across releases with different keys — the first, identity-level layer of
// the PRIVAPI publication pipeline.
type Pseudonymizer struct {
	key []byte
}

// NewPseudonymizer creates a pseudonymizer keyed by key. The key must not be
// empty.
func NewPseudonymizer(key []byte) (*Pseudonymizer, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("trace: pseudonymizer key must not be empty")
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Pseudonymizer{key: k}, nil
}

// Pseudonym returns the stable pseudonym for the given user identifier.
func (p *Pseudonymizer) Pseudonym(user string) string {
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte(user))
	return "u-" + hex.EncodeToString(mac.Sum(nil))[:16]
}

// Apply returns a copy of the dataset with every user replaced by their
// pseudonym.
func (p *Pseudonymizer) Apply(d *Dataset) *Dataset {
	out := d.Clone()
	for _, t := range out.Trajectories {
		t.User = p.Pseudonym(t.User)
	}
	return out
}
