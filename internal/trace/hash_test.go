package trace

import (
	"testing"
	"time"

	"apisense/internal/geo"
)

func hashFixture() *Trajectory {
	base := time.Date(2014, 12, 8, 8, 0, 0, 0, time.UTC)
	return &Trajectory{
		User: "user-1",
		Records: []Record{
			{Time: base, Pos: geo.Point{Lat: 45.76, Lon: 4.83}, Accuracy: 5},
			{Time: base.Add(time.Minute), Pos: geo.Point{Lat: 45.761, Lon: 4.831}},
		},
	}
}

func TestContentHashStable(t *testing.T) {
	a, b := hashFixture(), hashFixture()
	if a.ContentHash() != b.ContentHash() {
		t.Error("identical trajectories must hash identically")
	}
	if a.Clone().ContentHash() != a.ContentHash() {
		t.Error("a clone must hash identically")
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := hashFixture()
	mutations := map[string]func(*Trajectory){
		"user":      func(tr *Trajectory) { tr.User = "user-2" },
		"time":      func(tr *Trajectory) { tr.Records[0].Time = tr.Records[0].Time.Add(time.Nanosecond) },
		"lat":       func(tr *Trajectory) { tr.Records[1].Pos.Lat += 1e-9 },
		"lon":       func(tr *Trajectory) { tr.Records[1].Pos.Lon -= 1e-9 },
		"accuracy":  func(tr *Trajectory) { tr.Records[0].Accuracy = 6 },
		"dropped":   func(tr *Trajectory) { tr.Records = tr.Records[:1] },
		"appended":  func(tr *Trajectory) { tr.Records = append(tr.Records, tr.Records[0]) },
		"userSplit": func(tr *Trajectory) { tr.User = "user-"; tr.Records = tr.Records[:0] },
	}
	want := base.ContentHash()
	for name, mutate := range mutations {
		tr := hashFixture()
		mutate(tr)
		if tr.ContentHash() == want {
			t.Errorf("mutation %q did not change the content hash", name)
		}
	}
}

func TestContentHashTimezoneInsensitive(t *testing.T) {
	a, b := hashFixture(), hashFixture()
	paris := time.FixedZone("CET", 3600)
	for i := range b.Records {
		b.Records[i].Time = b.Records[i].Time.In(paris)
	}
	if a.ContentHash() != b.ContentHash() {
		t.Error("the same instant in a different zone must hash identically")
	}
}

func TestDatasetContentHashOrderSensitive(t *testing.T) {
	t1, t2 := hashFixture(), hashFixture()
	t2.User = "user-2"
	a := &Dataset{Trajectories: []*Trajectory{t1, t2}}
	b := &Dataset{Trajectories: []*Trajectory{t2, t1}}
	if a.ContentHash() == b.ContentHash() {
		t.Error("dataset order must participate in the hash")
	}
	c := &Dataset{Trajectories: []*Trajectory{t1, t2}}
	if a.ContentHash() != c.ContentHash() {
		t.Error("equal datasets must hash identically")
	}
	if NewDataset().ContentHash() == a.ContentHash() {
		t.Error("empty dataset must not collide with a populated one")
	}
}

func TestCombineHashes(t *testing.T) {
	h1, h2 := hashFixture().ContentHash(), func() [HashSize]byte {
		tr := hashFixture()
		tr.User = "other"
		return tr.ContentHash()
	}()
	if CombineHashes(h1, h2) == CombineHashes(h2, h1) {
		t.Error("combine must be order-sensitive")
	}
	if CombineHashes(h1) == CombineHashes(h1, h1) {
		t.Error("combine must be length-sensitive")
	}
	if CombineHashes(h1, h2) != CombineHashes(h1, h2) {
		t.Error("combine must be deterministic")
	}
}
