// Package evalcache provides the content-addressed evaluation cache of the
// PRIVAPI publication engine: re-publishing a dataset should cost in
// proportion to what changed since the previous publication, not to the
// dataset's size.
//
// The engine (internal/core) keys three kinds of entries into one cache:
//
//   - per-user reference-POI extractions, keyed by a canonical hash of the
//     user's trajectories plus the POI-configuration fingerprint — users
//     whose traces did not change between publications never re-run
//     extraction;
//   - per-trajectory attacker stay-point extractions, keyed by the
//     protected trajectory's content hash — deterministic mechanisms
//     reproduce byte-identical protected output for unchanged input, so
//     the simulated attack skips unchanged trajectories;
//   - whole selection results (scorecard, winner, protected dataset
//     pre-pseudonymisation), keyed by the dataset/shard content hash plus
//     the middleware configuration fingerprint — unchanged shards skip
//     evaluation entirely.
//
// Keys are content-addressed: the same key always maps to the same value,
// so a cache hit is byte-identical to recomputation and reports stay
// byte-identical between cold and warm runs. Values stored in the cache
// are treated as immutable; callers that hand out cached data must copy
// it first (the engine clones datasets and slices on both Put and Get).
//
// Cache is an interface so later work can add a persistent backend behind
// the same engine wiring; NewLRU is the first backend: an in-memory,
// mutex-guarded LRU bounded by an approximate byte budget.
package evalcache

import (
	"container/list"
	"sync"
)

// Stats are the cache gauges, exposed through hive.Stats / GET /api/stats
// alongside the ingestion gauges.
type Stats struct {
	// Entries is the number of live cache entries.
	Entries int `json:"entries"`
	// Bytes is the approximate retained size (sum of entry costs).
	Bytes int64 `json:"bytes"`
	// Hits and Misses count Get outcomes over the cache's lifetime.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to keep Bytes under the bound
	// (entries larger than the whole bound count as an immediate eviction).
	Evictions int64 `json:"evictions"`
	// Pruned counts strategies the engine skipped via adaptive portfolio
	// pruning (a cheap proxy showed a prior run already disqualified the
	// strategy); recorded here so one counter covers every middleware
	// sharing the cache.
	Pruned int64 `json:"pruned"`
}

// Cache is the evaluation cache the engine threads through publication.
// Implementations must be safe for concurrent use: the engine calls it
// from every strategy and shard worker, and several middlewares may share
// one cache.
//
// Values are stored as opaque Go values and treated as immutable by
// contract. Cost is the caller's estimate of the value's retained bytes;
// backends use it to enforce their memory bound.
type Cache interface {
	// Get returns the value stored under key, if any.
	Get(key string) (any, bool)
	// Put stores value under key at the given cost, replacing any previous
	// entry. Backends may decline to store (e.g. cost exceeds the bound).
	Put(key string, value any, cost int64)
	// AddPruned bumps the pruned-strategy counter by n.
	AddPruned(n int64)
	// Stats snapshots the gauges.
	Stats() Stats
}

// DefaultMaxBytes is the byte bound NewLRU applies when given a
// non-positive bound: 256 MiB, enough for tens of medium shard selections
// while keeping a clearly bounded footprint.
const DefaultMaxBytes = 256 << 20

// LRU is the in-memory cache backend: least-recently-used eviction under
// an approximate byte bound. All methods are safe for concurrent use.
type LRU struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used; elements hold *entry
	entries  map[string]*list.Element

	hits, misses, evictions, pruned int64
}

// entry is one cached key/value with its cost estimate.
type entry struct {
	key   string
	value any
	cost  int64
}

var _ Cache = (*LRU)(nil)

// NewLRU creates an LRU cache bounded by approximately maxBytes of stored
// value cost. A non-positive bound selects DefaultMaxBytes.
func NewLRU(maxBytes int64) *LRU {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &LRU{
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get implements Cache, marking the entry most recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put implements Cache. Entries whose cost alone exceeds the byte bound
// are not stored (counted as one eviction): a value that could only live
// alone in the cache would evict everything for a single future hit.
func (c *LRU) Put(key string, value any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.maxBytes {
		if el, ok := c.entries[key]; ok {
			c.removeLocked(el)
		}
		c.evictions++
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.bytes += cost - e.cost
		e.value, e.cost = value, cost
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&entry{key: key, value: value, cost: cost})
		c.bytes += cost
	}
	for c.bytes > c.maxBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// removeLocked unlinks an element; the caller holds c.mu.
func (c *LRU) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.cost
}

// AddPruned implements Cache.
func (c *LRU) AddPruned(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruned += n
}

// Stats implements Cache.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Pruned:    c.pruned,
	}
}
