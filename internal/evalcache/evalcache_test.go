package evalcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	c := NewLRU(1024)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 42, 10)
	v, ok := c.Get("a")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get(a) = %v, %v; want 42, true", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 10 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v; want 1 entry, 10 bytes, 1 hit, 1 miss", st)
	}
}

func TestPutReplacesAndAdjustsBytes(t *testing.T) {
	c := NewLRU(1024)
	c.Put("k", "old", 100)
	c.Put("k", "new", 30)
	v, ok := c.Get("k")
	if !ok || v.(string) != "new" {
		t.Fatalf("Get(k) = %v, %v; want new, true", v, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 30 {
		t.Errorf("stats after replace = %+v; want 1 entry, 30 bytes", st)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", "a", 40)
	c.Put("b", "b", 40)
	// Touch a so b becomes the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", "c", 40) // exceeds 100: b must go
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 100 {
		t.Errorf("bytes = %d exceeds the 100-byte bound", st.Bytes)
	}
}

func TestOversizedEntryNotStored(t *testing.T) {
	c := NewLRU(50)
	c.Put("big", "big", 1000)
	if _, ok := c.Get("big"); ok {
		t.Error("entry costing more than the bound must not be stored")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats = %+v; want the oversized put counted as one eviction", st)
	}
	// An oversized replacement also removes the existing entry.
	c.Put("k", "v", 10)
	c.Put("k", "huge", 1000)
	if _, ok := c.Get("k"); ok {
		t.Error("oversized replacement should drop the stale entry")
	}
}

func TestNegativeCostClamped(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", "v", -5)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("negative-cost entry should be stored at cost 0")
	}
	if st := c.Stats(); st.Bytes != 0 {
		t.Errorf("bytes = %d, want 0", st.Bytes)
	}
}

func TestDefaultBound(t *testing.T) {
	c := NewLRU(0)
	if c.maxBytes != DefaultMaxBytes {
		t.Errorf("maxBytes = %d, want DefaultMaxBytes", c.maxBytes)
	}
}

func TestAddPruned(t *testing.T) {
	c := NewLRU(100)
	c.AddPruned(2)
	c.AddPruned(1)
	if st := c.Stats(); st.Pruned != 3 {
		t.Errorf("pruned = %d, want 3", st.Pruned)
	}
}

// TestConcurrentAccess hammers one cache from many goroutines; run with
// -race (CI does) to prove the locking.
func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%64)
				if v, ok := c.Get(key); ok {
					if _, isInt := v.(int); !isInt {
						t.Errorf("unexpected value type %T", v)
						return
					}
				}
				c.Put(key, i, int64(i%128))
				c.AddPruned(1)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Pruned != 8*500 {
		t.Errorf("pruned = %d, want %d", st.Pruned, 8*500)
	}
	if st.Bytes > 1<<16 {
		t.Errorf("bytes = %d exceeds bound", st.Bytes)
	}
}
