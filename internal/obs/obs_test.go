package obs

import (
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestWriteToDeterministicOrdering: exposition output is byte-identical
// across repeated writes and independent of registration or observation
// order — families sort by name, series by label signature.
func TestWriteToDeterministicOrdering(t *testing.T) {
	build := func(flip bool) string {
		r := NewRegistry()
		// Register in two different orders.
		if flip {
			r.Counter("zz_total", "last alphabetically").Inc()
			v := r.CounterVec("aa_by_label_total", "first alphabetically", "k")
			v.With("b").Add(2)
			v.With("a").Inc()
		} else {
			v := r.CounterVec("aa_by_label_total", "first alphabetically", "k")
			v.With("a").Inc()
			v.With("b").Add(2)
			r.Counter("zz_total", "last alphabetically").Inc()
		}
		r.Gauge("mm_gauge", "middle").Set(7)
		var b strings.Builder
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(false), build(true)
	if a != b {
		t.Errorf("output depends on registration order:\n%s\nvs\n%s", a, b)
	}
	wantOrder := []string{"aa_by_label_total", "mm_gauge", "zz_total"}
	last := -1
	for _, name := range wantOrder {
		i := strings.Index(a, "# HELP "+name)
		if i < 0 {
			t.Fatalf("family %s missing:\n%s", name, a)
		}
		if i < last {
			t.Errorf("family %s out of order", name)
		}
		last = i
	}
	if !strings.Contains(a, `aa_by_label_total{k="a"} 1`) ||
		!strings.Contains(a, `aa_by_label_total{k="b"} 2`) {
		t.Errorf("labelled series wrong:\n%s", a)
	}
	ai, bi := strings.Index(a, `{k="a"}`), strings.Index(a, `{k="b"}`)
	if ai > bi {
		t.Error("series not sorted by label signature")
	}
}

// TestHistogramBuckets drives a histogram with known observations and
// checks the cumulative bucket counts, sum and count of the exposition.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 102.6`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
}

// TestHistogramBoundaryValue: an observation exactly on an upper bound
// lands in that bucket (le is inclusive).
func TestHistogramBoundaryValue(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "boundary", []float64{1, 2})
	h.Observe(1)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `b_seconds_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in le=1 bucket:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", `help with "quotes" and \slash`, "k").
		With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `# HELP esc_total help with "quotes" and \\slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("depth", "current depth", func() float64 { return n })
	r.CounterFunc("seen_total", "seen", func() float64 { return 7 })
	n++
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "depth 42") || !strings.Contains(out, "seen_total 7") {
		t.Errorf("func instruments wrong:\n%s", out)
	}
}

// TestIdempotentRegistration: registering the same instrument twice with
// the same shape returns the same family; a different shape panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("twice_total", "again")
	c2 := r.Counter("twice_total", "again")
	c1.Inc()
	c2.Inc()
	if got := c1.Value(); got != 2 {
		t.Errorf("re-registered counter split state: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("twice_total", "again")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every constructor and instrument is a no-op on nil.
	r.Counter("x_total", "x").Inc()
	r.Gauge("g", "g").Set(1)
	r.Histogram("h", "h", LatencyBuckets).Observe(1)
	r.CounterVec("cv_total", "cv", "k").With("v").Inc()
	r.GaugeVec("gv", "gv", "k").With("v").Set(1)
	r.HistogramVec("hv", "hv", LatencyBuckets, "k").With("v").Observe(1)
	r.CounterFunc("cf_total", "cf", func() float64 { return 1 })
	r.GaugeFunc("gf", "gf", func() float64 { return 1 })
	// Wrong arity yields a nil child, which is also a no-op.
	r2 := NewRegistry()
	r2.CounterVec("arity_total", "a", "k").With("a", "b").Inc()
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "concurrent")
	h := r.Histogram("conc_seconds", "concurrent", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter lost increments: %v", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram lost observations: %v", got)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "served").Add(3)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 3") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}

func TestFormatValue(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf_gauge", "inf").Set(math.Inf(1))
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "inf_gauge +Inf") {
		t.Errorf("infinity not rendered as +Inf:\n%s", b.String())
	}
}

// TestFuncVec: labelled callback series render per bound combination,
// sorted by label signature, reading their callbacks at collect time.
func TestFuncVec(t *testing.T) {
	r := NewRegistry()
	shards := []float64{7, 3}
	v := r.CounterFuncVec("shard_fsyncs_total", "per-shard fsyncs", "shard")
	for i := range shards {
		i := i
		v.Bind(func() float64 { return shards[i] }, strconv.Itoa(i))
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`shard_fsyncs_total{shard="0"} 7`, `shard_fsyncs_total{shard="1"} 3`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Live: the callback is re-read every collect.
	shards[0] = 9
	b.Reset()
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `shard_fsyncs_total{shard="0"} 9`) {
		t.Errorf("callback not re-read at collect:\n%s", b.String())
	}

	// Rebinding a bound combination panics — one owner per series.
	defer func() {
		if recover() == nil {
			t.Error("duplicate Bind did not panic")
		}
	}()
	v.Bind(func() float64 { return 0 }, "0")
}

// TestFuncVecNilSafe: a nil vec and wrong arity are ignored, matching
// the other nil-safe instruments.
func TestFuncVecNilSafe(t *testing.T) {
	var v *FuncVec
	v.Bind(func() float64 { return 1 }, "x") // must not panic
	r := NewRegistry()
	v2 := r.GaugeFuncVec("wrong_arity", "gauge", "a", "b")
	v2.Bind(func() float64 { return 1 }, "only-one") // arity mismatch: ignored
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "only-one") {
		t.Errorf("arity-mismatched bind rendered:\n%s", b.String())
	}
}
