package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegisterRuntimeExportsGoGauges(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	RegisterBuildInfo(reg)
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"apisense_go_goroutines ",
		"apisense_go_gomaxprocs ",
		`apisense_go_memstats_bytes{stat="heap_alloc"}`,
		`apisense_go_memstats_bytes{stat="heap_inuse"}`,
		"apisense_go_gc_pause_seconds_total ",
		`apisense_build_info{go_version="`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing series %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "} 1\n") {
		t.Errorf("build info must be a constant 1 gauge:\n%s", out)
	}
}

func TestRegisterRuntimeTwicePanics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	defer func() {
		if recover() == nil {
			t.Fatal("second RegisterRuntime on one registry must panic")
		}
	}()
	RegisterRuntime(reg)
}

func TestSampleFuncRendersSamplesInOrder(t *testing.T) {
	reg := NewRegistry()
	reg.SampleFunc("demo_series", "Demo.", "gauge", []string{"family", "id"},
		func() []Sample {
			return []Sample{
				{Values: []string{"a", "1"}, V: 0.5},
				{Values: []string{"b", "2"}, V: 1.5},
				{Values: []string{"bogus"}, V: 9}, // wrong arity: skipped
			}
		})
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantA := `demo_series{family="a",id="1"} 0.5`
	wantB := `demo_series{family="b",id="2"} 1.5`
	ia, ib := strings.Index(out, wantA), strings.Index(out, wantB)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("samples missing or out of order (a=%d b=%d):\n%s", ia, ib, out)
	}
	if strings.Contains(out, "bogus") {
		t.Fatalf("wrong-arity sample must be skipped:\n%s", out)
	}
}

func TestSampleFuncConflictsPanic(t *testing.T) {
	reg := NewRegistry()
	reg.SampleFunc("dup_series", "D.", "gauge", []string{"l"}, func() []Sample { return nil })
	for name, fn := range map[string]func(){
		"same SampleFunc":  func() { reg.SampleFunc("dup_series", "D.", "gauge", []string{"l"}, func() []Sample { return nil }) },
		"GaugeFunc":        func() { reg.GaugeFunc("dup_series", "D.", func() float64 { return 0 }) },
		"CounterVec alias": func() { reg.CounterVec("dup_series", "D.", "l") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s over a SampleFunc family must panic", name)
				}
			}()
			fn()
		}()
	}
}
