// Package obs is a dependency-free metrics registry exposing the
// Prometheus text exposition format (version 0.0.4). It implements the
// small slice of a metrics client the platform needs — counters, gauges,
// fixed-bucket histograms, labelled variants and collect-time callback
// metrics — without importing anything beyond the standard library, so it
// can be wired into every binary and test.
//
// Instruments are nil-safe: every mutating method on a nil *Counter,
// *Gauge or *Histogram (and With on a nil vec) is a no-op, so
// instrumented packages take an optional *Metrics hook in their Config
// and pay nothing when it is nil — the zero-value configuration stays
// allocation-free and branch-cheap on the hot path.
//
// Output is deterministic: families are emitted sorted by name, series
// within a family sorted by label values, so /metrics responses are
// byte-stable for a fixed set of observations and can be diffed and
// table-tested.
//
// Concurrency: a Registry and every instrument it creates are safe for
// unsynchronised concurrent use. Counters, gauges and histograms update
// through atomics; registration and collection take the registry lock.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default histogram buckets for second-valued
// latency series: half a millisecond to ten seconds, roughly
// logarithmic. Fixed buckets keep the exposition format deterministic.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default histogram buckets for count-valued series
// such as group-commit sizes.
var SizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// Registry holds metric families and renders them in the Prometheus text
// format. Create with NewRegistry; a Registry is an http.Handler serving
// its own exposition (mount it at GET /metrics).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: a scalar or labelled set of series
// of one kind, or a collect-time callback.
type family struct {
	name    string
	help    string
	kind    string // "counter", "gauge" or "histogram"
	labels  []string
	buckets []float64       // histograms only
	fn      func() float64  // callback families only
	sfn     func() []Sample // multi-sample callback families only

	mu       sync.Mutex
	children map[string]any // label signature -> *Counter/*Gauge/*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it on first use. A second
// registration with the same shape returns the existing family (so
// package-level NewMetrics helpers are idempotent per registry); a
// conflicting shape panics — two meanings for one series name is a
// programming error no scrape should paper over.
func (r *Registry) lookup(name, help, kind string, labels []string, buckets []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) || (f.fn == nil) != (fn == nil) || f.sfn != nil {
			panic(fmt.Sprintf("obs: metric %q redeclared with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		fn:       fn,
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the series for one label signature, creating it with mk
// on first use.
func (f *family) child(sig string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[sig]
	if !ok {
		c = mk()
		f.children[sig] = c
	}
	return c
}

// Counter registers (or finds) an unlabelled counter. Nil-safe: a nil
// registry returns a nil counter whose methods are no-ops.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, "counter", nil, nil, nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) an unlabelled gauge. Nil-safe like Counter.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, "gauge", nil, nil, nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or finds) a fixed-bucket histogram; buckets are
// upper bounds, sorted ascending (a final +Inf bucket is implicit).
// Nil-safe like Counter.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, "histogram", nil, buckets, nil)
	return f.child("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec registers (or finds) a counter family with the given label
// names. Nil-safe like Counter.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, "counter", labels, nil, nil)}
}

// GaugeVec registers (or finds) a gauge family with the given label
// names. Nil-safe like Counter.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, "gauge", labels, nil, nil)}
}

// HistogramVec registers (or finds) a histogram family with the given
// label names. Nil-safe like Counter.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, "histogram", labels, buckets, nil)}
}

// CounterFunc registers a counter whose value is read from fn at collect
// time — for monotone counters another subsystem already maintains (e.g.
// journal fsyncs). Registering the same name twice panics: a callback
// series has exactly one owner. Nil-safe on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.registerFunc(name, help, "counter", fn)
}

// GaugeFunc registers a gauge read from fn at collect time — for gauges
// derived from live state (queue depth, cache bytes). Same ownership rule
// as CounterFunc. Nil-safe on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.registerFunc(name, help, "gauge", fn)
}

// registerFunc installs a collect-time callback family.
func (r *Registry) registerFunc(name, help, kind string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: callback metric %q registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kind, fn: fn}
}

// Sample is one series produced by a SampleFunc callback at collect
// time: label values in the family's declared label order, plus the
// sample value.
type Sample struct {
	// Values are the label values, matching the family's label names.
	Values []string
	// V is the sample value.
	V float64
}

// SampleFunc registers a labelled family whose whole series set is
// produced by fn at every collect — for families whose label
// combinations change over time (e.g. an exemplar trace ID per stage
// family) and would otherwise grow unbounded children. fn must return
// one Sample per series, already deterministic in order (WriteTo emits
// them exactly as returned); samples whose arity does not match labels
// are skipped. Same ownership rule as CounterFunc: registering name
// twice panics. Nil-safe on a nil registry.
func (r *Registry) SampleFunc(name, help, kind string, labels []string, fn func() []Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: callback metric %q registered twice", name))
	}
	r.families[name] = &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		sfn:    fn,
	}
}

// CounterFuncVec registers (or finds) a labelled counter family whose
// series are collect-time callbacks — for per-entity monotone counters
// another subsystem maintains (e.g. per-shard store fsyncs). Bind each
// label combination once. Nil-safe on a nil registry.
func (r *Registry) CounterFuncVec(name, help string, labels ...string) *FuncVec {
	if r == nil {
		return nil
	}
	return &FuncVec{f: r.lookup(name, help, "counter", labels, nil, nil)}
}

// GaugeFuncVec registers (or finds) a labelled gauge family whose series
// are collect-time callbacks (see CounterFuncVec). Nil-safe on a nil
// registry.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *FuncVec {
	if r == nil {
		return nil
	}
	return &FuncVec{f: r.lookup(name, help, "gauge", labels, nil, nil)}
}

// FuncVec is a labelled collect-time callback family: each bound label
// combination reads its value from its own callback at scrape time.
type FuncVec struct{ f *family }

// Bind installs fn as the series for one combination of label values, in
// the declared label-name order. Binding the same combination twice
// panics — a callback series has exactly one owner. Nil-safe: a nil vec
// (or wrong arity) ignores the bind.
func (v *FuncVec) Bind(fn func() float64, values ...string) {
	if v == nil || len(values) != len(v.f.labels) {
		return
	}
	sig := labelSig(v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if _, ok := v.f.children[sig]; ok {
		panic(fmt.Sprintf("obs: callback series %s{%s} bound twice", v.f.name, sig))
	}
	v.f.children[sig] = &funcSeries{fn: fn}
}

// funcSeries is one bound callback series of a FuncVec.
type funcSeries struct{ fn func() float64 }

// Counter is a monotonically increasing value. All methods are nil-safe
// no-ops on a nil receiver and safe for concurrent use.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current value (0 on a nil receiver).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down. All methods are nil-safe
// no-ops on a nil receiver and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. All methods are
// nil-safe no-ops on a nil receiver and safe for concurrent use;
// per-bucket counts are not snapshotted atomically against each other, so
// a scrape racing observations may be off by the in-flight observation —
// the usual Prometheus client behaviour.
type Histogram struct {
	upper  []float64 // sorted upper bounds, excluding +Inf
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// newHistogram builds a histogram over the given upper bounds.
func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:  buckets,
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v ("le" is inclusive); the
	// final slot is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for one combination of label values, in the
// declared label-name order. Nil-safe: nil vec (or wrong arity) returns a
// nil counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.f.labels) {
		return nil
	}
	sig := labelSig(v.f.labels, values)
	return v.f.child(sig, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for one combination of label values (see
// CounterVec.With).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || len(values) != len(v.f.labels) {
		return nil
	}
	sig := labelSig(v.f.labels, values)
	return v.f.child(sig, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for one combination of label values (see
// CounterVec.With).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.f.labels) {
		return nil
	}
	sig := labelSig(v.f.labels, values)
	return v.f.child(sig, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// labelSig renders one label combination as the exposition-format label
// body (`k1="v1",k2="v2"`), which doubles as the child map key.
func labelSig(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteTo renders the registry in the Prometheus text format: families
// sorted by name, series sorted by label signature — byte-deterministic
// for a fixed set of observations. Implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ServeHTTP serves the exposition, making the registry mountable at
// GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w)
}

// write renders one family.
func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
		return err
	}
	if f.sfn != nil {
		for _, s := range f.sfn() {
			if len(s.Values) != len(f.labels) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, labelSig(f.labels, s.Values)), formatValue(s.V)); err != nil {
				return err
			}
		}
		return nil
	}
	f.mu.Lock()
	sigs := make([]string, 0, len(f.children))
	for sig := range f.children {
		sigs = append(sigs, sig)
	}
	children := make([]any, 0, len(sigs))
	sort.Strings(sigs)
	for _, sig := range sigs {
		children = append(children, f.children[sig])
	}
	f.mu.Unlock()
	for i, sig := range sigs {
		if err := writeChild(w, f.name, sig, children[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeChild renders one series (or one histogram's series set).
func writeChild(w io.Writer, name, sig string, c any) error {
	switch m := c.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, sig), formatValue(m.Value()))
		return err
	case *funcSeries:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, sig), formatValue(m.fn()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, sig), formatValue(m.Value()))
		return err
	case *Histogram:
		var cum uint64
		for i := range m.counts {
			le := "+Inf"
			if i < len(m.upper) {
				le = formatValue(m.upper[i])
			}
			cum += m.counts[i].Load()
			leSig := sig
			if leSig != "" {
				leSig += ","
			}
			leSig += `le="` + le + `"`
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", leSig), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", sig), formatValue(math.Float64frombits(m.sum.Load()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", sig), m.count.Load())
		return err
	default:
		return fmt.Errorf("obs: unknown child type %T for %s", c, name)
	}
}

// seriesName joins a family name with a label signature.
func seriesName(name, sig string) string {
	if sig == "" {
		return name
	}
	return name + "{" + sig + "}"
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// countWriter counts the bytes written through it (for WriteTo's return).
type countWriter struct {
	w io.Writer
	n int64
}

// Write implements io.Writer.
func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
