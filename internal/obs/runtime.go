package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterRuntime registers the Go process-health series on reg, so a
// /metrics scrape covers the runtime as well as the application:
//
//	apisense_go_goroutines             live goroutines (gauge)
//	apisense_go_gomaxprocs             scheduler width (gauge)
//	apisense_go_memstats_bytes{stat}   heap_alloc / heap_inuse (FuncVec gauge)
//	apisense_go_gc_pause_seconds_total cumulative stop-the-world pause (counter)
//
// Values are read at collect time (runtime.ReadMemStats per memory
// series). Call once per registry — callback series have exactly one
// owner, so a second call panics. Nil-safe on a nil registry.
func RegisterRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("apisense_go_goroutines",
		"Goroutines currently live in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("apisense_go_gomaxprocs",
		"GOMAXPROCS of the process (scheduler parallelism).",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	mem := reg.GaugeFuncVec("apisense_go_memstats_bytes",
		"Go runtime memory statistics, by stat (heap_alloc, heap_inuse).",
		"stat")
	mem.Bind(func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	}, "heap_alloc")
	mem.Bind(func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse)
	}, "heap_inuse")
	reg.CounterFunc("apisense_go_gc_pause_seconds_total",
		"Cumulative garbage-collector stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}

// RegisterBuildInfo registers the apisense_build_info constant gauge: a
// single always-1 series whose labels identify the running build
// (go_version, module path) — the standard join key for dashboards that
// annotate deploys. Call once per registry; nil-safe.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	module := "apisense"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		module = bi.Main.Path
	}
	reg.GaugeFuncVec("apisense_build_info",
		"Build metadata of the running binary; the value is always 1.",
		"go_version", "module").
		Bind(func() float64 { return 1 }, runtime.Version(), module)
}
