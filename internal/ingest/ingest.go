// Package ingest is the Hive's streaming ingestion subsystem: a bounded,
// channel-backed queue that accepts batches of device uploads, applies
// backpressure when full, and drains them into the registry on a pool of
// workers with group-commit journaling (one fsync per drained batch instead
// of one per upload).
//
// Producers call Submit, which enqueues the batch without blocking — a full
// queue fails fast with ErrQueueFull so the HTTP layer can answer 429 with
// a Retry-After hint — and then wait for the drain worker's commit, so a
// successful Submit means the uploads were validated, admitted and
// journaled. Drain workers opportunistically coalesce every batch already
// waiting in the queue (up to MaxBatch uploads) into one sink call, which
// is what turns a crowd of small device flushes into a few large group
// commits under load.
package ingest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"apisense/internal/apierr"
	"apisense/internal/otrace"
	"apisense/internal/transport"
)

// Sentinel errors of the queue API — coded apierr sentinels, so the HTTP
// layer maps them to statuses by category and returns the code in the
// error body (see docs/OPERATIONS.md).
var (
	// ErrQueueFull is backpressure: the queue's batch slots are all
	// occupied, or admitting the batch would push the queue past its
	// pending-upload bound. The HTTP layer maps it to 429 Too Many
	// Requests with a Retry-After header; well-behaved producers back off
	// with jitter and resubmit.
	ErrQueueFull = apierr.New("ingest.queue_full", apierr.ResourceExhausted, "ingest: queue full")
	// ErrBatchTooLarge marks a single batch bigger than the queue's
	// pending-upload bound — it could never be admitted, so retrying is
	// pointless; split it. The HTTP layer maps it to 413.
	ErrBatchTooLarge = apierr.New("ingest.batch_too_large", apierr.TooLarge, "ingest: batch exceeds the queue's upload bound")
	// ErrClosed marks submissions after Close; the service is draining
	// for shutdown. The HTTP layer maps it to 503.
	ErrClosed = apierr.New("ingest.closed", apierr.Unavailable, "ingest: queue closed")
	// errSinkVerdicts marks a broken sink that returned the wrong number
	// of per-upload verdicts; every upload in the group is failed with it.
	errSinkVerdicts = apierr.New("ingest.sink_verdicts", apierr.Internal, "ingest: sink verdict count mismatch")
)

// Sink is where drained batches are admitted — the Hive registry in
// production, a fake in tests. It must return one error slot per upload
// (nil = accepted) and be safe for concurrent calls.
type Sink interface {
	SubmitBatch(ups []transport.Upload) []error
}

// ContextSink is an optional Sink extension. Sinks that implement it
// receive the drain worker's commit context — which carries the group
// commit's span identity when tracing is on — so their own spans
// (store.append, fsync) join the trace. The Hive implements both
// interfaces; drain workers prefer this one.
type ContextSink interface {
	SubmitBatchContext(ctx context.Context, ups []transport.Upload) []error
}

// Config sizes a Queue. The zero value gets sensible defaults.
type Config struct {
	// Capacity is the number of batch slots in the queue; a Submit that
	// finds all slots occupied fails with ErrQueueFull. Default 64.
	Capacity int
	// MaxBatch caps how many uploads a drain worker coalesces into one
	// sink call (one group commit). A single submitted batch larger than
	// MaxBatch is still committed whole. Default 256.
	MaxBatch int
	// Workers is the size of the drain pool. The default of 1 maximises
	// group-commit coalescing and is right for single-file sinks, which
	// serialise whole commits anyway. Raise it for sinks that commit
	// batches concurrently — a Hive on the sharded store fsyncs each
	// task's uploads on its own shard, so extra workers let batches for
	// distinct tasks commit in parallel.
	Workers int
	// MaxPendingUploads bounds the total uploads queued across all slots
	// — the actual memory backstop (Capacity alone counts batches, whose
	// size the server does not control). Submissions that would cross it
	// fail with ErrQueueFull; a single batch larger than the bound fails
	// with ErrBatchTooLarge. Default Capacity * MaxBatch.
	MaxPendingUploads int
	// RetryAfter is the backpressure hint handed to rejected producers
	// (surfaced as the HTTP Retry-After header). Default 1s.
	RetryAfter time.Duration
	// Metrics, when non-nil, instruments the queue (drain latency and
	// group-size histograms at commit time; depth and throughput gauges
	// bound at New). nil — the zero value — disables instrumentation
	// with no allocation and no time sampling on the drain path.
	Metrics *Metrics
	// Tracer, when non-nil, records one ingest.enqueue span per Submit
	// (child of the caller's span) and one ingest.group_commit span per
	// drained group, linked to every enqueue span the commit amortised.
	// nil disables tracing with one branch and no clock reads.
	Tracer *otrace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxPendingUploads <= 0 {
		c.MaxPendingUploads = c.Capacity * c.MaxBatch
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Stats is a snapshot of the queue gauges, surfaced on the Hive's /stats.
type Stats struct {
	// PendingBatches / PendingUploads are the current queue depth.
	PendingBatches int `json:"pendingBatches"`
	PendingUploads int `json:"pendingUploads"`
	// Capacity echoes the configured batch slots.
	Capacity int `json:"capacity"`
	// Accepted / Rejected count per-upload sink verdicts of drained
	// batches; Dropped counts uploads refused at the door with
	// ErrQueueFull (they never entered the queue).
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Dropped  uint64 `json:"dropped"`
	// BatchesDrained counts sink calls — group commits. Accepted divided
	// by BatchesDrained is the achieved coalescing factor.
	BatchesDrained uint64 `json:"batchesDrained"`
}

// job is one submitted batch waiting for its group commit.
type job struct {
	uploads []transport.Upload
	errs    []error       // per-upload verdicts, filled before done closes
	done    chan struct{} // closed once the batch is committed
	// sc is the submitter's span identity (the enqueue span when tracing
	// is on, else whatever the caller's context carried): the group
	// commit parents itself on the first job's trace and links the rest.
	sc otrace.SpanContext
}

// Queue is the bounded ingestion queue. Create with New, stop with Close.
// Safe for concurrent use: any number of producers may call Submit while
// the drain workers commit; Close may race with in-flight Submits.
type Queue struct {
	sink Sink
	cfg  Config
	ch   chan *job
	wg   sync.WaitGroup

	mu     sync.RWMutex // guards closed (and the ch send against close)
	closed bool

	depth    atomic.Int64 // uploads currently queued
	accepted atomic.Uint64
	rejected atomic.Uint64
	dropped  atomic.Uint64
	batches  atomic.Uint64
}

// New builds a Queue over sink and starts its drain workers. When
// cfg.Metrics is set the queue's depth and throughput gauges are bound to
// the metrics registry here (one queue per registry).
func New(sink Sink, cfg Config) *Queue {
	cfg = cfg.withDefaults()
	q := &Queue{sink: sink, cfg: cfg, ch: make(chan *job, cfg.Capacity)}
	cfg.Metrics.bindQueue(q)
	for w := 0; w < cfg.Workers; w++ {
		q.wg.Add(1)
		go q.drain()
	}
	return q
}

// RetryAfter is the backoff hint for producers rejected with ErrQueueFull.
func (q *Queue) RetryAfter() time.Duration { return q.cfg.RetryAfter }

// Closed reports whether intake has stopped (Close or CloseContext was
// called): new Submits fail with ErrClosed. The readiness probe
// (GET /readyz) uses it to take a draining instance out of rotation.
func (q *Queue) Closed() bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.closed
}

// Submit enqueues a batch and blocks until its group commit, returning the
// per-upload verdicts (nil = accepted and journaled). A full queue fails
// immediately with ErrQueueFull — nothing was admitted, resubmit the whole
// batch after RetryAfter. ctx is checked only before enqueueing (a
// cancelled caller is turned away with nothing admitted); once the batch
// holds a slot, Submit waits out the commit — drain workers always make
// progress, so the wait is bounded by one group commit — and the verdicts
// are therefore always accurate. If the HTTP client behind a Submit
// disconnects before reading the response, a client-side retry ingests the
// batch again: like any ingestion endpoint without idempotency keys, the
// lost-response edge is at-least-once.
func (q *Queue) Submit(ctx context.Context, ups []transport.Upload) ([]error, error) {
	if len(ups) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The enqueue span covers claim -> enqueue -> commit wait; it joins
	// the caller's trace (the HTTP server span) when ctx carries one.
	var sp *otrace.ActiveSpan
	if q.cfg.Tracer != nil {
		ctx, sp = q.cfg.Tracer.Start(ctx, "ingest.enqueue", otrace.Int("uploads", len(ups)))
	}
	reject := func(err error) ([]error, error) {
		if sp != nil {
			sp.SetErr(apierr.Code(err))
			sp.End()
		}
		return nil, err
	}
	if len(ups) > q.cfg.MaxPendingUploads {
		return reject(fmt.Errorf("%w: %d uploads, bound %d", ErrBatchTooLarge, len(ups), q.cfg.MaxPendingUploads))
	}
	// Claim the depth before the batch becomes visible to workers: the
	// gauge can never go negative, and the pending-upload bound holds even
	// against concurrent submitters.
	if depth := q.depth.Add(int64(len(ups))); depth > int64(q.cfg.MaxPendingUploads) {
		q.depth.Add(-int64(len(ups)))
		q.dropped.Add(uint64(len(ups)))
		return reject(fmt.Errorf("%w: %d uploads pending, bound %d", ErrQueueFull, depth-int64(len(ups)), q.cfg.MaxPendingUploads))
	}
	j := &job{uploads: ups, done: make(chan struct{})}
	j.sc, _ = otrace.SpanContextFromContext(ctx)
	q.mu.RLock()
	if q.closed {
		q.mu.RUnlock()
		q.depth.Add(-int64(len(ups)))
		return reject(ErrClosed)
	}
	select {
	case q.ch <- j:
		q.mu.RUnlock()
	default:
		q.mu.RUnlock()
		q.depth.Add(-int64(len(ups)))
		q.dropped.Add(uint64(len(ups)))
		return reject(fmt.Errorf("%w: %d batch slots occupied", ErrQueueFull, q.cfg.Capacity))
	}
	<-j.done
	if sp != nil {
		sp.End()
	}
	return j.errs, nil
}

// Close stops intake, drains every batch already queued, and blocks until
// the workers exit. Safe to call more than once. Use CloseContext to bound
// how long the caller waits for the drain.
func (q *Queue) Close() {
	q.stopIntake()
	q.wg.Wait()
}

// CloseContext is Close with a deadline on the wait: intake stops
// immediately either way, but the caller stops waiting for the drain when
// ctx expires. The workers keep draining the already-queued batches in the
// background regardless, so producers blocked in Submit still get their
// verdicts. Returns ctx.Err when the deadline cut the wait short.
func (q *Queue) CloseContext(ctx context.Context) error {
	q.stopIntake()
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stopIntake marks the queue closed and wakes the workers; idempotent.
func (q *Queue) stopIntake() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()
}

// Stats snapshots the queue gauges.
func (q *Queue) Stats() Stats {
	return Stats{
		PendingBatches: len(q.ch),
		PendingUploads: int(q.depth.Load()),
		Capacity:       q.cfg.Capacity,
		Accepted:       q.accepted.Load(),
		Rejected:       q.rejected.Load(),
		Dropped:        q.dropped.Load(),
		BatchesDrained: q.batches.Load(),
	}
}

// drain is one worker: pop a batch, coalesce whatever else is already
// queued up to MaxBatch uploads, commit the group through the sink, and
// hand each producer its verdicts. A pulled batch that would push the
// group past MaxBatch is carried into the next group, so the cap holds
// (only a single batch bigger than MaxBatch commits alone, oversized).
func (q *Queue) drain() {
	defer q.wg.Done()
	var carry *job
	for {
		j := carry
		carry = nil
		if j == nil {
			var ok bool
			j, ok = <-q.ch
			if !ok {
				return
			}
		}
		jobs := []*job{j}
		n := len(j.uploads)
		for n < q.cfg.MaxBatch {
			var j2 *job
			select {
			case j2 = <-q.ch: // nil when the channel is closed
			default:
			}
			if j2 == nil {
				break
			}
			if n+len(j2.uploads) > q.cfg.MaxBatch {
				carry = j2
				break
			}
			jobs = append(jobs, j2)
			n += len(j2.uploads)
		}
		q.commit(jobs, n)
	}
}

// commit admits one coalesced group through the sink and distributes the
// per-upload verdicts back to the submitting jobs. When tracing is on,
// the group commit is one span parented on the first job's trace and
// linked to every coalesced job's enqueue span — the timeline that shows
// which batches one fsync amortised — and a ContextSink receives the
// span's context so store spans nest under it.
func (q *Queue) commit(jobs []*job, n int) {
	all := make([]transport.Upload, 0, n)
	for _, j := range jobs {
		all = append(all, j.uploads...)
	}
	//lint:allow ctxflow drain workers outlive any one submitter; the commit context only carries trace identity
	cctx := context.Background()
	if jobs[0].sc.Valid() {
		cctx = otrace.ContextWithSpanContext(cctx, jobs[0].sc)
	}
	var sp *otrace.ActiveSpan
	if q.cfg.Tracer != nil {
		cctx, sp = q.cfg.Tracer.Start(cctx, "ingest.group_commit",
			otrace.Int("batches", len(jobs)), otrace.Int("uploads", n))
		for _, j := range jobs {
			sp.Link(j.sc)
		}
	}
	start := q.cfg.Metrics.start()
	var errs []error
	if cs, ok := q.sink.(ContextSink); ok {
		errs = cs.SubmitBatchContext(cctx, all)
	} else {
		errs = q.sink.SubmitBatch(all)
	}
	q.cfg.Metrics.observeDrain(start, n)
	sp.End()
	if got := len(errs); got != n { // defensive: a broken sink rejects everything
		errs = make([]error, n)
		for i := range errs {
			errs[i] = fmt.Errorf("%w: %d verdicts for %d uploads", errSinkVerdicts, got, n)
		}
	}
	var acc, rej uint64
	for _, err := range errs {
		if err == nil {
			acc++
		} else {
			rej++
		}
	}
	off := 0
	for _, j := range jobs {
		j.errs = errs[off : off+len(j.uploads)]
		off += len(j.uploads)
		close(j.done)
	}
	q.depth.Add(-int64(n))
	q.accepted.Add(acc)
	q.rejected.Add(rej)
	q.batches.Add(1)
}
