package ingest_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apisense/internal/hive"
	"apisense/internal/ingest"
	"apisense/internal/transport"
)

// fakeSink records batches and rejects uploads whose TaskID is "bad".
type fakeSink struct {
	mu      sync.Mutex
	batches [][]transport.Upload
}

func (s *fakeSink) SubmitBatch(ups []transport.Upload) []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, append([]transport.Upload(nil), ups...))
	errs := make([]error, len(ups))
	for i, u := range ups {
		if u.TaskID == "bad" {
			errs[i] = errors.New("rejected")
		}
	}
	return errs
}

func (s *fakeSink) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

// gatedSink blocks every SubmitBatch until the gate closes, then delegates.
// parked counts workers currently waiting at the gate, so tests can
// saturate the queue deterministically before asserting backpressure.
type gatedSink struct {
	ingest.Sink
	gate   <-chan struct{}
	parked atomic.Int32
}

func (s *gatedSink) SubmitBatch(ups []transport.Upload) []error {
	s.parked.Add(1)
	<-s.gate
	s.parked.Add(-1)
	return s.Sink.SubmitBatch(ups)
}

func up(task, key string) transport.Upload {
	return transport.Upload{
		TaskID: task, DeviceID: "d1",
		Records: []transport.UploadRecord{{Sensor: "gps", Data: map[string]any{"key": key}}},
	}
}

func TestSubmitPerItemVerdicts(t *testing.T) {
	sink := &fakeSink{}
	q := ingest.New(sink, ingest.Config{})
	defer q.Close()

	errs, err := q.Submit(context.Background(), []transport.Upload{
		up("ok", "a"), up("bad", "b"), up("ok", "c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 || errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Errorf("verdicts = %v, want [nil, rejected, nil]", errs)
	}
	st := q.Stats()
	if st.Accepted != 2 || st.Rejected != 1 || st.BatchesDrained == 0 {
		t.Errorf("stats = %+v", st)
	}

	// Empty submissions are a no-op.
	if errs, err := q.Submit(context.Background(), nil); err != nil || errs != nil {
		t.Errorf("empty submit = %v, %v", errs, err)
	}
}

// TestQueueFullBackpressure deterministically saturates the queue: the
// drain worker is parked inside the sink, the single batch slot is
// occupied, and the next Submit must fail fast with ErrQueueFull.
func TestQueueFullBackpressure(t *testing.T) {
	gate := make(chan struct{})
	sink := &gatedSink{Sink: &fakeSink{}, gate: gate}
	q := ingest.New(sink, ingest.Config{Capacity: 1, Workers: 1, RetryAfter: 3 * time.Second})
	defer q.Close()
	// If an assertion fails before the explicit release below, the gate
	// must still open or the deferred Close deadlocks on the parked worker.
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer releaseGate()

	// Sequenced saturation: the first batch is claimed by the worker and
	// parked inside the sink (sealing its coalescing group); only then is
	// the second submitted, so it must sit in the single batch slot.
	results := make(chan error, 2)
	submit := func(key string) {
		go func() {
			_, err := q.Submit(context.Background(), []transport.Upload{up("ok", key)})
			results <- err
		}()
	}
	submit("first")
	waitFor(t, func() bool { return sink.parked.Load() == 1 })
	submit("second")
	waitFor(t, func() bool { return q.Stats().PendingBatches == 1 })

	// Third batch: nothing is draining and the slot is taken — backpressure.
	_, err := q.Submit(context.Background(), []transport.Upload{up("ok", "third")})
	if !errors.Is(err, ingest.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := q.RetryAfter(); got != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", got)
	}
	if q.Stats().Dropped == 0 {
		t.Error("dropped gauge not incremented")
	}

	releaseGate()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDrainCoalescing: with the worker parked, several queued batches must
// drain as one group commit (a single sink call).
func TestDrainCoalescing(t *testing.T) {
	gate := make(chan struct{})
	inner := &fakeSink{}
	sink := &gatedSink{Sink: inner, gate: gate}
	q := ingest.New(sink, ingest.Config{Capacity: 8, Workers: 1})
	defer q.Close()
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer releaseGate()

	var wg sync.WaitGroup
	submit := func(key string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := q.Submit(context.Background(), []transport.Upload{up("ok", key)}); err != nil {
				t.Error(err)
			}
		}()
	}
	submit("head") // claimed by the worker, parks in the sink
	// Wait until the worker is inside the sink: its coalescing window is
	// sealed, so the next submissions form a separate group.
	waitFor(t, func() bool { return sink.parked.Load() == 1 })
	submit("a")
	submit("b")
	submit("c")
	waitFor(t, func() bool { return q.Stats().PendingBatches == 3 })

	releaseGate()
	wg.Wait()
	// One call for "head", one coalesced call for {a, b, c}.
	if got := inner.calls(); got != 2 {
		t.Errorf("sink calls = %d, want 2 (head + coalesced group)", got)
	}
	if st := q.Stats(); st.Accepted != 4 || st.BatchesDrained != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCoalescingRespectsMaxBatch: a pulled batch that would overflow the
// group is carried into the next commit, so no group (of multi-batch
// makeup) exceeds MaxBatch uploads.
func TestCoalescingRespectsMaxBatch(t *testing.T) {
	gate := make(chan struct{})
	inner := &fakeSink{}
	sink := &gatedSink{Sink: inner, gate: gate}
	q := ingest.New(sink, ingest.Config{Capacity: 8, MaxBatch: 3, Workers: 1})
	defer q.Close()
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer releaseGate()

	var wg sync.WaitGroup
	submit := func(keys ...string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ups := make([]transport.Upload, len(keys))
			for i, k := range keys {
				ups[i] = up("ok", k)
			}
			if _, err := q.Submit(context.Background(), ups); err != nil {
				t.Error(err)
			}
		}()
	}
	submit("head") // parks the worker
	waitFor(t, func() bool { return sink.parked.Load() == 1 })
	submit("a1", "a2") // first group: 2 <= 3...
	waitFor(t, func() bool { return q.Stats().PendingBatches == 1 })
	submit("b1", "b2") // ...but adding this one would make 4 > 3: carried
	waitFor(t, func() bool { return q.Stats().PendingBatches == 2 })

	releaseGate()
	wg.Wait()
	sizes := func() []int {
		inner.mu.Lock()
		defer inner.mu.Unlock()
		out := make([]int, len(inner.batches))
		for i, b := range inner.batches {
			out[i] = len(b)
		}
		return out
	}()
	// head alone, then {a1,a2}, then the carried {b1,b2}.
	want := []int{1, 2, 2}
	if len(sizes) != len(want) {
		t.Fatalf("group sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("group[%d] = %d uploads, want %d (MaxBatch must hold)", i, sizes[i], want[i])
		}
	}
}

// TestPendingUploadBound: Capacity counts batch slots, but the memory
// backstop is MaxPendingUploads — submissions that would cross it are
// turned away with ErrQueueFull, and a batch that could never fit fails
// with ErrBatchTooLarge.
func TestPendingUploadBound(t *testing.T) {
	gate := make(chan struct{})
	sink := &gatedSink{Sink: &fakeSink{}, gate: gate}
	q := ingest.New(sink, ingest.Config{Capacity: 8, MaxBatch: 4, Workers: 1, MaxPendingUploads: 5})
	defer q.Close()
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer releaseGate()

	if _, err := q.Submit(context.Background(), []transport.Upload{
		up("ok", "g1"), up("ok", "g2"), up("ok", "g3"),
		up("ok", "g4"), up("ok", "g5"), up("ok", "g6"),
	}); !errors.Is(err, ingest.ErrBatchTooLarge) {
		t.Fatalf("oversized batch err = %v, want ErrBatchTooLarge", err)
	}

	done := make(chan error, 1)
	go func() {
		ups := make([]transport.Upload, 4)
		for i := range ups {
			ups[i] = up("ok", fmt.Sprintf("w%d", i))
		}
		_, err := q.Submit(context.Background(), ups)
		done <- err
	}()
	waitFor(t, func() bool { return sink.parked.Load() == 1 })

	// 4 of 5 pending-upload slots held by the parked batch: 2 more would
	// cross the bound even though 7 of 8 batch slots are free.
	if _, err := q.Submit(context.Background(), []transport.Upload{up("ok", "x1"), up("ok", "x2")}); !errors.Is(err, ingest.ErrQueueFull) {
		t.Fatalf("bound-crossing submit err = %v, want ErrQueueFull", err)
	}
	if q.Stats().Dropped != 2 {
		t.Errorf("dropped = %d, want 2", q.Stats().Dropped)
	}

	releaseGate()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCloseDrainsAndRejectsNewWork(t *testing.T) {
	sink := &fakeSink{}
	q := ingest.New(sink, ingest.Config{Capacity: 16, Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := q.Submit(context.Background(), []transport.Upload{up("ok", fmt.Sprint(i))}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	q.Close()
	q.Close() // idempotent
	if st := q.Stats(); st.Accepted != 10 || st.PendingUploads != 0 {
		t.Errorf("stats after close = %+v", st)
	}
	if _, err := q.Submit(context.Background(), []transport.Upload{up("ok", "late")}); !errors.Is(err, ingest.ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

// TestCloseContextDeadline: a drain stuck in the sink makes CloseContext
// give up with ctx.Err, while the workers finish in the background; once
// the sink unblocks, a second CloseContext observes the completed drain.
func TestCloseContextDeadline(t *testing.T) {
	gate := make(chan struct{})
	sink := &gatedSink{Sink: &fakeSink{}, gate: gate}
	q := ingest.New(sink, ingest.Config{Capacity: 2, Workers: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := q.Submit(context.Background(), []transport.Upload{up("ok", "x")}); err != nil {
			t.Error(err)
		}
	}()
	for sink.parked.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.CloseContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext with parked worker = %v, want DeadlineExceeded", err)
	}

	close(gate)
	wg.Wait()
	if err := q.CloseContext(context.Background()); err != nil {
		t.Fatalf("CloseContext after drain = %v", err)
	}
	if st := q.Stats(); st.Accepted != 1 {
		t.Errorf("stats after close = %+v", st)
	}
}

// TestSubmitContextCancelled: a cancelled caller is turned away before the
// enqueue with nothing admitted; a batch that made it into the queue is
// always committed and its verdicts delivered, even if the ctx fires while
// it waits — verdicts never go missing for admitted work.
func TestSubmitContextCancelled(t *testing.T) {
	gate := make(chan struct{})
	sink := &gatedSink{Sink: &fakeSink{}, gate: gate}
	q := ingest.New(sink, ingest.Config{Capacity: 2, Workers: 1})
	defer q.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Submit(ctx, []transport.Upload{up("ok", "x")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := q.Stats(); st.Accepted != 0 || st.PendingUploads != 0 {
		t.Errorf("cancelled submit admitted work: %+v", st)
	}

	// Cancelling mid-wait does not lose the verdicts: once the batch is in
	// (worker parked on it), the cancel is irrelevant — Submit returns the
	// commit's verdicts.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		for i := 0; i < 5000 && sink.parked.Load() == 0; i++ {
			time.Sleep(time.Millisecond)
		}
		cancel2()
		close(gate)
	}()
	errs, err := q.Submit(ctx2, []transport.Upload{up("ok", "y")})
	if err != nil || len(errs) != 1 || errs[0] != nil {
		t.Fatalf("submit racing a cancel = %v, %v; want committed verdicts", errs, err)
	}
	if st := q.Stats(); st.Accepted != 1 {
		t.Errorf("stats = %+v, want the in-flight batch committed", st)
	}
}

// TestBrokenSinkVerdicts: a sink returning the wrong number of verdicts
// must fail the whole group, not panic or mis-attribute results.
type brokenSink struct{}

func (brokenSink) SubmitBatch(ups []transport.Upload) []error { return nil }

func TestBrokenSinkVerdicts(t *testing.T) {
	q := ingest.New(brokenSink{}, ingest.Config{})
	defer q.Close()
	errs, err := q.Submit(context.Background(), []transport.Upload{up("ok", "a"), up("ok", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 || errs[0] == nil || errs[1] == nil {
		t.Errorf("verdicts = %v, want two errors", errs)
	}
}

// TestNoLossNoDupUnderBackpressure is the subsystem's integrity contract,
// run under -race in CI: concurrent producers push batches through a tiny
// queue into a journaled Hive, hitting ErrQueueFull and retrying; after a
// drain and a journal replay, the recovered Hive must hold exactly the
// acknowledged uploads — none lost, none duplicated.
func TestNoLossNoDupUnderBackpressure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hive.journal")
	h, j, err := hive.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterDevice(transport.DeviceInfo{ID: "d1", User: "alice", Sensors: []string{"gps"}}); err != nil {
		t.Fatal(err)
	}
	spec, _, err := h.PublishTask(transport.TaskSpec{
		Name: "ingest-race", Author: "lab", Script: "var x = 1;", PeriodSeconds: 60, Sensors: []string{"gps"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 — deterministic backpressure: park the drain worker, fill
	// the single slot, and prove a producer is turned away.
	gate := make(chan struct{})
	gated := &gatedSink{Sink: h, gate: gate}
	q := ingest.New(gated, ingest.Config{Capacity: 1, MaxBatch: 16, Workers: 2})
	defer q.Close() // idempotent; normally closed mid-test before replay
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer releaseGate()

	var (
		mu       sync.Mutex
		accepted = make(map[string]bool)
	)
	ack := func(keys []string, errs []error) {
		mu.Lock()
		defer mu.Unlock()
		for i, e := range errs {
			if e != nil {
				t.Errorf("upload %s rejected: %v", keys[i], e)
				continue
			}
			accepted[keys[i]] = true
		}
	}
	submitBatch := func(keys []string) {
		ups := make([]transport.Upload, len(keys))
		for i, k := range keys {
			ups[i] = up(spec.ID, k)
		}
		for {
			errs, err := q.Submit(context.Background(), ups)
			if errors.Is(err, ingest.ErrQueueFull) {
				time.Sleep(200 * time.Microsecond) // jittered enough by the scheduler
				continue
			}
			if err != nil {
				t.Error(err)
				return
			}
			ack(keys, errs)
			return
		}
	}

	var wg sync.WaitGroup
	park := func(key string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			submitBatch([]string{key})
		}()
	}
	// Sequenced so each batch lands where intended: park one worker, park
	// the other, and only then fill the single slot — otherwise an idle
	// worker could coalesce the slot filler into its own group and leave
	// the queue empty.
	park("parked-1")
	waitFor(t, func() bool { return gated.parked.Load() == 1 })
	park("parked-2")
	waitFor(t, func() bool { return gated.parked.Load() == 2 })
	park("slot")
	waitFor(t, func() bool { return q.Stats().PendingBatches == 1 })
	if _, err := q.Submit(context.Background(), []transport.Upload{up(spec.ID, "turned-away")}); !errors.Is(err, ingest.ErrQueueFull) {
		t.Fatalf("saturated queue err = %v, want ErrQueueFull", err)
	}

	// Phase 2 — storm: concurrent producers with retry, workers draining
	// and group-committing to the journal the whole time.
	releaseGate()
	const producers, batchesPerProducer, perBatch = 8, 12, 5
	var fulls atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batchesPerProducer; b++ {
				keys := make([]string, perBatch)
				for i := range keys {
					keys[i] = fmt.Sprintf("p%d-b%d-i%d", p, b, i)
				}
				ups := make([]transport.Upload, len(keys))
				for i, k := range keys {
					ups[i] = up(spec.ID, k)
				}
				for {
					errs, err := q.Submit(context.Background(), ups)
					if errors.Is(err, ingest.ErrQueueFull) {
						fulls.Add(1)
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					ack(keys, errs)
					break
				}
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("storm: %d ErrQueueFull rejections retried", fulls.Load())

	const want = 3 + producers*batchesPerProducer*perBatch
	if len(accepted) != want {
		t.Fatalf("acknowledged %d uploads, want %d", len(accepted), want)
	}

	// Phase 3 — replay: the journal must restore exactly the acknowledged
	// set.
	h2, j2, err := hive.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ups, err := h2.Uploads(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(ups))
	for _, u := range ups {
		key, _ := u.Records[0].Data["key"].(string)
		if seen[key] {
			t.Errorf("duplicated upload %q after replay", key)
		}
		seen[key] = true
		if !accepted[key] {
			t.Errorf("replayed upload %q was never acknowledged", key)
		}
	}
	for key := range accepted {
		if !seen[key] {
			t.Errorf("acknowledged upload %q lost after replay", key)
		}
	}
	if len(ups) != want {
		t.Errorf("replayed %d uploads, want %d", len(ups), want)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
