package ingest

import (
	"time"

	"apisense/internal/obs"
)

// Metrics instruments a Queue on an obs.Registry. Build one with
// NewMetrics and hand it to Config.Metrics; a nil *Metrics disables every
// hook at zero cost (all methods are nil-receiver-safe), so the zero
// Config stays allocation-free.
//
// Concurrency: Metrics is immutable after NewMetrics; its observe hooks
// are called concurrently by drain workers and delegate to obs atomics.
type Metrics struct {
	reg          *obs.Registry
	drainSeconds *obs.Histogram
	groupSize    *obs.Histogram
}

// NewMetrics registers the ingestion instrument families on reg and
// returns the hook to put in Config.Metrics. Nil-safe: a nil registry
// yields a nil *Metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg: reg,
		drainSeconds: reg.Histogram("apisense_ingest_drain_seconds",
			"Latency of one group commit: sink admission plus journal append and fsync.",
			obs.LatencyBuckets),
		groupSize: reg.Histogram("apisense_ingest_group_size_uploads",
			"Uploads coalesced into one group commit; the mean is the achieved coalescing factor.",
			obs.SizeBuckets),
	}
}

// start samples the wall clock for observeDrain; the zero time (and no
// clock read at all) on a nil receiver.
func (m *Metrics) start() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeDrain records one group commit of n uploads that started at
// start. No-op on a nil receiver.
func (m *Metrics) observeDrain(start time.Time, n int) {
	if m == nil {
		return
	}
	m.drainSeconds.Observe(time.Since(start).Seconds())
	m.groupSize.Observe(float64(n))
}

// bindQueue registers the queue-backed gauge and counter callbacks —
// depth, capacity, accepted/rejected/dropped and drained group commits.
// Called by New; one queue per registry (a second bind panics, see
// obs.Registry.GaugeFunc). No-op on a nil receiver.
func (m *Metrics) bindQueue(q *Queue) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("apisense_ingest_pending_uploads",
		"Uploads currently queued across all batch slots (queue depth).",
		func() float64 { return float64(q.depth.Load()) })
	m.reg.GaugeFunc("apisense_ingest_pending_batches",
		"Batch slots currently occupied.",
		func() float64 { return float64(len(q.ch)) })
	m.reg.GaugeFunc("apisense_ingest_capacity_batches",
		"Configured batch slots (Config.Capacity).",
		func() float64 { return float64(q.cfg.Capacity) })
	m.reg.CounterFunc("apisense_ingest_uploads_accepted_total",
		"Uploads accepted by the sink across all drained group commits.",
		func() float64 { return float64(q.accepted.Load()) })
	m.reg.CounterFunc("apisense_ingest_uploads_rejected_total",
		"Uploads rejected by the sink across all drained group commits.",
		func() float64 { return float64(q.rejected.Load()) })
	m.reg.CounterFunc("apisense_ingest_uploads_dropped_total",
		"Uploads refused at the door with ingest.queue_full (never entered the queue).",
		func() float64 { return float64(q.dropped.Load()) })
	m.reg.CounterFunc("apisense_ingest_group_commits_total",
		"Sink calls — group commits. Accepted divided by this is the coalescing factor.",
		func() float64 { return float64(q.batches.Load()) })
}
