package lppm

import (
	"fmt"
	"math"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// GeoInd implements geo-indistinguishability (Andrés et al., CCS 2013): each
// fix is perturbed with planar Laplace noise of privacy parameter Epsilon
// (in 1/metres). It is the "recent state-of-the-art protection mechanism"
// of the paper's claim C1: strong guarantees per fix, but repeated dwells
// average the noise out, so points of interest survive.
//
// The noise radius follows the distribution with density ε²·r·e^(−εr), i.e.
// a Gamma(2, rate ε) variable, sampled exactly as the sum of two
// exponentials; the angle is uniform. The expected displacement is 2/ε.
type GeoInd struct {
	// Epsilon is the privacy parameter in 1/metres. Smaller means more
	// privacy (more noise).
	Epsilon float64
	// Seed drives the deterministic noise streams.
	Seed uint64
}

var _ Mechanism = (*GeoInd)(nil)

// NewGeoInd returns a geo-indistinguishability mechanism.
func NewGeoInd(epsilon float64, seed uint64) (*GeoInd, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("lppm: geoind epsilon must be positive and finite, got %v", epsilon)
	}
	return &GeoInd{Epsilon: epsilon, Seed: seed}, nil
}

// Name implements Mechanism.
func (g *GeoInd) Name() string { return fmt.Sprintf("geoind(eps=%g)", g.Epsilon) }

// Protect implements Mechanism.
func (g *GeoInd) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	rng := trajectoryRNG(g.Seed, t)
	out := t.Clone()
	for i := range out.Records {
		// Gamma(2, eps) radius: sum of two Exp(eps) draws.
		u1 := rng.Float64()
		u2 := rng.Float64()
		for u1 == 0 {
			u1 = rng.Float64()
		}
		for u2 == 0 {
			u2 = rng.Float64()
		}
		r := -(math.Log(u1) + math.Log(u2)) / g.Epsilon
		theta := rng.Float64() * 2 * math.Pi
		out.Records[i].Pos = geo.Translate(out.Records[i].Pos, r*math.Cos(theta), r*math.Sin(theta))
	}
	return out, nil
}

// GaussianNoise perturbs every fix with isotropic Gaussian noise of the
// given standard deviation in metres. It is the naive obfuscation baseline.
type GaussianNoise struct {
	// Sigma is the per-axis standard deviation in metres.
	Sigma float64
	// Seed drives the deterministic noise streams.
	Seed uint64
}

var _ Mechanism = (*GaussianNoise)(nil)

// NewGaussianNoise returns a Gaussian perturbation mechanism.
func NewGaussianNoise(sigma float64, seed uint64) (*GaussianNoise, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("lppm: gaussian sigma must be positive and finite, got %v", sigma)
	}
	return &GaussianNoise{Sigma: sigma, Seed: seed}, nil
}

// Name implements Mechanism.
func (g *GaussianNoise) Name() string { return fmt.Sprintf("gaussian(sigma=%g)", g.Sigma) }

// Protect implements Mechanism.
func (g *GaussianNoise) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	rng := trajectoryRNG(g.Seed, t)
	out := t.Clone()
	for i := range out.Records {
		out.Records[i].Pos = geo.Translate(out.Records[i].Pos,
			rng.NormFloat64()*g.Sigma, rng.NormFloat64()*g.Sigma)
	}
	return out, nil
}
