package lppm

import (
	"fmt"
	"math"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// Simplify is the path-generalisation baseline: Douglas-Peucker polyline
// simplification keeps only the records needed to describe the path within
// Tolerance metres. Unlike noise mechanisms it never displaces a released
// fix; unlike speed smoothing it keeps original timestamps. It fails as a
// privacy mechanism: the kept corner points sit exactly at the sensitive
// places (presence leaks verbatim), and on noisy data the dwell envelope
// survives simplification, so stay-point attacks keep working. It earns
// its place in the portfolio as the compression/generalisation baseline.
type Simplify struct {
	// Tolerance is the maximum path deviation in metres.
	Tolerance float64
}

var _ Mechanism = (*Simplify)(nil)

// NewSimplify returns a Douglas-Peucker generalisation mechanism.
func NewSimplify(tolerance float64) (*Simplify, error) {
	if tolerance <= 0 || math.IsNaN(tolerance) || math.IsInf(tolerance, 0) {
		return nil, fmt.Errorf("lppm: simplify tolerance must be positive and finite, got %v", tolerance)
	}
	return &Simplify{Tolerance: tolerance}, nil
}

// Name implements Mechanism.
func (s *Simplify) Name() string { return fmt.Sprintf("simplify(tol=%g)", s.Tolerance) }

// Protect implements Mechanism.
func (s *Simplify) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	out := &trace.Trajectory{User: t.User}
	if t.Len() == 0 {
		return out, nil
	}
	kept := geo.SimplifyIndices(t.Points(), s.Tolerance)
	out.Records = make([]trace.Record, len(kept))
	for i, idx := range kept {
		out.Records[i] = t.Records[idx]
	}
	return out, nil
}
