package lppm

import (
	"fmt"
	"math"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// SpeedSmoothing is the anonymisation strategy PRIVAPI contributes (§3 of
// the paper, later published by the same authors as Promesse): it re-samples
// a trajectory — typically one day of data — so that the released trace
// moves at constant speed along the original path. The spatial shape of the
// trajectory is preserved (supporting crowd-density and traffic analyses,
// claim C3) while the dwell-time signal that reveals where the user stopped
// is erased (claim C2).
//
// The algorithm has three phases:
//
//  1. spatial resampling: emit interpolated positions every Epsilon metres
//     of arc length along the original polyline;
//  2. extremity trimming: drop the first and last Trim resampled points,
//     hiding the origin and destination (usually the user's home);
//  3. temporal flattening: reassign timestamps uniformly between the
//     original start and end instants.
//
// Trajectories whose path is too short to yield at least two points after
// trimming are suppressed from the release (a user who never moved cannot
// have their stop hidden any other way).
type SpeedSmoothing struct {
	// Epsilon is the spatial resampling step in metres (default 100).
	Epsilon float64
	// Trim is the number of resampled points dropped at each extremity
	// (default 2).
	Trim int
}

var _ Mechanism = (*SpeedSmoothing)(nil)

// NewSpeedSmoothing returns a speed-smoothing mechanism with the given
// resampling step in metres. trim < 0 selects the default (2).
func NewSpeedSmoothing(epsilon float64, trim int) (*SpeedSmoothing, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("lppm: smoothing epsilon must be positive and finite, got %v", epsilon)
	}
	if trim < 0 {
		trim = 2
	}
	return &SpeedSmoothing{Epsilon: epsilon, Trim: trim}, nil
}

// Name implements Mechanism.
func (s *SpeedSmoothing) Name() string {
	return fmt.Sprintf("smoothing(eps=%g,trim=%d)", s.Epsilon, s.Trim)
}

// Protect implements Mechanism.
func (s *SpeedSmoothing) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	out := &trace.Trajectory{User: t.User}
	if t.Len() < 2 {
		return out, nil // nothing to smooth: suppress
	}
	pts := resampleArcLength(t.Records, s.Epsilon)
	if len(pts) <= 2*s.Trim+1 {
		return out, nil // too short after trimming: suppress
	}
	pts = pts[s.Trim : len(pts)-s.Trim]

	start := t.Records[0].Time
	span := t.Records[len(t.Records)-1].Time.Sub(start)
	n := len(pts)
	out.Records = make([]trace.Record, n)
	for i, p := range pts {
		var ts time.Time
		if n == 1 {
			ts = start.Add(span / 2)
		} else {
			ts = start.Add(time.Duration(float64(span) * float64(i) / float64(n-1)))
		}
		out.Records[i] = trace.Record{Time: ts, Pos: p}
	}
	return out, nil
}

// resampleArcLength walks the polyline defined by recs and returns
// interpolated positions at arc lengths eps, 2*eps, 3*eps, ...
func resampleArcLength(recs []trace.Record, eps float64) []geo.Point {
	var out []geo.Point
	target := eps
	var acc float64
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1].Pos, recs[i].Pos
		d := geo.Distance(a, b)
		for d > 0 && target <= acc+d {
			frac := (target - acc) / d
			out = append(out, geo.Lerp(a, b, frac))
			target += eps
		}
		acc += d
	}
	return out
}
