package lppm_test

import (
	"fmt"
	"time"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/trace"
)

// ExampleSpeedSmoothing demonstrates the paper's algorithm on a toy day:
// a long dwell followed by a trip becomes a constant-speed trace.
func ExampleSpeedSmoothing() {
	home := geo.Point{Lat: 45.7640, Lon: 4.8357}
	start := time.Date(2014, 12, 8, 0, 0, 0, 0, time.UTC)

	day := &trace.Trajectory{User: "alice"}
	// Eight hours parked at home...
	for i := 0; i < 8*60; i++ {
		day.Records = append(day.Records, trace.Record{
			Time: start.Add(time.Duration(i) * time.Minute), Pos: home,
		})
	}
	// ...then a 6 km trip east over one hour.
	for i := 0; i <= 60; i++ {
		day.Records = append(day.Records, trace.Record{
			Time: start.Add(8*time.Hour + time.Duration(i)*time.Minute),
			Pos:  geo.Translate(home, float64(i)*100, 0),
		})
	}

	smoothing, err := lppm.NewSpeedSmoothing(500, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	released, err := smoothing.Protect(day)
	if err != nil {
		fmt.Println(err)
		return
	}
	gap := released.Records[1].Time.Sub(released.Records[0].Time)
	fmt.Printf("mechanism: %s\n", smoothing.Name())
	fmt.Printf("input: %d fixes over %s, 8h of them parked\n", day.Len(), day.Duration())
	fmt.Printf("release: %d fixes, uniform %s apart — the dwell is gone\n",
		released.Len(), gap.Round(time.Minute))
	// Output:
	// mechanism: smoothing(eps=500,trim=1)
	// input: 541 fixes over 9h0m0s, 8h of them parked
	// release: 10 fixes, uniform 1h0m0s apart — the dwell is gone
}

// ExampleFromSpec shows the textual mechanism specs used by the privapi
// command-line tool and task manifests.
func ExampleFromSpec() {
	for _, spec := range []string{"smoothing:eps=100", "geoind:eps=0.01", "cloaking:cell=400"} {
		m, err := lppm.FromSpec(spec)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Println(m.Name())
	}
	// Output:
	// smoothing(eps=100,trim=2)
	// geoind(eps=0.01)
	// cloaking(cell=400)
}
