package lppm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// randomWalk builds a seeded random-walk trajectory for property tests.
func randomWalk(seed uint64, n int) *trace.Trajectory {
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	tr := &trace.Trajectory{User: "walker"}
	pos := lyon
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time: t0.Add(time.Duration(i) * time.Minute),
			Pos:  pos,
		})
		pos = geo.Translate(pos, rng.NormFloat64()*80, rng.NormFloat64()*80)
	}
	return tr
}

// TestSmoothingUniformGapsProperty checks the defining invariant on random
// walks: released timestamps are uniformly spaced and consecutive points
// are never further apart than the resampling step.
func TestSmoothingUniformGapsProperty(t *testing.T) {
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		tr := randomWalk(seed%1000, 200)
		out, err := s.Protect(tr)
		if err != nil {
			return false
		}
		if out.Len() < 2 {
			return true // suppressed: nothing to check
		}
		gap := out.Records[1].Time.Sub(out.Records[0].Time)
		for i := 2; i < out.Len(); i++ {
			g := out.Records[i].Time.Sub(out.Records[i-1].Time)
			if d := g - gap; d < -time.Second || d > time.Second {
				return false
			}
		}
		for i := 1; i < out.Len(); i++ {
			if geo.Distance(out.Records[i-1].Pos, out.Records[i].Pos) > 100*1.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSmoothingOutputInsideInputSpan checks released timestamps never leave
// the original time window (property over random walks).
func TestSmoothingOutputInsideInputSpan(t *testing.T) {
	s, err := NewSpeedSmoothing(150, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		tr := randomWalk(seed%1000+7, 150)
		out, err := s.Protect(tr)
		if err != nil || out.Len() == 0 {
			return err == nil
		}
		start := tr.Records[0].Time
		end := tr.Records[tr.Len()-1].Time
		first, _ := out.Start()
		last, _ := out.End()
		return !first.Before(start) && !last.After(end)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSmoothingTrimAblation quantifies the DESIGN.md §5 ablation: without
// endpoint trimming the first released point sits within one step of the
// origin (usually home); with trimming it is pushed away.
func TestSmoothingTrimAblation(t *testing.T) {
	tr, home, _ := dayWithStops()

	noTrim, err := NewSpeedSmoothing(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := NewSpeedSmoothing(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	outNo, err := noTrim.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	outTrim, err := trimmed.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	dNo := geo.Distance(outNo.Records[0].Pos, home)
	dTrim := geo.Distance(outTrim.Records[0].Pos, home)
	if dNo > 150 {
		t.Errorf("untrimmed first point is %f m from home, expected leak within ~100 m", dNo)
	}
	if dTrim < dNo+150 {
		t.Errorf("trimmed first point (%f m) should be well beyond untrimmed (%f m)", dTrim, dNo)
	}
	// Trimming costs exactly 2*trim released points.
	if outNo.Len()-outTrim.Len() != 6 {
		t.Errorf("trim=3 removed %d points, want 6", outNo.Len()-outTrim.Len())
	}
}

// TestGeoIndRadiusDistribution verifies the planar-Laplace radius follows
// Gamma(2, eps): both the mean (2/eps) and the CDF at the mean
// (1 - 3e^-2 ~ 0.594) must match.
func TestGeoIndRadiusDistribution(t *testing.T) {
	const eps = 0.02 // mean 100 m
	g, err := NewGeoInd(eps, 99)
	if err != nil {
		t.Fatal(err)
	}
	tr := walk("alice", 20000, 1, time.Second)
	out, err := g.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	below := 0
	for i := range out.Records {
		d := geo.Distance(tr.Records[i].Pos, out.Records[i].Pos)
		sum += d
		if d <= 100 {
			below++
		}
	}
	n := float64(out.Len())
	if mean := sum / n; mean < 95 || mean > 105 {
		t.Errorf("mean radius = %f, want ~100", mean)
	}
	// P(R <= mean) for Gamma(2): 1 - 3*exp(-2) = 0.5940
	if frac := float64(below) / n; frac < 0.57 || frac > 0.62 {
		t.Errorf("P(R <= mean) = %f, want ~0.594", frac)
	}
}

// TestMechanismsPreserveUserAndCount documents which mechanisms preserve
// record counts (per-point transforms) and which change them (resampling).
func TestMechanismsPreserveUserAndCount(t *testing.T) {
	tr := randomWalk(3, 300)
	gi, err := NewGeoInd(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCloaking(400, lyon)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := NewGaussianNoise(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	pointwise := []Mechanism{Identity{}, gi, cl, gs}
	for _, m := range pointwise {
		out, err := m.Protect(tr)
		if err != nil {
			t.Fatal(err)
		}
		if out.User != tr.User {
			t.Errorf("%s changed user to %q", m.Name(), out.User)
		}
		if out.Len() != tr.Len() {
			t.Errorf("%s changed record count %d -> %d", m.Name(), tr.Len(), out.Len())
		}
		// Timestamps unchanged for point-wise mechanisms.
		for i := range out.Records {
			if !out.Records[i].Time.Equal(tr.Records[i].Time) {
				t.Fatalf("%s changed timestamp %d", m.Name(), i)
			}
		}
	}
	sm, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sm.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.User != tr.User {
		t.Errorf("smoothing changed user to %q", out.User)
	}
	if out.Len() == tr.Len() {
		t.Error("smoothing should resample (different record count expected)")
	}
}
