package lppm

import (
	"fmt"
	"math"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// Cloaking snaps every fix to the centre of a fixed square grid cell
// (spatial cloaking / coordinate rounding). The grid is anchored at a fixed
// origin so that all users and all releases share cell boundaries.
type Cloaking struct {
	// CellSize is the grid cell edge in metres.
	CellSize float64
	// Origin anchors the grid. The zero value anchors at (0, 0).
	Origin geo.Point

	proj *geo.Projection
}

var _ Mechanism = (*Cloaking)(nil)

// NewCloaking returns a spatial cloaking mechanism with the given cell size
// in metres, anchored at origin.
func NewCloaking(cellSize float64, origin geo.Point) (*Cloaking, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("lppm: cloaking cell size must be positive and finite, got %v", cellSize)
	}
	return &Cloaking{CellSize: cellSize, Origin: origin, proj: geo.NewProjection(origin)}, nil
}

// Name implements Mechanism.
func (c *Cloaking) Name() string { return fmt.Sprintf("cloaking(cell=%g)", c.CellSize) }

// Protect implements Mechanism.
func (c *Cloaking) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	out := t.Clone()
	for i := range out.Records {
		xy := c.proj.Forward(out.Records[i].Pos)
		xy.X = (math.Floor(xy.X/c.CellSize) + 0.5) * c.CellSize
		xy.Y = (math.Floor(xy.Y/c.CellSize) + 0.5) * c.CellSize
		out.Records[i].Pos = c.proj.Inverse(xy)
	}
	return out, nil
}

// Downsample keeps one record out of every Factor, reducing temporal
// resolution. It is the data-minimisation baseline: it thins the data
// without displacing it.
type Downsample struct {
	// Factor keeps every Factor-th record (Factor >= 1).
	Factor int
}

var _ Mechanism = (*Downsample)(nil)

// NewDownsample returns a temporal downsampling mechanism.
func NewDownsample(factor int) (*Downsample, error) {
	if factor < 1 {
		return nil, fmt.Errorf("lppm: downsample factor must be >= 1, got %d", factor)
	}
	return &Downsample{Factor: factor}, nil
}

// Name implements Mechanism.
func (d *Downsample) Name() string { return fmt.Sprintf("downsample(k=%d)", d.Factor) }

// Protect implements Mechanism.
func (d *Downsample) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	out := &trace.Trajectory{User: t.User}
	for i := 0; i < len(t.Records); i += d.Factor {
		out.Records = append(out.Records, t.Records[i])
	}
	return out, nil
}

// Compose chains mechanisms: the output of one is the input of the next.
type Compose struct {
	Mechanisms []Mechanism
}

var _ Mechanism = (*Compose)(nil)

// NewCompose returns the chained mechanism. At least one stage is required.
func NewCompose(ms ...Mechanism) (*Compose, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("lppm: compose needs at least one mechanism")
	}
	return &Compose{Mechanisms: ms}, nil
}

// Name implements Mechanism.
func (c *Compose) Name() string {
	name := "compose("
	for i, m := range c.Mechanisms {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + ")"
}

// Protect implements Mechanism.
func (c *Compose) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	cur := t
	for _, m := range c.Mechanisms {
		next, err := m.Protect(cur)
		if err != nil {
			return nil, fmt.Errorf("lppm: compose stage %s: %w", m.Name(), err)
		}
		cur = next
		if cur.Len() == 0 {
			break
		}
	}
	if cur == t {
		cur = t.Clone()
	}
	return cur, nil
}

// TimeShift shifts all timestamps by a constant offset; used in tests and to
// decouple release time from collection time.
type TimeShift struct {
	Offset time.Duration
}

var _ Mechanism = (*TimeShift)(nil)

// Name implements Mechanism.
func (s *TimeShift) Name() string { return fmt.Sprintf("timeshift(%s)", s.Offset) }

// Protect implements Mechanism.
func (s *TimeShift) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	out := t.Clone()
	for i := range out.Records {
		out.Records[i].Time = out.Records[i].Time.Add(s.Offset)
	}
	return out, nil
}
