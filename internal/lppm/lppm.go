// Package lppm implements Location Privacy Protection Mechanisms (LPPMs).
//
// It contains the paper's contribution — SpeedSmoothing, the strategy PRIVAPI
// ships (§3): resample a trajectory so that speed is constant, which erases
// the dwell signal revealing points of interest — together with the
// state-of-the-art baseline the paper's claim C1 targets
// (geo-indistinguishability, planar Laplace noise) and three classic
// baselines: spatial cloaking, Gaussian perturbation and temporal
// downsampling.
//
// All mechanisms are deterministic for a fixed seed: the random stream used
// for a trajectory is derived from the mechanism seed and the trajectory
// identity, so results do not depend on dataset ordering or concurrency.
package lppm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"runtime"

	"apisense/internal/par"
	"apisense/internal/trace"
)

// Mechanism transforms a single trajectory into its protected counterpart.
// Implementations must not mutate the input and must be safe for concurrent
// Protect calls (all built-in mechanisms are immutable after construction).
// A returned trajectory with zero records means the trajectory is suppressed
// from the release.
type Mechanism interface {
	// Name returns a short stable identifier (used in reports and specs).
	Name() string
	// Protect returns the protected version of t.
	Protect(t *trace.Trajectory) (*trace.Trajectory, error)
}

// ProtectDataset applies m to every trajectory of d and returns the
// protected dataset. Suppressed (empty) trajectories are omitted. It is
// equivalent to ProtectDatasetContext with a background context and one
// worker per CPU.
func ProtectDataset(m Mechanism, d *trace.Dataset) (*trace.Dataset, error) {
	//lint:allow ctxflow convenience wrapper, ProtectDatasetContext is the cancellable form
	return ProtectDatasetContext(context.Background(), m, d, runtime.GOMAXPROCS(0))
}

// ProtectDatasetContext applies m to every trajectory of d on up to
// parallelism worker goroutines and returns the protected dataset.
// Trajectories are embarrassingly parallel: every mechanism derives its
// random stream from the mechanism seed and the trajectory identity (see
// trajectoryRNG), so the output is byte-identical for any parallelism and
// trajectory order is preserved. Suppressed (empty) trajectories are
// omitted. parallelism <= 0 selects runtime.GOMAXPROCS(0). The context is
// checked between trajectories; on cancellation the first ctx error is
// returned.
func ProtectDatasetContext(ctx context.Context, m Mechanism, d *trace.Dataset, parallelism int) (*trace.Dataset, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	n := len(d.Trajectories)
	protected := make([]*trace.Trajectory, n)
	err := par.For(ctx, n, parallelism, func(_ context.Context, i int) error {
		t := d.Trajectories[i]
		p, err := m.Protect(t)
		if err != nil {
			return protectErr(m, i, t, err)
		}
		protected[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := trace.NewDataset()
	for _, p := range protected {
		if p.Len() > 0 {
			out.Add(p)
		}
	}
	return out, nil
}

func protectErr(m Mechanism, i int, t *trace.Trajectory, err error) error {
	return fmt.Errorf("lppm: %s on trajectory %d (user %s): %w", m.Name(), i, t.User, err)
}

// Identity is the no-op mechanism: it releases the data as-is. It serves as
// the "no protection" row of every experiment.
type Identity struct{}

var _ Mechanism = Identity{}

// Name implements Mechanism.
func (Identity) Name() string { return "identity" }

// Protect implements Mechanism.
func (Identity) Protect(t *trace.Trajectory) (*trace.Trajectory, error) {
	return t.Clone(), nil
}

// trajectoryRNG derives a deterministic random stream for trajectory t from
// the mechanism seed. Two trajectories with different users or start times
// get independent streams.
func trajectoryRNG(seed uint64, t *trace.Trajectory) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(t.User))
	if len(t.Records) > 0 {
		var buf [8]byte
		n := t.Records[0].Time.UnixNano()
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		h.Write(buf[:])
	}
	return rand.New(rand.NewPCG(seed, h.Sum64()))
}
