package lppm

import (
	"math"
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/poi"
	"apisense/internal/trace"
)

// dayWithStops builds a realistic day: home dwell, commute, office dwell,
// commute back, home dwell — one fix a minute.
func dayWithStops() (*trace.Trajectory, geo.Point, geo.Point) {
	home := lyon
	work := geo.Translate(lyon, 4000, 2000)
	tr := &trace.Trajectory{User: "alice"}
	ts := time.Date(2014, 12, 8, 0, 0, 0, 0, time.UTC)
	stay := func(at geo.Point, d time.Duration) {
		for end := ts.Add(d); ts.Before(end); ts = ts.Add(time.Minute) {
			tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: at})
		}
	}
	move := func(from, to geo.Point, speed float64) {
		dist := geo.Distance(from, to)
		dur := time.Duration(dist / speed * float64(time.Second))
		start := ts
		for end := ts.Add(dur); ts.Before(end); ts = ts.Add(time.Minute) {
			frac := float64(ts.Sub(start)) / float64(dur)
			tr.Records = append(tr.Records, trace.Record{Time: ts, Pos: geo.Lerp(from, to, frac)})
		}
	}
	stay(home, 8*time.Hour)
	move(home, work, 10)
	stay(work, 8*time.Hour)
	move(work, home, 10)
	stay(home, 7*time.Hour)
	return tr, home, work
}

func TestSmoothingValidation(t *testing.T) {
	for _, eps := range []float64{0, -10, math.NaN(), math.Inf(1)} {
		if _, err := NewSpeedSmoothing(eps, 0); err == nil {
			t.Errorf("NewSpeedSmoothing(%v) should fail", eps)
		}
	}
	s, err := NewSpeedSmoothing(100, -1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trim != 2 {
		t.Errorf("negative trim should select default 2, got %d", s.Trim)
	}
}

func TestSmoothingConstantSpeed(t *testing.T) {
	tr, _, _ := dayWithStops()
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < 10 {
		t.Fatalf("smoothed trajectory too short: %d", out.Len())
	}
	// Time gaps must be uniform.
	gap0 := out.Records[1].Time.Sub(out.Records[0].Time)
	for i := 2; i < out.Len(); i++ {
		gap := out.Records[i].Time.Sub(out.Records[i-1].Time)
		if d := gap - gap0; d < -time.Second || d > time.Second {
			t.Fatalf("gap %d = %v, want ~%v", i, gap, gap0)
		}
	}
	// Consecutive points are at most Epsilon apart (straight-line distance
	// can be shorter on curves, never longer).
	for i := 1; i < out.Len(); i++ {
		if d := geo.Distance(out.Records[i-1].Pos, out.Records[i].Pos); d > 100*1.01 {
			t.Fatalf("segment %d spans %f m > epsilon", i, d)
		}
	}
}

func TestSmoothingErasesDwellTime(t *testing.T) {
	// The defining property: after smoothing, the user spends no more time
	// near their true stops than near any other point of the path.
	tr, home, work := dayWithStops()
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	timeNear := func(target geo.Point, radius float64) time.Duration {
		var total time.Duration
		for i := 1; i < out.Len(); i++ {
			if geo.Distance(out.Records[i].Pos, target) <= radius {
				total += out.Records[i].Time.Sub(out.Records[i-1].Time)
			}
		}
		return total
	}
	// Raw data: 15h at home, 8h at work. Smoothed: time near any place is
	// proportional to path length through it. Total path ~12.3 km, so a
	// 250 m disc sees <= ~500 m of path: about 4% of the day (~1h).
	span := out.Records[out.Len()-1].Time.Sub(out.Records[0].Time)
	for _, site := range []struct {
		name string
		pos  geo.Point
	}{{"home", home}, {"work", work}} {
		near := timeNear(site.pos, 250)
		if frac := float64(near) / float64(span); frac > 0.10 {
			t.Errorf("smoothed trace spends %.1f%% of time near %s, want <10%%",
				frac*100, site.name)
		}
	}
}

func TestSmoothingDefeatsStayPointAttackSemantics(t *testing.T) {
	// Stay-point extraction on smoothed data must not single out the true
	// stops: extracted "POIs" (if any) are spread along the path, so
	// precision against the two true stops collapses.
	tr, home, work := dayWithStops()
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := poi.NewStayPoints(poi.StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rawPOIs := poi.Merge(sp.Extract(tr), 250)
	if len(rawPOIs) != 2 {
		t.Fatalf("raw extraction found %d POIs, want 2", len(rawPOIs))
	}
	smoothPOIs := sp.Extract(out)
	if len(smoothPOIs) == 0 {
		return // perfect hiding
	}
	hits := 0
	for _, p := range smoothPOIs {
		if geo.Distance(p.Center, home) < 250 || geo.Distance(p.Center, work) < 250 {
			hits++
		}
	}
	precision := float64(hits) / float64(len(smoothPOIs))
	if precision > 0.35 {
		t.Errorf("stay-point precision on smoothed data = %.2f (%d/%d), want < 0.35",
			precision, hits, len(smoothPOIs))
	}
}

func TestSmoothingSuppressesStationaryTrajectory(t *testing.T) {
	// A user who never leaves home cannot be protected by smoothing: the
	// trajectory must be suppressed.
	tr := &trace.Trajectory{User: "static"}
	ts := time.Date(2014, 12, 8, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, trace.Record{Time: ts.Add(time.Duration(i) * time.Minute), Pos: lyon})
	}
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("stationary trajectory released with %d records, want suppression", out.Len())
	}
}

func TestSmoothingSuppressesTinyInputs(t *testing.T) {
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 2; n++ {
		tr := walk("tiny", n, 1, time.Minute)
		out, err := s.Protect(tr)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 0 {
			t.Errorf("n=%d: released %d records, want 0", n, out.Len())
		}
	}
}

func TestSmoothingTrimsEndpoints(t *testing.T) {
	// The first and last released positions must be at least Trim*Epsilon
	// of arc away from the true origin/destination.
	tr, home, _ := dayWithStops()
	s, err := NewSpeedSmoothing(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if d := geo.Distance(out.Records[0].Pos, home); d < 250 {
		t.Errorf("first released point is %f m from home, want >= ~300", d)
	}
	if d := geo.Distance(out.Records[out.Len()-1].Pos, home); d < 250 {
		t.Errorf("last released point is %f m from home, want >= ~300", d)
	}
}

func TestSmoothingPreservesPathShape(t *testing.T) {
	// Every released point must lie on (within metres of) the original
	// path — smoothing moves time, not space.
	tr, _, _ := dayWithStops()
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Records {
		best := math.Inf(1)
		for j := 1; j < tr.Len(); j++ {
			d := distToSegment(r.Pos, tr.Records[j-1].Pos, tr.Records[j].Pos)
			if d < best {
				best = d
			}
		}
		if best > 5 {
			t.Fatalf("released point %d is %f m off the original path", i, best)
		}
	}
}

func TestSmoothingDoesNotMutateInput(t *testing.T) {
	tr, _, _ := dayWithStops()
	before := tr.Clone()
	s, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Protect(tr); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if tr.Records[i] != before.Records[i] {
			t.Fatal("Protect mutated its input")
		}
	}
}

// distToSegment returns the distance from p to segment [a,b] using the local
// planar projection.
func distToSegment(p, a, b geo.Point) float64 {
	pr := geo.NewProjection(a)
	pp := pr.Forward(p)
	aa := pr.Forward(a)
	bb := pr.Forward(b)
	abx, aby := bb.X-aa.X, bb.Y-aa.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return geo.Dist(pp, aa)
	}
	t := ((pp.X-aa.X)*abx + (pp.Y-aa.Y)*aby) / l2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return geo.Dist(pp, geo.XY{X: aa.X + t*abx, Y: aa.Y + t*aby})
}
