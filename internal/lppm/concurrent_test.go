package lppm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// concurrencyFixture builds a dataset large enough to exercise the worker
// pool: 40 trajectories of 50 fixes each, including two too short to
// survive smoothing (suppression must not disturb output order).
func concurrencyFixture() *trace.Dataset {
	ds := trace.NewDataset()
	base := time.Date(2014, 5, 1, 8, 0, 0, 0, time.UTC)
	for u := 0; u < 40; u++ {
		tr := &trace.Trajectory{User: fmt.Sprintf("user-%02d", u)}
		n := 50
		if u%17 == 0 {
			n = 1 // suppressed by smoothing (needs >= 2 records)
		}
		for i := 0; i < n; i++ {
			tr.Records = append(tr.Records, trace.Record{
				Time: base.Add(time.Duration(i) * 30 * time.Second),
				Pos: geo.Point{
					Lat: 45.76 + float64(u)*0.001 + float64(i)*0.0001,
					Lon: 4.83 + float64(u)*0.001,
				},
			})
		}
		ds.Add(tr)
	}
	return ds
}

// TestProtectDatasetContextMatchesSequential: for every built-in mechanism
// the parallel output must be byte-identical to the sequential one, with
// trajectory order preserved. Run under -race this also proves the
// mechanisms are safe for concurrent Protect calls.
func TestProtectDatasetContextMatchesSequential(t *testing.T) {
	ds := concurrencyFixture()
	sm, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := NewGeoInd(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCloaking(800, geo.Point{Lat: 45.76, Lon: 4.83})
	if err != nil {
		t.Fatal(err)
	}
	dsm, err := NewDownsample(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mechanism{Identity{}, sm, gi, cl, dsm} {
		seq, err := ProtectDatasetContext(context.Background(), m, ds, 1)
		if err != nil {
			t.Fatalf("%s sequential: %v", m.Name(), err)
		}
		par, err := ProtectDatasetContext(context.Background(), m, ds, 8)
		if err != nil {
			t.Fatalf("%s parallel: %v", m.Name(), err)
		}
		if seq.Len() != par.Len() {
			t.Fatalf("%s: %d trajectories sequential vs %d parallel", m.Name(), seq.Len(), par.Len())
		}
		for i := range seq.Trajectories {
			a, b := seq.Trajectories[i], par.Trajectories[i]
			if a.User != b.User || len(a.Records) != len(b.Records) {
				t.Fatalf("%s: trajectory %d differs (%s/%d vs %s/%d)",
					m.Name(), i, a.User, len(a.Records), b.User, len(b.Records))
			}
			for j := range a.Records {
				if a.Records[j] != b.Records[j] {
					t.Fatalf("%s: trajectory %d record %d differs", m.Name(), i, j)
				}
			}
		}
	}
}

// TestProtectDatasetContextConcurrentCallers: many goroutines sharing one
// mechanism and one dataset must not race (meaningful under -race).
func TestProtectDatasetContextConcurrentCallers(t *testing.T) {
	ds := concurrencyFixture()
	sm, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = ProtectDatasetContext(context.Background(), sm, ds, 4)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", g, err)
		}
	}
}

// TestProtectDatasetContextCancelled: a cancelled context stops the run.
func TestProtectDatasetContextCancelled(t *testing.T) {
	ds := concurrencyFixture()
	sm, err := NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{1, 8} {
		if _, err := ProtectDatasetContext(ctx, sm, ds, parallelism); !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
		}
	}
}

// failingMechanism fails on one specific user to exercise error fan-in.
type failingMechanism struct{ failUser string }

func (f failingMechanism) Name() string { return "failing" }

func (f failingMechanism) Protect(tr *trace.Trajectory) (*trace.Trajectory, error) {
	if tr.User == f.failUser {
		return nil, errors.New("boom")
	}
	return tr.Clone(), nil
}

// TestProtectDatasetContextError: a mechanism error surfaces (wrapped with
// the trajectory identity) from both the sequential and the pooled path.
func TestProtectDatasetContextError(t *testing.T) {
	ds := concurrencyFixture()
	m := failingMechanism{failUser: "user-23"}
	for _, parallelism := range []int{1, 8} {
		_, err := ProtectDatasetContext(context.Background(), m, ds, parallelism)
		if err == nil {
			t.Fatalf("parallelism %d: expected error", parallelism)
		}
	}
}
