package lppm

import (
	"fmt"
	"strconv"
	"strings"

	"apisense/internal/geo"
)

// FromSpec builds a mechanism from a textual specification of the form
// "name" or "name:key=value,key=value". It is the format accepted by the
// privapi command-line tool and by task manifests.
//
// Recognised specs:
//
//	identity
//	geoind:eps=0.01[,seed=N]
//	gaussian:sigma=120[,seed=N]
//	cloaking:cell=400[,lat=45.76,lon=4.83]
//	downsample:k=10
//	simplify:tol=100
//	smoothing:eps=100[,trim=2]
func FromSpec(spec string) (Mechanism, error) {
	name, argStr, _ := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	args := map[string]string{}
	if argStr != "" {
		for _, kv := range strings.Split(argStr, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("lppm: malformed argument %q in spec %q", kv, spec)
			}
			args[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	getF := func(key string, def float64) (float64, error) {
		s, ok := args[key]
		if !ok {
			return def, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("lppm: spec %q: bad %s: %w", spec, key, err)
		}
		return v, nil
	}
	getI := func(key string, def int) (int, error) {
		s, ok := args[key]
		if !ok {
			return def, nil
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("lppm: spec %q: bad %s: %w", spec, key, err)
		}
		return v, nil
	}

	switch name {
	case "identity":
		return Identity{}, nil
	case "geoind":
		eps, err := getF("eps", 0.01)
		if err != nil {
			return nil, err
		}
		seed, err := getI("seed", 1)
		if err != nil {
			return nil, err
		}
		return NewGeoInd(eps, uint64(seed))
	case "gaussian":
		sigma, err := getF("sigma", 100)
		if err != nil {
			return nil, err
		}
		seed, err := getI("seed", 1)
		if err != nil {
			return nil, err
		}
		return NewGaussianNoise(sigma, uint64(seed))
	case "cloaking":
		cell, err := getF("cell", 400)
		if err != nil {
			return nil, err
		}
		lat, err := getF("lat", 0)
		if err != nil {
			return nil, err
		}
		lon, err := getF("lon", 0)
		if err != nil {
			return nil, err
		}
		return NewCloaking(cell, geo.Point{Lat: lat, Lon: lon})
	case "downsample":
		k, err := getI("k", 10)
		if err != nil {
			return nil, err
		}
		return NewDownsample(k)
	case "simplify":
		tol, err := getF("tol", 100)
		if err != nil {
			return nil, err
		}
		return NewSimplify(tol)
	case "smoothing":
		eps, err := getF("eps", 100)
		if err != nil {
			return nil, err
		}
		trim, err := getI("trim", 2)
		if err != nil {
			return nil, err
		}
		return NewSpeedSmoothing(eps, trim)
	default:
		return nil, fmt.Errorf("lppm: unknown mechanism %q", name)
	}
}
