package lppm

import (
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/poi"
)

func TestSimplifyValidation(t *testing.T) {
	for _, tol := range []float64{0, -10} {
		if _, err := NewSimplify(tol); err == nil {
			t.Errorf("NewSimplify(%v) should fail", tol)
		}
	}
}

func TestSimplifyReducesRecordsButKeepsPath(t *testing.T) {
	tr, home, work := dayWithStops()
	s, err := NewSimplify(100)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() >= tr.Len()/4 {
		t.Errorf("simplified to %d of %d records; expected heavy reduction", out.Len(), tr.Len())
	}
	// Kept records are a subset of the originals (no displacement).
	orig := make(map[geo.Point]bool, tr.Len())
	for _, r := range tr.Records {
		orig[r.Pos] = true
	}
	for _, r := range out.Records {
		if !orig[r.Pos] {
			t.Fatalf("simplify displaced a point: %v", r.Pos)
		}
	}
	// Endpoints (home) survive.
	if out.Records[0].Pos != tr.Records[0].Pos {
		t.Error("first record changed")
	}
	_ = home
	_ = work
}

func TestSimplifyLeaksPresenceAtStops(t *testing.T) {
	// The reason generalisation is a compression baseline and not a privacy
	// mechanism: the kept corner points sit exactly AT the sensitive
	// places, so presence there is still released verbatim (on clean data
	// the dwell duration collapses, but the visit itself never does).
	tr, home, work := dayWithStops()
	s, err := NewSimplify(100)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	atHome, atWork := false, false
	for _, r := range out.Records {
		if geo.Distance(r.Pos, home) < 50 {
			atHome = true
		}
		if geo.Distance(r.Pos, work) < 50 {
			atWork = true
		}
	}
	if !atHome || !atWork {
		t.Errorf("simplified release misses presence (home=%v work=%v); corners must survive",
			atHome, atWork)
	}
}

func TestSimplifyOnNoisyDataKeepsDwellDetectable(t *testing.T) {
	// With GPS noise (the realistic case), dwells produce scattered fixes
	// whose envelope exceeds a tight tolerance, so the stay-point attack
	// still fires on the simplified release — generalisation is not a
	// dwell defence.
	tr, home, _ := dayWithStops()
	noise, err := NewGaussianNoise(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := noise.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimplify(20) // tolerance below the noise envelope
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(noisy)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := poi.NewStayPoints(poi.StayPointConfig{MaxDistance: 200, MinDuration: 15 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	pois := poi.Merge(sp.Extract(out), 250)
	foundHome := false
	for _, p := range pois {
		if geo.Distance(p.Center, home) < 250 {
			foundHome = true
		}
	}
	if !foundHome {
		t.Error("stay-point attack lost the home dwell on noisy simplified data")
	}
}

func TestSimplifyEmptyInput(t *testing.T) {
	s, err := NewSimplify(50)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Protect(walk("empty", 0, 1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty input produced %d records", out.Len())
	}
}
