package lppm

import (
	"math"
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

var (
	lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}
	t0   = time.Date(2014, 12, 8, 8, 0, 0, 0, time.UTC)
)

// walk builds an eastbound constant-speed trajectory.
func walk(user string, n int, vMS float64, step time.Duration) *trace.Trajectory {
	tr := &trace.Trajectory{User: user}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time: t0.Add(time.Duration(i) * step),
			Pos:  geo.Translate(lyon, vMS*step.Seconds()*float64(i), 0),
		})
	}
	return tr
}

func TestIdentity(t *testing.T) {
	tr := walk("alice", 10, 1, time.Minute)
	out, err := Identity{}.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != tr.Len() {
		t.Fatalf("identity changed length: %d vs %d", out.Len(), tr.Len())
	}
	for i := range out.Records {
		if out.Records[i] != tr.Records[i] {
			t.Fatalf("identity changed record %d", i)
		}
	}
	// Must be a copy, not an alias.
	out.Records[0].Pos = geo.Point{}
	if tr.Records[0].Pos == (geo.Point{}) {
		t.Error("identity aliases input storage")
	}
}

func TestGeoIndValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGeoInd(eps, 1); err == nil {
			t.Errorf("NewGeoInd(%v) should fail", eps)
		}
	}
}

func TestGeoIndMeanDisplacement(t *testing.T) {
	// The planar Laplace displacement has mean 2/eps.
	const eps = 0.01 // => mean 200 m
	g, err := NewGeoInd(eps, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := walk("alice", 4000, 1, time.Second)
	out, err := g.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range out.Records {
		sum += geo.Distance(tr.Records[i].Pos, out.Records[i].Pos)
	}
	mean := sum / float64(out.Len())
	if math.Abs(mean-200) > 15 {
		t.Errorf("mean displacement = %f, want ~200", mean)
	}
}

func TestGeoIndDeterministicPerTrajectory(t *testing.T) {
	g, err := NewGeoInd(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := walk("alice", 50, 1, time.Minute)
	a, err := g.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same trajectory, same seed: outputs differ")
		}
	}
	// Different users get different noise.
	tr2 := walk("bob", 50, 1, time.Minute)
	c, err := g.Protect(tr2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range c.Records {
		da := geo.Distance(a.Records[i].Pos, tr.Records[i].Pos)
		db := geo.Distance(c.Records[i].Pos, tr2.Records[i].Pos)
		if math.Abs(da-db) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("different users received identical noise streams")
	}
}

func TestGaussianNoise(t *testing.T) {
	if _, err := NewGaussianNoise(0, 1); err == nil {
		t.Error("sigma 0 should fail")
	}
	g, err := NewGaussianNoise(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := walk("alice", 3000, 1, time.Second)
	out, err := g.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Mean displacement of 2D Gaussian with per-axis sigma is
	// sigma*sqrt(pi/2) ~ 1.2533*sigma.
	var sum float64
	for i := range out.Records {
		sum += geo.Distance(tr.Records[i].Pos, out.Records[i].Pos)
	}
	mean := sum / float64(out.Len())
	want := 50 * math.Sqrt(math.Pi/2)
	if math.Abs(mean-want) > 4 {
		t.Errorf("mean displacement = %f, want ~%f", mean, want)
	}
}

func TestCloaking(t *testing.T) {
	if _, err := NewCloaking(0, lyon); err == nil {
		t.Error("cell 0 should fail")
	}
	c, err := NewCloaking(400, lyon)
	if err != nil {
		t.Fatal(err)
	}
	tr := walk("alice", 100, 2, time.Minute)
	out, err := c.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Every output position is at most half a cell diagonal from input.
	limit := 400 * math.Sqrt2 / 2 * 1.01
	distinct := map[geo.Point]bool{}
	for i := range out.Records {
		if d := geo.Distance(tr.Records[i].Pos, out.Records[i].Pos); d > limit {
			t.Fatalf("record %d moved %f m (> %f)", i, d, limit)
		}
		distinct[out.Records[i].Pos] = true
	}
	if len(distinct) >= out.Len() {
		t.Error("cloaking did not coarsen positions")
	}
	// Same input point always snaps identically (no randomness).
	out2, err := c.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Records {
		if out.Records[i] != out2.Records[i] {
			t.Fatal("cloaking is not deterministic")
		}
	}
}

func TestDownsample(t *testing.T) {
	if _, err := NewDownsample(0); err == nil {
		t.Error("factor 0 should fail")
	}
	d, err := NewDownsample(3)
	if err != nil {
		t.Fatal(err)
	}
	tr := walk("alice", 10, 1, time.Minute)
	out, err := d.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // indices 0,3,6,9
		t.Fatalf("downsampled to %d records, want 4", out.Len())
	}
	if out.Records[1] != tr.Records[3] {
		t.Error("downsample kept wrong records")
	}
}

func TestCompose(t *testing.T) {
	if _, err := NewCompose(); err == nil {
		t.Error("empty compose should fail")
	}
	ds, err := NewDownsample(2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCloaking(400, lyon)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompose(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	tr := walk("alice", 10, 2, time.Minute)
	out, err := comp.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Errorf("composed output has %d records, want 5", out.Len())
	}
	if comp.Name() == "" {
		t.Error("compose name empty")
	}
}

func TestTimeShift(t *testing.T) {
	s := &TimeShift{Offset: time.Hour}
	tr := walk("alice", 3, 1, time.Minute)
	out, err := s.Protect(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Records {
		if got := out.Records[i].Time.Sub(tr.Records[i].Time); got != time.Hour {
			t.Fatalf("record %d shifted by %v", i, got)
		}
	}
}

func TestProtectDataset(t *testing.T) {
	d := trace.NewDataset()
	d.Add(walk("alice", 10, 1, time.Minute))
	d.Add(&trace.Trajectory{User: "empty"}) // suppressed by smoothing
	sm, err := NewSpeedSmoothing(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ProtectDataset(sm, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("protected dataset has %d trajectories, want 1 (empty suppressed)", out.Len())
	}
}

func TestFromSpec(t *testing.T) {
	good := []struct {
		spec string
		name string
	}{
		{"identity", "identity"},
		{"geoind:eps=0.02", "geoind(eps=0.02)"},
		{"gaussian:sigma=75,seed=9", "gaussian(sigma=75)"},
		{"cloaking:cell=250,lat=45.7,lon=4.8", "cloaking(cell=250)"},
		{"downsample:k=5", "downsample(k=5)"},
		{"simplify:tol=80", "simplify(tol=80)"},
		{"smoothing:eps=120,trim=1", "smoothing(eps=120,trim=1)"},
		{"smoothing", "smoothing(eps=100,trim=2)"},
	}
	for _, tt := range good {
		m, err := FromSpec(tt.spec)
		if err != nil {
			t.Errorf("FromSpec(%q): %v", tt.spec, err)
			continue
		}
		if m.Name() != tt.name {
			t.Errorf("FromSpec(%q).Name() = %q, want %q", tt.spec, m.Name(), tt.name)
		}
	}
	bad := []string{
		"", "unknown", "geoind:eps=zero", "geoind:eps", "downsample:k=x",
		"smoothing:eps=-5", "gaussian:sigma=-1", "cloaking:cell=0",
		"simplify:tol=-2",
	}
	for _, spec := range bad {
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("FromSpec(%q) should fail", spec)
		}
	}
}
