// Package transport defines the wire types exchanged between the Hive, the
// Honeycomb endpoints and the mobile devices (Fig. 1 of the paper), plus a
// small JSON/HTTP client with timeouts and retries used by both sides.
package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"apisense/internal/apierr"
	"apisense/internal/otrace"
)

// Region is a recruitment area: devices whose last known position falls
// within Radius metres of the centre qualify.
type Region struct {
	Lat    float64 `json:"lat"`
	Lon    float64 `json:"lon"`
	Radius float64 `json:"radiusMeters"`
}

// TaskSpec describes a crowd-sensing task: a SenseScript program plus its
// deployment envelope. Honeycomb endpoints author specs and upload them to
// the Hive; the Hive offloads them onto qualifying devices.
type TaskSpec struct {
	// ID is assigned by the Hive on publication.
	ID string `json:"id,omitempty"`
	// Name is a human-readable label.
	Name string `json:"name"`
	// Author identifies the publishing Honeycomb.
	Author string `json:"author"`
	// Script is the SenseScript source offloaded to devices.
	Script string `json:"script"`
	// Sensors lists the sensors the task needs; devices whose users did
	// not share them are not recruited.
	Sensors []string `json:"sensors"`
	// PeriodSeconds is the sampling period of the device loop.
	PeriodSeconds int `json:"periodSeconds"`
	// Region optionally restricts recruitment geographically.
	Region *Region `json:"region,omitempty"`
	// MaxRecords caps the number of records one device uploads (0 means
	// unlimited).
	MaxRecords int `json:"maxRecords,omitempty"`
	// Incentive names the incentive strategy attached to the task.
	Incentive string `json:"incentive,omitempty"`
}

// ErrInvalidSpec marks a structurally invalid task spec: every Validate
// failure wraps it, so callers branch on the class with errors.Is and the
// HTTP layer maps it to 400 Bad Request (code "transport.invalid_spec").
var ErrInvalidSpec = apierr.New("transport.invalid_spec", apierr.Validation, "transport: invalid task spec")

// Validate reports structural problems in a spec.
func (s TaskSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: task name is required", ErrInvalidSpec)
	}
	if s.Script == "" {
		return fmt.Errorf("%w: task script is required", ErrInvalidSpec)
	}
	if s.PeriodSeconds <= 0 {
		return fmt.Errorf("%w: task period must be positive, got %d", ErrInvalidSpec, s.PeriodSeconds)
	}
	if s.MaxRecords < 0 {
		return fmt.Errorf("%w: MaxRecords must be >= 0", ErrInvalidSpec)
	}
	return nil
}

// DeviceInfo is what a device reveals to the Hive when registering. The
// position is the (possibly blurred) last known location used for regional
// recruitment.
type DeviceInfo struct {
	ID      string   `json:"id"`
	User    string   `json:"user"`
	Sensors []string `json:"sensors"`
	Battery float64  `json:"battery"`
	Lat     float64  `json:"lat"`
	Lon     float64  `json:"lon"`
}

// UploadRecord is one sensed record inside an upload.
type UploadRecord struct {
	Sensor     string         `json:"sensor"`
	TimeMillis int64          `json:"timeMillis"`
	Data       map[string]any `json:"data"`
}

// Upload is a batch of records a device sends back for one task.
type Upload struct {
	TaskID   string         `json:"taskId"`
	DeviceID string         `json:"deviceId"`
	Records  []UploadRecord `json:"records"`
	Logs     []string       `json:"logs,omitempty"`
}

// UploadBatch is the wire form of POST /api/uploads/batch: several uploads
// (possibly from several tasks and devices, e.g. a gateway flushing a
// buffer) submitted in one request and admitted through the Hive's ingest
// queue as one group commit.
type UploadBatch struct {
	Uploads []Upload `json:"uploads"`
}

// Per-item result codes of a batch submission. A batch is not
// all-or-nothing: each upload is admitted or rejected on its own.
const (
	UploadOK            = "ok"             // admitted and journaled
	UploadUnknownTask   = "unknown_task"   // no such task
	UploadUnknownDevice = "unknown_device" // no such device
	UploadNotAssigned   = "not_assigned"   // device not recruited for the task
	UploadLimit         = "limit"          // task reached its upload cap
	UploadFailed        = "failed"         // storage/journal error
)

// UploadResult is the outcome of one upload inside a batch. Index refers to
// the position in the submitted UploadBatch.Uploads slice.
type UploadResult struct {
	Index int    `json:"index"`
	Code  string `json:"code"`
	Error string `json:"error,omitempty"`
}

// UploadBatchResponse is the per-item answer to an UploadBatch.
type UploadBatchResponse struct {
	Accepted int            `json:"accepted"`
	Rejected int            `json:"rejected"`
	Results  []UploadResult `json:"results"`
}

// Client is a JSON-over-HTTP client with bounded retries.
type Client struct {
	base    string
	http    *http.Client
	retries int
}

// NewClient creates a client for the given base URL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{
		base:    baseURL,
		http:    &http.Client{Timeout: 10 * time.Second},
		retries: 2,
	}
}

// ErrStatus is the error type for non-2xx HTTP responses. Beyond the raw
// status and body it carries the server's stable error code (the "code"
// field of the Hive's JSON error bodies, e.g. "hive.unknown_task"), and
// unwraps to the matching apierr sentinel — so clients branch on error
// classes with errors.Is(err, hive.ErrUnknownTask) instead of matching
// status integers or substrings of the body.
type ErrStatus struct {
	Code int
	Body string
	// ErrCode is the server's coded error ("package.name"), parsed from
	// the JSON error body; empty when the body carried none (non-JSON
	// bodies, third-party proxies).
	ErrCode string
	// RetryAfter is the server's Retry-After hint (zero when absent) —
	// set on 429 responses from a backpressured ingest queue.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrStatus) Error() string {
	return fmt.Sprintf("transport: http %d: %s", e.Code, e.Body)
}

// Unwrap exposes the server's coded error to errors.Is/As: the chain of a
// coded response contains apierr.Remote(ErrCode), which matches the
// originating sentinel by code. Returns nil when the response carried no
// code.
func (e *ErrStatus) Unwrap() error {
	if e.ErrCode == "" {
		return nil
	}
	return apierr.Remote(e.ErrCode)
}

// errorBody is the wire shape of the Hive's JSON error responses.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// errStatus builds an ErrStatus from a non-2xx response, recovering the
// coded error from the JSON body when there is one.
func errStatus(status int, body []byte, retryAfter string) *ErrStatus {
	e := &ErrStatus{
		Code:       status,
		Body:       string(body),
		RetryAfter: parseRetryAfter(retryAfter),
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil {
		e.ErrCode = eb.Code
	}
	return e
}

// parseRetryAfter interprets the delay-seconds form of a Retry-After
// header. The HTTP-date form (and garbage) yields zero: callers fall back
// to their own backoff.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Do performs a JSON request. in may be nil (no body); out may be nil
// (response discarded). Requests are retried on transport errors and 5xx
// responses. When ctx carries a span context (otrace), every attempt is
// stamped with the matching W3C traceparent header, so server-side spans
// join the caller's trace.
func (c *Client) Do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("transport: marshal request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * 50 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("transport: build request: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if sc, ok := otrace.SpanContextFromContext(ctx); ok && sc.Valid() {
			req.Header.Set("traceparent", sc.Traceparent())
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("transport: %s %s: %w", method, path, err)
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("transport: read response: %w", err)
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = errStatus(resp.StatusCode, data, resp.Header.Get("Retry-After"))
			continue
		}
		if resp.StatusCode >= 300 {
			return errStatus(resp.StatusCode, data, resp.Header.Get("Retry-After"))
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("transport: unmarshal response: %w", err)
			}
		}
		return nil
	}
	return lastErr
}
