package transport

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"apisense/internal/apierr"
)

func TestTaskSpecValidate(t *testing.T) {
	good := TaskSpec{Name: "t", Script: "var x = 1;", PeriodSeconds: 60}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name string
		spec TaskSpec
	}{
		{"no name", TaskSpec{Script: "x", PeriodSeconds: 1}},
		{"no script", TaskSpec{Name: "t", PeriodSeconds: 1}},
		{"zero period", TaskSpec{Name: "t", Script: "x"}},
		{"negative period", TaskSpec{Name: "t", Script: "x", PeriodSeconds: -5}},
		{"negative max", TaskSpec{Name: "t", Script: "x", PeriodSeconds: 1, MaxRecords: -1}},
	}
	for _, tt := range tests {
		if err := tt.spec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
	}
}

func TestClientRetriesOn5xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"ok":true}`)); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()
	var out struct {
		OK bool `json:"ok"`
	}
	if err := NewClient(srv.URL).Do(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Fatalf("Do after retries: %v", err)
	}
	if !out.OK {
		t.Error("response not decoded")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server called %d times, want 3", got)
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	err := NewClient(srv.URL).Do(context.Background(), http.MethodGet, "/x", nil, nil)
	var status *ErrStatus
	if !errors.As(err, &status) || status.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want ErrStatus 500", err)
	}
	if got := calls.Load(); got != 3 { // initial + 2 retries
		t.Errorf("server called %d times, want 3", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer srv.Close()
	err := NewClient(srv.URL).Do(context.Background(), http.MethodGet, "/x", nil, nil)
	var status *ErrStatus
	if !errors.As(err, &status) || status.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want ErrStatus 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server called %d times, want 1 (no retry on 4xx)", got)
	}
	if status.Error() == "" {
		t.Error("empty error string")
	}
}

// TestClientRetryAfterHint: a 429 carries the server's Retry-After hint on
// the typed error (delay-seconds form; garbage and HTTP-dates degrade to
// zero), so upload batchers can honour the queue's backpressure pacing.
func TestClientRetryAfterHint(t *testing.T) {
	tests := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"seconds", "7", 7 * time.Second},
		{"absent", "", 0},
		{"http date", "Wed, 21 Oct 2015 07:28:00 GMT", 0},
		{"garbage", "soon", 0},
		{"negative", "-3", 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.header != "" {
					w.Header().Set("Retry-After", tc.header)
				}
				http.Error(w, "full", http.StatusTooManyRequests)
			}))
			defer srv.Close()
			err := NewClient(srv.URL).Do(context.Background(), http.MethodPost, "/x", map[string]int{}, nil)
			var status *ErrStatus
			if !errors.As(err, &status) || status.Code != http.StatusTooManyRequests {
				t.Fatalf("err = %v, want ErrStatus 429", err)
			}
			if status.RetryAfter != tc.want {
				t.Errorf("RetryAfter = %v, want %v", status.RetryAfter, tc.want)
			}
		})
	}
}

func TestClientSendsBodyAndContentType(t *testing.T) {
	type ping struct {
		Value int `json:"value"`
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		var in ping
		if err := decodeBody(r, &in); err != nil {
			t.Error(err)
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"value":42}`)); err != nil {
			t.Error(err)
		}
		if in.Value != 7 {
			t.Errorf("request value = %d", in.Value)
		}
	}))
	defer srv.Close()
	var out ping
	if err := NewClient(srv.URL).Do(context.Background(), http.MethodPost, "/x", ping{Value: 7}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Value != 42 {
		t.Errorf("response value = %d", out.Value)
	}
}

func decodeBody(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}

func TestClientBadResponseJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := w.Write([]byte("{broken")); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()
	var out map[string]any
	if err := NewClient(srv.URL).Do(context.Background(), http.MethodGet, "/x", nil, &out); err == nil {
		t.Error("expected unmarshal error")
	}
}

func TestClientContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError) // forces retry path
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := NewClient(srv.URL).Do(ctx, http.MethodGet, "/x", nil, nil)
	if err == nil {
		t.Error("expected error with cancelled context")
	}
}

func TestClientConnectionRefused(t *testing.T) {
	// A port that nothing listens on: transport errors surface after
	// retries.
	err := NewClient("http://127.0.0.1:1").Do(context.Background(), http.MethodGet, "/x", nil, nil)
	if err == nil {
		t.Error("expected connection error")
	}
}

// TestErrStatusCarriesWireCode: non-2xx responses with a JSON error body
// surface the server's stable code on ErrStatus and unwrap to a coded
// error matchable across the process boundary.
func TestErrStatusCarriesWireCode(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"error": "hive: unknown task", "code": "hive.unknown_task",
		})
	}))
	defer srv.Close()

	err := NewClient(srv.URL).Do(context.Background(), http.MethodGet, "/api/tasks/nope", nil, nil)
	var st *ErrStatus
	if !errors.As(err, &st) {
		t.Fatalf("want ErrStatus, got %v", err)
	}
	if st.ErrCode != "hive.unknown_task" {
		t.Errorf("ErrCode = %q, want hive.unknown_task", st.ErrCode)
	}
	if !errors.Is(err, apierr.Remote("hive.unknown_task")) {
		t.Errorf("errors.Is against the remote code fails for %v", err)
	}
	if errors.Is(err, apierr.Remote("hive.unknown_device")) {
		t.Error("errors.Is matched a different code")
	}
}

// TestErrStatusNonJSONBody: a body without a code (proxies, plain text)
// leaves ErrCode empty and the chain uncoded.
func TestErrStatusNonJSONBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	}))
	defer srv.Close()

	err := NewClient(srv.URL).Do(context.Background(), http.MethodGet, "/x", nil, nil)
	var st *ErrStatus
	if !errors.As(err, &st) {
		t.Fatalf("want ErrStatus, got %v", err)
	}
	if st.ErrCode != "" {
		t.Errorf("ErrCode = %q, want empty", st.ErrCode)
	}
	if apierr.Code(err) != "" {
		t.Errorf("apierr.Code = %q, want empty", apierr.Code(err))
	}
}
