package incentive_test

import (
	"fmt"

	"apisense/internal/incentive"
)

// Example compares the no-incentive baseline with the win-win strategy
// (contributors get access to the service built from their data): win-win
// is the only strategy whose participation grows over the campaign.
func Example() {
	days := 30
	for _, strategy := range []incentive.Strategy{incentive.None{}, incentive.NewWinWin()} {
		population, err := incentive.NewPopulation(200, 7)
		if err != nil {
			fmt.Println(err)
			return
		}
		result, err := incentive.Simulate(population, strategy, days)
		if err != nil {
			fmt.Println(err)
			return
		}
		trend := "churning"
		if result.Retention > 1 {
			trend = "growing"
		}
		fmt.Printf("%-8s retention %.2f (%s)\n", result.Strategy, result.Retention, trend)
	}
	// Output:
	// none     retention 0.51 (churning)
	// win-win  retention 1.32 (growing)
}
