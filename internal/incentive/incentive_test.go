package incentive

import (
	"testing"
)

func population(t *testing.T, n int) *Population {
	t.Helper()
	p, err := NewPopulation(n, 77)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPopulationValidation(t *testing.T) {
	if _, err := NewPopulation(0, 1); err == nil {
		t.Error("zero population should fail")
	}
	if _, err := NewPopulation(-3, 1); err == nil {
		t.Error("negative population should fail")
	}
}

func TestPopulationDeterministicAndBounded(t *testing.T) {
	a := population(t, 50)
	b := population(t, 50)
	for i := range a.Users {
		ua, ub := a.Users[i], b.Users[i]
		if ua.Altruism != ub.Altruism || ua.Sensitivity != ub.Sensitivity {
			t.Fatal("same seed produced different traits")
		}
		for _, v := range []float64{ua.Altruism, ua.Sensitivity, ua.Competitiveness} {
			if v < 0 || v > 1 {
				t.Fatalf("trait %v out of [0,1]", v)
			}
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(population(t, 10), None{}, 0); err == nil {
		t.Error("zero days should fail")
	}
}

func TestBaselineFatigues(t *testing.T) {
	res, err := Simulate(population(t, 300), None{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("nobody ever contributed")
	}
	if res.Retention >= 0.9 {
		t.Errorf("baseline retention = %.2f, want visible churn (< 0.9)", res.Retention)
	}
	if len(res.Daily) != 30 {
		t.Errorf("daily series has %d days", len(res.Daily))
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestEveryIncentiveBeatsBaseline(t *testing.T) {
	days := 30
	base, err := Simulate(population(t, 300), None{}, days)
	if err != nil {
		t.Fatal(err)
	}
	strategies := []Strategy{Feedback{}, NewRanking(), NewRewarding(), NewWinWin()}
	for _, s := range strategies {
		res, err := Simulate(population(t, 300), s, days)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total <= base.Total {
			t.Errorf("%s total %d does not beat baseline %d", s.Name(), res.Total, base.Total)
		}
	}
}

func TestWinWinRetention(t *testing.T) {
	// The defining shape of win-win: strong retention once unlocked.
	days := 30
	base, err := Simulate(population(t, 400), None{}, days)
	if err != nil {
		t.Fatal(err)
	}
	ww, err := Simulate(population(t, 400), NewWinWin(), days)
	if err != nil {
		t.Fatal(err)
	}
	if ww.Retention <= base.Retention {
		t.Errorf("win-win retention %.2f should beat baseline %.2f", ww.Retention, base.Retention)
	}
}

func TestRewardingSaturates(t *testing.T) {
	rw := NewRewarding()
	fresh := &Contributor{ID: "a", Sensitivity: 0.8}
	rich := &Contributor{ID: "b", Sensitivity: 0.8, Points: 1000}
	if rw.Boost(fresh, 0) <= rw.Boost(rich, 0) {
		t.Error("reward boost should decay with accumulated points")
	}
	rw.After(fresh, 0, true)
	if fresh.Points != rw.PointsPerContribution {
		t.Errorf("points = %v", fresh.Points)
	}
	rw.After(fresh, 1, false)
	if fresh.Points != rw.PointsPerContribution {
		t.Error("points granted without contribution")
	}
}

func TestRankingBoostsTopUsers(t *testing.T) {
	r := NewRanking()
	top := &Contributor{ID: "top", Competitiveness: 0.8, Contributions: 50}
	bottom := &Contributor{ID: "bottom", Competitiveness: 0.8, Contributions: 1}
	r.Rebuild([]*Contributor{top, bottom})
	if r.Boost(top, 0) <= r.Boost(bottom, 0) {
		t.Error("leaderboard leader should be boosted more than the tail")
	}
}

func TestWinWinStates(t *testing.T) {
	w := NewWinWin()
	locked := &Contributor{ID: "l", Sensitivity: 0.5, Contributions: 0, LastActive: -1}
	active := &Contributor{ID: "a", Sensitivity: 0.5, Contributions: 5, LastActive: 9}
	lapsed := &Contributor{ID: "x", Sensitivity: 0.5, Contributions: 5, LastActive: 0}
	day := 10
	bLocked := w.Boost(locked, day)
	bActive := w.Boost(active, day)
	bLapsed := w.Boost(lapsed, day)
	if !(bActive > bLapsed && bActive > bLocked) {
		t.Errorf("boosts locked=%.3f active=%.3f lapsed=%.3f; active must dominate",
			bLocked, bActive, bLapsed)
	}
}

func TestSimulationDeterministic(t *testing.T) {
	a, err := Simulate(population(t, 100), Feedback{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(population(t, 100), Feedback{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Errorf("same seed, different totals: %d vs %d", a.Total, b.Total)
	}
	for i := range a.Daily {
		if a.Daily[i] != b.Daily[i] {
			t.Fatal("daily series diverged")
		}
	}
}
