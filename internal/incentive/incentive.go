// Package incentive implements the incentive strategies of APISENSE (§2 of
// the paper): "user feedback, user ranking, user rewarding and win-win
// services. The selection of incentive strategies carefully depends on the
// nature of the crowdsourcing experiments."
//
// Because the paper's deployments rely on real user behaviour we cannot
// reproduce, the package pairs the strategies with a simple seeded
// behavioural model (documented in DESIGN.md §2): every simulated
// contributor has a baseline altruism that fatigues over time, a
// sensitivity to extrinsic motivation, and a competitiveness trait.
// Each strategy converts its mechanism (feedback messages, leaderboard
// position, redeemable points, service access) into a daily participation
// boost. The model is deliberately coarse; what the experiments compare is
// the *shape* — which strategies slow churn and which ones saturate.
package incentive

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Contributor is one simulated platform user.
type Contributor struct {
	// ID identifies the contributor.
	ID string
	// Altruism is the baseline daily participation probability at day 0.
	Altruism float64
	// Sensitivity scales how strongly extrinsic incentives move this user.
	Sensitivity float64
	// Competitiveness scales reaction to rankings specifically.
	Competitiveness float64

	// Points accumulates rewards (rewarding strategy).
	Points float64
	// Contributions counts total contributions so far.
	Contributions int
	// LastActive is the last day the user contributed (-1 never).
	LastActive int
}

// Strategy converts platform state into a participation boost for one user
// on one day, and updates its own state after the day resolves.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Boost returns an additive participation-probability bonus in [0,1).
	Boost(u *Contributor, day int) float64
	// After updates strategy state once the user's day resolved.
	After(u *Contributor, day int, contributed bool)
}

// None is the no-incentive baseline.
type None struct{}

var _ Strategy = (*None)(nil)

// Name implements Strategy.
func (None) Name() string { return "none" }

// Boost implements Strategy.
func (None) Boost(*Contributor, int) float64 { return 0 }

// After implements Strategy.
func (None) After(*Contributor, int, bool) {}

// Feedback shows contributors what their data enabled (maps, statistics).
// The transparency produces a small steady boost that also slows fatigue:
// users who see their impact churn more slowly.
type Feedback struct{}

var _ Strategy = (*Feedback)(nil)

// Name implements Strategy.
func (Feedback) Name() string { return "feedback" }

// Boost implements Strategy.
func (Feedback) Boost(u *Contributor, _ int) float64 {
	return 0.08 + 0.05*u.Sensitivity
}

// After implements Strategy.
func (Feedback) After(*Contributor, int, bool) {}

// Ranking publishes a leaderboard; competitive users near the top of the
// board push to keep their position.
type Ranking struct {
	// rank maps contributor ID to current rank (1 = best).
	rank map[string]int
	// total is the population size (for percentile computation).
	total int
}

var _ Strategy = (*Ranking)(nil)

// NewRanking returns a leaderboard strategy.
func NewRanking() *Ranking { return &Ranking{rank: make(map[string]int)} }

// Name implements Strategy.
func (*Ranking) Name() string { return "ranking" }

// Boost implements Strategy.
func (r *Ranking) Boost(u *Contributor, _ int) float64 {
	if r.total == 0 {
		return 0.05 * u.Competitiveness
	}
	rank, ok := r.rank[u.ID]
	if !ok {
		rank = r.total
	}
	// Top-half users defend their spot; bottom users are less moved.
	percentile := 1 - float64(rank-1)/float64(r.total)
	return u.Competitiveness * (0.05 + 0.20*percentile)
}

// After implements Strategy.
func (r *Ranking) After(*Contributor, int, bool) {}

// Rebuild recomputes the leaderboard from contribution counts; the
// simulation calls it at the end of every day.
func (r *Ranking) Rebuild(population []*Contributor) {
	sorted := append([]*Contributor(nil), population...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Contributions != sorted[j].Contributions {
			return sorted[i].Contributions > sorted[j].Contributions
		}
		return sorted[i].ID < sorted[j].ID
	})
	r.total = len(sorted)
	for i, u := range sorted {
		r.rank[u.ID] = i + 1
	}
}

// Rewarding grants redeemable points per contribution; the perceived value
// saturates as users accumulate more than they can spend.
type Rewarding struct {
	// PointsPerContribution is the grant per contributed day.
	PointsPerContribution float64
}

var _ Strategy = (*Rewarding)(nil)

// NewRewarding returns a point-reward strategy (10 points/contribution).
func NewRewarding() *Rewarding { return &Rewarding{PointsPerContribution: 10} }

// Name implements Strategy.
func (*Rewarding) Name() string { return "rewarding" }

// Boost implements Strategy.
func (rw *Rewarding) Boost(u *Contributor, _ int) float64 {
	// Marginal value of the next grant decays with the stock of points.
	marginal := 1 / (1 + u.Points/100)
	return u.Sensitivity * 0.30 * marginal
}

// After implements Strategy.
func (rw *Rewarding) After(u *Contributor, _ int, contributed bool) {
	if contributed {
		u.Points += rw.PointsPerContribution
	}
}

// WinWin gives contributors access to the service built from the collected
// data (e.g. the network-coverage map) as long as they keep contributing.
// The lock-in produces strong retention once a user has experienced the
// service, but little pull before that.
type WinWin struct {
	// UnlockAfter is the number of contributions before the service
	// becomes valuable to the user.
	UnlockAfter int
	// LapseDays is how many idle days before access (and its pull) lapses.
	LapseDays int
}

var _ Strategy = (*WinWin)(nil)

// NewWinWin returns a win-win service strategy (unlock after 3
// contributions, lapse after 7 idle days).
func NewWinWin() *WinWin { return &WinWin{UnlockAfter: 3, LapseDays: 7} }

// Name implements Strategy.
func (*WinWin) Name() string { return "win-win" }

// Boost implements Strategy.
func (w *WinWin) Boost(u *Contributor, day int) float64 {
	if u.Contributions < w.UnlockAfter {
		return 0.03 * u.Sensitivity // curiosity pull only
	}
	if u.LastActive >= 0 && day-u.LastActive > w.LapseDays {
		return 0.05 * u.Sensitivity // lapsed: weak pull to return
	}
	return 0.25 + 0.10*u.Sensitivity // active service users stay
}

// After implements Strategy.
func (w *WinWin) After(*Contributor, int, bool) {}

// Population is a seeded set of contributors with heterogeneous traits.
type Population struct {
	Users []*Contributor
	rng   *rand.Rand
}

// NewPopulation draws n contributors deterministically from seed.
func NewPopulation(n int, seed uint64) (*Population, error) {
	if n <= 0 {
		return nil, fmt.Errorf("incentive: population size must be positive, got %d", n)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x51ab3))
	p := &Population{rng: rng}
	for i := 0; i < n; i++ {
		p.Users = append(p.Users, &Contributor{
			ID:              fmt.Sprintf("c-%04d", i),
			Altruism:        clamp01(0.25 + 0.15*rng.NormFloat64()),
			Sensitivity:     clamp01(0.5 + 0.2*rng.NormFloat64()),
			Competitiveness: clamp01(0.4 + 0.25*rng.NormFloat64()),
			LastActive:      -1,
		})
	}
	return p, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// fatigue is the intrinsic-motivation decay: without incentives,
// participation halves roughly every three weeks.
func fatigue(day int) float64 { return math.Pow(0.967, float64(day)) }

// SimResult summarises one simulated campaign.
type SimResult struct {
	Strategy string
	Days     int
	// Daily is the participation rate per day.
	Daily []float64
	// Total is the number of contributed user-days.
	Total int
	// Retention is mean participation over the last 7 days divided by the
	// mean over the first 7 days.
	Retention float64
}

// String implements fmt.Stringer.
func (r SimResult) String() string {
	first, last := r.windowMeans()
	return fmt.Sprintf("%s: %d contributions over %d days, participation %.2f -> %.2f, retention %.2f",
		r.Strategy, r.Total, r.Days, first, last, r.Retention)
}

func (r SimResult) windowMeans() (first, last float64) {
	w := 7
	if len(r.Daily) < w {
		w = len(r.Daily)
	}
	if w == 0 {
		return 0, 0
	}
	for _, v := range r.Daily[:w] {
		first += v
	}
	for _, v := range r.Daily[len(r.Daily)-w:] {
		last += v
	}
	return first / float64(w), last / float64(w)
}

// Simulate runs the population against a strategy for the given number of
// days. The population is reset-free: callers should use a fresh population
// per run for comparable results.
func Simulate(pop *Population, s Strategy, days int) (SimResult, error) {
	if days <= 0 {
		return SimResult{}, fmt.Errorf("incentive: days must be positive, got %d", days)
	}
	res := SimResult{Strategy: s.Name(), Days: days}
	ranking, isRanking := s.(*Ranking)
	if isRanking {
		ranking.Rebuild(pop.Users)
	}
	for day := 0; day < days; day++ {
		var active int
		for _, u := range pop.Users {
			p := clamp01(u.Altruism*fatigue(day) + s.Boost(u, day))
			contributed := pop.rng.Float64() < p
			if contributed {
				active++
				u.Contributions++
				u.LastActive = day
			}
			s.After(u, day, contributed)
		}
		res.Daily = append(res.Daily, float64(active)/float64(len(pop.Users)))
		res.Total += active
		if isRanking {
			ranking.Rebuild(pop.Users)
		}
	}
	first, last := res.windowMeans()
	if first > 0 {
		res.Retention = last / first
	}
	return res, nil
}
