package otrace

import (
	"sort"
	"sync"
	"time"
)

// DefaultMaxSpansPerTrace caps how many spans one trace retains; spans
// beyond the cap are counted but dropped, so a runaway instrumented loop
// cannot grow a single trace without bound.
const DefaultMaxSpansPerTrace = 512

// SpanStore is a bounded ring buffer of finished spans assembled per
// trace: when a span of a previously unseen trace arrives and the store
// already holds its maximum number of traces, the oldest trace is
// evicted whole. Safe for concurrent use; all methods are nil-safe.
type SpanStore struct {
	mu       sync.Mutex
	max      int
	maxSpans int
	traces   map[TraceID]*traceBuf
	order    []TraceID // arrival order of trace IDs, oldest first
	evicted  uint64
}

// traceBuf accumulates one trace's finished spans.
type traceBuf struct {
	spans   []Span
	dropped int
}

// NewSpanStore creates a store retaining at most maxTraces traces
// (values <= 0 select DefaultMaxTraces) and DefaultMaxSpansPerTrace
// spans per trace.
func NewSpanStore(maxTraces int) *SpanStore {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	return &SpanStore{
		max:      maxTraces,
		maxSpans: DefaultMaxSpansPerTrace,
		traces:   make(map[TraceID]*traceBuf),
	}
}

// Add retains one finished span, evicting the oldest trace when the
// trace bound is hit. Spans with a zero trace ID are ignored.
func (s *SpanStore) Add(sp Span) {
	if s == nil || sp.TraceID.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tb, ok := s.traces[sp.TraceID]
	if !ok {
		if len(s.order) >= s.max {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.traces, oldest)
			s.evicted++
		}
		tb = &traceBuf{}
		s.traces[sp.TraceID] = tb
		s.order = append(s.order, sp.TraceID)
	}
	if len(tb.spans) >= s.maxSpans {
		tb.dropped++
		return
	}
	tb.spans = append(tb.spans, sp)
}

// Len reports how many traces are retained.
func (s *SpanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Evicted reports how many traces were evicted to keep the bound.
func (s *SpanStore) Evicted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// TraceSummary is one row of GET /debug/traces: enough to pick a trace
// without fetching its full span tree.
type TraceSummary struct {
	// TraceID identifies the trace (the {id} of /debug/traces/{id}).
	TraceID TraceID `json:"traceId"`
	// Root is the name of the trace's root span; when no root finished
	// (still in flight, or the root ran in another process) it is the
	// earliest retained span's name.
	Root string `json:"root"`
	// Start is the earliest span start; Seconds spans to the latest end.
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
	// Spans counts retained spans; Dropped counts spans shed by the
	// per-trace cap; Errors counts spans that recorded an Err.
	Spans   int `json:"spans"`
	Dropped int `json:"dropped,omitempty"`
	Errors  int `json:"errors,omitempty"`
}

// Summaries lists the retained traces, newest first.
func (s *SpanStore) Summaries() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		out = append(out, summarize(id, s.traces[id]))
	}
	return out
}

// summarize folds one trace buffer into its summary row.
func summarize(id TraceID, tb *traceBuf) TraceSummary {
	sum := TraceSummary{TraceID: id, Spans: len(tb.spans), Dropped: tb.dropped}
	var start, end time.Time
	for i := range tb.spans {
		sp := &tb.spans[i]
		if start.IsZero() || sp.Start.Before(start) {
			start = sp.Start
		}
		if sp.End.After(end) {
			end = sp.End
		}
		if sp.Parent.IsZero() && sum.Root == "" {
			sum.Root = sp.Name
		}
		if sp.Err != "" {
			sum.Errors++
		}
	}
	if sum.Root == "" && len(tb.spans) > 0 {
		earliest := 0
		for i := range tb.spans {
			if tb.spans[i].Start.Before(tb.spans[earliest].Start) {
				earliest = i
			}
		}
		sum.Root = tb.spans[earliest].Name
	}
	sum.Start = start
	if !end.IsZero() && !start.IsZero() {
		sum.Seconds = end.Sub(start).Seconds()
	}
	return sum
}

// Spans returns a copy of one trace's retained spans in finish order; ok
// is false for unknown (or evicted) trace IDs.
func (s *SpanStore) Spans(id TraceID) ([]Span, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tb, ok := s.traces[id]
	if !ok {
		return nil, false
	}
	return append([]Span(nil), tb.spans...), true
}

// SpanNode is one span with its children resolved — the tree form
// served by GET /debug/traces/{id}.
type SpanNode struct {
	Span
	Children []*SpanNode `json:"children,omitempty"`
}

// Assemble builds span trees from a flat span list: children attach to
// their parent span, spans whose parent is absent (trace roots, or
// children of spans that never finished) become roots. Roots and
// children are ordered by start time (ties broken by span ID), so the
// tree is deterministic for a fixed span set.
func Assemble(spans []Span) []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &SpanNode{Span: spans[i]}
	}
	var roots []*SpanNode
	for i := range spans {
		n := nodes[spans[i].SpanID]
		if parent, ok := nodes[n.Parent]; ok && !n.Parent.IsZero() && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

// sortNodes orders sibling spans by start time, then span ID.
func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		if !ns[i].Start.Equal(ns[j].Start) {
			return ns[i].Start.Before(ns[j].Start)
		}
		return ns[i].SpanID.String() < ns[j].SpanID.String()
	})
}
