package otrace

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"apisense/internal/obs"
)

// testClock is a deterministic clock: every read advances one millisecond.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Millisecond)
	return c.now
}

// seqReader yields a deterministic byte stream for trace/span IDs.
type seqReader struct{ n byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		r.n++
		p[i] = r.n
	}
	return len(p), nil
}

func newTestTracer(maxTraces int) *Tracer {
	return New(Config{
		Clock: (&testClock{now: time.Unix(1000, 0)}).Now,
		Rand:  &seqReader{},
		Store: NewSpanStore(maxTraces),
	})
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext(&seqReader{})
	if !sc.Valid() {
		t.Fatal("NewSpanContext from a working reader must be valid")
	}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q: want 55 chars, version 00", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := NewSpanContext(&seqReader{}).Traceparent()
	bad := []string{
		"",
		"garbage",
		valid[:54],                          // truncated
		"01" + valid[2:],                    // wrong version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + valid[35:],      // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span ID
		valid[:10] + "zz" + valid[12:],                    // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
}

func TestParentChildPropagation(t *testing.T) {
	tr := newTestTracer(8)
	ctx, root := tr.Start(context.Background(), "a.root")
	ctx2, child := tr.Start(ctx, "a.child")
	childSC := child.Context()
	rootSC := root.Context()
	if childSC.TraceID != rootSC.TraceID {
		t.Fatalf("child trace %s != root trace %s", childSC.TraceID, rootSC.TraceID)
	}
	if got, _ := SpanContextFromContext(ctx2); got != childSC {
		t.Fatalf("ctx carries %+v, want the child span context %+v", got, childSC)
	}
	child.End()
	root.End()
	spans, ok := tr.Store().Spans(rootSC.TraceID)
	if !ok || len(spans) != 2 {
		t.Fatalf("stored %d spans, ok=%v, want 2", len(spans), ok)
	}
	for _, sp := range spans {
		if sp.Name == "a.child" && sp.Parent != rootSC.SpanID {
			t.Fatalf("child parent = %s, want %s", sp.Parent, rootSC.SpanID)
		}
		if sp.Name == "a.root" && !sp.Parent.IsZero() {
			t.Fatalf("root has parent %s, want zero", sp.Parent)
		}
		if !sp.End.After(sp.Start) {
			t.Fatalf("span %s has no duration (start %v end %v)", sp.Name, sp.Start, sp.End)
		}
	}
}

func TestStartWithAdoptsIdentity(t *testing.T) {
	tr := newTestTracer(8)
	sc := NewSpanContext(&seqReader{n: 100})
	ctx, sp := tr.StartWith(context.Background(), "b.root", sc)
	if got := sp.Context(); got != sc {
		t.Fatalf("StartWith span context = %+v, want the provided %+v", got, sc)
	}
	if got, _ := SpanContextFromContext(ctx); got != sc {
		t.Fatalf("ctx span context = %+v, want %+v", got, sc)
	}
	sp.End()
	if _, ok := tr.Store().Spans(sc.TraceID); !ok {
		t.Fatal("StartWith span was not stored under the provided trace ID")
	}

	// An invalid identity falls back to a fresh root.
	_, sp2 := tr.StartWith(context.Background(), "b.fallback", SpanContext{})
	if !sp2.Context().Valid() {
		t.Fatal("StartWith with an invalid sc must mint a fresh valid identity")
	}
	sp2.End()
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x.y")
	if sp != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	// All ActiveSpan methods must be no-ops on nil.
	sp.SetAttr(Int("k", 1))
	sp.SetErr("boom")
	sp.Link(SpanContext{})
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span must report an invalid context")
	}
	if _, ok := SpanContextFromContext(ctx); ok {
		t.Fatal("nil tracer must not install a span context")
	}
	if tr.Store() != nil {
		t.Fatal("nil tracer store must be nil")
	}
	var st *SpanStore
	st.Add(Span{})
	if st.Len() != 0 || st.Evicted() != 0 {
		t.Fatal("nil store must be empty")
	}
	if got := st.Summaries(); got != nil {
		t.Fatal("nil store must have no summaries")
	}
}

func TestSpanStoreEvictsWholeTraces(t *testing.T) {
	tr := newTestTracer(3)
	var ids []TraceID
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(context.Background(), fmt.Sprintf("t.%d", i))
		ids = append(ids, sp.Context().TraceID)
		sp.End()
	}
	st := tr.Store()
	if st.Len() != 3 {
		t.Fatalf("store holds %d traces, want the bound 3", st.Len())
	}
	if st.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", st.Evicted())
	}
	for _, id := range ids[:2] {
		if _, ok := st.Spans(id); ok {
			t.Fatalf("oldest trace %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := st.Spans(id); !ok {
			t.Fatalf("recent trace %s missing", id)
		}
	}
	// Summaries are newest-first.
	sums := st.Summaries()
	if len(sums) != 3 || sums[0].TraceID != ids[4] || sums[2].TraceID != ids[2] {
		t.Fatalf("summaries out of order: %+v", sums)
	}
}

func TestSpanStoreBoundsSpansPerTrace(t *testing.T) {
	st := NewSpanStore(2)
	var id TraceID
	id[0] = 1
	for i := 0; i < DefaultMaxSpansPerTrace+10; i++ {
		var sid SpanID
		sid[0] = byte(i + 1)
		st.Add(Span{TraceID: id, SpanID: sid, Name: "n"})
	}
	spans, ok := st.Spans(id)
	if !ok || len(spans) != DefaultMaxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want the cap %d", len(spans), DefaultMaxSpansPerTrace)
	}
	sums := st.Summaries()
	if len(sums) != 1 || sums[0].Dropped != 10 {
		t.Fatalf("summary dropped = %+v, want 10", sums)
	}
}

func TestAssembleBuildsNestedTree(t *testing.T) {
	tr := newTestTracer(4)
	ctx, root := tr.Start(context.Background(), "r")
	ctxA, a := tr.Start(ctx, "a")
	_, a1 := tr.Start(ctxA, "a1")
	a1.End()
	a.End()
	_, b := tr.Start(ctx, "b")
	b.End()
	root.End()
	spans, _ := tr.Store().Spans(root.Context().TraceID)
	nodes := Assemble(spans)
	if len(nodes) != 1 || nodes[0].Name != "r" {
		t.Fatalf("want one root 'r', got %+v", nodes)
	}
	kids := nodes[0].Children
	if len(kids) != 2 || kids[0].Name != "a" || kids[1].Name != "b" {
		t.Fatalf("root children = %v, want [a b] in start order", kids)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "a1" {
		t.Fatalf("a's children = %v, want [a1]", kids[0].Children)
	}
	// An orphan (parent not in the trace) surfaces as a root, not lost.
	orphan := Span{TraceID: root.Context().TraceID, Name: "lost"}
	orphan.SpanID[0] = 0xEE
	orphan.Parent[0] = 0xDD
	nodes = Assemble(append(spans, orphan))
	if len(nodes) != 2 {
		t.Fatalf("orphan span must become a second root, got %d roots", len(nodes))
	}
}

func TestErrAndLinksRecorded(t *testing.T) {
	tr := newTestTracer(4)
	other := NewSpanContext(&seqReader{n: 50})
	_, sp := tr.Start(context.Background(), "e.spam", String("k", "v"))
	sp.Link(other)
	sp.SetErr("hive.queue_full")
	sp.End()
	spans, _ := tr.Store().Spans(sp.Context().TraceID)
	got := spans[0]
	if got.Err != "hive.queue_full" {
		t.Fatalf("err = %q", got.Err)
	}
	if len(got.Links) != 1 || got.Links[0] != other {
		t.Fatalf("links = %+v, want [%+v]", got.Links, other)
	}
	if len(got.Attrs) != 1 || got.Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("attrs = %+v", got.Attrs)
	}
}

func TestConcurrentTracingIsRaceFree(t *testing.T) {
	tr := newTestTracer(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: many goroutines producing nested spans.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.Start(context.Background(), fmt.Sprintf("w%d.root", g))
				_, child := tr.Start(ctx, fmt.Sprintf("w%d.child", g))
				child.SetAttr(Int("i", i))
				child.End()
				root.End()
			}
		}(g)
	}
	// Readers: summaries, spans, slowest table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sum := range tr.Store().Summaries() {
				tr.Store().Spans(sum.TraceID)
			}
			tr.Slowest()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if tr.Store().Len() > 16 {
		t.Fatalf("store exceeded its bound: %d traces", tr.Store().Len())
	}
}

func TestLogHandlerAddsTraceCorrelation(t *testing.T) {
	tr := newTestTracer(4)
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))
	ctx, sp := tr.Start(context.Background(), "l.op")
	logger.InfoContext(ctx, "inside span")
	logger.InfoContext(context.Background(), "outside span")
	sp.End()
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 records, got %q", out)
	}
	want := fmt.Sprintf("%q:%q", "trace_id", sp.Context().TraceID)
	if !strings.Contains(lines[0], want) || !strings.Contains(lines[0], "span_id") {
		t.Fatalf("traced record lacks correlation attrs: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Fatalf("untraced record must not carry trace_id: %s", lines[1])
	}
}

func TestBindObsExportsSlowestSpans(t *testing.T) {
	tr := newTestTracer(8)
	reg := obs.NewRegistry()
	tr.BindObs(reg)
	_, sp := tr.Start(context.Background(), "core.publish")
	sp.End()
	_, sp2 := tr.Start(context.Background(), "http.GET /api/stats")
	sp2.End()
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `apisense_trace_slowest_seconds{family="core",trace_id="`+sp.Context().TraceID.String()+`"}`) {
		t.Fatalf("core family exemplar missing:\n%s", out)
	}
	if !strings.Contains(out, `family="http"`) {
		t.Fatalf("http family exemplar missing:\n%s", out)
	}
	// Two consecutive scrapes with no traffic are byte-identical.
	var buf2 bytes.Buffer
	if _, err := reg.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("quiesced scrapes differ")
	}
}
