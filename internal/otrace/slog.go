package otrace

import (
	"context"
	"log/slog"
)

// NewLogHandler wraps inner so every record logged through a context
// that carries a span context (Tracer.Start, ContextWithSpanContext, a
// traced HTTP request) gains trace_id and span_id attributes — the
// correlation key between structured logs and GET /debug/traces/{id}.
// Records logged without a traced context pass through unchanged.
func NewLogHandler(inner slog.Handler) slog.Handler {
	return logHandler{inner: inner}
}

// logHandler is the trace-correlating slog.Handler.
type logHandler struct {
	inner slog.Handler
}

// Enabled defers to the wrapped handler.
func (h logHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

// Handle appends trace_id/span_id from ctx, then delegates.
func (h logHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc, ok := SpanContextFromContext(ctx); ok && sc.Valid() {
		r = r.Clone()
		r.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs wraps the delegate's WithAttrs, preserving correlation.
func (h logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup wraps the delegate's WithGroup, preserving correlation.
func (h logHandler) WithGroup(name string) slog.Handler {
	return logHandler{inner: h.inner.WithGroup(name)}
}
