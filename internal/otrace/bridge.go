package otrace

import (
	"sort"

	"apisense/internal/obs"
)

// BindObs registers the tracer's slowest-span table on reg as the
// exemplar-style gauge family
//
//	apisense_trace_slowest_seconds{family,trace_id}
//
// one series per stage family (span-name prefix up to the first dot:
// http, ingest, store, core, device) whose value is the duration of the
// slowest finished span seen in that family and whose trace_id label is
// the trace to pull from GET /debug/traces/{id}. The series set is
// rendered sorted by family at collect time, so scrapes stay
// byte-deterministic for a fixed table. Register once per registry;
// nil-safe on both sides.
func (t *Tracer) BindObs(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.SampleFunc("apisense_trace_slowest_seconds",
		"Duration of the slowest finished span per stage family; the trace_id label is the exemplar trace to inspect at /debug/traces/{id}.",
		"gauge", []string{"family", "trace_id"}, func() []obs.Sample {
			slow := t.Slowest()
			fams := make([]string, 0, len(slow))
			for f := range slow {
				fams = append(fams, f)
			}
			sort.Strings(fams)
			out := make([]obs.Sample, 0, len(fams))
			for _, f := range fams {
				e := slow[f]
				out = append(out, obs.Sample{Values: []string{f, e.TraceID.String()}, V: e.Seconds})
			}
			return out
		})
}
