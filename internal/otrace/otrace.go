// Package otrace is a dependency-free, deterministic-friendly tracing
// layer for the platform: spans with W3C trace-context propagation
// (traceparent headers), a bounded ring-buffer SpanStore with per-trace
// assembly, a slog handler that stamps trace_id/span_id onto every log
// record, and an obs bridge exposing the slowest trace per stage family.
//
// It is named otrace ("operational trace") to avoid colliding with
// internal/trace, the mobility-trajectory package.
//
// Determinism: a Tracer takes an injectable clock and randomness source
// (Config.Clock / Config.Rand), so determinism tests can drive it with
// fixed time and seeded IDs; production defaults are time.Now and
// crypto/rand. Tracing is strictly observational — reports, releases and
// HTTP responses are byte-identical with tracing on or off (proven by
// TestTracingDoesNotAffectDeterminism in internal/core).
//
// Nil-safety mirrors internal/obs: every method on a nil *Tracer,
// *ActiveSpan or *SpanStore is a no-op and reads no clock, so
// instrumented packages take an optional *Tracer in their Config and pay
// one nil check when tracing is off.
package otrace

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"time"
)

// TraceID identifies one end-to-end request across processes: 16 bytes,
// rendered as 32 lowercase hex digits (the W3C trace-context format).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// MarshalText renders the ID as hex, so JSON payloads (the /debug/traces
// responses) carry the same form operators grep in logs.
func (t TraceID) MarshalText() ([]byte, error) {
	b := make([]byte, hex.EncodedLen(len(t)))
	hex.Encode(b, t[:])
	return b, nil
}

// UnmarshalText parses the 32-hex-digit form.
func (t *TraceID) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != len(t) {
		return fmt.Errorf("otrace: trace ID must be %d hex digits", hex.EncodedLen(len(t)))
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// ParseTraceID parses the 32-hex-digit form; ok is false for any other
// input (wrong length, non-hex, all-zero).
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if t.UnmarshalText([]byte(s)) != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// SpanID identifies one span within a trace: 8 bytes, rendered as 16
// lowercase hex digits.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value (also used
// as the "no parent" marker on root spans).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText renders the ID as hex (see TraceID.MarshalText).
func (s SpanID) MarshalText() ([]byte, error) {
	b := make([]byte, hex.EncodedLen(len(s)))
	hex.Encode(b, s[:])
	return b, nil
}

// UnmarshalText parses the 16-hex-digit form.
func (s *SpanID) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != len(s) {
		return fmt.Errorf("otrace: span ID must be %d hex digits", hex.EncodedLen(len(s)))
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// SpanContext names one span of one trace — the minimal identity that
// crosses process boundaries in a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the W3C trace-context header value:
// "00-<trace-id>-<span-id>-01" (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. ok is false
// for empty, malformed, unsupported-version or all-zero-ID inputs —
// callers then treat the request as a new trace root.
func ParseTraceparent(h string) (SpanContext, bool) {
	// 2 (version) + 1 + 32 (trace ID) + 1 + 16 (span ID) + 1 + 2 (flags)
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	if sc.TraceID.UnmarshalText([]byte(h[3:35])) != nil {
		return SpanContext{}, false
	}
	if sc.SpanID.UnmarshalText([]byte(h[36:52])) != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// NewSpanContext draws a fresh root span context from r. Callers that
// own deterministic randomness — device.BatchUploader's seeded rng —
// use it to pre-allocate the identity a flush stamps on its traceparent
// header (the same identity across 429 retries). A nil or failing
// reader yields an invalid (zero) context, which propagation helpers
// ignore.
func NewSpanContext(r io.Reader) SpanContext {
	if r == nil {
		return SpanContext{}
	}
	var sc SpanContext
	if _, err := io.ReadFull(r, sc.TraceID[:]); err != nil {
		return SpanContext{}
	}
	if _, err := io.ReadFull(r, sc.SpanID[:]); err != nil {
		return SpanContext{}
	}
	// The all-zero ID means "absent" on the wire; nudge the astronomically
	// unlikely zero draw into validity instead of silently disabling
	// propagation for that flush.
	if sc.TraceID.IsZero() {
		sc.TraceID[0] = 1
	}
	if sc.SpanID.IsZero() {
		sc.SpanID[0] = 1
	}
	return sc
}

// Attr is one telemetry-safe key/value annotation on a span. Values are
// pre-rendered strings; like metric labels they must never carry device
// or user identifiers (task IDs, shard indexes, counts and apierr codes
// are the intended vocabulary).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Bool builds a boolean-valued attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Span is one finished operation of a trace. Parent is the zero SpanID
// on trace roots. Links name spans in other causal chains this span
// amortised — an ingest group commit links every coalesced batch's
// enqueue span. Err carries the stable apierr code (or a short message)
// when the operation failed.
type Span struct {
	TraceID TraceID       `json:"traceId"`
	SpanID  SpanID        `json:"spanId"`
	Parent  SpanID        `json:"parent"`
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	End     time.Time     `json:"end"`
	Attrs   []Attr        `json:"attrs,omitempty"`
	Links   []SpanContext `json:"links,omitempty"`
	Err     string        `json:"err,omitempty"`
}

// Duration is the span's End - Start.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// ctxKey keys the span context stored in a context.Context.
type ctxKey struct{}

// ContextWithSpanContext returns a context carrying sc, which Start
// treats as the parent and transport.Client.Do stamps as the
// traceparent header. An invalid sc returns ctx unchanged.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanContextFromContext extracts the span context stored by
// ContextWithSpanContext (or by Tracer.Start); ok is false when the
// context carries none.
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}
