package otrace

import (
	"context"
	crand "crypto/rand"
	"io"
	"strings"
	"sync"
	"time"
)

// DefaultMaxTraces is the SpanStore bound a Tracer creates for itself
// when Config.Store is nil.
const DefaultMaxTraces = 256

// Config parameterises a Tracer. The zero value gets production
// defaults.
type Config struct {
	// Clock supplies span timestamps. nil uses time.Now; determinism
	// tests inject a fixed or stepping clock so span times never leak
	// wall-clock nondeterminism into assertions.
	Clock func() time.Time
	// Rand supplies ID entropy. nil uses crypto/rand.Reader. Reads are
	// serialised by the tracer, so a seeded math/rand source is safe to
	// hand in for reproducible IDs.
	Rand io.Reader
	// Store retains finished spans for /debug/traces. nil creates a
	// NewSpanStore(DefaultMaxTraces) owned by the tracer.
	Store *SpanStore
}

// Tracer creates spans and retains them in its SpanStore. One Tracer is
// shared by every instrumented subsystem of a process (server, ingest
// queue, hive, engine), which is what joins their spans into one trace.
//
// Concurrency: safe for unsynchronised concurrent use. Nil-safety: a
// nil *Tracer is the disabled tracer — Start returns the context
// unchanged and a nil span, and no clock is read.
type Tracer struct {
	clock func() time.Time
	store *SpanStore

	idMu sync.Mutex
	rnd  io.Reader

	slowMu sync.Mutex
	slow   map[string]SlowSpan
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{
		clock: cfg.Clock,
		rnd:   cfg.Rand,
		store: cfg.Store,
		slow:  make(map[string]SlowSpan),
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	if t.rnd == nil {
		t.rnd = crand.Reader
	}
	if t.store == nil {
		t.store = NewSpanStore(DefaultMaxTraces)
	}
	return t
}

// Store returns the tracer's span store (nil on a nil tracer).
func (t *Tracer) Store() *SpanStore {
	if t == nil {
		return nil
	}
	return t.store
}

// newSpanID draws one span ID under the ID lock (Config.Rand need not be
// concurrency-safe).
func (t *Tracer) newSpanID() SpanID {
	t.idMu.Lock()
	defer t.idMu.Unlock()
	var id SpanID
	if _, err := io.ReadFull(t.rnd, id[:]); err != nil || id.IsZero() {
		id[0] = 1
	}
	return id
}

// newTraceID draws one trace ID under the ID lock.
func (t *Tracer) newTraceID() TraceID {
	t.idMu.Lock()
	defer t.idMu.Unlock()
	var id TraceID
	if _, err := io.ReadFull(t.rnd, id[:]); err != nil || id.IsZero() {
		id[0] = 1
	}
	return id
}

// Start begins a span named name: a child of the span context carried by
// ctx, or a new trace root when ctx carries none. The returned context
// carries the new span's identity for children and header stamping; End
// the span to retain it. On a nil tracer ctx is returned unchanged with
// a nil (no-op) span.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	sp := Span{Name: name, Start: t.clock(), Attrs: attrs}
	if parent, ok := SpanContextFromContext(ctx); ok {
		sp.TraceID = parent.TraceID
		sp.Parent = parent.SpanID
	} else {
		sp.TraceID = t.newTraceID()
	}
	sp.SpanID = t.newSpanID()
	a := &ActiveSpan{t: t, sp: sp}
	return ContextWithSpanContext(ctx, SpanContext{TraceID: sp.TraceID, SpanID: sp.SpanID}), a
}

// StartWith begins a trace-root span with a pre-allocated identity —
// device.BatchUploader draws the identity from its seeded rng so the
// span (and the traceparent header of every retry) is reproducible. An
// invalid sc falls back to Start semantics.
func (t *Tracer) StartWith(ctx context.Context, name string, sc SpanContext, attrs ...Attr) (context.Context, *ActiveSpan) {
	if t == nil {
		return ContextWithSpanContext(ctx, sc), nil
	}
	if !sc.Valid() {
		return t.Start(ctx, name, attrs...)
	}
	sp := Span{TraceID: sc.TraceID, SpanID: sc.SpanID, Name: name, Start: t.clock(), Attrs: attrs}
	a := &ActiveSpan{t: t, sp: sp}
	return ContextWithSpanContext(ctx, sc), a
}

// finish retains one ended span and refreshes the slowest-span table.
func (t *Tracer) finish(sp Span) {
	t.store.Add(sp)
	fam := spanFamily(sp.Name)
	secs := sp.Duration().Seconds()
	t.slowMu.Lock()
	if cur, ok := t.slow[fam]; !ok || secs > cur.Seconds {
		t.slow[fam] = SlowSpan{TraceID: sp.TraceID, Name: sp.Name, Seconds: secs}
	}
	t.slowMu.Unlock()
}

// spanFamily maps a span name to its stage family: the prefix up to the
// first dot ("store.append" -> "store"), or the whole name.
func spanFamily(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// SlowSpan records the slowest finished span seen in one stage family —
// the exemplar an operator follows from a histogram regression to
// GET /debug/traces/{id}.
type SlowSpan struct {
	// TraceID is the trace the slow span belongs to.
	TraceID TraceID `json:"traceId"`
	// Name is the full span name ("store.append").
	Name string `json:"name"`
	// Seconds is the span duration.
	Seconds float64 `json:"seconds"`
}

// Slowest snapshots the slowest-span-per-family table (family = span
// name up to the first dot). Empty map on a nil tracer.
func (t *Tracer) Slowest() map[string]SlowSpan {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	out := make(map[string]SlowSpan, len(t.slow))
	for k, v := range t.slow {
		out[k] = v
	}
	return out
}

// ActiveSpan is a span in progress, created by Tracer.Start and finished
// by End. All methods are nil-safe no-ops and safe for concurrent use.
type ActiveSpan struct {
	t    *Tracer
	mu   sync.Mutex
	sp   Span
	done bool
}

// Context returns the span's identity (zero on a nil span).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.sp.TraceID, SpanID: a.sp.SpanID}
}

// SetAttr appends attributes to the span.
func (a *ActiveSpan) SetAttr(attrs ...Attr) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.done {
		a.sp.Attrs = append(a.sp.Attrs, attrs...)
	}
	a.mu.Unlock()
}

// Link records a causal link to another span — an ingest group commit
// links every batch span it amortised. Invalid contexts are ignored.
func (a *ActiveSpan) Link(sc SpanContext) {
	if a == nil || !sc.Valid() {
		return
	}
	a.mu.Lock()
	if !a.done {
		a.sp.Links = append(a.sp.Links, sc)
	}
	a.mu.Unlock()
}

// SetErr marks the span failed with a stable code (an apierr code, or a
// short static message). Empty codes are ignored.
func (a *ActiveSpan) SetErr(code string) {
	if a == nil || code == "" {
		return
	}
	a.mu.Lock()
	if !a.done {
		a.sp.Err = code
	}
	a.mu.Unlock()
}

// End stamps the end time and retains the span in the tracer's store.
// Idempotent: only the first call takes effect.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.sp.End = a.t.clock()
	sp := a.sp
	a.mu.Unlock()
	a.t.finish(sp)
}
