package exp

import (
	"context"
	"fmt"
	"time"

	"apisense/internal/core"
)

// E13Sharding runs experiment E13: monolithic vs sharded publication. The
// same workload is published once through the monolithic engine and once
// per shard policy (time window, region cell, user bucket); the table
// reports release size, the privacy actually achieved (worst shard for the
// sharded runs), the utility objective, and wall-clock latency. The claim
// under test is the ROADMAP's scaling step: sharding must preserve the
// privacy floor in every shard (worst-shard exposure within epsilon of the
// monolithic release) while opening the road to per-shard parallel
// releases of very large datasets.
func E13Sharding(ctx context.Context, w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Monolithic vs sharded publication (PRIVAPI over partitions)",
		Columns: []string{"mode", "shards", "released", "withheld", "exposure", "utility", "latency"},
		Notes: []string{
			"exposure: monolithic = chosen strategy's POI-recovery f1; sharded = worst released shard",
			"utility: record-weighted mean over released shards (crowded-places objective)",
		},
	}
	mw, err := core.New(core.Config{}, w.City.Center)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	_, monoSel, err := mw.PublishContext(ctx, w.Raw)
	if err != nil {
		return nil, err
	}
	monoLatency := time.Since(start)
	var monoExposure, monoUtility float64
	var monoReleased int
	for _, ev := range monoSel.Evaluations {
		if ev.Strategy == monoSel.Chosen {
			monoExposure = ev.Privacy.F1()
			monoUtility = ev.Utility
			monoReleased = ev.Released
		}
	}
	t.Rows = append(t.Rows, []string{
		"monolithic", "1", fmt.Sprintf("%d", monoReleased), "0",
		fmtF(monoExposure), fmtF(monoUtility), monoLatency.Round(time.Millisecond).String(),
	})

	days := 3 * 24 * time.Hour
	window, err := core.NewShardByWindow(days)
	if err != nil {
		return nil, err
	}
	cell, err := core.NewShardByCell(3000)
	if err != nil {
		return nil, err
	}
	user, err := core.NewShardByUser(4)
	if err != nil {
		return nil, err
	}
	for _, policy := range []core.ShardBy{window, cell, user} {
		start := time.Now()
		_, sel, err := mw.PublishShardedContext(ctx, w.Raw, policy)
		if err != nil {
			return nil, fmt.Errorf("exp: sharded publish (%s): %w", policy.Name(), err)
		}
		latency := time.Since(start)
		t.Rows = append(t.Rows, []string{
			policy.Name(),
			fmt.Sprintf("%d", len(sel.Shards)),
			fmt.Sprintf("%d", sel.Released),
			fmt.Sprintf("%d", sel.Withheld),
			fmtF(sel.WorstExposure), fmtF(sel.Utility),
			latency.Round(time.Millisecond).String(),
		})
	}
	return t, nil
}
