package exp

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"time"

	"apisense/internal/core"
	"apisense/internal/device"
	"apisense/internal/filter"
	"apisense/internal/geo"
	"apisense/internal/hive"
	"apisense/internal/honeycomb"
	"apisense/internal/incentive"
	"apisense/internal/lppm"
	"apisense/internal/metrics"
	"apisense/internal/secagg"
	"apisense/internal/transport"
	"apisense/internal/vsensor"
)

// E6Frontier runs experiment E6: the privacy-utility frontier sweep that
// motivates PRIVAPI's "not one unique strategy" position.
func E6Frontier(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Privacy-utility frontier (exposure f1 vs hotspot overlap)",
		Columns: []string{"mechanism", "exposure-f1", "hotspot-overlap", "mean-distortion"},
		Notes:   []string{"ideal corner: exposure 0, overlap 1"},
	}
	rawDen := metrics.UserDensity(w.Raw, w.Grid)
	var sweep []lppm.Mechanism
	for _, eps := range []float64{0.05, 0.01, 0.002} {
		gi, err := lppm.NewGeoInd(eps, 1)
		if err != nil {
			return nil, err
		}
		sweep = append(sweep, gi)
	}
	for _, eps := range []float64{50, 100, 200, 400} {
		sm, err := lppm.NewSpeedSmoothing(eps, 2)
		if err != nil {
			return nil, err
		}
		sweep = append(sweep, sm)
	}
	for _, m := range sweep {
		release, err := protect(m, w)
		if err != nil {
			return nil, err
		}
		res, err := attackOn(w.Truth, release)
		if err != nil {
			return nil, err
		}
		overlap := metrics.TopKOverlap(rawDen, metrics.UserDensity(release, w.Grid), 20)
		dist := metrics.SpatialDistortion(w.Raw, release)
		t.Rows = append(t.Rows, []string{
			m.Name(), fmtF(res.F1()), fmtF(overlap), fmt.Sprintf("%.0fm", dist.Mean),
		})
	}
	return t, nil
}

// E7Selection runs experiment E7: PRIVAPI's utility-driven optimal strategy
// selection across objectives and privacy floors. The sweep runs on the
// concurrent evaluation engine and is abandoned when ctx is cancelled.
func E7Selection(ctx context.Context, w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "PRIVAPI optimal strategy selection (per objective and privacy floor)",
		Columns: []string{"objective", "floor", "chosen", "utility", "exposure-f1"},
	}
	for _, obj := range []core.Objective{core.ObjectiveCrowdedPlaces, core.ObjectiveTraffic, core.ObjectiveDistortion} {
		for _, floor := range []float64{0.25, 0.45, 0.85} {
			mw, err := core.New(core.Config{
				Objective:      obj,
				MaxPOIExposure: floor,
			}, w.City.Center)
			if err != nil {
				return nil, err
			}
			_, sel, err := mw.PublishContext(ctx, w.Raw)
			if err != nil && !errors.Is(err, core.ErrNoStrategy) {
				return nil, err
			}
			chosen := sel.Chosen
			utility, exposure := "-", "-"
			if chosen == "" {
				chosen = "(none meets floor)"
			} else {
				for _, ev := range sel.Evaluations {
					if ev.Strategy == sel.Chosen {
						utility = fmtF(ev.Utility)
						exposure = fmtF(ev.Privacy.F1())
					}
				}
			}
			t.Rows = append(t.Rows, []string{
				obj.String(), fmtF(floor), chosen, utility, exposure,
			})
		}
	}
	return t, nil
}

const collectScript = `
sensor.gps.onLocationChanged(function(loc) {
  dataset.save({lat: loc.lat, lon: loc.lon, speed: loc.speed});
});
`

// E8Platform runs experiment E8: end-to-end platform pipeline over HTTP
// (Fig. 1): register devices, deploy a script task, execute, upload,
// collect. Reports deployment latency and ingestion throughput. The ctx
// governs the HTTP interactions and cancels the sweep between fleets.
func E8Platform(ctx context.Context, w *Workload, fleetSizes []int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Platform pipeline: deploy -> execute -> upload -> collect (HTTP)",
		Columns: []string{"devices", "deploy-latency", "records", "ingest-throughput", "collect-latency"},
	}
	byUser := w.Raw.ByUser()
	for _, n := range fleetSizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if n > len(w.City.Residents) {
			n = len(w.City.Residents)
		}
		h := hive.New()
		srv := httptest.NewServer(hive.NewServer(h))
		hc, err := honeycomb.New("exp-lab", srv.URL)
		if err != nil {
			srv.Close()
			return nil, err
		}

		var devices []*device.Device
		for _, res := range w.City.Residents[:n] {
			move := byUser[res.User][0]
			d, err := device.New(device.Config{ID: res.User + "-phone", User: res.User, Movement: move})
			if err != nil {
				srv.Close()
				return nil, err
			}
			if err := h.RegisterDevice(d.Info()); err != nil {
				srv.Close()
				return nil, err
			}
			devices = append(devices, d)
		}

		deployStart := time.Now()
		spec, _, err := hc.Deploy(ctx, transport.TaskSpec{
			Name: "exp8", Script: collectScript, PeriodSeconds: 120, Sensors: []string{"gps"},
		})
		if err != nil {
			srv.Close()
			return nil, err
		}
		deployLatency := time.Since(deployStart)

		cl := transport.NewClient(srv.URL)
		var records int
		ingestStart := time.Now()
		for _, d := range devices {
			res, err := d.RunTask(spec)
			if err != nil {
				srv.Close()
				return nil, err
			}
			records += len(res.Upload.Records)
			if err := cl.Do(ctx, "POST", "/api/uploads", res.Upload, nil); err != nil {
				srv.Close()
				return nil, err
			}
		}
		ingestDur := time.Since(ingestStart)

		collectStart := time.Now()
		ups, err := hc.Collect(ctx, spec.ID)
		collectLatency := time.Since(collectStart)
		srv.Close()
		if err != nil {
			return nil, err
		}
		if len(ups) != len(devices) {
			return nil, fmt.Errorf("exp: collected %d uploads for %d devices", len(ups), len(devices))
		}
		throughput := float64(records) / ingestDur.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			deployLatency.Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%d", records),
			fmt.Sprintf("%.0f rec/s", throughput),
			collectLatency.Round(100 * time.Microsecond).String(),
		})
	}
	return t, nil
}

// E9VirtualSensor runs experiment E9: round-robin vs energy-aware vs random
// retrieval strategies on a heterogeneous fleet.
func E9VirtualSensor(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Virtual sensor strategies (40 devices, heterogeneous batteries, 1 day)",
		Columns: []string{"strategy", "samples", "failures", "battery-min", "battery-std", "dead", "fairness"},
	}
	byUser := w.Raw.ByUser()
	n := 40
	if n > len(w.City.Residents) {
		n = len(w.City.Residents)
	}
	batteries := []float64{10, 100, 35, 100, 60, 100, 20, 100}
	build := func() ([]*device.Device, error) {
		var out []*device.Device
		for i, res := range w.City.Residents[:n] {
			b := device.NewBattery(batteries[i%len(batteries)])
			b.DrainPerFix = 0.25
			d, err := device.New(device.Config{
				ID: fmt.Sprintf("vs-%02d", i), User: res.User,
				Movement: byUser[res.User][0], Battery: b,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, d)
		}
		return out, nil
	}
	start, _, _ := w.Raw.TimeSpan()
	coverage, err := vsensor.NewCoverageAware(w.Grid)
	if err != nil {
		return nil, err
	}
	for _, strat := range []vsensor.Strategy{
		vsensor.RoundRobin{}, vsensor.EnergyAware{}, vsensor.NewRandom(4), coverage,
	} {
		devs, err := build()
		if err != nil {
			return nil, err
		}
		vs, err := vsensor.New("exp9", devs, strat)
		if err != nil {
			return nil, err
		}
		res, err := vs.Campaign(start, start.Add(24*time.Hour), 30*time.Second)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			res.Strategy,
			fmt.Sprintf("%d", res.Samples),
			fmt.Sprintf("%d", res.Failures),
			fmt.Sprintf("%.1f", res.BatteryMin),
			fmt.Sprintf("%.2f", res.BatteryStd),
			fmt.Sprintf("%d", res.Dead),
			fmtF(res.Fairness),
		})
	}
	return t, nil
}

// E10Incentives runs experiment E10: contributions and retention per
// incentive strategy over a 30-day campaign.
func E10Incentives(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Incentive strategies (200 contributors, 30 days)",
		Columns: []string{"strategy", "contributions", "day1-7", "day24-30", "retention"},
	}
	strategies := []incentive.Strategy{
		incentive.None{}, incentive.Feedback{}, incentive.NewRanking(),
		incentive.NewRewarding(), incentive.NewWinWin(),
	}
	for _, s := range strategies {
		pop, err := incentive.NewPopulation(200, seed)
		if err != nil {
			return nil, err
		}
		res, err := incentive.Simulate(pop, s, 30)
		if err != nil {
			return nil, err
		}
		var first, last float64
		for _, v := range res.Daily[:7] {
			first += v
		}
		for _, v := range res.Daily[23:] {
			last += v
		}
		t.Rows = append(t.Rows, []string{
			res.Strategy,
			fmt.Sprintf("%d", res.Total),
			fmtPct(first / 7),
			fmtPct(last / 7),
			fmtF(res.Retention),
		})
	}
	return t, nil
}

// E11Filters runs experiment E11: effect of the device-side privacy layer
// on what leaves the phone and on POI recovery.
func E11Filters(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Device-side privacy layer: kept records and home exposure",
		Columns: []string{"filter", "kept", "dropped", "home-recall"},
		Notes:   []string{"home-recall: homes recovered by the attack from the device uploads"},
	}
	byUser := w.Raw.ByUser()
	n := 10
	if n > len(w.City.Residents) {
		n = len(w.City.Residents)
	}
	homes := make(map[string][]geo.Point, n)
	for _, res := range w.City.Residents[:n] {
		homes[res.User] = []geo.Point{res.Home}
	}
	type chainBuilder struct {
		name  string
		build func(home geo.Point) *filter.Chain
	}
	builders := []chainBuilder{
		{"none", func(geo.Point) *filter.Chain { return filter.NewChain() }},
		{"blur-400m", func(geo.Point) *filter.Chain {
			return filter.NewChain(&filter.LocationBlur{CellSize: 400, Origin: w.City.Center})
		}},
		{"home-zone-500m", func(home geo.Point) *filter.Chain {
			return filter.NewChain(&filter.ZoneExclusion{Centers: []geo.Point{home}, Radius: 500})
		}},
		{"daytime-only", func(geo.Point) *filter.Chain {
			return filter.NewChain(&filter.TimeWindow{StartHour: 8, EndHour: 20})
		}},
	}
	for _, b := range builders {
		uploads := make([]transport.Upload, 0, n)
		var kept, dropped int
		for _, res := range w.City.Residents[:n] {
			d, err := device.New(device.Config{
				ID: res.User + "-ph", User: res.User,
				Movement: byUser[res.User][0],
				Filter:   b.build(res.Home),
			})
			if err != nil {
				return nil, err
			}
			spec := transport.TaskSpec{
				ID: "e11", Name: "e11", Script: collectScript,
				PeriodSeconds: 60, Sensors: []string{"gps"},
			}
			rr, err := d.RunTask(spec)
			if err != nil {
				return nil, err
			}
			kept += len(rr.Upload.Records)
			dropped += rr.Dropped
			rr.Upload.DeviceID = res.User
			uploads = append(uploads, rr.Upload)
		}
		ds := honeycomb.UploadsToDataset(uploads, nil)
		res, err := attackOn(homes, ds)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			b.name,
			fmt.Sprintf("%d", kept),
			fmt.Sprintf("%d", dropped),
			fmtPct(res.Recall()),
		})
	}
	return t, nil
}

// E12SecAgg runs experiment E12: exactness and cost of the secure
// aggregation extension (Paillier heatmap vs plaintext sums).
func E12SecAgg(w *Workload, users, cells int) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Secure aggregation: private crowd heatmap (Paillier, 512-bit test key)",
		Columns: []string{"scheme", "devices", "cells", "exact", "time-per-device"},
	}
	if users > len(w.City.Residents) {
		users = len(w.City.Residents)
	}
	// Per-device cell counts from day-one movement.
	counts := make([][]int64, users)
	byUser := w.Raw.ByUser()
	for i, res := range w.City.Residents[:users] {
		vec := make([]int64, cells)
		for _, r := range byUser[res.User][0].Records {
			c := w.Grid.CellOf(r.Pos)
			vec[(c.Row*31+c.Col)%cells]++
		}
		counts[i] = vec
	}
	want := make([]int64, cells)
	for _, vec := range counts {
		for i, v := range vec {
			want[i] += v
		}
	}

	// Paillier path.
	sk, err := secagg.GenerateKey(512)
	if err != nil {
		return nil, err
	}
	sess, err := secagg.NewHistogramSession(&sk.PublicKey, cells)
	if err != nil {
		return nil, err
	}
	startP := time.Now()
	for _, vec := range counts {
		enc, err := secagg.EncryptContribution(&sk.PublicKey, vec)
		if err != nil {
			return nil, err
		}
		if err := sess.Add(enc); err != nil {
			return nil, err
		}
	}
	got, err := sess.Decrypt(sk)
	if err != nil {
		return nil, err
	}
	perDevP := time.Since(startP) / time.Duration(users)
	exactP := equalVec(got, want)

	// Secret-sharing path (2 aggregators).
	aggA, err := secagg.NewShareAggregator(cells)
	if err != nil {
		return nil, err
	}
	aggB, err := secagg.NewShareAggregator(cells)
	if err != nil {
		return nil, err
	}
	startS := time.Now()
	for _, vec := range counts {
		shares, err := secagg.Split(vec, 2)
		if err != nil {
			return nil, err
		}
		if err := aggA.Add(shares[0]); err != nil {
			return nil, err
		}
		if err := aggB.Add(shares[1]); err != nil {
			return nil, err
		}
	}
	gotS, err := secagg.Combine([]secagg.Shares{aggA.Sum(), aggB.Sum()})
	if err != nil {
		return nil, err
	}
	perDevS := time.Since(startS) / time.Duration(users)
	exactS := equalVec(gotS, want)

	t.Rows = append(t.Rows, []string{
		"paillier", fmt.Sprintf("%d", users), fmt.Sprintf("%d", cells),
		fmt.Sprintf("%v", exactP), perDevP.Round(time.Microsecond).String(),
	})
	t.Rows = append(t.Rows, []string{
		"secret-sharing", fmt.Sprintf("%d", users), fmt.Sprintf("%d", cells),
		fmt.Sprintf("%v", exactS), perDevS.Round(time.Microsecond).String(),
	})
	return t, nil
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
