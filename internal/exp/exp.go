// Package exp is the experiment harness: one runner per experiment of
// DESIGN.md §4 (E1–E12, plus E13 for sharded publication), each
// regenerating the corresponding table of EXPERIMENTS.md. The runners are
// shared by the cmd/experiments binary and the root-level benchmarks, and
// all take an explicit seed so results are reproducible.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"apisense/internal/attack"
	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/metrics"
	"apisense/internal/mobgen"
	"apisense/internal/poi"
	"apisense/internal/trace"
)

// Workload bundles the synthetic dataset and its ground truth, shared
// across privacy/utility experiments.
type Workload struct {
	Raw   *trace.Dataset
	City  *mobgen.City
	Truth map[string][]geo.Point
	Grid  *geo.Grid
}

// DefaultUsers/DefaultDays are the standard workload size (50 users × 14
// days in the full runs; benches shrink it).
const (
	DefaultUsers = 50
	DefaultDays  = 14
)

// NewWorkload generates the standard experimental workload.
func NewWorkload(seed uint64, users, days int) (*Workload, error) {
	ds, city, err := mobgen.Generate(mobgen.Config{Seed: seed, Users: users, Days: days})
	if err != nil {
		return nil, fmt.Errorf("exp: generate workload: %w", err)
	}
	truth := make(map[string][]geo.Point, len(city.Residents))
	for _, r := range city.Residents {
		truth[r.User] = r.TruePOIs()
	}
	box, ok := ds.BBox()
	if !ok {
		return nil, fmt.Errorf("exp: empty workload")
	}
	grid, err := geo.NewGrid(box.Pad(500), 250)
	if err != nil {
		return nil, fmt.Errorf("exp: grid: %w", err)
	}
	return &Workload{Raw: ds, City: city, Truth: truth, Grid: grid}, nil
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// attackOn runs the standard POI-recovery attack (noise-adaptive 500 m
// stay-point radius, 15 min dwell) against a protected release.
func attackOn(truth map[string][]geo.Point, release *trace.Dataset) (attack.RecoveryResult, error) {
	extractor, err := poi.NewStayPoints(poi.StayPointConfig{MaxDistance: 500, MinDuration: 15 * time.Minute})
	if err != nil {
		return attack.RecoveryResult{}, err
	}
	rec, err := attack.NewPOIRecovery(extractor, 0, 0)
	if err != nil {
		return attack.RecoveryResult{}, err
	}
	return rec.Run(truth, release), nil
}

// protect applies a mechanism to the whole workload.
func protect(m lppm.Mechanism, w *Workload) (*trace.Dataset, error) {
	return lppm.ProtectDataset(m, w.Raw)
}

// mechanismPortfolio is the standard mechanism set compared across E1-E5.
func mechanismPortfolio(origin geo.Point) ([]lppm.Mechanism, error) {
	var out []lppm.Mechanism
	out = append(out, lppm.Identity{})
	for _, eps := range []float64{0.05, 0.01, 0.005, 0.001} {
		gi, err := lppm.NewGeoInd(eps, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, gi)
	}
	cl, err := lppm.NewCloaking(800, origin)
	if err != nil {
		return nil, err
	}
	out = append(out, cl)
	sim, err := lppm.NewSimplify(100)
	if err != nil {
		return nil, err
	}
	out = append(out, sim)
	for _, eps := range []float64{50, 100, 200} {
		sm, err := lppm.NewSpeedSmoothing(eps, 2)
		if err != nil {
			return nil, err
		}
		out = append(out, sm)
	}
	return out, nil
}

// fmtPct formats a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// E1POIRecovery runs experiment E1 (claim C1): POI recovery under
// geo-indistinguishability across privacy budgets.
func E1POIRecovery(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "POI recovery under geo-indistinguishability (claim C1: >=60% at practical budgets)",
		Columns: []string{"mechanism", "mean-noise", "recall", "precision", "f1"},
		Notes: []string{
			"recall is the paper's 're-identify at least 60% of the POIs' figure",
			"attacker: stay points d=500m t=15min, match radius 250m",
		},
	}
	for _, eps := range []float64{0.05, 0.01, 0.005, 0.001} {
		gi, err := lppm.NewGeoInd(eps, 1)
		if err != nil {
			return nil, err
		}
		release, err := protect(gi, w)
		if err != nil {
			return nil, err
		}
		res, err := attackOn(w.Truth, release)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			gi.Name(),
			fmt.Sprintf("%.0fm", 2/eps),
			fmtPct(res.Recall()), fmtPct(res.Precision()), fmtF(res.F1()),
		})
	}
	return t, nil
}

// E2SpeedSmoothing runs experiment E2 (claim C2): POI exposure across the
// full mechanism portfolio, including the paper's speed smoothing.
func E2SpeedSmoothing(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "POI exposure per mechanism (claim C2: smoothing hides stops)",
		Columns: []string{"mechanism", "recall", "precision", "f1", "released"},
		Notes: []string{
			"f1 is the exposure score PRIVAPI's privacy floor bounds",
			"smoothing recall stays high only because paths cross true POIs; precision collapses",
		},
	}
	portfolio, err := mechanismPortfolio(w.City.Center)
	if err != nil {
		return nil, err
	}
	for _, m := range portfolio {
		release, err := protect(m, w)
		if err != nil {
			return nil, err
		}
		res, err := attackOn(w.Truth, release)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.Name(), fmtPct(res.Recall()), fmtPct(res.Precision()), fmtF(res.F1()),
			fmt.Sprintf("%d", release.Len()),
		})
	}
	return t, nil
}

// E3Linkage runs experiment E3: POI-profile re-identification accuracy per
// mechanism, with a weekday train/test split.
func E3Linkage(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "User re-identification by POI profiles (train: week 1, test: rest)",
		Columns: []string{"mechanism", "top1", "top3", "baseline"},
		Notes: []string{
			"profiles learned from raw week 1; test release pseudonymised",
		},
	}
	start, _, ok := w.Raw.TimeSpan()
	if !ok {
		return nil, fmt.Errorf("exp: empty dataset")
	}
	cut := time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, time.UTC).AddDate(0, 0, 7)
	background, test := metrics.SplitAtDay(w.Raw, cut)
	if background.Len() == 0 || test.Len() == 0 {
		return nil, fmt.Errorf("exp: workload too short for linkage split")
	}
	extractor, err := poi.NewStayPoints(poi.StayPointConfig{MaxDistance: 500, MinDuration: 15 * time.Minute})
	if err != nil {
		return nil, err
	}
	linker, err := attack.NewLinker(extractor, 0)
	if err != nil {
		return nil, err
	}
	profiles := linker.BuildProfiles(background)
	pseud, err := trace.NewPseudonymizer([]byte("exp-release"))
	if err != nil {
		return nil, err
	}
	reverse := make(map[string]string)
	for _, u := range w.Raw.Users() {
		reverse[pseud.Pseudonym(u)] = u
	}

	portfolio, err := mechanismPortfolio(w.City.Center)
	if err != nil {
		return nil, err
	}
	for _, m := range portfolio {
		release, err := lppm.ProtectDataset(m, test)
		if err != nil {
			return nil, err
		}
		res := linker.Run(profiles, pseud.Apply(release), func(p string) string { return reverse[p] })
		t.Rows = append(t.Rows, []string{
			m.Name(),
			fmtPct(res.Accuracy()), fmtPct(res.AccuracyTop3()), fmtF(res.Baseline),
		})
	}
	return t, nil
}

// E4CrowdedPlaces runs experiment E4 (claim C3): top-20 crowded-cell
// overlap, cell coverage and origin/destination-flow similarity per
// mechanism.
func E4CrowdedPlaces(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Crowded-places utility: top-20 hotspot overlap (claim C3)",
		Columns: []string{"mechanism", "overlap-f1", "coverage", "flow-sim"},
	}
	rawDen := metrics.UserDensity(w.Raw, w.Grid)
	rawFlows := metrics.FlowMatrix(w.Raw, w.Grid)
	portfolio, err := mechanismPortfolio(w.City.Center)
	if err != nil {
		return nil, err
	}
	for _, m := range portfolio {
		release, err := protect(m, w)
		if err != nil {
			return nil, err
		}
		overlap := metrics.TopKOverlap(rawDen, metrics.UserDensity(release, w.Grid), 20)
		cov := metrics.Coverage(w.Raw, release, w.Grid)
		flowSim := metrics.FlowSimilarity(rawFlows, metrics.FlowMatrix(release, w.Grid))
		t.Rows = append(t.Rows, []string{m.Name(), fmtF(overlap), fmtF(cov), fmtF(flowSim)})
	}
	return t, nil
}

// E5Traffic runs experiment E5 (claim C3): traffic forecasting error when
// training on protected data.
func E5Traffic(w *Workload) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Traffic forecasting: historical-average MAE on held-out raw day (claim C3)",
		Columns: []string{"mechanism", "mae", "vs-raw-trained"},
		Notes:   []string{"lower is better; vs-raw-trained = protMAE/rawMAE (1.0 = no loss)"},
	}
	_, end, ok := w.Raw.TimeSpan()
	if !ok {
		return nil, fmt.Errorf("exp: empty dataset")
	}
	endEve := end.Add(-time.Nanosecond)
	cut := time.Date(endEve.Year(), endEve.Month(), endEve.Day(), 0, 0, 0, 0, time.UTC)
	rawTrain, rawTest := metrics.SplitAtDay(w.Raw, cut)
	actual := metrics.CountTraffic(rawTest, w.Grid)
	baseF, err := metrics.NewForecaster(metrics.CountTraffic(rawTrain, w.Grid))
	if err != nil {
		return nil, err
	}
	baseMAE := baseF.Evaluate(actual).MAE

	portfolio, err := mechanismPortfolio(w.City.Center)
	if err != nil {
		return nil, err
	}
	for _, m := range portfolio {
		release, err := protect(m, w)
		if err != nil {
			return nil, err
		}
		protTrain, _ := metrics.SplitAtDay(release, cut)
		f, err := metrics.NewForecaster(metrics.CountTraffic(protTrain, w.Grid))
		if err != nil {
			return nil, err
		}
		mae := f.Evaluate(actual).MAE
		ratio := 0.0
		if baseMAE > 0 {
			ratio = mae / baseMAE
		}
		t.Rows = append(t.Rows, []string{m.Name(), fmtF(mae), fmt.Sprintf("%.2fx", ratio)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("raw-trained baseline MAE = %.3f", baseMAE))
	return t, nil
}
