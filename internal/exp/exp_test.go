package exp

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

// smallWorkload is shared across tests (generation dominates test time).
var smallWorkload *Workload

func workload(t *testing.T) *Workload {
	t.Helper()
	if smallWorkload == nil {
		w, err := NewWorkload(101, 12, 9)
		if err != nil {
			t.Fatal(err)
		}
		smallWorkload = w
	}
	return smallWorkload
}

func render(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, tab.ID) {
		t.Errorf("rendered table lacks its ID: %s", out)
	}
	return out
}

// cell extracts row r, column c of the table.
func cell(tab *Table, r, c int) string { return tab.Rows[r][c] }

func pct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v / 100
}

func TestNewWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(1, 0, 5); err == nil {
		t.Error("zero users should fail")
	}
}

func TestE1ShapeMatchesClaimC1(t *testing.T) {
	tab, err := E1POIRecovery(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	render(t, tab)
	// Practical budgets (first two rows: eps 0.05 and 0.01) must recover
	// >= 60% of POIs — the paper's claim C1.
	for r := 0; r < 2; r++ {
		if got := pct(t, cell(tab, r, 2)); got < 0.6 {
			t.Errorf("row %d recall = %.2f, want >= 0.6 (claim C1)", r, got)
		}
	}
	// Recall must decrease as the budget strengthens (last row weakest).
	first := pct(t, cell(tab, 0, 2))
	last := pct(t, cell(tab, 3, 2))
	if last >= first {
		t.Errorf("recall did not degrade with stronger privacy: %.2f -> %.2f", first, last)
	}
}

func TestE2ShapeMatchesClaimC2(t *testing.T) {
	tab, err := E2SpeedSmoothing(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	var idF1, smF1 float64
	found := 0
	for _, row := range tab.Rows {
		f1, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad f1 %q", row[3])
		}
		switch {
		case row[0] == "identity":
			idF1 = f1
			found++
		case row[0] == "smoothing(eps=100,trim=2)":
			smF1 = f1
			found++
		}
	}
	if found != 2 {
		t.Fatal("expected mechanisms missing from E2")
	}
	if smF1 > idF1*0.5 {
		t.Errorf("smoothing exposure %.3f should be far below identity %.3f (claim C2)", smF1, idF1)
	}
}

func TestE3LinkageShape(t *testing.T) {
	tab, err := E3Linkage(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	// Identity linkage must be far above the random baseline.
	top1 := pct(t, cell(tab, 0, 1))
	baseline, err := strconv.ParseFloat(cell(tab, 0, 3), 64)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < baseline*4 {
		t.Errorf("identity linkage %.2f not well above baseline %.3f", top1, baseline)
	}
}

func TestE4CrowdedPlacesShape(t *testing.T) {
	tab, err := E4CrowdedPlaces(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	idOverlap, _ := strconv.ParseFloat(byName["identity"][1], 64)
	smOverlap, _ := strconv.ParseFloat(byName["smoothing(eps=100,trim=2)"][1], 64)
	strongGI, _ := strconv.ParseFloat(byName["geoind(eps=0.001)"][1], 64)
	if idOverlap < 0.99 {
		t.Errorf("identity overlap = %v, want 1", idOverlap)
	}
	// Claim C3: smoothing keeps hotspot utility high, strong noise kills it.
	if smOverlap < 0.6 {
		t.Errorf("smoothing overlap = %v, want >= 0.6 (claim C3)", smOverlap)
	}
	if strongGI >= smOverlap {
		t.Errorf("strong geoind overlap %v should be below smoothing %v", strongGI, smOverlap)
	}
}

func TestE5TrafficShape(t *testing.T) {
	tab, err := E5Traffic(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	ratios := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "x"), 64)
		if err != nil {
			t.Fatalf("bad ratio %q", row[2])
		}
		ratios[row[0]] = v
	}
	if r := ratios["identity"]; r < 0.95 || r > 1.05 {
		t.Errorf("identity traffic ratio = %v, want ~1", r)
	}
	// Claim C3: smoothing within 2x of raw-trained error; strong noise worse.
	if r := ratios["smoothing(eps=100,trim=2)"]; r > 2 {
		t.Errorf("smoothing traffic ratio = %v, want <= 2 (claim C3)", r)
	}
	if ratios["geoind(eps=0.001)"] <= ratios["smoothing(eps=100,trim=2)"] {
		t.Errorf("strong geoind (%v) should forecast worse than smoothing (%v)",
			ratios["geoind(eps=0.001)"], ratios["smoothing(eps=100,trim=2)"])
	}
}

func TestE6FrontierShape(t *testing.T) {
	tab, err := E6Frontier(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	if len(tab.Rows) != 7 {
		t.Errorf("rows = %d, want 7", len(tab.Rows))
	}
}

func TestE7SelectionShape(t *testing.T) {
	tab, err := E7Selection(context.Background(), workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 objectives x 3 floors)", len(tab.Rows))
	}
	// At the strict floor with the crowded-places objective, smoothing must
	// be chosen; at the loose floor for distortion, a low-noise mechanism
	// should win instead.
	var strictCrowd, looseDistortion string
	for _, row := range tab.Rows {
		if row[0] == "crowded-places" && row[1] == "0.250" {
			strictCrowd = row[2]
		}
		if row[0] == "distortion" && row[1] == "0.850" {
			looseDistortion = row[2]
		}
	}
	if !strings.HasPrefix(strictCrowd, "smoothing") {
		t.Errorf("strict crowded-places chose %q, want smoothing", strictCrowd)
	}
	if strings.HasPrefix(looseDistortion, "smoothing") {
		t.Errorf("loose distortion chose %q, expected a noise/cloaking mechanism", looseDistortion)
	}
}

func TestE8PlatformShape(t *testing.T) {
	tab, err := E8Platform(context.Background(), workload(t), []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Records scale with fleet size.
	r0, _ := strconv.Atoi(cell(tab, 0, 2))
	r1, _ := strconv.Atoi(cell(tab, 1, 2))
	if r1 <= r0 {
		t.Errorf("records did not scale: %d -> %d", r0, r1)
	}
}

func TestE9VirtualSensorShape(t *testing.T) {
	tab, err := E9VirtualSensor(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	stats := map[string][]string{}
	for _, row := range tab.Rows {
		stats[row[0]] = row
	}
	rrDead, _ := strconv.Atoi(stats["round-robin"][5])
	eaDead, _ := strconv.Atoi(stats["energy-aware"][5])
	if eaDead > rrDead {
		t.Errorf("energy-aware killed %d devices vs round-robin %d", eaDead, rrDead)
	}
	rrStd, _ := strconv.ParseFloat(stats["round-robin"][4], 64)
	eaStd, _ := strconv.ParseFloat(stats["energy-aware"][4], 64)
	if eaStd > rrStd {
		t.Errorf("energy-aware battery spread %.2f should be <= round-robin %.2f", eaStd, rrStd)
	}
}

func TestE10IncentivesShape(t *testing.T) {
	tab, err := E10Incentives(7)
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	totals := map[string]int{}
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		totals[row[0]] = n
	}
	for _, s := range []string{"feedback", "ranking", "rewarding", "win-win"} {
		if totals[s] <= totals["none"] {
			t.Errorf("%s total %d does not beat baseline %d", s, totals[s], totals["none"])
		}
	}
}

func TestE11FiltersShape(t *testing.T) {
	tab, err := E11Filters(workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
	}
	noneRecall := pct(t, rows["none"][3])
	zoneRecall := pct(t, rows["home-zone-500m"][3])
	if noneRecall < 0.9 {
		t.Errorf("unfiltered home recall = %.2f, want ~1", noneRecall)
	}
	if zoneRecall > noneRecall/2 {
		t.Errorf("home-zone recall %.2f should collapse vs unfiltered %.2f", zoneRecall, noneRecall)
	}
	zoneDropped, _ := strconv.Atoi(rows["home-zone-500m"][2])
	if zoneDropped == 0 {
		t.Error("home zone dropped nothing")
	}
}

// TestE13ShardingShape: sharded publication must hold the privacy floor in
// every mode and land within epsilon of the monolithic release's exposure
// (the acceptance bar for the sharding pipeline).
func TestE13ShardingShape(t *testing.T) {
	tab, err := E13Sharding(context.Background(), workload(t))
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (monolithic + 3 policies)", len(tab.Rows))
	}
	monoExposure, err := strconv.ParseFloat(cell(tab, 0, 4), 64)
	if err != nil {
		t.Fatal(err)
	}
	const floor, epsilon = 0.33, 0.2
	for r := 1; r < len(tab.Rows); r++ {
		mode := cell(tab, r, 0)
		shards, _ := strconv.Atoi(cell(tab, r, 1))
		if shards < 2 {
			t.Errorf("%s: only %d shards; workload should split", mode, shards)
		}
		exposure, err := strconv.ParseFloat(cell(tab, r, 4), 64)
		if err != nil {
			t.Fatal(err)
		}
		if exposure > floor {
			t.Errorf("%s: worst-shard exposure %.3f breaks the %.2f floor", mode, exposure, floor)
		}
		if diff := exposure - monoExposure; diff > epsilon || diff < -epsilon {
			t.Errorf("%s: exposure %.3f not within %.2f of monolithic %.3f", mode, exposure, epsilon, monoExposure)
		}
		utility, err := strconv.ParseFloat(cell(tab, r, 5), 64)
		if err != nil {
			t.Fatal(err)
		}
		if utility < 0.4 {
			t.Errorf("%s: weighted utility %.3f collapsed vs monolithic %s", mode, utility, cell(tab, 0, 5))
		}
	}
}

func TestE12SecAggShape(t *testing.T) {
	tab, err := E12SecAgg(workload(t), 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	render(t, tab)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "true" {
			t.Errorf("%s aggregation not exact", row[0])
		}
	}
}
