package secagg

import (
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKey is generated once: Paillier keygen is the expensive part.
var (
	keyOnce sync.Once
	testKey *PrivateKey
)

func key(t *testing.T) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := GenerateKey(512)
		if err != nil {
			t.Fatal(err)
		}
		testKey = k
	})
	return testKey
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(64); err == nil {
		t.Error("tiny key should be rejected")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	for _, v := range []int64{0, 1, 42, 1_000_000, 1 << 40} {
		c, err := sk.EncryptInt64(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.DecryptInt64(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	sk := key(t)
	if _, err := sk.EncryptInt64(-1); err == nil {
		t.Error("negative plaintext should fail")
	}
	if _, err := sk.Encrypt(new(big.Int).Set(sk.N)); err == nil {
		t.Error("plaintext >= N should fail")
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	sk := key(t)
	if _, err := sk.Decrypt(nil); err == nil {
		t.Error("nil ciphertext should fail")
	}
	if _, err := sk.Decrypt(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Error("zero ciphertext should fail")
	}
	if _, err := sk.Decrypt(&Ciphertext{C: new(big.Int).Set(sk.N2)}); err == nil {
		t.Error("oversized ciphertext should fail")
	}
}

func TestCiphertextsAreRandomized(t *testing.T) {
	sk := key(t)
	a, err := sk.EncryptInt64(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.EncryptInt64(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.C.Cmp(b.C) == 0 {
		t.Error("two encryptions of the same value are identical (no semantic security)")
	}
}

func TestHomomorphicAddProperty(t *testing.T) {
	sk := key(t)
	f := func(a, b uint32) bool {
		ca, err := sk.EncryptInt64(int64(a))
		if err != nil {
			return false
		}
		cb, err := sk.EncryptInt64(int64(b))
		if err != nil {
			return false
		}
		sum, err := sk.DecryptInt64(sk.Add(ca, cb))
		if err != nil {
			return false
		}
		return sum == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAddPlainAndMulPlain(t *testing.T) {
	sk := key(t)
	c, err := sk.EncryptInt64(10)
	if err != nil {
		t.Fatal(err)
	}
	plus, err := sk.DecryptInt64(sk.AddPlain(c, big.NewInt(32)))
	if err != nil {
		t.Fatal(err)
	}
	if plus != 42 {
		t.Errorf("AddPlain = %d, want 42", plus)
	}
	times, err := sk.DecryptInt64(sk.MulPlain(c, big.NewInt(5)))
	if err != nil {
		t.Fatal(err)
	}
	if times != 50 {
		t.Errorf("MulPlain = %d, want 50", times)
	}
}

func TestHistogramSession(t *testing.T) {
	sk := key(t)
	if _, err := NewHistogramSession(nil, 4); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := NewHistogramSession(&sk.PublicKey, 0); err == nil {
		t.Error("zero cells should fail")
	}

	sess, err := NewHistogramSession(&sk.PublicKey, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Empty session decrypts to zeros.
	zero, err := sess.Decrypt(sk)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range zero {
		if v != 0 {
			t.Fatal("empty session not zero")
		}
	}

	device1 := []int64{1, 0, 2, 5}
	device2 := []int64{0, 3, 1, 1}
	device3 := []int64{4, 0, 0, 2}
	want := []int64{5, 3, 3, 8}
	for _, counts := range [][]int64{device1, device2, device3} {
		enc, err := EncryptContribution(&sk.PublicKey, counts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Add(enc); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Contributions() != 3 {
		t.Errorf("contributions = %d", sess.Contributions())
	}
	if err := sess.Add(make([]*Ciphertext, 2)); err == nil {
		t.Error("wrong-length contribution should fail")
	}
	got, err := sess.Decrypt(sk)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEncryptContributionRejectsNegative(t *testing.T) {
	sk := key(t)
	if _, err := EncryptContribution(&sk.PublicKey, []int64{1, -2}); err == nil {
		t.Error("negative count should fail")
	}
}

func TestSecretSharingRoundTrip(t *testing.T) {
	counts := []int64{7, 0, 123456, 1}
	shares, err := Split(counts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 {
		t.Fatalf("got %d shares", len(shares))
	}
	// No single share equals the plaintext (overwhelming probability).
	for s, sh := range shares {
		same := true
		for i := range counts {
			if sh[i].Cmp(big.NewInt(counts[i])) != 0 {
				same = false
				break
			}
		}
		if same {
			t.Errorf("share %d leaks the plaintext", s)
		}
	}
	aggs := make([]*ShareAggregator, 3)
	for i := range aggs {
		a, err := NewShareAggregator(len(counts))
		if err != nil {
			t.Fatal(err)
		}
		aggs[i] = a
		if err := aggs[i].Add(shares[i]); err != nil {
			t.Fatal(err)
		}
	}
	sums := make([]Shares, 3)
	for i, a := range aggs {
		sums[i] = a.Sum()
	}
	got, err := Combine(sums)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got[i] != counts[i] {
			t.Errorf("cell %d = %d, want %d", i, got[i], counts[i])
		}
	}
}

func TestSecretSharingMultipleContributors(t *testing.T) {
	aggA, err := NewShareAggregator(3)
	if err != nil {
		t.Fatal(err)
	}
	aggB, err := NewShareAggregator(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 0}
	for _, counts := range [][]int64{{1, 2, 3}, {10, 0, 5}, {0, 7, 0}} {
		for i := range counts {
			want[i] += counts[i]
		}
		shares, err := Split(counts, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := aggA.Add(shares[0]); err != nil {
			t.Fatal(err)
		}
		if err := aggB.Add(shares[1]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Combine([]Shares{aggA.Sum(), aggB.Sum()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSecretSharingValidation(t *testing.T) {
	if _, err := Split([]int64{1}, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := Split([]int64{-1}, 2); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := NewShareAggregator(0); err == nil {
		t.Error("zero cells should fail")
	}
	if _, err := Combine(nil); err == nil {
		t.Error("empty combine should fail")
	}
	a, err := NewShareAggregator(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Shares{big.NewInt(1)}); err == nil {
		t.Error("wrong-length share should fail")
	}
	if _, err := Combine([]Shares{{big.NewInt(1), big.NewInt(2)}, {big.NewInt(3)}}); err == nil {
		t.Error("ragged combine should fail")
	}
}
