// Package secagg provides secure aggregation for crowd-sensing statistics —
// the natural extension of the paper's platform (§4 positions APISENSE as an
// open platform; aggregate queries such as crowd-density heatmaps can be
// computed without the Hive ever seeing per-device values).
//
// Two constructions are provided:
//
//   - Paillier: an additively homomorphic public-key cryptosystem. Devices
//     encrypt their per-cell counts under the Honeycomb's public key; the
//     Hive multiplies ciphertexts (adding plaintexts) and forwards only the
//     aggregate, which the Honeycomb decrypts.
//   - Additive secret sharing: each device splits its vector into shares
//     for non-colluding aggregators; the sum of share-sums reconstructs the
//     total. Cheaper, but needs two servers that do not collude.
//
// Implemented from scratch on math/big and crypto/rand (stdlib only).
package secagg

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key.
type PublicKey struct {
	// N is the modulus (product of two primes).
	N *big.Int
	// N2 caches N².
	N2 *big.Int
}

// PrivateKey is a Paillier private key.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod n^2))^-1 mod n
}

// GenerateKey creates a Paillier key pair with an n of the given bit size
// (>= 256; use >= 2048 for real deployments, smaller sizes only in tests).
func GenerateKey(bits int) (*PrivateKey, error) {
	if bits < 256 {
		return nil, fmt.Errorf("secagg: key size %d too small (min 256)", bits)
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("secagg: generate prime: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("secagg: generate prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		n2 := new(big.Int).Mul(n, n)

		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)

		// g = n+1, so g^lambda mod n^2 = 1 + lambda*n mod n^2, and
		// mu = (L(g^lambda mod n^2))^-1 = lambda^-1 mod n.
		mu := new(big.Int).ModInverse(lambda, n)
		if mu == nil {
			continue // lambda not invertible: re-draw primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2},
			lambda:    lambda,
			mu:        mu,
		}, nil
	}
}

// Ciphertext is a Paillier ciphertext.
type Ciphertext struct {
	C *big.Int
}

// Encrypt encrypts a non-negative integer m < N.
func (pk *PublicKey) Encrypt(m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("secagg: plaintext out of range [0, N)")
	}
	// r uniform in [1, N) with gcd(r, N) = 1 (holds w.h.p. for random r).
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, fmt.Errorf("secagg: sample randomizer: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			break
		}
	}
	// c = (1 + m*N) * r^N mod N^2   (using g = N+1).
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// EncryptInt64 encrypts a non-negative int64.
func (pk *PublicKey) EncryptInt64(v int64) (*Ciphertext, error) {
	if v < 0 {
		return nil, fmt.Errorf("secagg: negative value %d", v)
	}
	return pk.Encrypt(big.NewInt(v))
}

// Add returns the ciphertext of the sum of the two plaintexts.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// AddPlain returns the ciphertext of (plaintext of c) + k.
func (pk *PublicKey) AddPlain(c *Ciphertext, k *big.Int) *Ciphertext {
	gk := new(big.Int).Mul(k, pk.N)
	gk.Add(gk, one)
	gk.Mod(gk, pk.N2)
	out := new(big.Int).Mul(c.C, gk)
	out.Mod(out, pk.N2)
	return &Ciphertext{C: out}
}

// MulPlain returns the ciphertext of (plaintext of c) * k.
func (pk *PublicKey) MulPlain(c *Ciphertext, k *big.Int) *Ciphertext {
	return &Ciphertext{C: new(big.Int).Exp(c.C, k, pk.N2)}
}

// Decrypt recovers the plaintext of c.
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if c == nil || c.C == nil || c.C.Sign() <= 0 || c.C.Cmp(sk.N2) >= 0 {
		return nil, fmt.Errorf("secagg: ciphertext out of range")
	}
	// m = L(c^lambda mod N^2) * mu mod N, with L(x) = (x-1)/N.
	x := new(big.Int).Exp(c.C, sk.lambda, sk.N2)
	x.Sub(x, one)
	x.Div(x, sk.N)
	x.Mul(x, sk.mu)
	x.Mod(x, sk.N)
	return x, nil
}

// DecryptInt64 decrypts and narrows to int64.
func (sk *PrivateKey) DecryptInt64(c *Ciphertext) (int64, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return 0, err
	}
	if !m.IsInt64() {
		return 0, fmt.Errorf("secagg: plaintext exceeds int64")
	}
	return m.Int64(), nil
}
