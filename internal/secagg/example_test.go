package secagg_test

import (
	"fmt"

	"apisense/internal/secagg"
)

// Example shows the private-heatmap flow: devices encrypt their per-cell
// counts, the Hive folds ciphertexts, the Honeycomb decrypts only the sum.
func Example() {
	key, err := secagg.GenerateKey(512) // test size; use >= 2048 in production
	if err != nil {
		fmt.Println(err)
		return
	}
	session, err := secagg.NewHistogramSession(&key.PublicKey, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, deviceCounts := range [][]int64{
		{1, 0, 2, 0},
		{0, 3, 1, 0},
		{4, 0, 0, 1},
	} {
		encrypted, err := secagg.EncryptContribution(&key.PublicKey, deviceCounts)
		if err != nil {
			fmt.Println(err)
			return
		}
		if err := session.Add(encrypted); err != nil {
			fmt.Println(err)
			return
		}
	}
	total, err := session.Decrypt(key)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(total)
	// Output:
	// [5 3 3 1]
}
