package secagg

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// HistogramSession aggregates encrypted per-cell count vectors: the Hive
// runs one per aggregate query. It only ever sees ciphertexts.
type HistogramSession struct {
	pk     *PublicKey
	cells  int
	totals []*Ciphertext
	n      int
}

// NewHistogramSession opens a session for vectors of the given length under
// the Honeycomb's public key.
func NewHistogramSession(pk *PublicKey, cells int) (*HistogramSession, error) {
	if pk == nil {
		return nil, fmt.Errorf("secagg: public key is required")
	}
	if cells <= 0 {
		return nil, fmt.Errorf("secagg: cells must be positive, got %d", cells)
	}
	return &HistogramSession{pk: pk, cells: cells}, nil
}

// EncryptContribution encrypts a device's count vector (device side).
func EncryptContribution(pk *PublicKey, counts []int64) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(counts))
	for i, v := range counts {
		c, err := pk.EncryptInt64(v)
		if err != nil {
			return nil, fmt.Errorf("secagg: cell %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// Add folds one encrypted contribution into the running totals (Hive side).
func (s *HistogramSession) Add(contribution []*Ciphertext) error {
	if len(contribution) != s.cells {
		return fmt.Errorf("secagg: contribution has %d cells, want %d", len(contribution), s.cells)
	}
	if s.totals == nil {
		s.totals = append([]*Ciphertext(nil), contribution...)
		s.n = 1
		return nil
	}
	for i := range s.totals {
		s.totals[i] = s.pk.Add(s.totals[i], contribution[i])
	}
	s.n++
	return nil
}

// Contributions returns the number of folded contributions.
func (s *HistogramSession) Contributions() int { return s.n }

// Decrypt opens the aggregate with the Honeycomb's private key.
func (s *HistogramSession) Decrypt(sk *PrivateKey) ([]int64, error) {
	if s.totals == nil {
		return make([]int64, s.cells), nil
	}
	out := make([]int64, s.cells)
	for i, c := range s.totals {
		v, err := sk.DecryptInt64(c)
		if err != nil {
			return nil, fmt.Errorf("secagg: cell %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// ---- additive secret sharing ----

// shareModulus bounds share arithmetic; sums of millions of counts stay far
// below it.
var shareModulus = new(big.Int).Lsh(one, 62)

// Shares is one aggregator's view of a contribution: meaningless alone.
type Shares []*big.Int

// Split splits a count vector into k shares such that the element-wise sum
// of all shares mod 2^62 reconstructs the vector. Any k-1 shares are
// uniformly random.
func Split(counts []int64, k int) ([]Shares, error) {
	if k < 2 {
		return nil, fmt.Errorf("secagg: need at least 2 shares, got %d", k)
	}
	for i, v := range counts {
		if v < 0 {
			return nil, fmt.Errorf("secagg: negative count %d at cell %d", v, i)
		}
	}
	out := make([]Shares, k)
	for s := range out {
		out[s] = make(Shares, len(counts))
	}
	for i, v := range counts {
		acc := new(big.Int)
		for s := 0; s < k-1; s++ {
			r, err := rand.Int(rand.Reader, shareModulus)
			if err != nil {
				return nil, fmt.Errorf("secagg: sample share: %w", err)
			}
			out[s][i] = r
			acc.Add(acc, r)
		}
		last := new(big.Int).SetInt64(v)
		last.Sub(last, acc)
		last.Mod(last, shareModulus)
		out[k-1][i] = last
	}
	return out, nil
}

// ShareAggregator sums the shares it receives (one per aggregator server).
type ShareAggregator struct {
	sums []*big.Int
	n    int
}

// NewShareAggregator creates an aggregator for vectors of the given length.
func NewShareAggregator(cells int) (*ShareAggregator, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("secagg: cells must be positive, got %d", cells)
	}
	sums := make([]*big.Int, cells)
	for i := range sums {
		sums[i] = new(big.Int)
	}
	return &ShareAggregator{sums: sums}, nil
}

// Add folds one share vector.
func (a *ShareAggregator) Add(s Shares) error {
	if len(s) != len(a.sums) {
		return fmt.Errorf("secagg: share has %d cells, want %d", len(s), len(a.sums))
	}
	for i, v := range s {
		a.sums[i].Add(a.sums[i], v)
		a.sums[i].Mod(a.sums[i], shareModulus)
	}
	a.n++
	return nil
}

// Sum returns this aggregator's share of the total.
func (a *ShareAggregator) Sum() Shares {
	out := make(Shares, len(a.sums))
	for i, v := range a.sums {
		out[i] = new(big.Int).Set(v)
	}
	return out
}

// Combine reconstructs the aggregate vector from all aggregators' sums.
func Combine(sums []Shares) ([]int64, error) {
	if len(sums) == 0 {
		return nil, fmt.Errorf("secagg: no shares to combine")
	}
	cells := len(sums[0])
	out := make([]int64, cells)
	for i := 0; i < cells; i++ {
		acc := new(big.Int)
		for s, sh := range sums {
			if len(sh) != cells {
				return nil, fmt.Errorf("secagg: aggregator %d has %d cells, want %d", s, len(sh), cells)
			}
			acc.Add(acc, sh[i])
		}
		acc.Mod(acc, shareModulus)
		if !acc.IsInt64() {
			return nil, fmt.Errorf("secagg: cell %d overflows int64", i)
		}
		out[i] = acc.Int64()
	}
	return out, nil
}
