// Package honeycomb implements the experimenter-side endpoint of APISENSE
// (§2 of the paper): "crowd-sensing tasks are uploaded on the Hive from
// Honeycomb endpoints, which are deployed and used by people interested in
// collecting specific datasets". A Honeycomb authors task scripts, deploys
// them through the Hive, collects the resulting uploads, converts them into
// mobility datasets, and — through the PRIVAPI hook — publishes
// privacy-preserving versions of them.
package honeycomb

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"apisense/internal/core"
	"apisense/internal/geo"
	"apisense/internal/hive"
	"apisense/internal/trace"
	"apisense/internal/transport"
)

// Honeycomb is one experimenter endpoint.
type Honeycomb struct {
	name   string
	client *transport.Client
	store  *Store
}

// New creates a Honeycomb named name talking to the Hive at hiveURL.
func New(name, hiveURL string) (*Honeycomb, error) {
	if name == "" {
		return nil, fmt.Errorf("honeycomb: name is required")
	}
	if hiveURL == "" {
		return nil, fmt.Errorf("honeycomb: hive URL is required")
	}
	return &Honeycomb{name: name, client: transport.NewClient(hiveURL), store: NewStore()}, nil
}

// Name returns the endpoint name.
func (h *Honeycomb) Name() string { return h.name }

// Store returns the endpoint's dataset store.
func (h *Honeycomb) Store() *Store { return h.store }

// Deploy validates and publishes a task on the Hive, stamping this endpoint
// as the author. It returns the published spec (with Hive-assigned ID) and
// the recruited device IDs.
func (h *Honeycomb) Deploy(ctx context.Context, spec transport.TaskSpec) (transport.TaskSpec, []string, error) {
	spec.Author = h.name
	if err := spec.Validate(); err != nil {
		return transport.TaskSpec{}, nil, fmt.Errorf("honeycomb %s: %w", h.name, err)
	}
	var resp hive.PublishResponse
	if err := h.client.Do(ctx, http.MethodPost, "/api/tasks", spec, &resp); err != nil {
		return transport.TaskSpec{}, nil, fmt.Errorf("honeycomb %s: deploy: %w", h.name, err)
	}
	return resp.Task, resp.Recruited, nil
}

// Collect pulls the uploads of a task from the Hive and stores them.
func (h *Honeycomb) Collect(ctx context.Context, taskID string) ([]transport.Upload, error) {
	var ups []transport.Upload
	if err := h.client.Do(ctx, http.MethodGet, "/api/tasks/"+taskID+"/uploads", nil, &ups); err != nil {
		return nil, fmt.Errorf("honeycomb %s: collect %s: %w", h.name, taskID, err)
	}
	h.store.AddUploads(taskID, ups)
	return ups, nil
}

// DeviceUsers fetches the device-to-user mapping from the Hive, needed to
// attribute uploads to contributors.
func (h *Honeycomb) DeviceUsers(ctx context.Context) (map[string]string, error) {
	var devs []transport.DeviceInfo
	if err := h.client.Do(ctx, http.MethodGet, "/api/devices", nil, &devs); err != nil {
		return nil, fmt.Errorf("honeycomb %s: list devices: %w", h.name, err)
	}
	out := make(map[string]string, len(devs))
	for _, d := range devs {
		out[d.ID] = d.User
	}
	return out, nil
}

// BuildDataset converts the stored uploads of a task into a mobility
// dataset: GPS records become trajectories, one per (user, upload).
// Records lacking lat/lon are skipped.
func (h *Honeycomb) BuildDataset(taskID string, deviceUser map[string]string) *trace.Dataset {
	return UploadsToDataset(h.store.Uploads(taskID), deviceUser)
}

// UploadsToDataset converts raw uploads to a dataset using the given
// device-to-user mapping; unknown devices fall back to their device ID.
func UploadsToDataset(ups []transport.Upload, deviceUser map[string]string) *trace.Dataset {
	ds := trace.NewDataset()
	for _, up := range ups {
		user := deviceUser[up.DeviceID]
		if user == "" {
			user = up.DeviceID
		}
		tr := &trace.Trajectory{User: user}
		for _, rec := range up.Records {
			lat, okLat := rec.Data["lat"].(float64)
			lon, okLon := rec.Data["lon"].(float64)
			if !okLat || !okLon {
				continue
			}
			tr.Records = append(tr.Records, trace.Record{
				Time: time.UnixMilli(rec.TimeMillis).UTC(),
				Pos:  geo.Point{Lat: lat, Lon: lon},
			})
		}
		if len(tr.Records) > 0 {
			tr.Sort()
			ds.Add(tr)
		}
	}
	return ds
}

// PublishPrivate runs the PRIVAPI middleware over a collected dataset and
// returns the protected release plus the strategy selection report. This is
// the integration point the paper describes: "PRIVAPI is a middleware
// handling privacy-preserving publication of mobility data ... that can be
// easily integrated on-top of APISENSE".
func (h *Honeycomb) PublishPrivate(raw *trace.Dataset, cfg core.Config) (*trace.Dataset, *core.Selection, error) {
	//lint:allow ctxflow convenience wrapper, PublishPrivateContext is the cancellable form
	return h.PublishPrivateContext(context.Background(), raw, cfg)
}

// PublishPrivateContext is PublishPrivate with a caller-supplied context:
// long publications are abandoned promptly when ctx is cancelled.
func (h *Honeycomb) PublishPrivateContext(ctx context.Context, raw *trace.Dataset, cfg core.Config) (*trace.Dataset, *core.Selection, error) {
	mw, err := h.middleware(raw, cfg)
	if err != nil {
		return nil, nil, err
	}
	return mw.PublishContext(ctx, raw)
}

// PublishPrivateShardedContext partitions the collected dataset with the
// given shard policy, runs the PRIVAPI strategy selection per shard on the
// shared Parallelism budget, and returns the merged release plus the
// aggregate per-shard report. This is how very large collections are
// published: each region or time window is protected by whichever strategy
// fits it best, and the release's privacy guarantee is the worst shard's.
func (h *Honeycomb) PublishPrivateShardedContext(ctx context.Context, raw *trace.Dataset, cfg core.Config, by core.ShardBy) (*trace.Dataset, *core.ShardedSelection, error) {
	mw, err := h.middleware(raw, cfg)
	if err != nil {
		return nil, nil, err
	}
	return mw.PublishShardedContext(ctx, raw, by)
}

// middleware builds a PRIVAPI engine anchored at the dataset's centre.
func (h *Honeycomb) middleware(raw *trace.Dataset, cfg core.Config) (*core.Middleware, error) {
	origin := geo.Point{Lat: 45.7640, Lon: 4.8357}
	if box, ok := raw.BBox(); ok {
		origin = box.Center()
	}
	mw, err := core.New(cfg, origin)
	if err != nil {
		return nil, fmt.Errorf("honeycomb %s: privapi: %w", h.name, err)
	}
	return mw, nil
}

// Store accumulates the uploads a Honeycomb collected, per task.
type Store struct {
	uploads map[string][]transport.Upload
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{uploads: make(map[string][]transport.Upload)} }

// AddUploads replaces the stored uploads of a task with the given batch
// (collection is idempotent: the Hive always returns the full history).
func (s *Store) AddUploads(taskID string, ups []transport.Upload) {
	s.uploads[taskID] = append([]transport.Upload(nil), ups...)
}

// Uploads returns the stored uploads of a task.
func (s *Store) Uploads(taskID string) []transport.Upload {
	return append([]transport.Upload(nil), s.uploads[taskID]...)
}

// Tasks lists the task IDs with stored data, sorted.
func (s *Store) Tasks() []string {
	out := make([]string, 0, len(s.uploads))
	for id := range s.uploads {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Records counts all stored records across tasks.
func (s *Store) Records() int {
	var n int
	for _, ups := range s.uploads {
		for _, u := range ups {
			n += len(u.Records)
		}
	}
	return n
}
