package honeycomb

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"apisense/internal/core"
	"apisense/internal/device"
	"apisense/internal/hive"
	"apisense/internal/mobgen"
	"apisense/internal/trace"
	"apisense/internal/transport"
)

const gpsTask = `
sensor.gps.onLocationChanged(function(loc) {
  dataset.save({lat: loc.lat, lon: loc.lon});
});
`

// platform spins up a Hive HTTP server with simulated devices following
// generated mobility, returning the honeycomb, devices, ground truth and
// the Hive base URL.
func platform(t *testing.T, users, days int) (*Honeycomb, []*device.Device, *mobgen.City, string) {
	t.Helper()
	ds, city, err := mobgen.Generate(mobgen.Config{
		Seed: 31, Users: users, Days: days,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := hive.New()
	srv := httptest.NewServer(hive.NewServer(h))
	t.Cleanup(srv.Close)

	// One device per user, following that user's first-day movement.
	byUser := ds.ByUser()
	var devices []*device.Device
	for i, res := range city.Residents {
		move := byUser[res.User][0]
		d, err := device.New(device.Config{
			ID: res.User + "-phone", User: res.User, Movement: move,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.RegisterDevice(d.Info()); err != nil {
			t.Fatal(err)
		}
		devices = append(devices, d)
		_ = i
	}

	hc, err := New("lab", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return hc, devices, city, srv.URL
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", "http://x"); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := New("lab", ""); err == nil {
		t.Error("empty hive URL should fail")
	}
}

func TestEndToEndCollection(t *testing.T) {
	hc, devices, _, hiveURL := platform(t, 4, 1)
	ctx := context.Background()

	spec := transport.TaskSpec{
		Name: "gps-collect", Script: gpsTask,
		PeriodSeconds: 120, Sensors: []string{"gps"},
	}
	published, recruited, err := hc.Deploy(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if published.Author != "lab" {
		t.Errorf("author = %q", published.Author)
	}
	if len(recruited) != 4 {
		t.Fatalf("recruited %d devices, want 4", len(recruited))
	}

	// Devices execute and upload through the client path.
	cl := transport.NewClient(hiveURL)
	for _, d := range devices {
		res, err := d.RunTask(published)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Do(ctx, "POST", "/api/uploads", res.Upload, nil); err != nil {
			t.Fatal(err)
		}
	}

	ups, err := hc.Collect(ctx, published.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 4 {
		t.Fatalf("collected %d uploads, want 4", len(ups))
	}
	if hc.Store().Records() == 0 {
		t.Error("store is empty")
	}
	if got := hc.Store().Tasks(); len(got) != 1 || got[0] != published.ID {
		t.Errorf("store tasks = %v", got)
	}

	users, err := hc.DeviceUsers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds := hc.BuildDataset(published.ID, users)
	if ds.Len() != 4 {
		t.Fatalf("dataset has %d trajectories, want 4", ds.Len())
	}
	for _, tr := range ds.Trajectories {
		if !strings.HasPrefix(tr.User, "user-") {
			t.Errorf("trajectory user = %q, want contributor id", tr.User)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("trajectory invalid: %v", err)
		}
		if tr.Len() < 100 {
			t.Errorf("trajectory has only %d records", tr.Len())
		}
	}
}

func TestUploadsToDataset(t *testing.T) {
	ups := []transport.Upload{
		{DeviceID: "d1", Records: []transport.UploadRecord{
			{Sensor: "gps", TimeMillis: 2000, Data: map[string]any{"lat": 45.7, "lon": 4.8}},
			{Sensor: "gps", TimeMillis: 1000, Data: map[string]any{"lat": 45.71, "lon": 4.81}},
			{Sensor: "battery", TimeMillis: 1500, Data: map[string]any{"level": 90.0}},
		}},
		{DeviceID: "d2", Records: []transport.UploadRecord{
			{Sensor: "gps", TimeMillis: 1000, Data: map[string]any{"lat": 45.9, "lon": 4.9}},
		}},
		{DeviceID: "empty", Records: nil},
	}
	ds := UploadsToDataset(ups, map[string]string{"d1": "alice"})
	if ds.Len() != 2 {
		t.Fatalf("dataset has %d trajectories, want 2", ds.Len())
	}
	// d1: records sorted by time, battery skipped.
	if ds.Trajectories[0].User != "alice" || ds.Trajectories[0].Len() != 2 {
		t.Errorf("first trajectory = %s/%d", ds.Trajectories[0].User, ds.Trajectories[0].Len())
	}
	if !ds.Trajectories[0].Records[0].Time.Before(ds.Trajectories[0].Records[1].Time) {
		t.Error("records not sorted")
	}
	// d2 falls back to device id.
	if ds.Trajectories[1].User != "d2" {
		t.Errorf("fallback user = %q", ds.Trajectories[1].User)
	}
}

func TestPublishPrivateIntegration(t *testing.T) {
	// Full pipeline: synthetic dataset -> PRIVAPI -> protected release.
	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 33, Users: 6, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := New("lab", "http://unused")
	if err != nil {
		t.Fatal(err)
	}
	release, sel, err := hc.PublishPrivate(ds, core.Config{PseudonymKey: []byte("r1")})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Chosen == "" {
		t.Fatal("no strategy chosen")
	}
	if release.Len() == 0 {
		t.Fatal("empty release")
	}
	for _, tr := range release.Trajectories {
		if strings.HasPrefix(tr.User, "user-") {
			t.Fatal("release leaks raw user ids")
		}
	}
	// Publishing an empty dataset fails cleanly.
	if _, _, err := hc.PublishPrivate(trace.NewDataset(), core.Config{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

// TestPublishPrivateSharded: the sharded hook partitions the collected
// dataset, publishes per shard and merges, with the same floor guarantee in
// every released shard.
func TestPublishPrivateSharded(t *testing.T) {
	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 34, Users: 8, Days: 4})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := New("lab", "http://unused")
	if err != nil {
		t.Fatal(err)
	}
	policy, err := core.ShardPolicyFromSpec("window:dur=48h")
	if err != nil {
		t.Fatal(err)
	}
	release, sel, err := hc.PublishPrivateShardedContext(context.Background(), ds,
		core.Config{PseudonymKey: []byte("sharded")}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Shards) < 2 {
		t.Fatalf("%d shards, want >= 2 on a 4-day collection", len(sel.Shards))
	}
	if release.Len() != sel.Released || release.Len() == 0 {
		t.Fatalf("release has %d trajectories, report says %d", release.Len(), sel.Released)
	}
	if sel.WorstExposure > sel.Floor {
		t.Errorf("worst shard exposure %.3f above floor %.3f", sel.WorstExposure, sel.Floor)
	}
	for _, tr := range release.Trajectories {
		if strings.HasPrefix(tr.User, "user-") {
			t.Fatal("sharded release leaks raw user ids")
		}
	}
	// Invalid config surfaces cleanly.
	if _, _, err := hc.PublishPrivateShardedContext(context.Background(), ds,
		core.Config{MaxPOIExposure: 3}, policy); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestPublishPrivateContextCancelled(t *testing.T) {
	ds, _, err := mobgen.Generate(mobgen.Config{Seed: 33, Users: 6, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := New("lab", "http://unused")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := hc.PublishPrivateContext(ctx, ds, core.Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestStoreIdempotentCollect(t *testing.T) {
	s := NewStore()
	ups := []transport.Upload{{TaskID: "t", DeviceID: "d", Records: []transport.UploadRecord{{Sensor: "gps"}}}}
	s.AddUploads("t", ups)
	s.AddUploads("t", ups) // re-collect: replaces, not duplicates
	if got := len(s.Uploads("t")); got != 1 {
		t.Errorf("stored %d uploads, want 1", got)
	}
	if s.Records() != 1 {
		t.Errorf("records = %d, want 1", s.Records())
	}
}
