// Package vsensor implements APISENSE virtual sensors (§2 of the paper):
// "a set of additional services that self-organize a group of mobile
// devices to orchestrate the retrieval of datasets according to different
// strategies (e.g., round robin, energy-aware)".
//
// A VirtualSensor abstracts a device group as one logical sensor: each
// retrieval round, the configured strategy elects a device to produce the
// sample, spreading the energy cost across the group. The Campaign runner
// measures exactly the trade-off the paper's design targets: samples
// delivered versus battery drain distribution and device survival.
package vsensor

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"apisense/internal/device"
	"apisense/internal/filter"
)

// Strategy elects the device serving the next retrieval round.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Pick returns the index of the elected device, or -1 to skip the
	// round. candidates lists the currently usable device indices and ts
	// is the virtual retrieval instant.
	Pick(devices []*device.Device, candidates []int, round int, ts time.Time) int
}

// RoundRobin cycles through the group in order.
type RoundRobin struct{}

var _ Strategy = (*RoundRobin)(nil)

// Name implements Strategy.
func (RoundRobin) Name() string { return "round-robin" }

// Pick implements Strategy.
func (RoundRobin) Pick(_ []*device.Device, candidates []int, round int, _ time.Time) int {
	if len(candidates) == 0 {
		return -1
	}
	return candidates[round%len(candidates)]
}

// EnergyAware elects the usable device with the highest battery level,
// equalising charge across the group.
type EnergyAware struct{}

var _ Strategy = (*EnergyAware)(nil)

// Name implements Strategy.
func (EnergyAware) Name() string { return "energy-aware" }

// Pick implements Strategy.
func (EnergyAware) Pick(devices []*device.Device, candidates []int, _ int, _ time.Time) int {
	best := -1
	bestLevel := -1.0
	for _, idx := range candidates {
		if lvl := devices[idx].Battery().Level(); lvl > bestLevel {
			best, bestLevel = idx, lvl
		}
	}
	return best
}

// Random elects a uniformly random usable device (seeded, deterministic).
type Random struct {
	rng *rand.Rand
}

var _ Strategy = (*Random)(nil)

// NewRandom returns a seeded random strategy.
func NewRandom(seed uint64) *Random {
	return &Random{rng: rand.New(rand.NewPCG(seed, seed^0xabcdef))}
}

// Name implements Strategy.
func (*Random) Name() string { return "random" }

// Pick implements Strategy.
func (r *Random) Pick(_ []*device.Device, candidates []int, _ int, _ time.Time) int {
	if len(candidates) == 0 {
		return -1
	}
	return candidates[r.rng.IntN(len(candidates))]
}

// VirtualSensor is a device group behind a single sensing interface.
type VirtualSensor struct {
	name     string
	devices  []*device.Device
	strategy Strategy
}

// New builds a virtual sensor over the given (non-empty) device group.
func New(name string, devices []*device.Device, strategy Strategy) (*VirtualSensor, error) {
	if name == "" {
		return nil, fmt.Errorf("vsensor: name is required")
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("vsensor: at least one device is required")
	}
	if strategy == nil {
		return nil, fmt.Errorf("vsensor: strategy is required")
	}
	return &VirtualSensor{name: name, devices: devices, strategy: strategy}, nil
}

// Name returns the sensor name.
func (v *VirtualSensor) Name() string { return v.name }

// Read performs one retrieval round at virtual time ts. The strategy elects
// a device; if it cannot sample (dead battery, off window, filtered), the
// next-best usable device is tried. ok is false when no device delivered.
func (v *VirtualSensor) Read(ts time.Time, round int) (filter.Record, *device.Device, bool) {
	candidates := v.usable()
	for attempts := 0; attempts < len(v.devices) && len(candidates) > 0; attempts++ {
		idx := v.strategy.Pick(v.devices, candidates, round, ts)
		if idx < 0 {
			return filter.Record{}, nil, false
		}
		d := v.devices[idx]
		if rec, ok := d.SampleAt(ts); ok {
			return rec, d, true
		}
		// Remove the failed device from this round's candidates.
		next := candidates[:0]
		for _, c := range candidates {
			if c != idx {
				next = append(next, c)
			}
		}
		candidates = next
	}
	return filter.Record{}, nil, false
}

// usable returns indices of devices with battery left.
func (v *VirtualSensor) usable() []int {
	out := make([]int, 0, len(v.devices))
	for i, d := range v.devices {
		if !d.Battery().Dead() {
			out = append(out, i)
		}
	}
	return out
}

// CampaignResult summarises a retrieval campaign.
type CampaignResult struct {
	Strategy string
	Rounds   int
	Samples  int
	Failures int
	// PerDevice counts delivered samples per device ID.
	PerDevice map[string]int
	// BatteryMin/Mean/Std summarise final battery levels.
	BatteryMin  float64
	BatteryMean float64
	BatteryStd  float64
	// Dead is the number of devices that exhausted their battery.
	Dead int
	// Fairness is Jain's index over per-device sample counts (1 = all
	// devices contributed equally).
	Fairness float64
	// Records holds the collected samples.
	Records []filter.Record
}

// String implements fmt.Stringer.
func (r CampaignResult) String() string {
	return fmt.Sprintf("%s: %d/%d samples, battery min=%.1f mean=%.1f std=%.2f, dead=%d, fairness=%.3f",
		r.Strategy, r.Samples, r.Rounds, r.BatteryMin, r.BatteryMean, r.BatteryStd, r.Dead, r.Fairness)
}

// Campaign runs retrieval rounds every period from start to end (inclusive)
// and reports delivery and energy statistics.
func (v *VirtualSensor) Campaign(start, end time.Time, period time.Duration) (CampaignResult, error) {
	if period <= 0 {
		return CampaignResult{}, fmt.Errorf("vsensor: period must be positive, got %v", period)
	}
	res := CampaignResult{Strategy: v.strategy.Name(), PerDevice: make(map[string]int)}
	round := 0
	for ts := start; !ts.After(end); ts = ts.Add(period) {
		rec, d, ok := v.Read(ts, round)
		round++
		res.Rounds++
		if !ok {
			res.Failures++
			continue
		}
		res.Samples++
		res.PerDevice[d.ID()]++
		res.Records = append(res.Records, rec)
	}

	levels := make([]float64, len(v.devices))
	res.BatteryMin = math.Inf(1)
	for i, d := range v.devices {
		levels[i] = d.Battery().Level()
		if levels[i] < res.BatteryMin {
			res.BatteryMin = levels[i]
		}
		if d.Battery().Dead() {
			res.Dead++
		}
		res.BatteryMean += levels[i]
	}
	res.BatteryMean /= float64(len(levels))
	var varSum float64
	for _, l := range levels {
		varSum += (l - res.BatteryMean) * (l - res.BatteryMean)
	}
	res.BatteryStd = math.Sqrt(varSum / float64(len(levels)))
	res.Fairness = jain(res.PerDevice, len(v.devices))
	return res, nil
}

// jain computes Jain's fairness index over sample counts, counting devices
// that never contributed as zeros.
func jain(perDevice map[string]int, n int) float64 {
	if n == 0 {
		return 0
	}
	counts := make([]float64, 0, n)
	for _, c := range perDevice {
		counts = append(counts, float64(c))
	}
	for len(counts) < n {
		counts = append(counts, 0)
	}
	sort.Float64s(counts)
	var sum, sqSum float64
	for _, c := range counts {
		sum += c
		sqSum += c * c
	}
	if sqSum == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sqSum)
}
