package vsensor

import (
	"fmt"
	"time"

	"apisense/internal/device"
	"apisense/internal/geo"
)

// CoverageAware elects the device currently located in the least-sampled
// grid cell, maximising the spatial coverage of the collected dataset. It
// is the third orchestration strategy family the paper's §2 alludes to
// ("according to different strategies"): where round-robin optimises
// fairness and energy-aware optimises survival, coverage-aware optimises
// the dataset itself.
type CoverageAware struct {
	grid   *geo.Grid
	counts map[geo.Cell]int
}

var _ Strategy = (*CoverageAware)(nil)

// NewCoverageAware returns a coverage-maximising strategy over the given
// analysis grid.
func NewCoverageAware(grid *geo.Grid) (*CoverageAware, error) {
	if grid == nil {
		return nil, fmt.Errorf("vsensor: grid is required")
	}
	return &CoverageAware{grid: grid, counts: make(map[geo.Cell]int)}, nil
}

// Name implements Strategy.
func (*CoverageAware) Name() string { return "coverage-aware" }

// Pick implements Strategy: among usable devices, choose the one standing
// in the cell with the fewest samples so far (ties broken by battery).
func (c *CoverageAware) Pick(devices []*device.Device, candidates []int, _ int, ts time.Time) int {
	best := -1
	bestCount := int(^uint(0) >> 1)
	bestBattery := -1.0
	for _, idx := range candidates {
		pos, ok := devices[idx].PositionAt(ts)
		if !ok {
			continue
		}
		cell := c.grid.CellOf(pos)
		n := c.counts[cell]
		battery := devices[idx].Battery().Level()
		if n < bestCount || (n == bestCount && battery > bestBattery) {
			best, bestCount, bestBattery = idx, n, battery
		}
	}
	if best >= 0 {
		if pos, ok := devices[best].PositionAt(ts); ok {
			c.counts[c.grid.CellOf(pos)]++
		}
	}
	return best
}

// CellsCovered returns the number of distinct cells sampled so far.
func (c *CoverageAware) CellsCovered() int { return len(c.counts) }
