package vsensor

import (
	"testing"
	"time"

	"apisense/internal/geo"
)

func coverageGrid(t *testing.T) *geo.Grid {
	t.Helper()
	box, _ := geo.NewBBox([]geo.Point{
		geo.Translate(lyon, -10000, -10000),
		geo.Translate(lyon, 10000, 10000),
	})
	g, err := geo.NewGrid(box, 250)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewCoverageAwareValidation(t *testing.T) {
	if _, err := NewCoverageAware(nil); err == nil {
		t.Error("nil grid should fail")
	}
}

func TestCoverageAwareSpreadsAcrossCells(t *testing.T) {
	// Devices 0..3 move along separated parallel tracks (group() offsets
	// each device 100 m north of the previous); coverage-aware must rotate
	// across them instead of hammering one.
	devs := group(t, 4, 2)
	ca, err := NewCoverageAware(coverageGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := New("vs", devs, ca)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vs.Campaign(t0, t0.Add(time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
	if len(res.PerDevice) < 3 {
		t.Errorf("coverage-aware used only %d devices: %v", len(res.PerDevice), res.PerDevice)
	}
	if ca.CellsCovered() == 0 {
		t.Error("no cells recorded")
	}
}

func TestCoverageAwareBeatsRoundRobinOnCoverage(t *testing.T) {
	grid := coverageGrid(t)
	distinctCells := func(s Strategy) map[geo.Cell]bool {
		devs := group(t, 6, 3)
		vs, err := New("vs", devs, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := vs.Campaign(t0, t0.Add(3*time.Hour), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cells := make(map[geo.Cell]bool)
		for _, rec := range res.Records {
			lat, _ := rec.Data["lat"].(float64)
			lon, _ := rec.Data["lon"].(float64)
			cells[grid.CellOf(geo.Point{Lat: lat, Lon: lon})] = true
		}
		return cells
	}
	ca, err := NewCoverageAware(grid)
	if err != nil {
		t.Fatal(err)
	}
	covCA := len(distinctCells(ca))
	covRR := len(distinctCells(RoundRobin{}))
	if covCA < covRR {
		t.Errorf("coverage-aware covered %d cells, round-robin %d; expected >=", covCA, covRR)
	}
}

func TestCoverageAwareSkipsOutOfWindowDevices(t *testing.T) {
	devs := group(t, 2, 1)
	ca, err := NewCoverageAware(coverageGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	// Before any device's movement window, no candidate has a position.
	if got := ca.Pick(devs, []int{0, 1}, 0, t0.Add(-time.Hour)); got != -1 {
		t.Errorf("Pick before window = %d, want -1", got)
	}
}
