package vsensor

import (
	"fmt"
	"testing"
	"time"

	"apisense/internal/device"
	"apisense/internal/geo"
	"apisense/internal/trace"
)

var (
	lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}
	t0   = time.Date(2014, 12, 8, 9, 0, 0, 0, time.UTC)
)

// group builds n devices that all move for `hours` hours, with the given
// initial battery levels (cycled).
func group(t *testing.T, n int, hours float64, batteries ...float64) []*device.Device {
	t.Helper()
	if len(batteries) == 0 {
		batteries = []float64{100}
	}
	var out []*device.Device
	for i := 0; i < n; i++ {
		tr := &trace.Trajectory{User: fmt.Sprintf("u%02d", i)}
		steps := int(hours * 60)
		for s := 0; s <= steps; s++ {
			tr.Records = append(tr.Records, trace.Record{
				Time: t0.Add(time.Duration(s) * time.Minute),
				Pos:  geo.Translate(lyon, float64(s)*50, float64(i)*100),
			})
		}
		b := device.NewBattery(batteries[i%len(batteries)])
		b.DrainPerFix = 0.5 // aggressive, to observe depletion
		d, err := device.New(device.Config{
			ID: fmt.Sprintf("dev-%02d", i), User: tr.User, Movement: tr, Battery: b,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	devs := group(t, 2, 1)
	if _, err := New("", devs, RoundRobin{}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := New("vs", nil, RoundRobin{}); err == nil {
		t.Error("empty group should fail")
	}
	if _, err := New("vs", devs, nil); err == nil {
		t.Error("nil strategy should fail")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	devs := group(t, 3, 2)
	vs, err := New("vs", devs, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for round := 0; round < 6; round++ {
		_, d, ok := vs.Read(t0.Add(time.Duration(round)*time.Minute), round)
		if !ok {
			t.Fatalf("round %d failed", round)
		}
		seen[d.ID()]++
	}
	for id, n := range seen {
		if n != 2 {
			t.Errorf("device %s served %d rounds, want 2", id, n)
		}
	}
}

func TestEnergyAwarePicksHighestBattery(t *testing.T) {
	devs := group(t, 3, 2, 30, 90, 60)
	vs, err := New("vs", devs, EnergyAware{})
	if err != nil {
		t.Fatal(err)
	}
	_, d, ok := vs.Read(t0, 0)
	if !ok {
		t.Fatal("read failed")
	}
	if d.ID() != "dev-01" { // battery 90
		t.Errorf("picked %s, want dev-01 (highest battery)", d.ID())
	}
}

func TestReadFallsBackWhenDeviceCannotSample(t *testing.T) {
	devs := group(t, 2, 1, 0, 80) // first device dead
	vs, err := New("vs", devs, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	_, d, ok := vs.Read(t0, 0)
	if !ok {
		t.Fatal("read failed despite a live device")
	}
	if d.ID() != "dev-01" {
		t.Errorf("picked %s, want fallback dev-01", d.ID())
	}
}

func TestReadFailsWhenAllDead(t *testing.T) {
	devs := group(t, 2, 1, 0)
	vs, err := New("vs", devs, EnergyAware{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := vs.Read(t0, 0); ok {
		t.Error("read succeeded with all devices dead")
	}
}

func TestCampaignValidation(t *testing.T) {
	vs, err := New("vs", group(t, 2, 1), RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Campaign(t0, t0.Add(time.Hour), 0); err == nil {
		t.Error("zero period should fail")
	}
}

func TestCampaignEnergyAwareBeatsRoundRobinOnSurvival(t *testing.T) {
	// Heterogeneous batteries: energy-aware protects the weak devices, so
	// fewer die and the final battery spread is tighter.
	run := func(s Strategy) CampaignResult {
		devs := group(t, 8, 8, 15, 100, 40, 100, 20, 100, 60, 100)
		vs, err := New("vs", devs, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := vs.Campaign(t0, t0.Add(8*time.Hour), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(RoundRobin{})
	ea := run(EnergyAware{})

	if ea.Dead > rr.Dead {
		t.Errorf("energy-aware killed %d devices vs round-robin %d", ea.Dead, rr.Dead)
	}
	if ea.BatteryStd > rr.BatteryStd {
		t.Errorf("energy-aware battery spread %.2f should be tighter than round-robin %.2f",
			ea.BatteryStd, rr.BatteryStd)
	}
	if ea.Samples < rr.Samples {
		t.Errorf("energy-aware delivered %d samples vs %d", ea.Samples, rr.Samples)
	}
	if rr.String() == "" || ea.String() == "" {
		t.Error("empty String()")
	}
}

func TestCampaignCollectsRecords(t *testing.T) {
	devs := group(t, 4, 2)
	vs, err := New("vs", devs, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vs.Campaign(t0, t0.Add(time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 61 {
		t.Errorf("rounds = %d, want 61", res.Rounds)
	}
	if res.Samples != len(res.Records) {
		t.Errorf("samples %d != records %d", res.Samples, len(res.Records))
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
	if res.Fairness < 0.9 {
		t.Errorf("round-robin fairness = %.3f, want ~1", res.Fairness)
	}
}

func TestRandomStrategyDeterministic(t *testing.T) {
	pick := func() []string {
		devs := group(t, 5, 1)
		vs, err := New("vs", devs, NewRandom(99))
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for round := 0; round < 10; round++ {
			_, d, ok := vs.Read(t0.Add(time.Duration(round)*time.Minute), round)
			if !ok {
				t.Fatal("read failed")
			}
			ids = append(ids, d.ID())
		}
		return ids
	}
	a := pick()
	b := pick()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random strategy with same seed diverged")
		}
	}
}

func TestJainFairness(t *testing.T) {
	if got := jain(map[string]int{"a": 5, "b": 5}, 2); got < 0.999 {
		t.Errorf("equal counts fairness = %v, want 1", got)
	}
	skewed := jain(map[string]int{"a": 10}, 2)
	if skewed > 0.51 {
		t.Errorf("skewed fairness = %v, want ~0.5", skewed)
	}
	if got := jain(nil, 3); got != 0 {
		t.Errorf("no samples fairness = %v, want 0", got)
	}
	if got := jain(nil, 0); got != 0 {
		t.Errorf("zero devices fairness = %v, want 0", got)
	}
}
