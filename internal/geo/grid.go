package geo

import (
	"fmt"
	"math"
)

// BBox is an axis-aligned bounding box in WGS84 coordinates.
type BBox struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// NewBBox returns the tightest bounding box containing all pts. The second
// return value is false when pts is empty.
func NewBBox(pts []Point) (BBox, bool) {
	if len(pts) == 0 {
		return BBox{}, false
	}
	b := BBox{
		MinLat: pts[0].Lat, MaxLat: pts[0].Lat,
		MinLon: pts[0].Lon, MaxLon: pts[0].Lon,
	}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b, true
}

// Extend returns the bounding box enlarged to contain p.
func (b BBox) Extend(p Point) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	return b.Extend(Point{Lat: o.MinLat, Lon: o.MinLon}).
		Extend(Point{Lat: o.MaxLat, Lon: o.MaxLon})
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box centre.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Pad returns the box enlarged by the given margin in metres on every side.
func (b BBox) Pad(margin float64) BBox {
	dLat := margin / EarthRadius * radToDeg
	cos := math.Cos(b.Center().Lat * degToRad)
	if cos < 1e-9 {
		cos = 1e-9
	}
	dLon := margin / (EarthRadius * cos) * radToDeg
	return BBox{
		MinLat: b.MinLat - dLat, MaxLat: b.MaxLat + dLat,
		MinLon: b.MinLon - dLon, MaxLon: b.MaxLon + dLon,
	}
}

// Cell identifies one cell of a Grid by row (latitude index) and column
// (longitude index).
type Cell struct {
	Row int
	Col int
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("r%dc%d", c.Row, c.Col) }

// Grid partitions a bounding box into square cells of a fixed size in
// metres. Grids are the spatial unit for crowd-density and traffic metrics.
type Grid struct {
	box      BBox
	cellSize float64 // metres
	rows     int
	cols     int
	dLat     float64 // degrees per row
	dLon     float64 // degrees per col
}

// NewGrid builds a grid covering box with square cells of cellSize metres.
// cellSize must be positive.
func NewGrid(box BBox, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: grid cell size must be positive, got %v", cellSize)
	}
	if box.MaxLat < box.MinLat || box.MaxLon < box.MinLon {
		return nil, fmt.Errorf("geo: invalid bounding box %+v", box)
	}
	dLat := cellSize / EarthRadius * radToDeg
	cos := math.Cos(box.Center().Lat * degToRad)
	if cos < 1e-9 {
		cos = 1e-9
	}
	dLon := cellSize / (EarthRadius * cos) * radToDeg

	rows := int(math.Ceil((box.MaxLat-box.MinLat)/dLat)) + 1
	cols := int(math.Ceil((box.MaxLon-box.MinLon)/dLon)) + 1
	return &Grid{box: box, cellSize: cellSize, rows: rows, cols: cols, dLat: dLat, dLon: dLon}, nil
}

// CellSize returns the cell edge length in metres.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Rows returns the number of rows in the grid.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of columns in the grid.
func (g *Grid) Cols() int { return g.cols }

// CellOf returns the cell containing p. Points outside the bounding box are
// clamped to the border cells so that slightly-out-of-range protected
// coordinates still land in a well-defined cell.
func (g *Grid) CellOf(p Point) Cell {
	row := int((p.Lat - g.box.MinLat) / g.dLat)
	col := int((p.Lon - g.box.MinLon) / g.dLon)
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	return Cell{Row: row, Col: col}
}

// CenterOf returns the centre point of the given cell.
func (g *Grid) CenterOf(c Cell) Point {
	return Point{
		Lat: g.box.MinLat + (float64(c.Row)+0.5)*g.dLat,
		Lon: g.box.MinLon + (float64(c.Col)+0.5)*g.dLon,
	}
}

// Snap returns p snapped to the centre of its cell. This implements simple
// spatial cloaking / rounding.
func (g *Grid) Snap(p Point) Point { return g.CenterOf(g.CellOf(p)) }
