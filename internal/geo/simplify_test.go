package geo

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSimplifyKeepsEndpoints(t *testing.T) {
	pts := []Point{
		lyon,
		Translate(lyon, 100, 5),
		Translate(lyon, 200, -5),
		Translate(lyon, 300, 0),
	}
	kept := SimplifyIndices(pts, 50)
	if kept[0] != 0 || kept[len(kept)-1] != len(pts)-1 {
		t.Errorf("endpoints not kept: %v", kept)
	}
	// The zig of +/-5 m is below tolerance: only endpoints survive.
	if len(kept) != 2 {
		t.Errorf("kept %v, want just the endpoints", kept)
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	// A right-angle path: the corner must survive any tolerance smaller
	// than its offset.
	pts := []Point{
		lyon,
		Translate(lyon, 500, 0),
		Translate(lyon, 1000, 0), // corner start
		Translate(lyon, 1000, 500),
		Translate(lyon, 1000, 1000),
	}
	kept := SimplifyIndices(pts, 100)
	corner := false
	for _, i := range kept {
		if i == 2 {
			corner = true
		}
	}
	if !corner {
		t.Errorf("corner dropped: kept %v", kept)
	}
}

func TestSimplifySmallInputs(t *testing.T) {
	if got := SimplifyIndices(nil, 10); len(got) != 0 {
		t.Errorf("nil input kept %v", got)
	}
	one := []Point{lyon}
	if got := SimplifyIndices(one, 10); len(got) != 1 {
		t.Errorf("single point kept %v", got)
	}
	two := []Point{lyon, Translate(lyon, 10, 10)}
	if got := SimplifyIndices(two, 10); len(got) != 2 {
		t.Errorf("two points kept %v", got)
	}
	// Non-positive tolerance keeps everything.
	three := []Point{lyon, Translate(lyon, 5, 5), Translate(lyon, 10, 0)}
	if got := SimplifyIndices(three, 0); len(got) != 3 {
		t.Errorf("zero tolerance kept %v", got)
	}
}

func TestSimplifyErrorBoundProperty(t *testing.T) {
	// Property: every dropped point lies within tolerance of the
	// simplified polyline.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed%5000, seed^0xbeef))
		pts := make([]Point, 60)
		pos := lyon
		for i := range pts {
			pts[i] = pos
			pos = Translate(pos, rng.NormFloat64()*120, rng.NormFloat64()*120)
		}
		const tol = 150.0
		kept := SimplifyIndices(pts, tol)
		pr := NewProjection(pts[0])
		for i, p := range pts {
			best := 1e18
			for k := 1; k < len(kept); k++ {
				d := pointSegmentDist(pr.Forward(p), pr.Forward(pts[kept[k-1]]), pr.Forward(pts[kept[k]]))
				if d < best {
					best = d
				}
			}
			if best > tol*1.01 {
				t.Logf("point %d deviates %f m", i, best)
				return false
			}
		}
		// Indices must be strictly increasing.
		for k := 1; k < len(kept); k++ {
			if kept[k] <= kept[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
