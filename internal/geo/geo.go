// Package geo provides the geodesic substrate used throughout the
// crowd-sensing stack: WGS84 coordinates, great-circle and fast
// equirectangular distances, bearings, destination points, linear
// interpolation along segments, bounding boxes and uniform grids.
//
// All distances are expressed in metres and all angles in degrees unless
// stated otherwise. The package is allocation-free on its hot paths
// (distance and projection) so that privacy mechanisms and metrics can
// process millions of points cheaply.
package geo

import (
	"fmt"
	"math"
)

const (
	// EarthRadius is the mean Earth radius in metres (IUGG).
	EarthRadius = 6371008.8

	degToRad = math.Pi / 180
	radToDeg = 180 / math.Pi
)

// Point is a WGS84 coordinate pair.
type Point struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, [-180, 180)
}

// P is a shorthand constructor for Point.
func P(lat, lon float64) Point { return Point{Lat: lat, Lon: lon} }

// Valid reports whether the point lies within WGS84 coordinate bounds.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Haversine returns the great-circle distance in metres between p and q.
func Haversine(p, q Point) float64 {
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLat := (q.Lat - p.Lat) * degToRad
	dLon := (q.Lon - p.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(a))
}

// Distance returns the fast equirectangular-approximation distance in metres
// between p and q. It is accurate to well under 0.1% for the city-scale
// separations (tens of kilometres) this stack works with, and roughly 3x
// cheaper than Haversine.
func Distance(p, q Point) float64 {
	midLat := (p.Lat + q.Lat) / 2 * degToRad
	dLat := (q.Lat - p.Lat) * degToRad
	dLon := (q.Lon - p.Lon) * degToRad * math.Cos(midLat)
	return EarthRadius * math.Sqrt(dLat*dLat+dLon*dLon)
}

// Bearing returns the initial great-circle bearing in degrees [0, 360) to
// travel from p to q.
func Bearing(p, q Point) float64 {
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLon := (q.Lon - p.Lon) * degToRad

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	b := math.Atan2(y, x) * radToDeg
	return math.Mod(b+360, 360)
}

// Destination returns the point reached by travelling dist metres from p at
// the given initial bearing (degrees).
func Destination(p Point, bearingDeg, dist float64) Point {
	lat1 := p.Lat * degToRad
	lon1 := p.Lon * degToRad
	brng := bearingDeg * degToRad
	dr := dist / EarthRadius

	sinLat1, cosLat1 := math.Sincos(lat1)
	sinDr, cosDr := math.Sincos(dr)

	lat2 := math.Asin(sinLat1*cosDr + cosLat1*sinDr*math.Cos(brng))
	lon2 := lon1 + math.Atan2(math.Sin(brng)*sinDr*cosLat1, cosDr-sinLat1*math.Sin(lat2))
	return Point{Lat: lat2 * radToDeg, Lon: normalizeLonRad(lon2) * radToDeg}
}

func normalizeLonRad(lon float64) float64 {
	for lon >= math.Pi {
		lon -= 2 * math.Pi
	}
	for lon < -math.Pi {
		lon += 2 * math.Pi
	}
	return lon
}

// Lerp linearly interpolates between p and q. t=0 yields p, t=1 yields q.
// Interpolation is performed in coordinate space, which is adequate for the
// sub-kilometre segments produced by GPS sampling.
func Lerp(p, q Point, t float64) Point {
	return Point{
		Lat: p.Lat + (q.Lat-p.Lat)*t,
		Lon: p.Lon + (q.Lon-p.Lon)*t,
	}
}

// Midpoint returns the coordinate-space midpoint of p and q.
func Midpoint(p, q Point) Point { return Lerp(p, q, 0.5) }

// Centroid returns the coordinate-space centroid of the given points.
// It returns the zero Point when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var lat, lon float64
	for _, p := range pts {
		lat += p.Lat
		lon += p.Lon
	}
	n := float64(len(pts))
	return Point{Lat: lat / n, Lon: lon / n}
}
