package geo

import "math"

// Projection is a local equirectangular (plate carrée) projection anchored at
// an origin point. It maps WGS84 coordinates to a local East/North plane in
// metres, which lets geometric algorithms (clustering, resampling, noise)
// work in a flat space with negligible error at city scale.
type Projection struct {
	origin Point
	cosLat float64
}

// NewProjection returns a local projection anchored at origin.
func NewProjection(origin Point) *Projection {
	return &Projection{
		origin: origin,
		cosLat: math.Cos(origin.Lat * degToRad),
	}
}

// Origin returns the anchor point of the projection.
func (pr *Projection) Origin() Point { return pr.origin }

// XY is a position on the local plane, in metres East (X) and North (Y) of
// the projection origin.
type XY struct {
	X float64
	Y float64
}

// Forward projects a WGS84 point onto the local plane.
func (pr *Projection) Forward(p Point) XY {
	return XY{
		X: (p.Lon - pr.origin.Lon) * degToRad * EarthRadius * pr.cosLat,
		Y: (p.Lat - pr.origin.Lat) * degToRad * EarthRadius,
	}
}

// Inverse maps a local-plane position back to WGS84.
func (pr *Projection) Inverse(xy XY) Point {
	return Point{
		Lat: pr.origin.Lat + xy.Y/EarthRadius*radToDeg,
		Lon: pr.origin.Lon + xy.X/(EarthRadius*pr.cosLat)*radToDeg,
	}
}

// Dist returns the Euclidean distance in metres between two local positions.
func Dist(a, b XY) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Translate returns p moved by dx metres East and dy metres North, computed
// through a projection anchored at p itself.
func Translate(p Point, dx, dy float64) Point {
	pr := NewProjection(p)
	return pr.Inverse(XY{X: dx, Y: dy})
}
