package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func testBox(t *testing.T) BBox {
	t.Helper()
	b, ok := NewBBox([]Point{
		Translate(lyon, -5000, -5000),
		Translate(lyon, 5000, 5000),
	})
	if !ok {
		t.Fatal("NewBBox returned no box")
	}
	return b
}

func TestNewBBox(t *testing.T) {
	if _, ok := NewBBox(nil); ok {
		t.Error("NewBBox(nil) should report no box")
	}
	pts := []Point{{1, 2}, {-3, 7}, {5, -1}}
	b, ok := NewBBox(pts)
	if !ok {
		t.Fatal("NewBBox returned no box")
	}
	want := BBox{MinLat: -3, MaxLat: 5, MinLon: -1, MaxLon: 7}
	if b != want {
		t.Errorf("NewBBox = %+v, want %+v", b, want)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box does not contain %v", p)
		}
	}
}

func TestBBoxUnionAndPad(t *testing.T) {
	a := BBox{MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1}
	b := BBox{MinLat: 2, MaxLat: 3, MinLon: -2, MaxLon: 0.5}
	u := a.Union(b)
	want := BBox{MinLat: 0, MaxLat: 3, MinLon: -2, MaxLon: 1}
	if u != want {
		t.Errorf("Union = %+v, want %+v", u, want)
	}

	padded := a.Pad(1000)
	if padded.MinLat >= a.MinLat || padded.MaxLat <= a.MaxLat ||
		padded.MinLon >= a.MinLon || padded.MaxLon <= a.MaxLon {
		t.Errorf("Pad did not enlarge the box: %+v", padded)
	}
}

func TestNewGridErrors(t *testing.T) {
	box := BBox{MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1}
	if _, err := NewGrid(box, 0); err == nil {
		t.Error("NewGrid with zero cell size should fail")
	}
	if _, err := NewGrid(box, -5); err == nil {
		t.Error("NewGrid with negative cell size should fail")
	}
	bad := BBox{MinLat: 1, MaxLat: 0, MinLon: 0, MaxLon: 1}
	if _, err := NewGrid(bad, 100); err == nil {
		t.Error("NewGrid with inverted box should fail")
	}
}

func TestGridCellRoundTrip(t *testing.T) {
	box := testBox(t)
	g, err := NewGrid(box, 250)
	if err != nil {
		t.Fatal(err)
	}
	// The centre of every cell must map back to that same cell.
	for row := 0; row < g.Rows(); row += 3 {
		for col := 0; col < g.Cols(); col += 3 {
			c := Cell{Row: row, Col: col}
			if got := g.CellOf(g.CenterOf(c)); got != c {
				t.Fatalf("CellOf(CenterOf(%v)) = %v", c, got)
			}
		}
	}
}

func TestGridSnapDistanceBound(t *testing.T) {
	box := testBox(t)
	g, err := NewGrid(box, 250)
	if err != nil {
		t.Fatal(err)
	}
	// Snapping moves a point by at most half the cell diagonal.
	maxMove := 250 * math.Sqrt2 / 2 * 1.01
	f := func(dx, dy float64) bool {
		p := Translate(lyon, math.Mod(dx, 4500), math.Mod(dy, 4500))
		return Distance(p, g.Snap(p)) <= maxMove
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridClampsOutOfRange(t *testing.T) {
	box := testBox(t)
	g, err := NewGrid(box, 500)
	if err != nil {
		t.Fatal(err)
	}
	far := Translate(lyon, 100000, 100000)
	c := g.CellOf(far)
	if c.Row != g.Rows()-1 || c.Col != g.Cols()-1 {
		t.Errorf("far point clamped to %v, want last cell", c)
	}
	farNeg := Translate(lyon, -100000, -100000)
	c = g.CellOf(farNeg)
	if c.Row != 0 || c.Col != 0 {
		t.Errorf("far negative point clamped to %v, want first cell", c)
	}
}

func TestGridCellSizeAccuracy(t *testing.T) {
	box := testBox(t)
	g, err := NewGrid(box, 250)
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal and vertical neighbours must be ~250 m apart.
	a := g.CenterOf(Cell{Row: 5, Col: 5})
	right := g.CenterOf(Cell{Row: 5, Col: 6})
	up := g.CenterOf(Cell{Row: 6, Col: 5})
	if d := Distance(a, right); math.Abs(d-250) > 2.5 {
		t.Errorf("horizontal neighbour distance = %f, want ~250", d)
	}
	if d := Distance(a, up); math.Abs(d-250) > 2.5 {
		t.Errorf("vertical neighbour distance = %f, want ~250", d)
	}
}
