package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Lyon city centre, used as the reference location across the test suite
// (the paper's authors are based in Lyon and Lille).
var lyon = Point{Lat: 45.7640, Lon: 4.8357}

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64 // metres
		tol  float64 // relative tolerance
	}{
		{"zero", lyon, lyon, 0, 0},
		{"lyon-paris", lyon, Point{Lat: 48.8566, Lon: 2.3522}, 391500, 0.01},
		{"lyon-lille", lyon, Point{Lat: 50.6292, Lon: 3.0573}, 558000, 0.01},
		{"equator-1deg-lon", Point{0, 0}, Point{0, 1}, 111195, 0.001},
		{"one-deg-lat", Point{45, 0}, Point{46, 0}, 111195, 0.001},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.p, tt.q)
			if tt.want == 0 {
				if got != 0 {
					t.Fatalf("Haversine(%v, %v) = %v, want 0", tt.p, tt.q, got)
				}
				return
			}
			if rel := math.Abs(got-tt.want) / tt.want; rel > tt.tol {
				t.Errorf("Haversine(%v, %v) = %.0f, want %.0f (+/- %.1f%%)",
					tt.p, tt.q, got, tt.want, tt.tol*100)
			}
		})
	}
}

func TestDistanceMatchesHaversineAtCityScale(t *testing.T) {
	// Points within ~30 km of Lyon: the equirectangular approximation must
	// agree with haversine to better than 0.1%.
	offsets := []struct{ dx, dy float64 }{
		{100, 0}, {0, 100}, {-2500, 1200}, {15000, -8000}, {30000, 30000},
	}
	for _, off := range offsets {
		q := Translate(lyon, off.dx, off.dy)
		h := Haversine(lyon, q)
		d := Distance(lyon, q)
		if h == 0 {
			continue
		}
		if rel := math.Abs(h-d) / h; rel > 0.001 {
			t.Errorf("Distance vs Haversine for offset (%v,%v): %f vs %f (rel %e)",
				off.dx, off.dy, d, h, rel)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(dx1, dy1, dx2, dy2 float64) bool {
		p := Translate(lyon, math.Mod(dx1, 20000), math.Mod(dy1, 20000))
		q := Translate(lyon, math.Mod(dx2, 20000), math.Mod(dy2, 20000))
		return math.Abs(Distance(p, q)-Distance(q, p)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Translate(lyon, math.Mod(ax, 10000), math.Mod(ay, 10000))
		b := Translate(lyon, math.Mod(bx, 10000), math.Mod(by, 10000))
		c := Translate(lyon, math.Mod(cx, 10000), math.Mod(cy, 10000))
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	// Travelling dist metres at any bearing must land at exactly dist
	// (haversine) from the start.
	for _, bearing := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		for _, dist := range []float64{10, 500, 2000, 50000} {
			q := Destination(lyon, bearing, dist)
			got := Haversine(lyon, q)
			if math.Abs(got-dist) > dist*1e-6+1e-6 {
				t.Errorf("Destination(%v, %v): distance = %f, want %f", bearing, dist, got, dist)
			}
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	north := Destination(lyon, 0, 1000)
	if b := Bearing(lyon, north); math.Abs(b) > 0.01 && math.Abs(b-360) > 0.01 {
		t.Errorf("bearing to north = %v, want ~0", b)
	}
	east := Destination(lyon, 90, 1000)
	if b := Bearing(lyon, east); math.Abs(b-90) > 0.01 {
		t.Errorf("bearing to east = %v, want ~90", b)
	}
	south := Destination(lyon, 180, 1000)
	if b := Bearing(lyon, south); math.Abs(b-180) > 0.01 {
		t.Errorf("bearing to south = %v, want ~180", b)
	}
}

func TestLerpEndpointsAndMidpoint(t *testing.T) {
	q := Translate(lyon, 1000, 500)
	if got := Lerp(lyon, q, 0); got != lyon {
		t.Errorf("Lerp t=0 = %v, want %v", got, lyon)
	}
	if got := Lerp(lyon, q, 1); got != q {
		t.Errorf("Lerp t=1 = %v, want %v", got, q)
	}
	mid := Midpoint(lyon, q)
	dp := Distance(lyon, mid)
	dq := Distance(mid, q)
	if math.Abs(dp-dq) > 0.5 {
		t.Errorf("midpoint not equidistant: %v vs %v", dp, dq)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want zero point", got)
	}
	pts := []Point{
		Translate(lyon, -100, -100),
		Translate(lyon, 100, -100),
		Translate(lyon, 100, 100),
		Translate(lyon, -100, 100),
	}
	c := Centroid(pts)
	if d := Distance(c, lyon); d > 1 {
		t.Errorf("centroid %v is %f m from expected centre", c, d)
	}
}

func TestPointValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(lyon)
	f := func(dx, dy float64) bool {
		dx = math.Mod(dx, 30000)
		dy = math.Mod(dy, 30000)
		p := pr.Inverse(XY{X: dx, Y: dy})
		back := pr.Forward(p)
		return math.Abs(back.X-dx) < 1e-6 && math.Abs(back.Y-dy) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionDistancePreservation(t *testing.T) {
	pr := NewProjection(lyon)
	a := Translate(lyon, 1200, -800)
	b := Translate(lyon, -3000, 4000)
	planar := Dist(pr.Forward(a), pr.Forward(b))
	sphere := Haversine(a, b)
	if rel := math.Abs(planar-sphere) / sphere; rel > 0.002 {
		t.Errorf("planar distance %f vs haversine %f (rel %e)", planar, sphere, rel)
	}
}

func TestTranslateDistances(t *testing.T) {
	q := Translate(lyon, 300, 400) // 3-4-5 triangle: 500 m
	if d := Haversine(lyon, q); math.Abs(d-500) > 1 {
		t.Errorf("Translate(300,400) distance = %f, want 500", d)
	}
}
