package geo

// SimplifyIndices returns the indices of the points kept by Douglas-Peucker
// polyline simplification with the given tolerance in metres. The first and
// last indices are always kept; the input order is preserved.
//
// Simplification is both a compression tool (trace storage) and the
// "generalisation" family of location-privacy baselines: dropping
// intermediate points coarsens the path without displacing what remains.
func SimplifyIndices(pts []Point, tolerance float64) []int {
	if len(pts) <= 2 || tolerance <= 0 {
		out := make([]int, len(pts))
		for i := range pts {
			out[i] = i
		}
		return out
	}
	pr := NewProjection(pts[0])
	xys := make([]XY, len(pts))
	for i, p := range pts {
		xys[i] = pr.Forward(p)
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true
	douglasPeucker(xys, 0, len(pts)-1, tolerance, keep)

	var out []int
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// douglasPeucker marks the kept points between first and last (exclusive).
func douglasPeucker(xys []XY, first, last int, tolerance float64, keep []bool) {
	if last <= first+1 {
		return
	}
	maxDist := -1.0
	maxIdx := -1
	for i := first + 1; i < last; i++ {
		if d := pointSegmentDist(xys[i], xys[first], xys[last]); d > maxDist {
			maxDist, maxIdx = d, i
		}
	}
	if maxDist <= tolerance {
		return
	}
	keep[maxIdx] = true
	douglasPeucker(xys, first, maxIdx, tolerance, keep)
	douglasPeucker(xys, maxIdx, last, tolerance, keep)
}

// pointSegmentDist is the distance from p to segment [a, b] on the plane.
func pointSegmentDist(p, a, b XY) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return Dist(p, a)
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return Dist(p, XY{X: a.X + t*abx, Y: a.Y + t*aby})
}
