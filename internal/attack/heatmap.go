package attack

import (
	"fmt"
	"math"
	"sort"

	"apisense/internal/geo"
	"apisense/internal/trace"
)

// HeatmapLinker is the mobility-fingerprint re-identification attack: each
// user is summarised as a grid heatmap of visit frequencies (where they
// spend their recorded time), and pseudonymous releases are linked to the
// candidate with the most similar (cosine) fingerprint. Unlike the
// POI-profile Linker it needs no dwell structure at all, which makes it the
// natural adversary against dwell-destroying mechanisms such as speed
// smoothing.
type HeatmapLinker struct {
	grid *geo.Grid
}

// NewHeatmapLinker builds the attack over the given analysis grid.
func NewHeatmapLinker(grid *geo.Grid) (*HeatmapLinker, error) {
	if grid == nil {
		return nil, fmt.Errorf("attack: grid is required")
	}
	return &HeatmapLinker{grid: grid}, nil
}

// Fingerprint is a normalised per-cell visit-frequency vector.
type Fingerprint map[geo.Cell]float64

// fingerprint computes the normalised heatmap of one user's trajectories.
func (h *HeatmapLinker) fingerprint(trajs []*trace.Trajectory) Fingerprint {
	fp := make(Fingerprint)
	var total float64
	for _, t := range trajs {
		for _, r := range t.Records {
			fp[h.grid.CellOf(r.Pos)]++
			total++
		}
	}
	if total > 0 {
		for c := range fp {
			fp[c] /= total
		}
	}
	return fp
}

// BuildFingerprints learns per-user fingerprints from background data.
func (h *HeatmapLinker) BuildFingerprints(background *trace.Dataset) map[string]Fingerprint {
	out := make(map[string]Fingerprint)
	for user, trajs := range background.ByUser() {
		out[user] = h.fingerprint(trajs)
	}
	return out
}

// cosine returns the cosine similarity of two fingerprints. The folds run
// over sorted cells so the similarity — and therefore the attack's ranking
// on near-ties — is byte-identical between runs.
func cosine(a, b Fingerprint) float64 {
	var dot, na, nb float64
	for _, c := range sortedCells(a) {
		va := a[c]
		if vb, ok := b[c]; ok {
			dot += va * vb
		}
		na += va * va
	}
	for _, c := range sortedCells(b) {
		vb := b[c]
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// sortedCells returns the fingerprint's cells in row-major order.
func sortedCells(fp Fingerprint) []geo.Cell {
	cells := make([]geo.Cell, 0, len(fp))
	for c := range fp {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Row != cells[j].Row {
			return cells[i].Row < cells[j].Row
		}
		return cells[i].Col < cells[j].Col
	})
	return cells
}

// Run links every pseudonymous user of the release against the learned
// fingerprints; trueID maps pseudonyms back to users for scoring.
func (h *HeatmapLinker) Run(fingerprints map[string]Fingerprint, release *trace.Dataset, trueID func(string) string) LinkResult {
	candidates := make([]string, 0, len(fingerprints))
	for user := range fingerprints {
		candidates = append(candidates, user)
	}
	sort.Strings(candidates)

	var res LinkResult
	if len(candidates) > 0 {
		res.Baseline = 1 / float64(len(candidates))
	}
	for pseudo, trajs := range release.ByUser() {
		test := h.fingerprint(trajs)
		if len(test) == 0 {
			continue
		}
		truth := trueID(pseudo)
		if _, ok := fingerprints[truth]; !ok {
			continue
		}
		res.Users++
		type scored struct {
			user string
			sim  float64
		}
		ranking := make([]scored, 0, len(candidates))
		for _, cand := range candidates {
			ranking = append(ranking, scored{cand, cosine(fingerprints[cand], test)})
		}
		sort.Slice(ranking, func(i, j int) bool {
			if ranking[i].sim != ranking[j].sim {
				return ranking[i].sim > ranking[j].sim
			}
			return ranking[i].user < ranking[j].user
		})
		if ranking[0].user == truth {
			res.Correct++
		}
		for i := 0; i < len(ranking) && i < 3; i++ {
			if ranking[i].user == truth {
				res.CorrectTop3++
				break
			}
		}
	}
	return res
}
