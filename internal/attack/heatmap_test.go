package attack

import (
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/metrics"
	"apisense/internal/trace"
)

func heatmapGrid(t *testing.T, ds *trace.Dataset) *geo.Grid {
	t.Helper()
	box, ok := ds.BBox()
	if !ok {
		t.Fatal("empty dataset")
	}
	g, err := geo.NewGrid(box.Pad(500), 250)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewHeatmapLinkerValidation(t *testing.T) {
	if _, err := NewHeatmapLinker(nil); err == nil {
		t.Error("nil grid should fail")
	}
}

func TestHeatmapLinkageOnRawSplit(t *testing.T) {
	ds, _ := fixture(t)
	cut := time.Date(2014, 12, 15, 0, 0, 0, 0, time.UTC)
	background, test := metrics.SplitAtDay(ds, cut)

	h, err := NewHeatmapLinker(heatmapGrid(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	fps := h.BuildFingerprints(background)
	pseud, err := trace.NewPseudonymizer([]byte("hm"))
	if err != nil {
		t.Fatal(err)
	}
	reverse := map[string]string{}
	for _, u := range ds.Users() {
		reverse[pseud.Pseudonym(u)] = u
	}
	res := h.Run(fps, pseud.Apply(test), func(p string) string { return reverse[p] })
	if res.Users == 0 {
		t.Fatal("nobody attacked")
	}
	if res.Accuracy() < 0.8 {
		t.Errorf("heatmap linkage on raw split = %.2f, want >= 0.8: %v", res.Accuracy(), res)
	}
}

func TestHeatmapLinkageSurvivesSmoothing(t *testing.T) {
	// The stronger statement behind E3: even an attacker that ignores
	// dwell entirely links smoothed traces, because the visited-cells
	// distribution is preserved by design (that is what keeps utility).
	ds, _ := fixture(t)
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := lppm.ProtectDataset(sm, ds)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeatmapLinker(heatmapGrid(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	fps := h.BuildFingerprints(ds)
	res := h.Run(fps, prot, func(p string) string { return p })
	if res.Accuracy() < 0.7 {
		t.Errorf("heatmap linkage under smoothing = %.2f, expected high (documented limitation)",
			res.Accuracy())
	}
}

func TestHeatmapLinkageDegradesUnderHeavyNoise(t *testing.T) {
	ds, _ := fixture(t)
	gi, err := lppm.NewGeoInd(0.0005, 9) // 4 km mean noise
	if err != nil {
		t.Fatal(err)
	}
	prot, err := lppm.ProtectDataset(gi, ds)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeatmapLinker(heatmapGrid(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	fps := h.BuildFingerprints(ds)
	raw := h.Run(fps, ds, func(p string) string { return p })
	noisy := h.Run(fps, prot, func(p string) string { return p })
	if noisy.Accuracy() >= raw.Accuracy() {
		t.Errorf("heavy noise did not degrade heatmap linkage: %.2f vs %.2f",
			noisy.Accuracy(), raw.Accuracy())
	}
}

func TestCosineProperties(t *testing.T) {
	a := Fingerprint{{Row: 1, Col: 1}: 0.5, {Row: 2, Col: 2}: 0.5}
	if got := cosine(a, a); got < 0.999 || got > 1.001 {
		t.Errorf("cosine(a,a) = %v, want 1", got)
	}
	disjoint := Fingerprint{{Row: 9, Col: 9}: 1}
	if got := cosine(a, disjoint); got != 0 {
		t.Errorf("cosine of disjoint fingerprints = %v, want 0", got)
	}
	if got := cosine(a, Fingerprint{}); got != 0 {
		t.Errorf("cosine with empty = %v, want 0", got)
	}
}

func TestHeatmapEmptyRelease(t *testing.T) {
	ds, _ := fixture(t)
	h, err := NewHeatmapLinker(heatmapGrid(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	fps := h.BuildFingerprints(ds)
	res := h.Run(fps, trace.NewDataset(), func(p string) string { return p })
	if res.Users != 0 {
		t.Errorf("attacked %d users on an empty release", res.Users)
	}
}
