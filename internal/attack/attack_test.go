package attack

import (
	"math"
	"testing"
	"time"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/mobgen"
	"apisense/internal/poi"
	"apisense/internal/trace"
)

func stayPoints(t *testing.T) poi.Extractor {
	t.Helper()
	sp, err := poi.NewStayPoints(poi.StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// cityFixture generates a small city once per test binary.
var cityFixture struct {
	ds   *trace.Dataset
	city *mobgen.City
}

func fixture(t *testing.T) (*trace.Dataset, *mobgen.City) {
	t.Helper()
	if cityFixture.ds == nil {
		ds, city, err := mobgen.Generate(mobgen.Config{Seed: 11, Users: 12, Days: 10})
		if err != nil {
			t.Fatal(err)
		}
		cityFixture.ds = ds
		cityFixture.city = city
	}
	return cityFixture.ds, cityFixture.city
}

func truthOf(city *mobgen.City) map[string][]geo.Point {
	truth := make(map[string][]geo.Point, len(city.Residents))
	for _, r := range city.Residents {
		truth[r.User] = r.TruePOIs()
	}
	return truth
}

func TestNewPOIRecoveryValidation(t *testing.T) {
	if _, err := NewPOIRecovery(nil, 0, 0); err == nil {
		t.Error("nil extractor should fail")
	}
	if _, err := NewPOIRecovery(stayPoints(t), -1, 0); err == nil {
		t.Error("negative radius should fail")
	}
	a, err := NewPOIRecovery(stayPoints(t), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.MergeRadius != 250 || a.MatchRadius != 250 {
		t.Errorf("defaults = %v/%v, want 250/250", a.MergeRadius, a.MatchRadius)
	}
}

func TestRecoveryOnRawData(t *testing.T) {
	ds, city := fixture(t)
	a, err := NewPOIRecovery(stayPoints(t), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := a.Run(truthOf(city), ds)
	if res.Recall() < 0.8 {
		t.Errorf("raw recall = %.2f, want >= 0.8: %v", res.Recall(), res)
	}
	if res.Precision() < 0.5 {
		t.Errorf("raw precision = %.2f, want >= 0.5: %v", res.Precision(), res)
	}
	if res.F1() <= 0 || res.F1() > 1 {
		t.Errorf("f1 out of range: %v", res.F1())
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestRecoveryUnderSmoothingCollapsesPrecision(t *testing.T) {
	ds, city := fixture(t)
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := lppm.ProtectDataset(sm, ds)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPOIRecovery(stayPoints(t), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := a.Run(truthOf(city), ds)
	smooth := a.Run(truthOf(city), prot)
	if smooth.Precision() > raw.Precision()*0.6 {
		t.Errorf("smoothing precision %.2f should be far below raw %.2f",
			smooth.Precision(), raw.Precision())
	}
	if smooth.F1() > raw.F1()*0.7 {
		t.Errorf("smoothing F1 %.2f should collapse vs raw %.2f", smooth.F1(), raw.F1())
	}
}

func TestRecoveryUnderGeoIndSurvives(t *testing.T) {
	// Claim C1: geo-indistinguishability at a realistic epsilon leaves
	// most POIs recoverable, because long dwells average the noise out.
	// The attacker widens the stay-point radius to the noise scale —
	// exactly the adaptation used in the authors' companion study [3].
	ds, city := fixture(t)
	gi, err := lppm.NewGeoInd(0.01, 5) // mean noise 2/eps = 200 m
	if err != nil {
		t.Fatal(err)
	}
	prot, err := lppm.ProtectDataset(gi, ds)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := poi.NewStayPoints(poi.StayPointConfig{MaxDistance: 500})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPOIRecovery(wide, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := a.Run(truthOf(city), prot)
	if res.Recall() < 0.6 {
		t.Errorf("geoind recall = %.2f, want >= 0.6 (paper claim C1): %v", res.Recall(), res)
	}
}

func TestRecoveryEmptyInputs(t *testing.T) {
	a, err := NewPOIRecovery(stayPoints(t), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := a.Run(nil, trace.NewDataset())
	if res.Recall() != 0 || res.Precision() != 0 || res.F1() != 0 {
		t.Errorf("empty attack should score zero: %+v", res)
	}
}

func TestLinkerValidation(t *testing.T) {
	if _, err := NewLinker(nil, 0); err == nil {
		t.Error("nil extractor should fail")
	}
	if _, err := NewLinker(stayPoints(t), -1); err == nil {
		t.Error("negative radius should fail")
	}
}

func TestLinkerOnRawSplitsIsAccurate(t *testing.T) {
	ds, _ := fixture(t)
	// Background: first week. Test: the remaining weekdays, pseudonymised.
	cut := time.Date(2014, 12, 15, 0, 0, 0, 0, time.UTC)
	background := ds.Filter(func(tr *trace.Trajectory) bool {
		start, err := tr.Start()
		return err == nil && start.Before(cut)
	})
	test := ds.Filter(func(tr *trace.Trajectory) bool {
		start, err := tr.Start()
		return err == nil && !start.Before(cut)
	})
	pseud, err := trace.NewPseudonymizer([]byte("release-key"))
	if err != nil {
		t.Fatal(err)
	}
	testAnon := pseud.Apply(test)
	// Invert pseudonyms for scoring.
	reverse := make(map[string]string)
	for _, u := range ds.Users() {
		reverse[pseud.Pseudonym(u)] = u
	}

	l, err := NewLinker(stayPoints(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	profiles := l.BuildProfiles(background)
	res := l.Run(profiles, testAnon, func(p string) string { return reverse[p] })
	if res.Users == 0 {
		t.Fatal("no users attacked")
	}
	if res.Accuracy() < 0.8 {
		t.Errorf("raw linkage accuracy = %.2f, want >= 0.8: %v", res.Accuracy(), res)
	}
	if res.AccuracyTop3() < res.Accuracy() {
		t.Error("top-3 accuracy below top-1")
	}
	if res.Baseline <= 0 || res.Baseline >= 0.5 {
		t.Errorf("baseline = %v", res.Baseline)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestLinkerEmptyRelease(t *testing.T) {
	l, err := NewLinker(stayPoints(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	res := l.Run(map[string][]Place{"a": ProfileFromPoints([]geo.Point{{Lat: 1, Lon: 1}})},
		trace.NewDataset(), func(p string) string { return p })
	if res.Users != 0 || res.Accuracy() != 0 {
		t.Errorf("empty release should attack nobody: %+v", res)
	}
}

func TestProfileDistance(t *testing.T) {
	a := geo.Point{Lat: 45.76, Lon: 4.83}
	b := geo.Translate(a, 1000, 0)
	if d := profileDistance(nil, []geo.Point{a}); !math.IsInf(d, 1) {
		t.Errorf("empty profile distance = %v, want +Inf", d)
	}
	got := profileDistance(ProfileFromPoints([]geo.Point{a, b}), []geo.Point{a})
	// a matches at 0, b at 1000 => equal-weight average 500.
	if got < 490 || got > 510 {
		t.Errorf("profileDistance = %f, want ~500", got)
	}
	// Weighting shifts the score towards the heavy place.
	heavyA := []Place{{Pos: a, Weight: 9}, {Pos: b, Weight: 1}}
	if got := profileDistance(heavyA, []geo.Point{a}); got > 150 {
		t.Errorf("weighted profileDistance = %f, want ~100", got)
	}
}
