package attack

import (
	"testing"

	"apisense/internal/geo"
	"apisense/internal/lppm"
	"apisense/internal/poi"
)

// TestAttackerExtractorAblation compares the two attacker toolchains of
// DESIGN.md §5 (stay-point detection vs DJ-Cluster) on raw data: both must
// recover essentially all true POIs, validating that E1's conclusions do
// not hinge on the extractor choice.
func TestAttackerExtractorAblation(t *testing.T) {
	ds, city := fixture(t)
	truth := truthOf(city)

	sp, err := poi.NewStayPoints(poi.StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dj, err := poi.NewDJCluster(poi.DJClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for name, extractor := range map[string]poi.Extractor{"staypoints": sp, "djcluster": dj} {
		a, err := NewPOIRecovery(extractor, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := a.Run(truth, ds)
		if res.Recall() < 0.8 {
			t.Errorf("%s raw recall = %.2f, want >= 0.8: %v", name, res.Recall(), res)
		}
	}
}

// TestLinkageSurvivesSmoothing documents the E3 negative result as an
// invariant: smoothing does NOT defend against POI-profile linkage because
// the path itself identifies its owner.
func TestLinkageSurvivesSmoothing(t *testing.T) {
	ds, _ := fixture(t)
	sm, err := lppm.NewSpeedSmoothing(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := lppm.ProtectDataset(sm, ds)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := poi.NewStayPoints(poi.StayPointConfig{MaxDistance: 500})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLinker(wide, 0)
	if err != nil {
		t.Fatal(err)
	}
	profiles := l.BuildProfiles(ds)
	res := l.Run(profiles, prot, func(p string) string { return p })
	if res.Accuracy() < 0.7 {
		t.Errorf("linkage under smoothing = %.2f; expected to remain high (documented limitation)",
			res.Accuracy())
	}
}

// TestRecoveryMatchRadiusMonotone: enlarging the match radius can only
// increase recall — a sanity invariant for the experiment parameters.
func TestRecoveryMatchRadiusMonotone(t *testing.T) {
	ds, city := fixture(t)
	truth := truthOf(city)
	gi, err := lppm.NewGeoInd(0.005, 3)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := lppm.ProtectDataset(gi, ds)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := poi.NewStayPoints(poi.StayPointConfig{MaxDistance: 500})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, radius := range []float64{100, 250, 500, 1000} {
		a, err := NewPOIRecovery(wide, 250, radius)
		if err != nil {
			t.Fatal(err)
		}
		rec := a.Run(truth, prot).Recall()
		if rec < prev {
			t.Errorf("recall decreased when widening match radius to %v: %v -> %v", radius, prev, rec)
		}
		prev = rec
	}
}

// TestLinkerProfilesContainTruePOIs ties the learned profiles back to the
// generator's ground truth.
func TestLinkerProfilesContainTruePOIs(t *testing.T) {
	ds, city := fixture(t)
	sp, err := poi.NewStayPoints(poi.StayPointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLinker(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	profiles := l.BuildProfiles(ds)
	for _, res := range city.Residents {
		places := profiles[res.User]
		if len(places) == 0 {
			t.Fatalf("no profile for %s", res.User)
		}
		foundHome := false
		for _, p := range places {
			if geo.Distance(p.Pos, res.Home) < 250 {
				foundHome = true
				break
			}
		}
		if !foundHome {
			t.Errorf("profile of %s misses their home", res.User)
		}
	}
}
