// Package attack implements the adversary of the paper's §3: an analyst who
// mines a released mobility dataset for points of interest and uses them to
// re-identify users.
//
// Two attacks are provided:
//
//   - POIRecovery quantifies claim C1/C2: which fraction of the users' true
//     points of interest can still be recovered from the protected release
//     (recall), and how much of what the attacker extracts is actually a
//     true stop (precision);
//   - Linker performs POI-profile re-identification: given per-user profiles
//     learned from background knowledge (e.g. an earlier raw release), it
//     links pseudonymous protected trajectories back to users.
package attack

import (
	"fmt"
	"math"
	"sort"

	"apisense/internal/geo"
	"apisense/internal/poi"
	"apisense/internal/trace"
)

// RecoveryResult reports POI recovery quality for one protected release.
type RecoveryResult struct {
	// TruePOIs is the number of ground-truth POIs across users.
	TruePOIs int
	// ExtractedPOIs is the number of POIs the attacker extracted.
	ExtractedPOIs int
	// Recovered is the number of true POIs with an extracted POI within
	// the matching radius.
	Recovered int
	// Matched is the number of extracted POIs lying within the matching
	// radius of some true POI.
	Matched int
}

// Recall returns the fraction of true POIs recovered — the paper's
// "re-identify at least 60% of the points of interest" figure.
func (r RecoveryResult) Recall() float64 {
	if r.TruePOIs == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(r.TruePOIs)
}

// Precision returns the fraction of extracted POIs that are true stops.
func (r RecoveryResult) Precision() float64 {
	if r.ExtractedPOIs == 0 {
		return 0
	}
	return float64(r.Matched) / float64(r.ExtractedPOIs)
}

// F1 returns the harmonic mean of recall and precision.
func (r RecoveryResult) F1() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// String implements fmt.Stringer.
func (r RecoveryResult) String() string {
	return fmt.Sprintf("recall=%.2f precision=%.2f f1=%.2f (%d/%d true, %d extracted)",
		r.Recall(), r.Precision(), r.F1(), r.Recovered, r.TruePOIs, r.ExtractedPOIs)
}

// POIRecovery is the POI-retrieval attack.
type POIRecovery struct {
	// Extractor mines the protected release (attacker-side tool).
	Extractor poi.Extractor
	// MergeRadius collapses per-day POIs into places (metres, default 250).
	MergeRadius float64
	// MatchRadius is the distance within which an extracted POI counts as
	// recovering a true POI (metres, default 250).
	MatchRadius float64
}

// NewPOIRecovery returns the attack with the given extractor; zero radii take
// the 250 m default.
func NewPOIRecovery(e poi.Extractor, mergeRadius, matchRadius float64) (*POIRecovery, error) {
	if e == nil {
		return nil, fmt.Errorf("attack: extractor must not be nil")
	}
	if mergeRadius < 0 || matchRadius < 0 {
		return nil, fmt.Errorf("attack: radii must be >= 0")
	}
	if mergeRadius == 0 {
		mergeRadius = 250
	}
	if matchRadius == 0 {
		matchRadius = 250
	}
	return &POIRecovery{Extractor: e, MergeRadius: mergeRadius, MatchRadius: matchRadius}, nil
}

// Run executes the attack: truth maps each user to their ground-truth POI
// locations, release is the protected dataset (keyed by the same user ids;
// use trace.Pseudonymizer consistently on both sides if pseudonymised).
func (a *POIRecovery) Run(truth map[string][]geo.Point, release *trace.Dataset) RecoveryResult {
	extracted := poi.ExtractAll(a.Extractor, release)
	var res RecoveryResult
	for user, truePOIs := range truth {
		places := poi.Merge(extracted[user], a.MergeRadius)
		res.TruePOIs += len(truePOIs)
		res.ExtractedPOIs += len(places)
		for _, tp := range truePOIs {
			for _, p := range places {
				if geo.Distance(p.Center, tp) <= a.MatchRadius {
					res.Recovered++
					break
				}
			}
		}
		for _, p := range places {
			for _, tp := range truePOIs {
				if geo.Distance(p.Center, tp) <= a.MatchRadius {
					res.Matched++
					break
				}
			}
		}
	}
	return res
}

// Linker is the POI-profile re-identification attack. Profiles are the
// attacker's background knowledge: the places each known user frequents.
type Linker struct {
	// Extractor mines the protected release.
	Extractor poi.Extractor
	// MergeRadius collapses per-day POIs into places (metres, default 250).
	MergeRadius float64
}

// NewLinker returns a linker using the given extractor.
func NewLinker(e poi.Extractor, mergeRadius float64) (*Linker, error) {
	if e == nil {
		return nil, fmt.Errorf("attack: extractor must not be nil")
	}
	if mergeRadius < 0 {
		return nil, fmt.Errorf("attack: merge radius must be >= 0")
	}
	if mergeRadius == 0 {
		mergeRadius = 250
	}
	return &Linker{Extractor: e, MergeRadius: mergeRadius}, nil
}

// Place is one entry of a user profile: a location and its importance
// (how much evidence supports it — more dwell means more weight).
type Place struct {
	Pos    geo.Point
	Weight float64
}

// ProfileFromPoints builds an equally-weighted profile from raw locations,
// e.g. ground-truth POIs.
func ProfileFromPoints(pts []geo.Point) []Place {
	out := make([]Place, len(pts))
	for i, p := range pts {
		out[i] = Place{Pos: p, Weight: 1}
	}
	return out
}

// BuildProfiles learns per-user profiles (merged POI centroids weighted by
// supporting fixes) from a raw background dataset.
func (l *Linker) BuildProfiles(background *trace.Dataset) map[string][]Place {
	perUser := poi.ExtractAll(l.Extractor, background)
	out := make(map[string][]Place, len(perUser))
	for user, pois := range perUser {
		places := poi.Merge(pois, l.MergeRadius)
		ps := make([]Place, len(places))
		for i, p := range places {
			ps[i] = Place{Pos: p.Center, Weight: float64(p.Fixes)}
		}
		out[user] = ps
	}
	return out
}

// LinkResult reports re-identification accuracy.
type LinkResult struct {
	// Users is the number of pseudonymous identities attacked.
	Users int
	// Correct is the number linked to the right profile (top-1).
	Correct int
	// CorrectTop3 is the number whose true profile ranked in the top 3.
	CorrectTop3 int
	// Baseline is the expected accuracy of random guessing (1/candidates).
	Baseline float64
}

// Accuracy returns the top-1 linkage accuracy.
func (r LinkResult) Accuracy() float64 {
	if r.Users == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Users)
}

// AccuracyTop3 returns the top-3 linkage accuracy.
func (r LinkResult) AccuracyTop3() float64 {
	if r.Users == 0 {
		return 0
	}
	return float64(r.CorrectTop3) / float64(r.Users)
}

// String implements fmt.Stringer.
func (r LinkResult) String() string {
	return fmt.Sprintf("top1=%.2f top3=%.2f baseline=%.3f (%d users)",
		r.Accuracy(), r.AccuracyTop3(), r.Baseline, r.Users)
}

// Run links every user of the protected release against the profiles. The
// release keys are assumed pseudonymous but stable per user; the true
// mapping (pseudonym -> user) must be supplied for scoring via trueID.
func (l *Linker) Run(profiles map[string][]Place, release *trace.Dataset, trueID func(pseudonym string) string) LinkResult {
	extracted := poi.ExtractAll(l.Extractor, release)
	candidates := make([]string, 0, len(profiles))
	for user := range profiles {
		candidates = append(candidates, user)
	}
	sort.Strings(candidates)

	var res LinkResult
	if len(candidates) > 0 {
		res.Baseline = 1 / float64(len(candidates))
	}
	for pseudo, pois := range extracted {
		places := poi.Merge(pois, l.MergeRadius)
		if len(places) == 0 {
			continue
		}
		test := make([]geo.Point, len(places))
		for i, p := range places {
			test[i] = p.Center
		}
		truth := trueID(pseudo)
		if _, ok := profiles[truth]; !ok {
			continue
		}
		res.Users++

		type scored struct {
			user  string
			score float64
		}
		ranking := make([]scored, 0, len(candidates))
		for _, cand := range candidates {
			ranking = append(ranking, scored{cand, profileDistance(profiles[cand], test)})
		}
		sort.Slice(ranking, func(i, j int) bool { return ranking[i].score < ranking[j].score })
		if ranking[0].user == truth {
			res.Correct++
		}
		for i := 0; i < len(ranking) && i < 3; i++ {
			if ranking[i].user == truth {
				res.CorrectTop3++
				break
			}
		}
	}
	return res
}

// profileDistance scores how well the test POIs explain a candidate profile:
// the weight-averaged distance from each profile place to the closest test
// place. Heavily-dwelled places (home, work) dominate. Lower is better.
func profileDistance(profile []Place, test []geo.Point) float64 {
	if len(profile) == 0 || len(test) == 0 {
		return math.Inf(1)
	}
	var sum, wsum float64
	for _, pp := range profile {
		best := math.Inf(1)
		for _, tp := range test {
			if d := geo.Distance(pp.Pos, tp); d < best {
				best = d
			}
		}
		w := pp.Weight
		if w <= 0 {
			w = 1
		}
		sum += w * best
		wsum += w
	}
	return sum / wsum
}
