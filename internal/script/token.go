// Package script implements SenseScript, the task-description language of
// the APISENSE platform. The paper (§2) describes crowd-sensing tasks as
// "scripts (based on an extension of JavaScript) that are seamlessly
// offloaded onto mobile devices". SenseScript is a from-scratch interpreter
// for the JavaScript subset those task scripts use: numbers, strings,
// booleans, arrays, objects, first-class functions and closures, the usual
// operators and control flow — plus host bindings through which the device
// runtime exposes its sensor API (see internal/device).
//
// The interpreter is deliberately sandboxed: scripts can only touch the
// host objects the runtime injects, and execution is fuel-limited so a
// runaway task cannot pin a device CPU.
package script

import "fmt"

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING
	// keywords
	VAR
	FUNCTION
	RETURN
	IF
	ELSE
	WHILE
	FOR
	BREAK
	CONTINUE
	TRUE
	FALSE
	NULL
	// punctuation and operators
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	DOT      // .
	SEMI     // ;
	COLON    // :
	QUESTION // ?
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	EQ       // ==
	NEQ      // !=
	LT       // <
	GT       // >
	LTE      // <=
	GTE      // >=
	AND      // &&
	OR       // ||
	NOT      // !
	PLUSEQ   // +=
	MINUSEQ  // -=
)

var kindNames = map[Kind]string{
	EOF: "end of script", IDENT: "identifier", NUMBER: "number", STRING: "string",
	VAR: "var", FUNCTION: "function", RETURN: "return", IF: "if", ELSE: "else",
	WHILE: "while", FOR: "for", BREAK: "break", CONTINUE: "continue",
	TRUE: "true", FALSE: "false", NULL: "null",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACKET: "[", RBRACKET: "]",
	COMMA: ",", DOT: ".", SEMI: ";", COLON: ":", QUESTION: "?", ASSIGN: "=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	EQ: "==", NEQ: "!=", LT: "<", GT: ">", LTE: "<=", GTE: ">=",
	AND: "&&", OR: "||", NOT: "!", PLUSEQ: "+=", MINUSEQ: "-=",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Token is one lexical unit with its source line (1-based).
type Token struct {
	Kind Kind
	Text string
	Line int
}

var keywords = map[string]Kind{
	"var": VAR, "function": FUNCTION, "return": RETURN, "if": IF, "else": ELSE,
	"while": WHILE, "for": FOR, "break": BREAK, "continue": CONTINUE,
	"true": TRUE, "false": FALSE, "null": NULL,
	// Accepted aliases from modern JavaScript task scripts.
	"let": VAR, "const": VAR,
}
