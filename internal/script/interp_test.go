package script

import (
	"errors"
	"strings"
	"testing"
)

// evalExpr runs `var __r = <expr>;` and returns the value of __r.
func evalExpr(t *testing.T, expr string) Value {
	t.Helper()
	in := NewInterp()
	if err := in.RunSource("var __r = " + expr + ";"); err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	v, ok := in.Lookup("__r")
	if !ok {
		t.Fatalf("eval %q: no result", expr)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want float64
	}{
		{"1 + 2", 3},
		{"2 * 3 + 4", 10},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 / 4", 2.5},
		{"10 % 3", 1},
		{"-5 + 2", -3},
		{"2 * -3", -6},
		{"1e3 + 1", 1001},
		{"0.5 + 0.25", 0.75},
		{"7 - 2 - 1", 4}, // left associative
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got.Num() != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got.Num(), tt.want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	tests := []struct {
		expr string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"4 >= 5", false},
		{"1 == 1", true},
		{"1 != 1", false},
		{"'a' == 'a'", true},
		{"'a' == 1", false},
		{"true && false", false},
		{"true || false", true},
		{"!false", true},
		{"1 < 2 && 2 < 3", true},
		{"null == null", true},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got.Truthy() != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	in := NewInterp()
	calls := 0
	in.Define("boom", BuiltinValue(func([]Value) (Value, error) {
		calls++
		return Bool(true), nil
	}))
	if err := in.RunSource("var a = false && boom(); var b = true || boom();"); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("short-circuit failed: boom called %d times", calls)
	}
}

func TestStringOps(t *testing.T) {
	if got := evalExpr(t, "'foo' + 'bar'"); got.Str() != "foobar" {
		t.Errorf("concat = %q", got.Str())
	}
	if got := evalExpr(t, "'n=' + 42"); got.Str() != "n=42" {
		t.Errorf("mixed concat = %q", got.Str())
	}
	if got := evalExpr(t, "'HeLLo'.toLowerCase()"); got.Str() != "hello" {
		t.Errorf("toLowerCase = %q", got.Str())
	}
	if got := evalExpr(t, "'a,b,c'.split(',').length"); got.Num() != 3 {
		t.Errorf("split length = %v", got.Num())
	}
	if got := evalExpr(t, "'hello'.contains('ell')"); !got.Bool() {
		t.Error("contains failed")
	}
	if got := evalExpr(t, "'  x '.trim()"); got.Str() != "x" {
		t.Errorf("trim = %q", got.Str())
	}
	if got := evalExpr(t, "'abc'[1]"); got.Str() != "b" {
		t.Errorf("index = %q", got.Str())
	}
	if got := evalExpr(t, "'abc'.length"); got.Num() != 3 {
		t.Errorf("length = %v", got.Num())
	}
}

func TestTernary(t *testing.T) {
	if got := evalExpr(t, "1 < 2 ? 'yes' : 'no'"); got.Str() != "yes" {
		t.Errorf("ternary = %q", got.Str())
	}
	if got := evalExpr(t, "false ? 1 : 2"); got.Num() != 2 {
		t.Errorf("ternary = %v", got.Num())
	}
}

func TestVariablesAndScope(t *testing.T) {
	in := NewInterp()
	src := `
var x = 1;
var y = 0;
{
  var x = 2; // shadows
  y = x;
}
var z = x; // outer x unchanged
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	y, _ := in.Lookup("y")
	z, _ := in.Lookup("z")
	if y.Num() != 2 || z.Num() != 1 {
		t.Errorf("y=%v z=%v, want 2, 1", y.Num(), z.Num())
	}
}

func TestWhileAndFor(t *testing.T) {
	in := NewInterp()
	src := `
var sum = 0;
for (var i = 0; i < 10; i = i + 1) {
  sum += i;
}
var n = 0;
while (n < 5) { n += 1; }
var brk = 0;
for (var j = 0; j < 100; j = j + 1) {
  if (j == 7) { break; }
  brk = j;
}
var skip = 0;
for (var k = 0; k < 5; k = k + 1) {
  if (k % 2 == 0) { continue; }
  skip += k;
}
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"sum": 45, "n": 5, "brk": 6, "skip": 4}
	for name, want := range checks {
		if v, _ := in.Lookup(name); v.Num() != want {
			t.Errorf("%s = %v, want %v", name, v.Num(), want)
		}
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	in := NewInterp()
	src := `
function add(a, b) { return a + b; }
var r1 = add(2, 3);

function makeCounter() {
  var count = 0;
  return function() {
    count += 1;
    return count;
  };
}
var c = makeCounter();
c(); c();
var r2 = c();

function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
var r3 = fib(12);
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	r1, _ := in.Lookup("r1")
	r2, _ := in.Lookup("r2")
	r3, _ := in.Lookup("r3")
	if r1.Num() != 5 {
		t.Errorf("add = %v", r1.Num())
	}
	if r2.Num() != 3 {
		t.Errorf("counter = %v, want 3 (closure state)", r2.Num())
	}
	if r3.Num() != 144 {
		t.Errorf("fib(12) = %v, want 144", r3.Num())
	}
}

func TestArraysAndObjects(t *testing.T) {
	in := NewInterp()
	src := `
var a = [1, 2, 3];
a.push(4);
var alen = a.length;
var last = a.pop();
var joined = ['x', 'y'].join('-');
var idx = [5, 6, 7].indexOf(6);
var sl = [1, 2, 3, 4].slice(1, 3);

var o = {name: 'gps', "rate": 60};
o.enabled = true;
o['extra'] = 1;
var name = o.name;
var missing = o.nothing;
var nkeys = len(o);
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	get := func(n string) Value { v, _ := in.Lookup(n); return v }
	if get("alen").Num() != 4 || get("last").Num() != 4 {
		t.Errorf("push/pop: alen=%v last=%v", get("alen").Num(), get("last").Num())
	}
	if get("joined").Str() != "x-y" {
		t.Errorf("join = %q", get("joined").Str())
	}
	if get("idx").Num() != 1 {
		t.Errorf("indexOf = %v", get("idx").Num())
	}
	if sl := get("sl"); len(sl.Arr().Elems) != 2 || sl.Arr().Elems[0].Num() != 2 {
		t.Errorf("slice = %v", sl)
	}
	if get("name").Str() != "gps" {
		t.Errorf("member = %q", get("name").Str())
	}
	if !get("missing").IsNull() {
		t.Error("missing property should be null")
	}
	if get("nkeys").Num() != 4 {
		t.Errorf("len(o) = %v", get("nkeys").Num())
	}
}

func TestMathStdlib(t *testing.T) {
	tests := []struct {
		expr string
		want float64
	}{
		{"Math.floor(2.7)", 2},
		{"Math.ceil(2.1)", 3},
		{"Math.round(2.5)", 3},
		{"Math.abs(-4)", 4},
		{"Math.sqrt(16)", 4},
		{"Math.max(1, 9, 4)", 9},
		{"Math.min(3, -2, 8)", -2},
		{"Math.pow(2, 10)", 1024},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got.Num() != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got.Num(), tt.want)
		}
	}
}

func TestConversionBuiltins(t *testing.T) {
	if got := evalExpr(t, "num('3.5') + 1"); got.Num() != 4.5 {
		t.Errorf("num = %v", got.Num())
	}
	if got := evalExpr(t, "str(42)"); got.Str() != "42" {
		t.Errorf("str = %q", got.Str())
	}
	if got := evalExpr(t, "len([1,2,3])"); got.Num() != 3 {
		t.Errorf("len = %v", got.Num())
	}
	if got := evalExpr(t, "keys({b:1, a:2}).join(',')"); got.Str() != "a,b" {
		t.Errorf("keys = %q", got.Str())
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":    "var x = nothing;",
		"call non-fn":      "var x = 5; x();",
		"negate string":    "var x = -'a';",
		"add bool":         "var x = true + 1;",
		"index range":      "var a = [1]; var x = a[5];",
		"bad member":       "var x = 5; var y = x.foo;",
		"set prop on num":  "var x = 5; x.foo = 1;",
		"compound on bool": "var x = true; x += 1;",
	}
	for name, src := range cases {
		in := NewInterp()
		err := in.RunSource(src)
		if err == nil {
			t.Errorf("%s: expected runtime error", name)
			continue
		}
		var rerr *RuntimeError
		if !errors.As(err, &rerr) {
			t.Errorf("%s: error %v is not a RuntimeError", name, err)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated string": `var x = "abc`,
		"unterminated block":  "{ var x = 1;",
		"bad assign target":   "1 = 2;",
		"unexpected token":    "var = 5;",
		"bad escape":          `var x = "\q";`,
		"stray char":          "var x = 1 @ 2;",
		"unterminated comm":   "/* comment",
		"missing paren":       "if (true { }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected syntax error", name)
		} else {
			var serr *SyntaxError
			if !errors.As(err, &serr) {
				t.Errorf("%s: error %v is not a SyntaxError", name, err)
			}
		}
	}
}

func TestFuelLimit(t *testing.T) {
	in := NewInterp(WithFuel(10_000))
	err := in.RunSource("while (true) { var x = 1; }")
	if !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("err = %v, want fuel exhaustion", err)
	}
}

func TestRecursionLimit(t *testing.T) {
	in := NewInterp(WithMaxDepth(50))
	err := in.RunSource("function f() { return f(); } f();")
	if err == nil || !strings.Contains(err.Error(), "call stack") {
		t.Errorf("err = %v, want stack overflow", err)
	}
}

func TestHostBindingsAndHandlers(t *testing.T) {
	// The pattern the device runtime uses: the script registers a handler,
	// the host fires events into it.
	in := NewInterp()
	var handler Value
	sensorGPS := NewObject().Set("onLocationChanged", BuiltinValue(func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Type() != TypeFunction {
			return Null, errors.New("onLocationChanged expects a function")
		}
		handler = args[0]
		return Null, nil
	}))
	in.Define("sensor", ObjectValue(NewObject().Set("gps", ObjectValue(sensorGPS))))

	var saved []Value
	in.Define("dataset", ObjectValue(NewObject().Set("save", BuiltinValue(func(args []Value) (Value, error) {
		saved = append(saved, args...)
		return Null, nil
	}))))

	src := `
var count = 0;
sensor.gps.onLocationChanged(function(loc) {
  count += 1;
  if (loc.speed < 2) {
    dataset.save({lat: loc.lat, lon: loc.lon, slow: true});
  }
});
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	if handler.Type() != TypeFunction {
		t.Fatal("handler not registered")
	}
	fire := func(lat, lon, speed float64) {
		loc := NewObject().Set("lat", Number(lat)).Set("lon", Number(lon)).Set("speed", Number(speed))
		if _, err := in.CallFunction(handler, []Value{ObjectValue(loc)}); err != nil {
			t.Fatal(err)
		}
	}
	fire(45.7, 4.8, 1.0) // slow: saved
	fire(45.8, 4.9, 9.0) // fast: not saved
	fire(45.9, 5.0, 0.5) // slow: saved

	if count, _ := in.Lookup("count"); count.Num() != 3 {
		t.Errorf("handler ran %v times, want 3", count.Num())
	}
	if len(saved) != 2 {
		t.Fatalf("saved %d records, want 2", len(saved))
	}
	if lat, _ := saved[0].Obj().Get("lat"); lat.Num() != 45.7 {
		t.Errorf("first saved lat = %v", lat.Num())
	}
}

func TestImplicitGlobalAssignment(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource("function f() { g = 42; } f();"); err != nil {
		t.Fatal(err)
	}
	if v, ok := in.Lookup("g"); !ok || v.Num() != 42 {
		t.Errorf("implicit global g = %v (ok=%v)", v, ok)
	}
}

func TestComments(t *testing.T) {
	in := NewInterp()
	src := `
// a line comment
var x = 1; // trailing
/* block
   comment */
var y = x + 1;
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	if y, _ := in.Lookup("y"); y.Num() != 2 {
		t.Errorf("y = %v", y.Num())
	}
}

func TestLetConstAliases(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource("let a = 1; const b = 2; var c = a + b;"); err != nil {
		t.Fatal(err)
	}
	if c, _ := in.Lookup("c"); c.Num() != 3 {
		t.Errorf("c = %v", c.Num())
	}
}

func TestValueConversions(t *testing.T) {
	// ToGo/FromGo round trip.
	obj := NewObject().
		Set("n", Number(1.5)).
		Set("s", String("x")).
		Set("b", Bool(true)).
		Set("nil", Null).
		Set("arr", NewArray(Number(1), String("two")))
	v := ObjectValue(obj)
	back := FromGo(v.ToGo())
	if back.Type() != TypeObject {
		t.Fatalf("round trip type = %v", back.Type())
	}
	n, _ := back.Obj().Get("n")
	if n.Num() != 1.5 {
		t.Errorf("n = %v", n.Num())
	}
	arr, _ := back.Obj().Get("arr")
	if arr.Type() != TypeArray || len(arr.Arr().Elems) != 2 {
		t.Errorf("arr = %v", arr)
	}
}

func TestValueString(t *testing.T) {
	v := NewArray(Number(1), String("a"), Bool(false), Null)
	if got := v.String(); got != "[1,a,false,null]" {
		t.Errorf("String = %q", got)
	}
	obj := NewObject().Set("b", Number(2)).Set("a", Number(1))
	if got := ObjectValue(obj).String(); got != "{a:1,b:2}" {
		t.Errorf("object String = %q (keys must be sorted)", got)
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	if got := evalExpr(t, "1 / 0"); !(got.Num() > 1e308) {
		t.Errorf("1/0 = %v, want +Inf", got.Num())
	}
	if got := evalExpr(t, "-1 / 0"); !(got.Num() < -1e308) {
		t.Errorf("-1/0 = %v, want -Inf", got.Num())
	}
	if got := evalExpr(t, "5 % 0"); got.Num() == got.Num() {
		t.Errorf("5%%0 = %v, want NaN", got.Num())
	}
}

func TestElseIfChain(t *testing.T) {
	in := NewInterp()
	src := `
function grade(x) {
  if (x > 90) { return 'A'; }
  else if (x > 80) { return 'B'; }
  else if (x > 70) { return 'C'; }
  else { return 'F'; }
}
var a = grade(95); var b = grade(85); var c = grade(75); var f = grade(10);
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	get := func(n string) string { v, _ := in.Lookup(n); return v.Str() }
	if get("a") != "A" || get("b") != "B" || get("c") != "C" || get("f") != "F" {
		t.Errorf("grades = %s %s %s %s", get("a"), get("b"), get("c"), get("f"))
	}
}

func TestTopLevelReturnStopsScript(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource("var x = 1; return; x = 2;"); err != nil {
		t.Fatal(err)
	}
	if x, _ := in.Lookup("x"); x.Num() != 1 {
		t.Errorf("x = %v, want 1 (script should stop at return)", x.Num())
	}
}
