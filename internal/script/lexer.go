package script

import (
	"fmt"
	"strings"
	"unicode"
)

// SyntaxError reports a lexical or parse failure with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
}

// lex tokenises the whole source.
func lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

func (l *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekByteAt(1) == '*':
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return l.errorf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.peekByteAt(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line := l.line
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line}, nil
	}
	c := l.src[l.pos]

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Line: line}, nil
		}
		return Token{Kind: IDENT, Text: text, Line: line}, nil

	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
		}
		if l.peekByte() == '.' && l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9' {
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		}
		if b := l.peekByte(); b == 'e' || b == 'E' {
			save := l.pos
			l.pos++
			if b := l.peekByte(); b == '+' || b == '-' {
				l.pos++
			}
			if b := l.peekByte(); b >= '0' && b <= '9' {
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			} else {
				l.pos = save
			}
		}
		return Token{Kind: NUMBER, Text: l.src[start:l.pos], Line: line}, nil

	case c == '"' || c == '\'':
		quote := c
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errorf("unterminated string")
			}
			ch := l.src[l.pos]
			if ch == '\n' {
				return Token{}, l.errorf("newline in string")
			}
			if ch == quote {
				l.pos++
				return Token{Kind: STRING, Text: sb.String(), Line: line}, nil
			}
			if ch == '\\' {
				l.pos++
				if l.pos >= len(l.src) {
					return Token{}, l.errorf("unterminated escape")
				}
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '\\':
					sb.WriteByte('\\')
				case '\'':
					sb.WriteByte('\'')
				case '"':
					sb.WriteByte('"')
				default:
					return Token{}, l.errorf("unknown escape \\%c", l.src[l.pos])
				}
				l.pos++
				continue
			}
			sb.WriteByte(ch)
			l.pos++
		}
	}

	two := func(kind Kind, text string) (Token, error) {
		l.pos += 2
		return Token{Kind: kind, Text: text, Line: line}, nil
	}
	one := func(kind Kind) (Token, error) {
		l.pos++
		return Token{Kind: kind, Text: string(c), Line: line}, nil
	}
	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACKET)
	case ']':
		return one(RBRACKET)
	case ',':
		return one(COMMA)
	case '.':
		return one(DOT)
	case ';':
		return one(SEMI)
	case ':':
		return one(COLON)
	case '?':
		return one(QUESTION)
	case '+':
		if l.peekByteAt(1) == '=' {
			return two(PLUSEQ, "+=")
		}
		return one(PLUS)
	case '-':
		if l.peekByteAt(1) == '=' {
			return two(MINUSEQ, "-=")
		}
		return one(MINUS)
	case '*':
		return one(STAR)
	case '/':
		return one(SLASH)
	case '%':
		return one(PERCENT)
	case '=':
		if l.peekByteAt(1) == '=' {
			return two(EQ, "==")
		}
		return one(ASSIGN)
	case '!':
		if l.peekByteAt(1) == '=' {
			return two(NEQ, "!=")
		}
		return one(NOT)
	case '<':
		if l.peekByteAt(1) == '=' {
			return two(LTE, "<=")
		}
		return one(LT)
	case '>':
		if l.peekByteAt(1) == '=' {
			return two(GTE, ">=")
		}
		return one(GT)
	case '&':
		if l.peekByteAt(1) == '&' {
			return two(AND, "&&")
		}
	case '|':
		if l.peekByteAt(1) == '|' {
			return two(OR, "||")
		}
	}
	return Token{}, l.errorf("unexpected character %q", string(c))
}
