package script

// Node is the interface of all AST nodes.
type Node interface {
	line() int
}

type base struct{ Line int }

func (b base) line() int { return b.Line }

// ---- expressions ----

// NumberLit is a numeric literal.
type NumberLit struct {
	base
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	base
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	base
	Value bool
}

// NullLit is the null literal.
type NullLit struct{ base }

// Ident is a variable reference.
type Ident struct {
	base
	Name string
}

// ArrayLit is [a, b, c].
type ArrayLit struct {
	base
	Elems []Node
}

// ObjectLit is {a: 1, "b": 2}.
type ObjectLit struct {
	base
	Keys   []string
	Values []Node
}

// FuncLit is function(a, b) { ... }.
type FuncLit struct {
	base
	Params []string
	Body   *Block
}

// Unary is !x or -x.
type Unary struct {
	base
	Op Kind
	X  Node
}

// Binary is x op y for arithmetic/comparison/logical operators.
type Binary struct {
	base
	Op   Kind
	L, R Node
}

// Ternary is cond ? a : b.
type Ternary struct {
	base
	Cond, Then, Else Node
}

// Assign is target = value (or +=, -=). Target is Ident, Member or Index.
type Assign struct {
	base
	Op     Kind // ASSIGN, PLUSEQ or MINUSEQ
	Target Node
	Value  Node
}

// Call is fn(args...).
type Call struct {
	base
	Fn   Node
	Args []Node
}

// Member is x.name.
type Member struct {
	base
	X    Node
	Name string
}

// Index is x[i].
type Index struct {
	base
	X, Key Node
}

// ---- statements ----

// Block is { stmts... }.
type Block struct {
	base
	Stmts []Node
}

// VarDecl is var name = value.
type VarDecl struct {
	base
	Name  string
	Value Node // may be nil
}

// If is if (cond) then [else else].
type If struct {
	base
	Cond Node
	Then *Block
	Else Node // *Block, *If or nil
}

// While is while (cond) body.
type While struct {
	base
	Cond Node
	Body *Block
}

// For is for (init; cond; post) body.
type For struct {
	base
	Init Node // may be nil
	Cond Node // may be nil
	Post Node // may be nil
	Body *Block
}

// Return is return [expr].
type Return struct {
	base
	Value Node // may be nil
}

// Break is the break statement.
type Break struct{ base }

// Continue is the continue statement.
type Continue struct{ base }

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	base
	X Node
}

// FuncDecl is function name(params) { body }.
type FuncDecl struct {
	base
	Name string
	Fn   *FuncLit
}

// Program is a parsed script.
type Program struct {
	Stmts []Node
}
