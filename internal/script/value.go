package script

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Type enumerates runtime value types.
type Type int

// Runtime value types.
const (
	TypeNull Type = iota
	TypeBool
	TypeNumber
	TypeString
	TypeArray
	TypeObject
	TypeFunction
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeBool:
		return "bool"
	case TypeNumber:
		return "number"
	case TypeString:
		return "string"
	case TypeArray:
		return "array"
	case TypeObject:
		return "object"
	case TypeFunction:
		return "function"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Builtin is a host function exposed to scripts.
type Builtin func(args []Value) (Value, error)

// Array is a mutable script array.
type Array struct {
	Elems []Value
}

// Object is a mutable script object / host object.
type Object struct {
	props map[string]Value
}

// NewObject returns an empty object.
func NewObject() *Object { return &Object{props: make(map[string]Value)} }

// Set stores a property and returns the object for chaining.
func (o *Object) Set(key string, v Value) *Object {
	o.props[key] = v
	return o
}

// Get fetches a property; ok is false when absent.
func (o *Object) Get(key string) (Value, bool) {
	v, ok := o.props[key]
	return v, ok
}

// Keys returns the property names, sorted.
func (o *Object) Keys() []string {
	keys := make([]string, 0, len(o.props))
	for k := range o.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// closure is a user-defined script function.
type closure struct {
	fn  *FuncLit
	env *environment
}

// Value is a SenseScript runtime value.
type Value struct {
	typ     Type
	boolV   bool
	numV    float64
	strV    string
	arrV    *Array
	objV    *Object
	builtin Builtin
	clos    *closure
}

// Null is the null value.
var Null = Value{typ: TypeNull}

// Bool wraps a Go bool.
func Bool(b bool) Value { return Value{typ: TypeBool, boolV: b} }

// Number wraps a Go float64.
func Number(n float64) Value { return Value{typ: TypeNumber, numV: n} }

// String wraps a Go string.
func String(s string) Value { return Value{typ: TypeString, strV: s} }

// NewArray wraps the given elements.
func NewArray(elems ...Value) Value {
	return Value{typ: TypeArray, arrV: &Array{Elems: elems}}
}

// ObjectValue wraps an Object.
func ObjectValue(o *Object) Value { return Value{typ: TypeObject, objV: o} }

// BuiltinValue wraps a host function.
func BuiltinValue(fn Builtin) Value { return Value{typ: TypeFunction, builtin: fn} }

// Type returns the value's runtime type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// Bool returns the boolean payload (false for non-bools).
func (v Value) Bool() bool { return v.typ == TypeBool && v.boolV }

// Num returns the numeric payload (0 for non-numbers).
func (v Value) Num() float64 {
	if v.typ == TypeNumber {
		return v.numV
	}
	return 0
}

// Str returns the string payload ("" for non-strings).
func (v Value) Str() string {
	if v.typ == TypeString {
		return v.strV
	}
	return ""
}

// Arr returns the array payload (nil for non-arrays).
func (v Value) Arr() *Array { return v.arrV }

// Obj returns the object payload (nil for non-objects).
func (v Value) Obj() *Object { return v.objV }

// Truthy implements JavaScript-like truthiness.
func (v Value) Truthy() bool {
	switch v.typ {
	case TypeNull:
		return false
	case TypeBool:
		return v.boolV
	case TypeNumber:
		return v.numV != 0
	case TypeString:
		return v.strV != ""
	default:
		return true
	}
}

// Equals implements the == operator (strict by type, structural for
// primitives, reference for arrays/objects/functions).
func (v Value) Equals(o Value) bool {
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case TypeNull:
		return true
	case TypeBool:
		return v.boolV == o.boolV
	case TypeNumber:
		return v.numV == o.numV
	case TypeString:
		return v.strV == o.strV
	case TypeArray:
		return v.arrV == o.arrV
	case TypeObject:
		return v.objV == o.objV
	case TypeFunction:
		return v.clos != nil && v.clos == o.clos
	default:
		return false
	}
}

// String renders the value for logs and dataset serialisation.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "null"
	case TypeBool:
		return strconv.FormatBool(v.boolV)
	case TypeNumber:
		return strconv.FormatFloat(v.numV, 'g', -1, 64)
	case TypeString:
		return v.strV
	case TypeArray:
		parts := make([]string, len(v.arrV.Elems))
		for i, e := range v.arrV.Elems {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ",") + "]"
	case TypeObject:
		keys := v.objV.Keys()
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			pv, _ := v.objV.Get(k)
			parts = append(parts, k+":"+pv.String())
		}
		return "{" + strings.Join(parts, ",") + "}"
	case TypeFunction:
		return "function"
	default:
		return "?"
	}
}

// ToGo converts a value into plain Go data (float64, string, bool, nil,
// []any, map[string]any) for JSON serialisation of collected datasets.
func (v Value) ToGo() any {
	switch v.typ {
	case TypeNull:
		return nil
	case TypeBool:
		return v.boolV
	case TypeNumber:
		return v.numV
	case TypeString:
		return v.strV
	case TypeArray:
		out := make([]any, len(v.arrV.Elems))
		for i, e := range v.arrV.Elems {
			out[i] = e.ToGo()
		}
		return out
	case TypeObject:
		out := make(map[string]any, len(v.objV.props))
		for k, pv := range v.objV.props {
			out[k] = pv.ToGo()
		}
		return out
	default:
		return v.String()
	}
}

// FromGo converts plain Go data (as produced by encoding/json) into a Value.
func FromGo(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null
	case bool:
		return Bool(t)
	case float64:
		return Number(t)
	case int:
		return Number(float64(t))
	case int64:
		return Number(float64(t))
	case string:
		return String(t)
	case []any:
		elems := make([]Value, len(t))
		for i, e := range t {
			elems[i] = FromGo(e)
		}
		return NewArray(elems...)
	case map[string]any:
		o := NewObject()
		for k, e := range t {
			o.Set(k, FromGo(e))
		}
		return ObjectValue(o)
	default:
		return String(fmt.Sprint(t))
	}
}
