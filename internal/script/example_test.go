package script_test

import (
	"fmt"

	"apisense/internal/script"
)

// Example runs a SenseScript fragment the way the device runtime does:
// host objects go in, a handler comes out, events are pumped through it.
func Example() {
	interp := script.NewInterp()

	// Host side: expose a dataset sink.
	var saved []string
	dataset := script.NewObject().Set("save", script.BuiltinValue(
		func(args []script.Value) (script.Value, error) {
			saved = append(saved, args[0].String())
			return script.Null, nil
		}))
	interp.Define("dataset", script.ObjectValue(dataset))

	// Task script: keep only slow fixes.
	src := `
var handler = function(loc) {
  if (loc.speed < 2) {
    dataset.save({lat: loc.lat, slow: true});
  }
};
`
	if err := interp.RunSource(src); err != nil {
		fmt.Println(err)
		return
	}
	handler, _ := interp.Lookup("handler")
	for _, speed := range []float64{0.5, 9.0, 1.2} {
		loc := script.NewObject().
			Set("lat", script.Number(45.76)).
			Set("speed", script.Number(speed))
		if _, err := interp.CallFunction(handler, []script.Value{script.ObjectValue(loc)}); err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Println(len(saved), "records saved")
	fmt.Println(saved[0])
	// Output:
	// 2 records saved
	// {lat:45.76,slow:true}
}
