package script

import (
	"errors"
	"fmt"
	"math"
)

// RuntimeError reports a script execution failure with its source line.
type RuntimeError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("script: line %d: %s", e.Line, e.Msg)
}

// ErrFuelExhausted aborts scripts that exceed their execution budget.
var ErrFuelExhausted = errors.New("script: execution budget exhausted")

// control-flow signals (never escape the interpreter).
var (
	errBreak    = errors.New("break")
	errContinue = errors.New("continue")
)

type returnSignal struct{ val Value }

func (returnSignal) Error() string { return "return" }

type environment struct {
	vars   map[string]Value
	parent *environment
}

func newEnv(parent *environment) *environment {
	return &environment{vars: make(map[string]Value), parent: parent}
}

func (e *environment) lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return Null, false
}

func (e *environment) assign(name string, v Value) bool {
	for env := e; env != nil; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return true
		}
	}
	return false
}

func (e *environment) define(name string, v Value) { e.vars[name] = v }

// Interp executes SenseScript programs against a set of host globals.
type Interp struct {
	globals    *environment
	fuelBudget int
	fuel       int
	maxDepth   int
	depth      int
}

// Option configures an Interp.
type Option func(*Interp)

// WithFuel caps the number of AST nodes evaluated per Run or top-level
// CallFunction invocation (default 5,000,000). The budget refills on every
// invocation, so a long-lived device can keep firing handlers while a
// single runaway handler still cannot pin the CPU.
func WithFuel(n int) Option { return func(i *Interp) { i.fuelBudget = n } }

// WithMaxDepth caps call-stack depth (default 200).
func WithMaxDepth(n int) Option { return func(i *Interp) { i.maxDepth = n } }

// NewInterp creates an interpreter. The standard library (math/string/array
// helpers, see stdlib.go) is pre-registered; host packages add their own
// globals with Define.
func NewInterp(opts ...Option) *Interp {
	in := &Interp{globals: newEnv(nil), fuelBudget: 5_000_000, maxDepth: 200}
	for _, opt := range opts {
		opt(in)
	}
	in.fuel = in.fuelBudget
	registerStdlib(in)
	return in
}

// Define registers a global visible to scripts.
func (i *Interp) Define(name string, v Value) { i.globals.define(name, v) }

// Lookup returns a global by name.
func (i *Interp) Lookup(name string) (Value, bool) { return i.globals.lookup(name) }

// Run executes a parsed program. Top-level var/function declarations land in
// the global environment, so host code can invoke script-defined handlers
// afterwards via CallFunction.
func (i *Interp) Run(prog *Program) error {
	i.fuel = i.fuelBudget
	for _, stmt := range prog.Stmts {
		if err := i.exec(stmt, i.globals); err != nil {
			if ret := (returnSignal{}); errors.As(err, &ret) {
				return nil // top-level return ends the script
			}
			return err
		}
	}
	return nil
}

// RunSource parses and executes src.
func (i *Interp) RunSource(src string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	return i.Run(prog)
}

// CallFunction invokes a script function value (e.g. a registered handler)
// with the given arguments. The fuel budget refills for each call.
func (i *Interp) CallFunction(fn Value, args []Value) (Value, error) {
	i.fuel = i.fuelBudget
	return i.call(fn, args, 0)
}

func (i *Interp) burn(line int) error {
	i.fuel--
	if i.fuel <= 0 {
		return fmt.Errorf("%w (line %d)", ErrFuelExhausted, line)
	}
	return nil
}

func (i *Interp) runtimeErrf(line int, format string, args ...any) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ---- statements ----

func (i *Interp) exec(n Node, env *environment) error {
	if err := i.burn(n.line()); err != nil {
		return err
	}
	switch s := n.(type) {
	case *Block:
		inner := newEnv(env)
		for _, stmt := range s.Stmts {
			if err := i.exec(stmt, inner); err != nil {
				return err
			}
		}
		return nil
	case *VarDecl:
		val := Null
		if s.Value != nil {
			v, err := i.eval(s.Value, env)
			if err != nil {
				return err
			}
			val = v
		}
		env.define(s.Name, val)
		return nil
	case *FuncDecl:
		env.define(s.Name, Value{typ: TypeFunction, clos: &closure{fn: s.Fn, env: env}})
		return nil
	case *If:
		cond, err := i.eval(s.Cond, env)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return i.exec(s.Then, env)
		}
		if s.Else != nil {
			return i.exec(s.Else, env)
		}
		return nil
	case *While:
		for {
			cond, err := i.eval(s.Cond, env)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
			if err := i.exec(s.Body, env); err != nil {
				if errors.Is(err, errBreak) {
					return nil
				}
				if errors.Is(err, errContinue) {
					continue
				}
				return err
			}
		}
	case *For:
		loopEnv := newEnv(env)
		if s.Init != nil {
			if err := i.exec(s.Init, loopEnv); err != nil {
				return err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := i.eval(s.Cond, loopEnv)
				if err != nil {
					return err
				}
				if !cond.Truthy() {
					return nil
				}
			}
			if err := i.exec(s.Body, loopEnv); err != nil {
				if errors.Is(err, errBreak) {
					return nil
				}
				if !errors.Is(err, errContinue) {
					return err
				}
			}
			if s.Post != nil {
				if err := i.exec(s.Post, loopEnv); err != nil {
					return err
				}
			}
		}
	case *Return:
		val := Null
		if s.Value != nil {
			v, err := i.eval(s.Value, env)
			if err != nil {
				return err
			}
			val = v
		}
		return returnSignal{val: val}
	case *Break:
		return errBreak
	case *Continue:
		return errContinue
	case *ExprStmt:
		_, err := i.eval(s.X, env)
		return err
	default:
		return i.runtimeErrf(n.line(), "cannot execute %T", n)
	}
}

// ---- expressions ----

func (i *Interp) eval(n Node, env *environment) (Value, error) {
	if err := i.burn(n.line()); err != nil {
		return Null, err
	}
	switch e := n.(type) {
	case *NumberLit:
		return Number(e.Value), nil
	case *StringLit:
		return String(e.Value), nil
	case *BoolLit:
		return Bool(e.Value), nil
	case *NullLit:
		return Null, nil
	case *Ident:
		if v, ok := env.lookup(e.Name); ok {
			return v, nil
		}
		return Null, i.runtimeErrf(e.Line, "undefined variable %q", e.Name)
	case *ArrayLit:
		elems := make([]Value, len(e.Elems))
		for idx, el := range e.Elems {
			v, err := i.eval(el, env)
			if err != nil {
				return Null, err
			}
			elems[idx] = v
		}
		return NewArray(elems...), nil
	case *ObjectLit:
		obj := NewObject()
		for idx, key := range e.Keys {
			v, err := i.eval(e.Values[idx], env)
			if err != nil {
				return Null, err
			}
			obj.Set(key, v)
		}
		return ObjectValue(obj), nil
	case *FuncLit:
		return Value{typ: TypeFunction, clos: &closure{fn: e, env: env}}, nil
	case *Unary:
		x, err := i.eval(e.X, env)
		if err != nil {
			return Null, err
		}
		switch e.Op {
		case NOT:
			return Bool(!x.Truthy()), nil
		case MINUS:
			if x.Type() != TypeNumber {
				return Null, i.runtimeErrf(e.Line, "cannot negate %s", x.Type())
			}
			return Number(-x.Num()), nil
		}
		return Null, i.runtimeErrf(e.Line, "unknown unary operator %s", e.Op)
	case *Binary:
		return i.evalBinary(e, env)
	case *Ternary:
		cond, err := i.eval(e.Cond, env)
		if err != nil {
			return Null, err
		}
		if cond.Truthy() {
			return i.eval(e.Then, env)
		}
		return i.eval(e.Else, env)
	case *Assign:
		return i.evalAssign(e, env)
	case *Member:
		x, err := i.eval(e.X, env)
		if err != nil {
			return Null, err
		}
		return i.member(x, e.Name, e.Line)
	case *Index:
		x, err := i.eval(e.X, env)
		if err != nil {
			return Null, err
		}
		key, err := i.eval(e.Key, env)
		if err != nil {
			return Null, err
		}
		return i.index(x, key, e.Line)
	case *Call:
		fn, err := i.eval(e.Fn, env)
		if err != nil {
			return Null, err
		}
		args := make([]Value, len(e.Args))
		for idx, a := range e.Args {
			v, err := i.eval(a, env)
			if err != nil {
				return Null, err
			}
			args[idx] = v
		}
		return i.call(fn, args, e.Line)
	default:
		return Null, i.runtimeErrf(n.line(), "cannot evaluate %T", n)
	}
}

func (i *Interp) evalBinary(e *Binary, env *environment) (Value, error) {
	// Short-circuit logical operators.
	if e.Op == AND || e.Op == OR {
		l, err := i.eval(e.L, env)
		if err != nil {
			return Null, err
		}
		if e.Op == AND && !l.Truthy() {
			return l, nil
		}
		if e.Op == OR && l.Truthy() {
			return l, nil
		}
		return i.eval(e.R, env)
	}
	l, err := i.eval(e.L, env)
	if err != nil {
		return Null, err
	}
	r, err := i.eval(e.R, env)
	if err != nil {
		return Null, err
	}
	switch e.Op {
	case EQ:
		return Bool(l.Equals(r)), nil
	case NEQ:
		return Bool(!l.Equals(r)), nil
	case PLUS:
		if l.Type() == TypeString || r.Type() == TypeString {
			return String(l.String() + r.String()), nil
		}
		if l.Type() == TypeNumber && r.Type() == TypeNumber {
			return Number(l.Num() + r.Num()), nil
		}
		return Null, i.runtimeErrf(e.Line, "cannot add %s and %s", l.Type(), r.Type())
	}
	// Remaining operators are numeric-only.
	if l.Type() != TypeNumber || r.Type() != TypeNumber {
		return Null, i.runtimeErrf(e.Line, "operator %s needs numbers, got %s and %s",
			e.Op, l.Type(), r.Type())
	}
	a, b := l.Num(), r.Num()
	switch e.Op {
	case MINUS:
		return Number(a - b), nil
	case STAR:
		return Number(a * b), nil
	case SLASH:
		if b == 0 {
			return Number(math.Inf(sign(a))), nil
		}
		return Number(a / b), nil
	case PERCENT:
		if b == 0 {
			return Number(math.NaN()), nil
		}
		return Number(math.Mod(a, b)), nil
	case LT:
		return Bool(a < b), nil
	case GT:
		return Bool(a > b), nil
	case LTE:
		return Bool(a <= b), nil
	case GTE:
		return Bool(a >= b), nil
	}
	return Null, i.runtimeErrf(e.Line, "unknown operator %s", e.Op)
}

func sign(a float64) int {
	if a < 0 {
		return -1
	}
	return 1
}

func (i *Interp) evalAssign(e *Assign, env *environment) (Value, error) {
	val, err := i.eval(e.Value, env)
	if err != nil {
		return Null, err
	}
	// Compound assignment reads the old value first.
	if e.Op == PLUSEQ || e.Op == MINUSEQ {
		old, err := i.eval(e.Target, env)
		if err != nil {
			return Null, err
		}
		if e.Op == PLUSEQ && (old.Type() == TypeString || val.Type() == TypeString) {
			val = String(old.String() + val.String())
		} else if old.Type() == TypeNumber && val.Type() == TypeNumber {
			if e.Op == PLUSEQ {
				val = Number(old.Num() + val.Num())
			} else {
				val = Number(old.Num() - val.Num())
			}
		} else {
			return Null, i.runtimeErrf(e.Line, "cannot apply %s to %s and %s",
				e.Op, old.Type(), val.Type())
		}
	}
	switch target := e.Target.(type) {
	case *Ident:
		if !env.assign(target.Name, val) {
			// Implicit global definition mirrors JavaScript's sloppy mode,
			// which the APISENSE task scripts rely on.
			i.globals.define(target.Name, val)
		}
		return val, nil
	case *Member:
		x, err := i.eval(target.X, env)
		if err != nil {
			return Null, err
		}
		if x.Type() != TypeObject {
			return Null, i.runtimeErrf(e.Line, "cannot set property on %s", x.Type())
		}
		x.Obj().Set(target.Name, val)
		return val, nil
	case *Index:
		x, err := i.eval(target.X, env)
		if err != nil {
			return Null, err
		}
		key, err := i.eval(target.Key, env)
		if err != nil {
			return Null, err
		}
		switch x.Type() {
		case TypeArray:
			idx := int(key.Num())
			arr := x.Arr()
			if key.Type() != TypeNumber || idx < 0 || idx >= len(arr.Elems) {
				return Null, i.runtimeErrf(e.Line, "array index %s out of range", key)
			}
			arr.Elems[idx] = val
			return val, nil
		case TypeObject:
			x.Obj().Set(key.String(), val)
			return val, nil
		default:
			return Null, i.runtimeErrf(e.Line, "cannot index %s", x.Type())
		}
	}
	return Null, i.runtimeErrf(e.Line, "invalid assignment target")
}

func (i *Interp) member(x Value, name string, line int) (Value, error) {
	switch x.Type() {
	case TypeObject:
		if v, ok := x.Obj().Get(name); ok {
			return v, nil
		}
		return Null, nil
	case TypeArray:
		if name == "length" {
			return Number(float64(len(x.Arr().Elems))), nil
		}
		if m, ok := arrayMethod(x.Arr(), name); ok {
			return m, nil
		}
		return Null, i.runtimeErrf(line, "array has no property %q", name)
	case TypeString:
		if name == "length" {
			return Number(float64(len(x.Str()))), nil
		}
		if m, ok := stringMethod(x.Str(), name); ok {
			return m, nil
		}
		return Null, i.runtimeErrf(line, "string has no property %q", name)
	default:
		return Null, i.runtimeErrf(line, "cannot read property %q of %s", name, x.Type())
	}
}

func (i *Interp) index(x, key Value, line int) (Value, error) {
	switch x.Type() {
	case TypeArray:
		idx := int(key.Num())
		if key.Type() != TypeNumber || idx < 0 || idx >= len(x.Arr().Elems) {
			return Null, i.runtimeErrf(line, "array index %s out of range", key)
		}
		return x.Arr().Elems[idx], nil
	case TypeObject:
		if v, ok := x.Obj().Get(key.String()); ok {
			return v, nil
		}
		return Null, nil
	case TypeString:
		idx := int(key.Num())
		s := x.Str()
		if key.Type() != TypeNumber || idx < 0 || idx >= len(s) {
			return Null, i.runtimeErrf(line, "string index %s out of range", key)
		}
		return String(string(s[idx])), nil
	default:
		return Null, i.runtimeErrf(line, "cannot index %s", x.Type())
	}
}

func (i *Interp) call(fn Value, args []Value, line int) (Value, error) {
	if fn.Type() != TypeFunction {
		return Null, i.runtimeErrf(line, "cannot call %s", fn.Type())
	}
	if fn.builtin != nil {
		v, err := fn.builtin(args)
		if err != nil {
			var rerr *RuntimeError
			if errors.As(err, &rerr) || errors.Is(err, ErrFuelExhausted) {
				return Null, err
			}
			return Null, &RuntimeError{Line: line, Msg: err.Error()}
		}
		return v, nil
	}
	i.depth++
	defer func() { i.depth-- }()
	if i.depth > i.maxDepth {
		return Null, i.runtimeErrf(line, "call stack exceeds %d frames", i.maxDepth)
	}
	env := newEnv(fn.clos.env)
	for idx, p := range fn.clos.fn.Params {
		if idx < len(args) {
			env.define(p, args[idx])
		} else {
			env.define(p, Null)
		}
	}
	for _, stmt := range fn.clos.fn.Body.Stmts {
		if err := i.exec(stmt, env); err != nil {
			var ret returnSignal
			if errors.As(err, &ret) {
				return ret.val, nil
			}
			return Null, err
		}
	}
	return Null, nil
}
