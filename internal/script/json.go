package script

import (
	"encoding/json"
	"fmt"
)

// registerJSON installs the JSON host object: task scripts use it to encode
// structured payloads for dataset.save and to decode configuration strings
// shipped with the task spec.
func registerJSON(in *Interp) {
	obj := NewObject().
		Set("stringify", BuiltinValue(func(args []Value) (Value, error) {
			if len(args) != 1 {
				return Null, argErr("JSON.stringify", "one argument")
			}
			data, err := json.Marshal(args[0].ToGo())
			if err != nil {
				return Null, fmt.Errorf("JSON.stringify: %w", err)
			}
			return String(string(data)), nil
		})).
		Set("parse", BuiltinValue(func(args []Value) (Value, error) {
			if len(args) != 1 || args[0].Type() != TypeString {
				return Null, argErr("JSON.parse", "a string")
			}
			var out any
			if err := json.Unmarshal([]byte(args[0].Str()), &out); err != nil {
				return Null, fmt.Errorf("JSON.parse: %w", err)
			}
			return FromGo(out), nil
		}))
	in.Define("JSON", ObjectValue(obj))
}
