package script

import (
	"fmt"
	"math"
	"strings"
)

// argErr builds a uniform builtin argument error.
func argErr(fn, want string) error {
	return fmt.Errorf("%s expects %s", fn, want)
}

func numArg(fn string, args []Value, i int) (float64, error) {
	if i >= len(args) || args[i].Type() != TypeNumber {
		return 0, argErr(fn, fmt.Sprintf("a number as argument %d", i+1))
	}
	return args[i].Num(), nil
}

// registerStdlib installs the standard globals every task script can rely
// on: Math, JSON, string/array methods and len/str/num/keys.
func registerStdlib(in *Interp) {
	registerJSON(in)
	mathObj := NewObject().
		Set("floor", unaryMath("Math.floor", math.Floor)).
		Set("ceil", unaryMath("Math.ceil", math.Ceil)).
		Set("round", unaryMath("Math.round", math.Round)).
		Set("abs", unaryMath("Math.abs", math.Abs)).
		Set("sqrt", unaryMath("Math.sqrt", math.Sqrt)).
		Set("pi", Number(math.Pi)).
		Set("max", BuiltinValue(func(args []Value) (Value, error) {
			if len(args) == 0 {
				return Null, argErr("Math.max", "at least one number")
			}
			best := math.Inf(-1)
			for i := range args {
				n, err := numArg("Math.max", args, i)
				if err != nil {
					return Null, err
				}
				best = math.Max(best, n)
			}
			return Number(best), nil
		})).
		Set("min", BuiltinValue(func(args []Value) (Value, error) {
			if len(args) == 0 {
				return Null, argErr("Math.min", "at least one number")
			}
			best := math.Inf(1)
			for i := range args {
				n, err := numArg("Math.min", args, i)
				if err != nil {
					return Null, err
				}
				best = math.Min(best, n)
			}
			return Number(best), nil
		})).
		Set("pow", BuiltinValue(func(args []Value) (Value, error) {
			a, err := numArg("Math.pow", args, 0)
			if err != nil {
				return Null, err
			}
			b, err := numArg("Math.pow", args, 1)
			if err != nil {
				return Null, err
			}
			return Number(math.Pow(a, b)), nil
		}))
	in.Define("Math", ObjectValue(mathObj))

	in.Define("len", BuiltinValue(func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, argErr("len", "one argument")
		}
		switch args[0].Type() {
		case TypeString:
			return Number(float64(len(args[0].Str()))), nil
		case TypeArray:
			return Number(float64(len(args[0].Arr().Elems))), nil
		case TypeObject:
			return Number(float64(len(args[0].Obj().Keys()))), nil
		default:
			return Null, argErr("len", "a string, array or object")
		}
	}))
	in.Define("str", BuiltinValue(func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, argErr("str", "one argument")
		}
		return String(args[0].String()), nil
	}))
	in.Define("num", BuiltinValue(func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, argErr("num", "one argument")
		}
		switch args[0].Type() {
		case TypeNumber:
			return args[0], nil
		case TypeString:
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(args[0].Str()), "%g", &f); err != nil {
				return Null, fmt.Errorf("num: cannot parse %q", args[0].Str())
			}
			return Number(f), nil
		case TypeBool:
			if args[0].Bool() {
				return Number(1), nil
			}
			return Number(0), nil
		default:
			return Null, argErr("num", "a number, string or bool")
		}
	}))
	in.Define("keys", BuiltinValue(func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Type() != TypeObject {
			return Null, argErr("keys", "an object")
		}
		ks := args[0].Obj().Keys()
		elems := make([]Value, len(ks))
		for i, k := range ks {
			elems[i] = String(k)
		}
		return NewArray(elems...), nil
	}))
}

func unaryMath(name string, fn func(float64) float64) Value {
	return BuiltinValue(func(args []Value) (Value, error) {
		n, err := numArg(name, args, 0)
		if err != nil {
			return Null, err
		}
		return Number(fn(n)), nil
	})
}

// arrayMethod returns the bound method of an array, if it exists.
func arrayMethod(a *Array, name string) (Value, bool) {
	switch name {
	case "push":
		return BuiltinValue(func(args []Value) (Value, error) {
			a.Elems = append(a.Elems, args...)
			return Number(float64(len(a.Elems))), nil
		}), true
	case "pop":
		return BuiltinValue(func(args []Value) (Value, error) {
			if len(a.Elems) == 0 {
				return Null, nil
			}
			v := a.Elems[len(a.Elems)-1]
			a.Elems = a.Elems[:len(a.Elems)-1]
			return v, nil
		}), true
	case "join":
		return BuiltinValue(func(args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = args[0].String()
			}
			parts := make([]string, len(a.Elems))
			for i, e := range a.Elems {
				parts[i] = e.String()
			}
			return String(strings.Join(parts, sep)), nil
		}), true
	case "indexOf":
		return BuiltinValue(func(args []Value) (Value, error) {
			if len(args) != 1 {
				return Null, argErr("indexOf", "one argument")
			}
			for i, e := range a.Elems {
				if e.Equals(args[0]) {
					return Number(float64(i)), nil
				}
			}
			return Number(-1), nil
		}), true
	case "slice":
		return BuiltinValue(func(args []Value) (Value, error) {
			start, end := 0, len(a.Elems)
			if len(args) > 0 {
				start = clampIndex(int(args[0].Num()), len(a.Elems))
			}
			if len(args) > 1 {
				end = clampIndex(int(args[1].Num()), len(a.Elems))
			}
			if start > end {
				start = end
			}
			out := make([]Value, end-start)
			copy(out, a.Elems[start:end])
			return NewArray(out...), nil
		}), true
	}
	return Null, false
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// stringMethod returns the bound method of a string, if it exists.
func stringMethod(s, name string) (Value, bool) {
	switch name {
	case "toUpperCase":
		return BuiltinValue(func([]Value) (Value, error) {
			return String(strings.ToUpper(s)), nil
		}), true
	case "toLowerCase":
		return BuiltinValue(func([]Value) (Value, error) {
			return String(strings.ToLower(s)), nil
		}), true
	case "trim":
		return BuiltinValue(func([]Value) (Value, error) {
			return String(strings.TrimSpace(s)), nil
		}), true
	case "split":
		return BuiltinValue(func(args []Value) (Value, error) {
			sep := ""
			if len(args) > 0 {
				sep = args[0].String()
			}
			parts := strings.Split(s, sep)
			elems := make([]Value, len(parts))
			for i, p := range parts {
				elems[i] = String(p)
			}
			return NewArray(elems...), nil
		}), true
	case "contains":
		return BuiltinValue(func(args []Value) (Value, error) {
			if len(args) != 1 {
				return Null, argErr("contains", "one argument")
			}
			return Bool(strings.Contains(s, args[0].String())), nil
		}), true
	case "startsWith":
		return BuiltinValue(func(args []Value) (Value, error) {
			if len(args) != 1 {
				return Null, argErr("startsWith", "one argument")
			}
			return Bool(strings.HasPrefix(s, args[0].String())), nil
		}), true
	}
	return Null, false
}
