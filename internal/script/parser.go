package script

import (
	"fmt"
	"strconv"
)

// Parse compiles SenseScript source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(EOF) {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, stmt)
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token     { return p.toks[p.pos] }
func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errorf("expected %s, found %s", k, p.cur().Kind)
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

// statement parses one statement, consuming any trailing semicolon.
func (p *parser) statement() (Node, error) {
	switch p.cur().Kind {
	case VAR:
		return p.varDecl(true)
	case FUNCTION:
		// function name(...) {...} declaration; anonymous functions are
		// expressions handled in primary().
		if p.toks[p.pos+1].Kind == IDENT {
			return p.funcDecl()
		}
	case IF:
		return p.ifStmt()
	case WHILE:
		return p.whileStmt()
	case FOR:
		return p.forStmt()
	case RETURN:
		tok := p.advance()
		var val Node
		if !p.at(SEMI) && !p.at(RBRACE) && !p.at(EOF) {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			val = v
		}
		p.accept(SEMI)
		return &Return{base: base{tok.Line}, Value: val}, nil
	case BREAK:
		tok := p.advance()
		p.accept(SEMI)
		return &Break{base{tok.Line}}, nil
	case CONTINUE:
		tok := p.advance()
		p.accept(SEMI)
		return &Continue{base{tok.Line}}, nil
	case LBRACE:
		return p.block()
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.accept(SEMI)
	return &ExprStmt{base: base{x.line()}, X: x}, nil
}

// varDecl parses `var name [= expr]`; eatSemi controls whether the trailing
// semicolon is consumed (false inside for-headers).
func (p *parser) varDecl(eatSemi bool) (Node, error) {
	tok := p.advance() // var/let/const
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	var val Node
	if p.accept(ASSIGN) {
		val, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if eatSemi {
		p.accept(SEMI)
	}
	return &VarDecl{base: base{tok.Line}, Name: name.Text, Value: val}, nil
}

func (p *parser) funcDecl() (Node, error) {
	tok := p.advance() // function
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	fn, err := p.funcRest(tok.Line)
	if err != nil {
		return nil, err
	}
	return &FuncDecl{base: base{tok.Line}, Name: name.Text, Fn: fn}, nil
}

// funcRest parses "(params) { body }".
func (p *parser) funcRest(line int) (*FuncLit, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(RPAREN) {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		params = append(params, name.Text)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncLit{base: base{line}, Params: params, Body: body}, nil
}

func (p *parser) block() (*Block, error) {
	tok, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	blk := &Block{base: base{tok.Line}}
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, p.errorf("unterminated block")
		}
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, stmt)
	}
	p.advance() // }
	return blk, nil
}

func (p *parser) ifStmt() (Node, error) {
	tok := p.advance() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &If{base: base{tok.Line}, Cond: cond, Then: then}
	if p.accept(ELSE) {
		if p.at(IF) {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) whileStmt() (Node, error) {
	tok := p.advance() // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{base: base{tok.Line}, Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Node, error) {
	tok := p.advance() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var init, cond, post Node
	var err error
	if !p.at(SEMI) {
		if p.at(VAR) {
			init, err = p.varDecl(false)
		} else {
			var x Node
			x, err = p.expression()
			init = &ExprStmt{base: base{tok.Line}, X: x}
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if !p.at(SEMI) {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if !p.at(RPAREN) {
		var x Node
		x, err = p.expression()
		if err != nil {
			return nil, err
		}
		post = &ExprStmt{base: base{tok.Line}, X: x}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &For{base: base{tok.Line}, Init: init, Cond: cond, Post: post, Body: body}, nil
}

// ---- expressions (precedence climbing) ----

func (p *parser) expression() (Node, error) { return p.assignment() }

func (p *parser) assignment() (Node, error) {
	left, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if p.at(ASSIGN) || p.at(PLUSEQ) || p.at(MINUSEQ) {
		op := p.advance()
		switch left.(type) {
		case *Ident, *Member, *Index:
		default:
			return nil, &SyntaxError{Line: op.Line, Msg: "invalid assignment target"}
		}
		val, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return &Assign{base: base{op.Line}, Op: op.Kind, Target: left, Value: val}, nil
	}
	return left, nil
}

func (p *parser) ternary() (Node, error) {
	cond, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	if !p.accept(QUESTION) {
		return cond, nil
	}
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	els, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &Ternary{base: base{cond.line()}, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) logicalOr() (Node, error)  { return p.binary(p.logicalAnd, OR) }
func (p *parser) logicalAnd() (Node, error) { return p.binary(p.equality, AND) }
func (p *parser) equality() (Node, error)   { return p.binary(p.comparison, EQ, NEQ) }
func (p *parser) comparison() (Node, error) { return p.binary(p.additive, LT, GT, LTE, GTE) }
func (p *parser) additive() (Node, error)   { return p.binary(p.multiplicative, PLUS, MINUS) }
func (p *parser) multiplicative() (Node, error) {
	return p.binary(p.unary, STAR, SLASH, PERCENT)
}

func (p *parser) binary(next func() (Node, error), ops ...Kind) (Node, error) {
	left, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(op) {
				tok := p.advance()
				right, err := next()
				if err != nil {
					return nil, err
				}
				left = &Binary{base: base{tok.Line}, Op: op, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unary() (Node, error) {
	if p.at(NOT) || p.at(MINUS) {
		tok := p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{base: base{tok.Line}, Op: tok.Kind, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(LPAREN):
			tok := p.advance()
			var args []Node
			for !p.at(RPAREN) {
				arg, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x = &Call{base: base{tok.Line}, Fn: x, Args: args}
		case p.at(DOT):
			tok := p.advance()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &Member{base: base{tok.Line}, X: x, Name: name.Text}
		case p.at(LBRACKET):
			tok := p.advance()
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			x = &Index{base: base{tok.Line}, X: x, Key: key}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Node, error) {
	tok := p.cur()
	switch tok.Kind {
	case NUMBER:
		p.advance()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, &SyntaxError{Line: tok.Line, Msg: fmt.Sprintf("bad number %q", tok.Text)}
		}
		return &NumberLit{base: base{tok.Line}, Value: v}, nil
	case STRING:
		p.advance()
		return &StringLit{base: base{tok.Line}, Value: tok.Text}, nil
	case TRUE, FALSE:
		p.advance()
		return &BoolLit{base: base{tok.Line}, Value: tok.Kind == TRUE}, nil
	case NULL:
		p.advance()
		return &NullLit{base{tok.Line}}, nil
	case IDENT:
		p.advance()
		return &Ident{base: base{tok.Line}, Name: tok.Text}, nil
	case LPAREN:
		p.advance()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	case FUNCTION:
		p.advance()
		return p.funcRest(tok.Line)
	case LBRACKET:
		p.advance()
		arr := &ArrayLit{base: base{tok.Line}}
		for !p.at(RBRACKET) {
			el, err := p.expression()
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, el)
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		return arr, nil
	case LBRACE:
		p.advance()
		obj := &ObjectLit{base: base{tok.Line}}
		for !p.at(RBRACE) {
			var key string
			switch p.cur().Kind {
			case IDENT, STRING:
				key = p.advance().Text
			default:
				return nil, p.errorf("expected property name, found %s", p.cur().Kind)
			}
			if _, err := p.expect(COLON); err != nil {
				return nil, err
			}
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			obj.Keys = append(obj.Keys, key)
			obj.Values = append(obj.Values, val)
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RBRACE); err != nil {
			return nil, err
		}
		return obj, nil
	}
	return nil, p.errorf("unexpected %s", tok.Kind)
}
