package script

import (
	"errors"
	"strings"
	"testing"
)

func TestJSONStringify(t *testing.T) {
	got := evalExpr(t, `JSON.stringify({b: 2, a: [1, 'x', true, null]})`)
	want := `{"a":[1,"x",true,null],"b":2}`
	if got.Str() != want {
		t.Errorf("stringify = %q, want %q", got.Str(), want)
	}
	if s := evalExpr(t, `JSON.stringify(42)`); s.Str() != "42" {
		t.Errorf("stringify(42) = %q", s.Str())
	}
}

func TestJSONParse(t *testing.T) {
	in := NewInterp()
	src := `
var cfg = JSON.parse('{"period": 30, "sensors": ["gps", "battery"], "deep": {"on": true}}');
var period = cfg.period;
var first = cfg.sensors[0];
var on = cfg.deep.on;
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	get := func(n string) Value { v, _ := in.Lookup(n); return v }
	if get("period").Num() != 30 {
		t.Errorf("period = %v", get("period").Num())
	}
	if get("first").Str() != "gps" {
		t.Errorf("first = %q", get("first").Str())
	}
	if !get("on").Bool() {
		t.Error("deep.on not true")
	}
}

func TestJSONRoundTripInScript(t *testing.T) {
	got := evalExpr(t, `JSON.parse(JSON.stringify({n: 1.5, s: 'x'})).n`)
	if got.Num() != 1.5 {
		t.Errorf("round trip n = %v", got.Num())
	}
}

func TestJSONErrors(t *testing.T) {
	in := NewInterp()
	err := in.RunSource(`var x = JSON.parse('{broken');`)
	if err == nil || !strings.Contains(err.Error(), "JSON.parse") {
		t.Errorf("err = %v, want JSON.parse failure", err)
	}
	if err := NewInterp().RunSource(`JSON.parse(42);`); err == nil {
		t.Error("parse of non-string should fail")
	}
	if err := NewInterp().RunSource(`JSON.stringify();`); err == nil {
		t.Error("stringify with no args should fail")
	}
}

func TestFuelRefillsPerInvocation(t *testing.T) {
	// A budget too small for 100 iterations in one call, but plenty for
	// each individual call: the budget must refill between calls.
	in := NewInterp(WithFuel(2000))
	src := `
function work() {
  var s = 0;
  for (var i = 0; i < 40; i = i + 1) { s += i; }
  return s;
}
`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	fn, _ := in.Lookup("work")
	for call := 0; call < 100; call++ {
		if _, err := in.CallFunction(fn, nil); err != nil {
			t.Fatalf("call %d: %v (fuel should refill per invocation)", call, err)
		}
	}
	// But a single over-budget call still dies.
	if err := in.RunSource("while (true) { var x = 1; }"); !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("err = %v, want fuel exhaustion", err)
	}
}

func TestParserNeverPanics(t *testing.T) {
	// Adversarial fragments: the parser must return errors, not panic.
	inputs := []string{
		"", ";;;", "((((((((((", "}}}}", "var", "function", "function (",
		"a.b.c.d.e.", "[,,]", "{:}", "1 ? 2", "for(;;)", "if(1)",
		"x = = 2", "'", "\"", "return return", "break continue",
		"var x = {a: }", "f(,)", "a[", "!", "- -", "0x", "1e", "1.2.3",
		"while(1){break;}while", "/*", "//", "let let = 1",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", src, r)
				}
			}()
			prog, err := Parse(src)
			if err == nil && prog != nil {
				// Some fragments are valid (e.g. comments); execute them
				// too — must not panic either.
				_ = NewInterp().Run(prog)
			}
		}()
	}
}
