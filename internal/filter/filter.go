// Package filter implements the device-side privacy layer of APISENSE
// (§2 of the paper): "a first layer is deployed on the mobile device and
// implements several algorithms to filter out and blur sensitive
// information (e.g., address book, location) depending on user preferences.
// The user keeps the control of her mobile phone to select the sensors to
// be shared, as well as when and where these sensors can be used by the
// platform."
//
// Filters operate on the structured records a task script saves, before
// they leave the device. Each rule either transforms a record or drops it;
// rules compose into a Chain evaluated in order.
package filter

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"time"

	"apisense/internal/geo"
)

// Record is one sensed data item about to be uploaded.
type Record struct {
	// Sensor names the producing sensor ("gps", "battery", ...).
	Sensor string
	// Time is the sensing instant.
	Time time.Time
	// Data is the payload the task script saved. Location-aware rules
	// look for the conventional "lat"/"lon" numeric fields.
	Data map[string]any
}

// clone returns a copy of the record with its own Data map.
func (r Record) clone() Record {
	out := r
	out.Data = make(map[string]any, len(r.Data))
	for k, v := range r.Data {
		out.Data[k] = v
	}
	return out
}

// position extracts the record's location, if any.
func (r Record) position() (geo.Point, bool) {
	lat, okLat := toFloat(r.Data["lat"])
	lon, okLon := toFloat(r.Data["lon"])
	if !okLat || !okLon {
		return geo.Point{}, false
	}
	return geo.Point{Lat: lat, Lon: lon}, true
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int:
		return float64(t), true
	default:
		return 0, false
	}
}

// Rule transforms or drops records.
type Rule interface {
	// Name identifies the rule in audit logs.
	Name() string
	// Apply returns the (possibly rewritten) record and whether to keep
	// it. Implementations must not mutate the input record's Data map.
	Apply(r Record) (Record, bool)
}

// Chain applies rules in order, stopping at the first drop.
type Chain struct {
	rules []Rule
}

// NewChain builds a filter chain.
func NewChain(rules ...Rule) *Chain { return &Chain{rules: rules} }

// Rules returns the rule names, in order.
func (c *Chain) Rules() []string {
	out := make([]string, len(c.rules))
	for i, r := range c.rules {
		out[i] = r.Name()
	}
	return out
}

// Apply runs the chain. ok is false when some rule dropped the record.
func (c *Chain) Apply(r Record) (Record, bool) {
	cur := r
	for _, rule := range c.rules {
		next, keep := rule.Apply(cur)
		if !keep {
			return Record{}, false
		}
		cur = next
	}
	return cur, true
}

// SensorOptOut drops records from sensors the user did not share.
type SensorOptOut struct {
	// Allowed is the set of shareable sensor names.
	Allowed map[string]bool
}

var _ Rule = (*SensorOptOut)(nil)

// Name implements Rule.
func (*SensorOptOut) Name() string { return "sensor-opt-out" }

// Apply implements Rule.
func (s *SensorOptOut) Apply(r Record) (Record, bool) {
	if !s.Allowed[r.Sensor] {
		return Record{}, false
	}
	return r, true
}

// TimeWindow keeps records sensed between StartHour (inclusive) and EndHour
// (exclusive), local device time. A window crossing midnight (e.g. 22 to 6)
// is supported.
type TimeWindow struct {
	StartHour int
	EndHour   int
}

var _ Rule = (*TimeWindow)(nil)

// Name implements Rule.
func (*TimeWindow) Name() string { return "time-window" }

// Apply implements Rule.
func (w *TimeWindow) Apply(r Record) (Record, bool) {
	h := r.Time.Hour()
	var inside bool
	if w.StartHour <= w.EndHour {
		inside = h >= w.StartHour && h < w.EndHour
	} else {
		inside = h >= w.StartHour || h < w.EndHour
	}
	if !inside {
		return Record{}, false
	}
	return r, true
}

// ZoneExclusion drops location records inside protected zones (typically
// the user's home neighbourhood). Records without a location pass through.
type ZoneExclusion struct {
	// Centers are the protected places.
	Centers []geo.Point
	// Radius is the protection radius in metres.
	Radius float64
}

var _ Rule = (*ZoneExclusion)(nil)

// Name implements Rule.
func (*ZoneExclusion) Name() string { return "zone-exclusion" }

// Apply implements Rule.
func (z *ZoneExclusion) Apply(r Record) (Record, bool) {
	pos, ok := r.position()
	if !ok {
		return r, true
	}
	for _, c := range z.Centers {
		if geo.Distance(pos, c) <= z.Radius {
			return Record{}, false
		}
	}
	return r, true
}

// LocationBlur coarsens locations to the centre of a fixed grid cell before
// they leave the device.
type LocationBlur struct {
	// CellSize is the blur grain in metres.
	CellSize float64
	// Origin anchors the blur grid.
	Origin geo.Point
}

var _ Rule = (*LocationBlur)(nil)

// Name implements Rule.
func (*LocationBlur) Name() string { return "location-blur" }

// Apply implements Rule.
func (b *LocationBlur) Apply(r Record) (Record, bool) {
	pos, ok := r.position()
	if !ok || b.CellSize <= 0 {
		return r, true
	}
	proj := geo.NewProjection(b.Origin)
	xy := proj.Forward(pos)
	xy.X = (math.Floor(xy.X/b.CellSize) + 0.5) * b.CellSize
	xy.Y = (math.Floor(xy.Y/b.CellSize) + 0.5) * b.CellSize
	blurred := proj.Inverse(xy)
	out := r.clone()
	out.Data["lat"] = blurred.Lat
	out.Data["lon"] = blurred.Lon
	return out, true
}

// FieldHash replaces the values of sensitive payload fields (address-book
// entries, phone numbers, ...) with keyed hashes, preserving equality
// while hiding the raw identifier.
type FieldHash struct {
	// Fields lists the payload keys to hash.
	Fields []string
	// Salt keys the hash; it must stay on the device.
	Salt []byte
}

var _ Rule = (*FieldHash)(nil)

// Name implements Rule.
func (*FieldHash) Name() string { return "field-hash" }

// Apply implements Rule.
func (f *FieldHash) Apply(r Record) (Record, bool) {
	var out Record
	cloned := false
	for _, field := range f.Fields {
		v, ok := r.Data[field]
		if !ok {
			continue
		}
		if !cloned {
			out = r.clone()
			cloned = true
		}
		mac := hmac.New(sha256.New, f.Salt)
		fmt.Fprint(mac, v)
		out.Data[field] = "h:" + hex.EncodeToString(mac.Sum(nil))[:16]
	}
	if !cloned {
		return r, true
	}
	return out, true
}

// RateLimit keeps at most one record per sensor per MinInterval. It bounds
// how finely the platform can sample the user even if the task script asks
// for more.
type RateLimit struct {
	// MinInterval is the minimum spacing between kept records.
	MinInterval time.Duration

	last map[string]time.Time
}

var _ Rule = (*RateLimit)(nil)

// NewRateLimit returns a rate-limiting rule.
func NewRateLimit(min time.Duration) *RateLimit {
	return &RateLimit{MinInterval: min, last: make(map[string]time.Time)}
}

// Name implements Rule.
func (*RateLimit) Name() string { return "rate-limit" }

// Apply implements Rule.
func (l *RateLimit) Apply(r Record) (Record, bool) {
	if last, ok := l.last[r.Sensor]; ok && r.Time.Sub(last) < l.MinInterval {
		return Record{}, false
	}
	l.last[r.Sensor] = r.Time
	return r, true
}
